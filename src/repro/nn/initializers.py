"""Weight initialisers.

He initialisation for rectifier-family activations (ReLU/ELU — the paper's
regressor uses ELU throughout), Glorot for sigmoid/tanh outputs.  Each
initialiser takes ``(fan_in, fan_out, rng, dtype=...)`` and returns a
``(fan_in, fan_out)`` matrix.  Draws always happen in float64 and are
cast afterwards, so a float32 net starts from (the rounded image of) the
same weights as the float64 reference for a given seed, and the RNG
stream is dtype-independent.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "he_normal",
    "he_uniform",
    "glorot_normal",
    "glorot_uniform",
    "get_initializer",
]

Initializer = Callable[..., np.ndarray]


def he_normal(
    fan_in: int, fan_out: int, rng: np.random.Generator, dtype=np.float64
) -> np.ndarray:
    """N(0, 2/fan_in) — standard for ReLU/ELU stacks."""
    w = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))
    return w.astype(dtype, copy=False)


def he_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator, dtype=np.float64
) -> np.ndarray:
    """U(−√(6/fan_in), +√(6/fan_in))."""
    limit = np.sqrt(6.0 / fan_in)
    w = rng.uniform(-limit, limit, size=(fan_in, fan_out))
    return w.astype(dtype, copy=False)


def glorot_normal(
    fan_in: int, fan_out: int, rng: np.random.Generator, dtype=np.float64
) -> np.ndarray:
    """N(0, 2/(fan_in+fan_out)) — for saturating activations."""
    w = rng.normal(0.0, np.sqrt(2.0 / (fan_in + fan_out)), size=(fan_in, fan_out))
    return w.astype(dtype, copy=False)


def glorot_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator, dtype=np.float64
) -> np.ndarray:
    """U(±√(6/(fan_in+fan_out)))."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    w = rng.uniform(-limit, limit, size=(fan_in, fan_out))
    return w.astype(dtype, copy=False)


_REGISTRY: dict[str, Initializer] = {
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "glorot_normal": glorot_normal,
    "glorot_uniform": glorot_uniform,
}


def get_initializer(name: str) -> Initializer:
    """Look up an initialiser by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
