"""Training callbacks: early stopping, LR schedules, history, telemetry."""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.obs import metrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.nn.network import Sequential

__all__ = ["Callback", "EarlyStopping", "History", "LRSchedule", "MetricsCallback"]


class Callback:
    """Hook invoked at epoch boundaries.  Return ``True`` to stop training."""

    def on_train_begin(self, net: "Sequential") -> None:
        pass

    def on_epoch_end(self, net: "Sequential", epoch: int, logs: Mapping[str, float]) -> bool:
        return False

    def on_train_end(self, net: "Sequential") -> None:
        pass


class History(Callback):
    """Records per-epoch logs into :attr:`epochs`."""

    def __init__(self) -> None:
        self.epochs: list[dict[str, float]] = []

    def on_train_begin(self, net: "Sequential") -> None:
        self.epochs = []

    def on_epoch_end(self, net, epoch, logs) -> bool:
        self.epochs.append(dict(logs))
        return False

    def series(self, key: str) -> np.ndarray:
        """Per-epoch values of one logged metric."""
        return np.array([e.get(key, np.nan) for e in self.epochs])


class EarlyStopping(Callback):
    """Stop when a monitored metric stops improving; restore best weights.

    Parameters
    ----------
    monitor:
        Key in the epoch logs (``"loss"`` or ``"val_loss"``).
    patience:
        Epochs without improvement tolerated before stopping.
    min_delta:
        Minimum decrease that counts as improvement.
    restore_best:
        Copy the best epoch's weights back at training end.
    """

    def __init__(
        self,
        monitor: str = "val_loss",
        patience: int = 5,
        min_delta: float = 0.0,
        restore_best: bool = True,
    ) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = min_delta
        self.restore_best = restore_best
        self.best: float = np.inf
        self.best_epoch: int = -1
        self._since_best = 0
        self._best_weights: list[np.ndarray] | None = None

    def on_train_begin(self, net: "Sequential") -> None:
        self.best = np.inf
        self.best_epoch = -1
        self._since_best = 0
        self._best_weights = None

    def on_epoch_end(self, net, epoch, logs) -> bool:
        value = logs.get(self.monitor)
        if value is None:
            raise KeyError(
                f"EarlyStopping monitors {self.monitor!r} but epoch logs "
                f"only contain {sorted(logs)}"
            )
        if value < self.best - self.min_delta:
            self.best = float(value)
            self.best_epoch = epoch
            self._since_best = 0
            if self.restore_best:
                self._best_weights = [p.copy() for p in net.parameters()]
            return False
        self._since_best += 1
        return self._since_best >= self.patience

    def on_train_end(self, net: "Sequential") -> None:
        if self.restore_best and self._best_weights is not None:
            for p, best in zip(net.parameters(), self._best_weights):
                p[...] = best


class LRSchedule(Callback):
    """Multiplicative learning-rate decay every ``step`` epochs."""

    def __init__(self, factor: float = 0.5, step: int = 10, min_lr: float = 1e-6):
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        if step < 1:
            raise ValueError("step must be >= 1")
        self.factor = factor
        self.step = step
        self.min_lr = min_lr

    def on_epoch_end(self, net, epoch, logs) -> bool:
        if (epoch + 1) % self.step == 0:
            opt = net.optimizer
            opt.lr = max(opt.lr * self.factor, self.min_lr)
        return False


class MetricsCallback(Callback):
    """Publish per-epoch training signals to the telemetry registry.

    Per epoch: ``nn_epoch_loss`` (and ``nn_epoch_val_loss`` when
    validation data is present), ``nn_learning_rate``, and
    ``nn_grad_norm`` — the global L2 norm of the last batch's gradients,
    the cheapest honest vanishing/exploding-gradient signal.  A
    ``nn_epochs_total`` counter accumulates across fits.  All series
    carry a ``model`` label so the classifier and regressor stay
    distinguishable in one registry.
    """

    def __init__(self, model: str = "net") -> None:
        self.model = model

    def _labels(self) -> dict[str, str]:
        return {"model": self.model}

    def on_epoch_end(self, net, epoch, logs) -> bool:
        reg = metrics.get_registry()
        labels = self._labels()
        reg.counter(
            "nn_epochs_total", help="training epochs completed", labels=labels
        ).inc()
        reg.gauge(
            "nn_epoch_loss", help="mean training loss of the last epoch",
            labels=labels,
        ).set(logs.get("loss", float("nan")))
        if "val_loss" in logs:
            reg.gauge(
                "nn_epoch_val_loss", help="validation loss of the last epoch",
                labels=labels,
            ).set(logs["val_loss"])
        if net.optimizer is not None:
            reg.gauge(
                "nn_learning_rate", help="current optimiser learning rate",
                labels=labels,
            ).set(net.optimizer.lr)
        grads = net.gradients()
        if grads:
            sq = 0.0
            for g in grads:
                sq += float(np.dot(g.ravel(), g.ravel()))
            reg.gauge(
                "nn_grad_norm",
                help="global L2 gradient norm of the last batch",
                labels=labels,
            ).set(np.sqrt(sq))
        return False
