"""A from-scratch feed-forward neural-network framework on NumPy.

Substitutes for PyTorch in the reproduction: dense layers, the activations
the paper evaluates (ELU chosen, ReLU and friends compared), inverted
dropout, batch normalisation (tested and rejected in the paper — kept for
the ablation), smooth-L1 / BCE-with-logits / MSE / MAE losses, Adam and
other optimisers, minibatch training with early stopping, and ``.npz``
serialisation.  Gradients are exact and property-tested against finite
differences (:mod:`repro.nn.gradcheck`).

All math is batched NumPy — forward/backward touch no per-sample Python
loops, per the hpc-parallel vectorisation discipline.  Compute follows a
network-wide dtype policy (:mod:`repro.nn.dtypes`): **float32 by
default** for speed, **float64 as the reference path** (selected via
``Sequential(dtype=...)``, ``$REPRO_NN_DTYPE`` or ``trout train
--nn-dtype``).  Layers, losses and optimisers reuse preallocated
buffers with ``out=`` ufunc calls, so a steady-state training step
allocates nothing; gradient checking always runs in float64.
"""

from repro.nn.activations import (
    ELU,
    GELU,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
    get_activation,
)
from repro.nn.callbacks import EarlyStopping, History, LRSchedule, MetricsCallback
from repro.nn.dtypes import DEFAULT_NN_DTYPE, NN_DTYPES, Workspace, resolve_nn_dtype
from repro.nn.layers import Activation, BatchNorm1d, Dense, Dropout, Layer
from repro.nn.losses import (
    BCEWithLogitsLoss,
    MAELoss,
    MSELoss,
    SmoothL1Loss,
    get_loss,
)
from repro.nn.network import Sequential
from repro.nn.optimizers import SGD, Adam, AdamW, RMSProp, get_optimizer
from repro.nn.serialize import load_network, save_network

__all__ = [
    "ELU",
    "GELU",
    "Identity",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "get_activation",
    "Layer",
    "Dense",
    "Activation",
    "Dropout",
    "BatchNorm1d",
    "MSELoss",
    "MAELoss",
    "SmoothL1Loss",
    "BCEWithLogitsLoss",
    "get_loss",
    "SGD",
    "Adam",
    "AdamW",
    "RMSProp",
    "get_optimizer",
    "Sequential",
    "EarlyStopping",
    "History",
    "LRSchedule",
    "MetricsCallback",
    "save_network",
    "load_network",
    "DEFAULT_NN_DTYPE",
    "NN_DTYPES",
    "Workspace",
    "resolve_nn_dtype",
]
