"""Elementwise activations with exact derivatives.

The paper selected ELU for the regressor "as it achieved marginally better
results than other standard activation functions, such as ReLU"; the HPO
search space also spans the alternatives here.  Each activation implements
``forward(x, out=None)`` and ``backward(grad, x, fwd_out, dst=None,
ws=None)`` where ``x`` is the cached input and ``fwd_out`` the cached
output (some derivatives are cheaper in terms of the output).

All implementations are allocation-free when given a destination and a
:class:`~repro.nn.dtypes.Workspace`: they compute via ``out=`` ufunc
calls into reusable scratch buffers.  Without them they fall back to
allocating, so direct use (tests, notebooks) stays ergonomic.  ``dst``
may alias ``grad`` — every backward reads ``grad`` only in its final
multiply — but must not alias ``x`` or ``fwd_out``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtypes import Workspace

__all__ = [
    "ActivationFn",
    "ReLU",
    "LeakyReLU",
    "ELU",
    "Sigmoid",
    "Tanh",
    "GELU",
    "Identity",
    "get_activation",
]


def _scratch(
    ws: Workspace | None, tag: str, shape: tuple[int, ...], dtype
) -> np.ndarray:
    if ws is None:
        return np.empty(shape, dtype=dtype)
    return ws.buf(tag, shape, dtype)


class ActivationFn:
    """Base class; subclasses are stateless and hyperparameter-light."""

    name = "base"

    def forward(
        self,
        x: np.ndarray,
        out: np.ndarray | None = None,
        ws: Workspace | None = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def backward(
        self,
        grad: np.ndarray,
        x: np.ndarray,
        out: np.ndarray,
        dst: np.ndarray | None = None,
        ws: Workspace | None = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def config(self) -> dict:
        """Serialisable constructor arguments."""
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Identity(ActivationFn):
    """f(x) = x (output layers of regression heads)."""

    name = "identity"

    def forward(self, x, out=None, ws=None) -> np.ndarray:
        return x

    def backward(self, grad, x, out, dst=None, ws=None) -> np.ndarray:
        return grad


class ReLU(ActivationFn):
    """f(x) = max(0, x)."""

    name = "relu"

    def forward(self, x, out=None, ws=None) -> np.ndarray:
        if out is None:
            out = np.empty_like(x)
        np.maximum(x, 0.0, out=out)
        return out

    def backward(self, grad, x, out, dst=None, ws=None) -> np.ndarray:
        if dst is None:
            dst = np.empty_like(grad)
        pos = _scratch(ws, "pos", x.shape, np.bool_)
        np.greater(x, 0.0, out=pos)
        np.multiply(grad, pos, out=dst)
        return dst


class LeakyReLU(ActivationFn):
    """f(x) = x if x>0 else αx."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.01) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha

    def _deriv(self, x, ws) -> np.ndarray:
        # α + (1−α)·[x>0], built by writing the comparison straight into a
        # float scratch: np.copyto(..., where=) is an order of magnitude
        # slower than these fused comparison/axpy passes.
        deriv = _scratch(ws, "t1", x.shape, x.dtype)
        np.greater(x, 0.0, out=deriv)
        deriv *= 1.0 - self.alpha
        deriv += self.alpha
        return deriv

    def forward(self, x, out=None, ws=None) -> np.ndarray:
        if out is None:
            out = np.empty_like(x)
        # f(x) = x·(α + (1−α)·[x>0]) — exactly x above zero, αx below.
        np.multiply(x, self._deriv(x, ws), out=out)
        return out

    def backward(self, grad, x, out, dst=None, ws=None) -> np.ndarray:
        if dst is None:
            dst = np.empty_like(grad)
        np.multiply(grad, self._deriv(x, ws), out=dst)
        return dst

    def config(self) -> dict:
        return {"alpha": self.alpha}


class ELU(ActivationFn):
    """f(x) = x if x>0 else α(eˣ−1) (Clevert et al. 2016) — the paper's pick."""

    name = "elu"

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def forward(self, x, out=None, ws=None) -> np.ndarray:
        # α·expm1(min(x,0)) + max(x,0) equals the branchy definition exactly:
        # one side of each min/max is 0 where the other branch is active.
        if out is None:
            out = np.empty_like(x)
        np.minimum(x, 0.0, out=out)
        np.expm1(out, out=out)
        out *= self.alpha
        pos_part = _scratch(ws, "t1", x.shape, x.dtype)
        np.maximum(x, 0.0, out=pos_part)
        out += pos_part
        return out

    def backward(self, grad, x, out, dst=None, ws=None) -> np.ndarray:
        # For x<=0, f'(x) = f(x) + α; for x>0, 1.  Folded into branch-free
        # form (f(x)+α−1)·[x<=0] + 1 — a where= copy would cost ~20× more
        # than these elementwise passes.
        if dst is None:
            dst = np.empty_like(grad)
        neg = _scratch(ws, "t1", x.shape, grad.dtype)
        np.less_equal(x, 0.0, out=neg)
        deriv = _scratch(ws, "t2", x.shape, grad.dtype)
        np.add(out, self.alpha - 1.0, out=deriv)
        deriv *= neg
        deriv += 1.0
        np.multiply(grad, deriv, out=dst)
        return dst

    def config(self) -> dict:
        return {"alpha": self.alpha}


class Sigmoid(ActivationFn):
    """Logistic; numerically stable via tanh."""

    name = "sigmoid"

    def forward(self, x, out=None, ws=None) -> np.ndarray:
        if out is None:
            out = np.empty_like(x)
        np.multiply(x, 0.5, out=out)
        np.tanh(out, out=out)
        out += 1.0
        out *= 0.5
        return out

    def backward(self, grad, x, out, dst=None, ws=None) -> np.ndarray:
        if dst is None:
            dst = np.empty_like(grad)
        deriv = _scratch(ws, "t1", x.shape, grad.dtype)
        np.subtract(1.0, out, out=deriv)
        deriv *= out
        np.multiply(grad, deriv, out=dst)
        return dst


class Tanh(ActivationFn):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x, out=None, ws=None) -> np.ndarray:
        if out is None:
            out = np.empty_like(x)
        np.tanh(x, out=out)
        return out

    def backward(self, grad, x, out, dst=None, ws=None) -> np.ndarray:
        if dst is None:
            dst = np.empty_like(grad)
        deriv = _scratch(ws, "t1", x.shape, grad.dtype)
        np.multiply(out, out, out=deriv)
        np.subtract(1.0, deriv, out=deriv)
        np.multiply(grad, deriv, out=dst)
        return dst


class GELU(ActivationFn):
    """Gaussian error linear unit (tanh approximation)."""

    name = "gelu"

    _C = np.sqrt(2.0 / np.pi)

    def forward(self, x, out=None, ws=None) -> np.ndarray:
        if out is None:
            out = np.empty_like(x)
        inner = _scratch(ws, "t1", x.shape, x.dtype)
        np.multiply(x, x, out=inner)
        inner *= 0.044715
        inner += 1.0
        inner *= x
        inner *= self._C  # C·(x + 0.044715·x³)
        np.tanh(inner, out=inner)
        inner += 1.0
        np.multiply(x, inner, out=out)
        out *= 0.5
        return out

    def backward(self, grad, x, out, dst=None, ws=None) -> np.ndarray:
        if dst is None:
            dst = np.empty_like(grad)
        t = _scratch(ws, "t1", x.shape, grad.dtype)
        d_inner = _scratch(ws, "t2", x.shape, grad.dtype)
        deriv = _scratch(ws, "t3", x.shape, grad.dtype)
        # t = tanh(C·(x + 0.044715·x³))
        np.multiply(x, x, out=t)
        np.multiply(t, 3.0 * 0.044715, out=d_inner)
        d_inner += 1.0
        d_inner *= self._C  # C·(1 + 3·0.044715·x²)
        t *= 0.044715
        t += 1.0
        t *= x
        t *= self._C
        np.tanh(t, out=t)
        # deriv = 0.5·(1+t) + 0.5·x·(1−t²)·d_inner
        np.multiply(t, t, out=deriv)
        np.subtract(1.0, deriv, out=deriv)
        deriv *= x
        deriv *= d_inner
        deriv += t
        deriv += 1.0
        deriv *= 0.5
        np.multiply(grad, deriv, out=dst)
        return dst


_REGISTRY: dict[str, type[ActivationFn]] = {
    cls.name: cls
    for cls in (Identity, ReLU, LeakyReLU, ELU, Sigmoid, Tanh, GELU)
}


def get_activation(name: str, **kwargs) -> ActivationFn:
    """Instantiate an activation by registry name."""
    try:
        return _REGISTRY[name](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
