"""Elementwise activations with exact derivatives.

The paper selected ELU for the regressor "as it achieved marginally better
results than other standard activation functions, such as ReLU"; the HPO
search space also spans the alternatives here.  Each activation implements
``forward(x)`` and ``backward(grad, x, out)`` where ``x`` is the cached
input and ``out`` the cached output (some derivatives are cheaper in terms
of the output).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ActivationFn",
    "ReLU",
    "LeakyReLU",
    "ELU",
    "Sigmoid",
    "Tanh",
    "GELU",
    "Identity",
    "get_activation",
]


class ActivationFn:
    """Base class; subclasses are stateless and hyperparameter-light."""

    name = "base"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def config(self) -> dict:
        """Serialisable constructor arguments."""
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Identity(ActivationFn):
    """f(x) = x (output layers of regression heads)."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad: np.ndarray, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad


class ReLU(ActivationFn):
    """f(x) = max(0, x)."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def backward(self, grad: np.ndarray, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad * (x > 0.0)


class LeakyReLU(ActivationFn):
    """f(x) = x if x>0 else αx."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.01) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0.0, x, self.alpha * x)

    def backward(self, grad: np.ndarray, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad * np.where(x > 0.0, 1.0, self.alpha)

    def config(self) -> dict:
        return {"alpha": self.alpha}


class ELU(ActivationFn):
    """f(x) = x if x>0 else α(eˣ−1) (Clevert et al. 2016) — the paper's pick."""

    name = "elu"

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0.0, x, self.alpha * np.expm1(np.minimum(x, 0.0)))

    def backward(self, grad: np.ndarray, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        # For x<=0, f'(x) = f(x) + α; for x>0, 1.
        return grad * np.where(x > 0.0, 1.0, out + self.alpha)

    def config(self) -> dict:
        return {"alpha": self.alpha}


class Sigmoid(ActivationFn):
    """Logistic; numerically stable via tanh."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return 0.5 * (1.0 + np.tanh(0.5 * x))

    def backward(self, grad: np.ndarray, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad * out * (1.0 - out)


class Tanh(ActivationFn):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, grad: np.ndarray, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad * (1.0 - out * out)


class GELU(ActivationFn):
    """Gaussian error linear unit (tanh approximation)."""

    name = "gelu"

    _C = np.sqrt(2.0 / np.pi)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return 0.5 * x * (1.0 + np.tanh(self._C * (x + 0.044715 * x**3)))

    def backward(self, grad: np.ndarray, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        inner = self._C * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        d_inner = self._C * (1.0 + 3 * 0.044715 * x**2)
        return grad * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * d_inner)


_REGISTRY: dict[str, type[ActivationFn]] = {
    cls.name: cls
    for cls in (Identity, ReLU, LeakyReLU, ELU, Sigmoid, Tanh, GELU)
}


def get_activation(name: str, **kwargs) -> ActivationFn:
    """Instantiate an activation by registry name."""
    try:
        return _REGISTRY[name](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
