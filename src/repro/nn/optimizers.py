"""First-order optimisers.

Both of the paper's models train with Adam (Kingma & Ba).  Optimisers hold
slot buffers keyed by parameter identity and update parameter arrays in
place, so layers keep their references across steps.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "RMSProp", "get_optimizer"]


class Optimizer:
    """Base optimiser over (param, grad) array pairs.

    ``clip_norm`` applies global gradient-norm clipping before the update —
    the standard complement to the paper's smooth-L1 choice against "the
    effects of the exploding gradient problem".
    """

    name = "base"

    def __init__(self, lr: float = 1e-3, clip_norm: float | None = None) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {clip_norm}")
        self.lr = lr
        self.clip_norm = clip_norm
        self._slots: dict[int, dict[str, np.ndarray]] = {}

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Apply one update; parameters are modified in place."""
        if len(params) != len(grads):
            raise ValueError("params and grads must be parallel lists")
        for p, g in zip(params, grads):
            if p.shape != g.shape:
                raise ValueError(f"param/grad shape mismatch: {p.shape} vs {g.shape}")
        if self.clip_norm is not None:
            total = float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))
            if total > self.clip_norm:
                scale = self.clip_norm / total
                grads = [g * scale for g in grads]
        for p, g in zip(params, grads):
            self._update(p, g, self._slot(p))

    def _slot(self, p: np.ndarray) -> dict[str, np.ndarray]:
        key = id(p)
        if key not in self._slots:
            self._slots[key] = self._init_slot(p)
        return self._slots[key]

    def _init_slot(self, p: np.ndarray) -> dict[str, np.ndarray]:
        return {}

    def _update(self, p: np.ndarray, g: np.ndarray, slot: dict[str, np.ndarray]) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    name = "sgd"

    def __init__(
        self,
        lr: float = 1e-2,
        momentum: float = 0.0,
        nesterov: bool = False,
        clip_norm: float | None = None,
    ):
        super().__init__(lr, clip_norm)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov

    def _init_slot(self, p: np.ndarray) -> dict[str, np.ndarray]:
        return {"v": np.zeros_like(p)} if self.momentum else {}

    def _update(self, p, g, slot) -> None:
        if self.momentum:
            v = slot["v"]
            v *= self.momentum
            v -= self.lr * g
            if self.nesterov:
                p += self.momentum * v - self.lr * g
            else:
                p += v
        else:
            p -= self.lr * g


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba 2015)."""

    name = "adam"

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(lr, clip_norm)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps

    def _init_slot(self, p: np.ndarray) -> dict[str, np.ndarray]:
        return {"m": np.zeros_like(p), "v": np.zeros_like(p), "t": np.zeros(1)}

    def _update(self, p, g, slot) -> None:
        m, v, t = slot["m"], slot["v"], slot["t"]
        t += 1.0
        m *= self.beta1
        m += (1.0 - self.beta1) * g
        v *= self.beta2
        v += (1.0 - self.beta2) * g * g
        t_val = float(t[0])
        mhat = m / (1.0 - self.beta1**t_val)
        vhat = v / (1.0 - self.beta2**t_val)
        p -= self.lr * mhat / (np.sqrt(vhat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    name = "adamw"

    def __init__(self, lr: float = 1e-3, weight_decay: float = 1e-2, **kwargs) -> None:
        super().__init__(lr, **kwargs)
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.weight_decay = weight_decay

    def _update(self, p, g, slot) -> None:
        p -= self.lr * self.weight_decay * p
        super()._update(p, g, slot)


class RMSProp(Optimizer):
    """RMSProp with exponential moving second moment."""

    name = "rmsprop"

    def __init__(
        self,
        lr: float = 1e-3,
        rho: float = 0.9,
        eps: float = 1e-8,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(lr, clip_norm)
        if not 0.0 <= rho < 1.0:
            raise ValueError("rho must be in [0, 1)")
        self.rho, self.eps = rho, eps

    def _init_slot(self, p: np.ndarray) -> dict[str, np.ndarray]:
        return {"s": np.zeros_like(p)}

    def _update(self, p, g, slot) -> None:
        s = slot["s"]
        s *= self.rho
        s += (1.0 - self.rho) * g * g
        p -= self.lr * g / (np.sqrt(s) + self.eps)


_REGISTRY: dict[str, type[Optimizer]] = {
    cls.name: cls for cls in (SGD, Adam, AdamW, RMSProp)
}


def get_optimizer(name: str, **kwargs) -> Optimizer:
    """Instantiate an optimiser by registry name."""
    try:
        return _REGISTRY[name](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown optimizer {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
