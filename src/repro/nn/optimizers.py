"""First-order optimisers.

Both of the paper's models train with Adam (Kingma & Ba).  Optimisers hold
slot buffers keyed by the parameter's *position* in the ``step`` list (an
earlier version keyed by ``id(p)``, but a freed array's id can be reused
by a new allocation, silently inheriting stale moments) and update
parameter arrays in place, so layers keep their references across steps.
A slot is re-initialised automatically when the array at its position
changes shape or dtype; :meth:`Optimizer.reset` drops all state for a
clean restart on a recompiled net.

Updates are fused in-place (``np.multiply/add/divide(..., out=...)``
into per-slot scratch buffers) and gradient clipping scales the gradient
arrays themselves, so a steady-state training step allocates nothing.
Adam (and AdamW) additionally run the fused update over one flat arena
spanning every parameter, with the position-keyed slots exposed as views
into it — ufunc dispatch on each small bias vector otherwise costs more
than the arithmetic itself.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "RMSProp", "get_optimizer"]


class Optimizer:
    """Base optimiser over (param, grad) array pairs.

    ``clip_norm`` applies global gradient-norm clipping before the update —
    the standard complement to the paper's smooth-L1 choice against "the
    effects of the exploding gradient problem".  Clipping mutates the
    gradient arrays in place (they are transient per-batch state owned by
    the layers).
    """

    name = "base"

    def __init__(self, lr: float = 1e-3, clip_norm: float | None = None) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {clip_norm}")
        self.lr = lr
        self.clip_norm = clip_norm
        self._slots: dict[int, dict[str, np.ndarray]] = {}

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Apply one update; parameters (and clipped grads) change in place."""
        if len(params) != len(grads):
            raise ValueError("params and grads must be parallel lists")
        for p, g in zip(params, grads):
            if p.shape != g.shape:
                raise ValueError(f"param/grad shape mismatch: {p.shape} vs {g.shape}")
        if self.clip_norm is not None:
            total = 0.0
            for g in grads:
                gf = g.reshape(-1)
                total += float(np.dot(gf, gf))
            total = math.sqrt(total)
            if total > self.clip_norm:
                scale = self.clip_norm / total
                for g in grads:
                    g *= scale
        self._apply(params, grads)

    def _apply(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        for i, (p, g) in enumerate(zip(params, grads)):
            self._update(p, g, self._slot(i, p))

    def reset(self) -> None:
        """Forget all slot state (moments, step counts, scratch buffers)."""
        self._slots.clear()

    def _slot(self, index: int, p: np.ndarray) -> dict[str, np.ndarray]:
        slot = self._slots.get(index)
        if slot is not None:
            # Underscore keys are scratch/step-count state; the rest mirror
            # the parameter and gate re-initialisation on shape/dtype change.
            for key, arr in slot.items():
                if key.startswith("_"):
                    continue
                if arr.shape != p.shape or arr.dtype != p.dtype:
                    slot = None
                    break
        if slot is None:
            slot = self._slots[index] = self._init_slot(p)
        return slot

    def _init_slot(self, p: np.ndarray) -> dict[str, np.ndarray]:
        return {"_tmp": np.empty_like(p)}

    def _update(self, p: np.ndarray, g: np.ndarray, slot: dict[str, np.ndarray]) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    name = "sgd"

    def __init__(
        self,
        lr: float = 1e-2,
        momentum: float = 0.0,
        nesterov: bool = False,
        clip_norm: float | None = None,
    ):
        super().__init__(lr, clip_norm)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov

    def _init_slot(self, p: np.ndarray) -> dict[str, np.ndarray]:
        slot = {"_tmp": np.empty_like(p)}
        if self.momentum:
            slot["v"] = np.zeros_like(p)
        return slot

    def _update(self, p, g, slot) -> None:
        tmp = slot["_tmp"]
        np.multiply(g, self.lr, out=tmp)
        if self.momentum:
            v = slot["v"]
            v *= self.momentum
            v -= tmp
            if self.nesterov:
                p -= tmp
                np.multiply(v, self.momentum, out=tmp)
                p += tmp
            else:
                p += v
        else:
            p -= tmp


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba 2015)."""

    name = "adam"

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(lr, clip_norm)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._arena: dict | None = None

    def reset(self) -> None:
        super().reset()
        self._arena = None

    def _init_slot(self, p: np.ndarray) -> dict[str, np.ndarray]:
        return {
            "m": np.zeros_like(p),
            "v": np.zeros_like(p),
            "_t": np.zeros((), dtype=np.float64),
            "_tmp": np.empty_like(p),
            "_tmp2": np.empty_like(p),
        }

    def _apply(self, params, grads) -> None:
        """Fused flat-arena update over every parameter at once.

        One set of elementwise passes over a single concatenated buffer
        replaces ~14 tiny ufunc calls per parameter per step — for a
        typical stack of small bias vectors the per-call dispatch was
        costing more than the arithmetic.  Elementwise ops on the
        concatenation are value-identical to the per-parameter form.
        The moment halves of the arena are exposed through ``_slots`` as
        position-keyed views, preserving slot introspection, automatic
        re-initialisation on shape/dtype change, and ``reset()``.
        """
        if len({p.dtype for p in params}) != 1 or not all(
            p.flags.c_contiguous and g.flags.c_contiguous
            for p, g in zip(params, grads)
        ):
            if self._arena is not None:  # view slots lack per-param scratch
                self._arena = None
                self._slots.clear()
            super()._apply(params, grads)
            return
        sig = tuple((p.shape, p.dtype) for p in params)
        if self._arena is None or self._arena["sig"] != sig:
            self._build_arena(params, sig)
        a = self._arena
        gf, m, v = a["g"], a["m"], a["v"]
        tmp, tmp2 = a["tmp"], a["tmp2"]
        for (lo, hi), g in zip(a["spans"], grads):
            np.copyto(gf[lo:hi], g.reshape(-1))
        a["t"] += 1.0
        t = a["t"]
        m *= self.beta1
        np.multiply(gf, 1.0 - self.beta1, out=tmp)
        m += tmp
        v *= self.beta2
        np.multiply(gf, gf, out=tmp)
        tmp *= 1.0 - self.beta2
        v += tmp
        np.divide(m, 1.0 - self.beta1**t, out=tmp)   # m̂
        np.divide(v, 1.0 - self.beta2**t, out=tmp2)  # v̂
        np.sqrt(tmp2, out=tmp2)
        tmp2 += self.eps
        tmp /= tmp2
        tmp *= self.lr
        for (lo, hi), p in zip(a["spans"], params):
            p.reshape(-1)[...] -= tmp[lo:hi]

    def _build_arena(self, params, sig) -> None:
        dtype = params[0].dtype
        spans, off = [], 0
        for p in params:
            spans.append((off, off + p.size))
            off += p.size
        m = np.zeros(off, dtype=dtype)
        v = np.zeros(off, dtype=dtype)
        self._arena = {
            "sig": sig,
            "spans": spans,
            "m": m,
            "v": v,
            "g": np.empty(off, dtype=dtype),
            "tmp": np.empty(off, dtype=dtype),
            "tmp2": np.empty(off, dtype=dtype),
            "t": 0.0,
        }
        self._slots = {
            i: {"m": m[lo:hi].reshape(p.shape), "v": v[lo:hi].reshape(p.shape)}
            for i, ((lo, hi), p) in enumerate(zip(spans, params))
        }

    def _update(self, p, g, slot) -> None:
        m, v, t = slot["m"], slot["v"], slot["_t"]
        tmp, tmp2 = slot["_tmp"], slot["_tmp2"]
        t += 1.0
        t_val = float(t)
        m *= self.beta1
        np.multiply(g, 1.0 - self.beta1, out=tmp)
        m += tmp
        v *= self.beta2
        np.multiply(g, g, out=tmp)
        tmp *= 1.0 - self.beta2
        v += tmp
        np.divide(m, 1.0 - self.beta1**t_val, out=tmp)   # m̂
        np.divide(v, 1.0 - self.beta2**t_val, out=tmp2)  # v̂
        np.sqrt(tmp2, out=tmp2)
        tmp2 += self.eps
        tmp /= tmp2
        tmp *= self.lr
        p -= tmp


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    name = "adamw"

    def __init__(self, lr: float = 1e-3, weight_decay: float = 1e-2, **kwargs) -> None:
        super().__init__(lr, **kwargs)
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.weight_decay = weight_decay

    def _apply(self, params, grads) -> None:
        # Decoupled decay before the Adam step: p ← p·(1 − lr·λ), one
        # in-place pass per parameter.
        decay = 1.0 - self.lr * self.weight_decay
        for p in params:
            p *= decay
        super()._apply(params, grads)


class RMSProp(Optimizer):
    """RMSProp with exponential moving second moment."""

    name = "rmsprop"

    def __init__(
        self,
        lr: float = 1e-3,
        rho: float = 0.9,
        eps: float = 1e-8,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(lr, clip_norm)
        if not 0.0 <= rho < 1.0:
            raise ValueError("rho must be in [0, 1)")
        self.rho, self.eps = rho, eps

    def _init_slot(self, p: np.ndarray) -> dict[str, np.ndarray]:
        return {"s": np.zeros_like(p), "_tmp": np.empty_like(p)}

    def _update(self, p, g, slot) -> None:
        s, tmp = slot["s"], slot["_tmp"]
        s *= self.rho
        np.multiply(g, g, out=tmp)
        tmp *= 1.0 - self.rho
        s += tmp
        np.sqrt(s, out=tmp)
        tmp += self.eps
        np.divide(g, tmp, out=tmp)
        tmp *= self.lr
        p -= tmp


_REGISTRY: dict[str, type[Optimizer]] = {
    cls.name: cls for cls in (SGD, Adam, AdamW, RMSProp)
}


def get_optimizer(name: str, **kwargs) -> Optimizer:
    """Instantiate an optimiser by registry name."""
    try:
        return _REGISTRY[name](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown optimizer {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
