"""Sequential network with minibatch training.

The container for the paper's two models: the 2-hidden-layer quick-start
classifier and the 3-hidden-layer ELU regressor.  ``fit`` runs shuffled
minibatch epochs with optional validation and callbacks; ``predict``
streams batches so inference over a full trace never materialises giant
intermediates.

The network carries the dtype policy (float32 default, float64 reference;
see :mod:`repro.nn.dtypes`) and trains allocation-free in steady state:
batches are gathered with ``np.take(..., out=...)`` into preallocated
buffers, layers and losses reuse per-shape workspaces, and optimisers
update in place — after the first epoch warms the buffers up, the net
heap-block delta of an epoch span stays flat (exported as the
``nn_alloc_blocks_per_epoch`` gauge, labelled by dtype).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.callbacks import Callback, History
from repro.nn.dtypes import Workspace, resolve_nn_dtype
from repro.nn.layers import Layer
from repro.nn.losses import Loss, get_loss
from repro.nn.optimizers import Optimizer, get_optimizer
from repro.obs import metrics, tracing
from repro.utils.rng import default_rng
from repro.utils.validation import check_2d, check_consistent_length

__all__ = ["Sequential"]


class Sequential:
    """A stack of layers trained end to end.

    Usage::

        net = Sequential([Dense(33, 128, seed=rng), Activation("elu"), ...])
        net.compile(loss="smooth_l1", optimizer=Adam(lr=1e-3))
        net.fit(X, y, epochs=30, batch_size=512, seed=0)
        pred = net.predict(X_new)

    ``dtype`` selects the compute/parameter precision: ``None`` defers to
    ``$REPRO_NN_DTYPE`` and then the float32 default; pass ``"float64"``
    for the bit-stable reference path.  Layers are cast to the policy on
    construction and on :meth:`add`.
    """

    def __init__(
        self,
        layers: Sequence[Layer] | None = None,
        dtype: str | np.dtype | None = None,
    ) -> None:
        self.dtype = resolve_nn_dtype(dtype)
        self.layers: list[Layer] = []
        for layer in layers or ():
            self.add(layer)
        self.loss: Loss | None = None
        self.optimizer: Optimizer | None = None
        self.history = History()
        self._ws = Workspace()

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer (chainable), casting it to the network dtype."""
        layer.set_dtype(self.dtype)
        self.layers.append(layer)
        return self

    def astype(self, dtype: str | np.dtype) -> "Sequential":
        """Switch the dtype policy in place.

        Parameters are cast, reusable buffers dropped, and optimiser slot
        state reset (stale moments in the old precision would otherwise
        leak into the new one).
        """
        dtype = resolve_nn_dtype(dtype)
        if dtype == self.dtype:
            return self
        self.dtype = dtype
        for layer in self.layers:
            layer.set_dtype(dtype)
        self._ws.clear()
        if self.optimizer is not None:
            self.optimizer.reset()
        return self

    def compile(self, loss: Loss | str, optimizer: Optimizer | str = "adam") -> "Sequential":
        """Attach loss and optimiser."""
        self.loss = get_loss(loss) if isinstance(loss, str) else loss
        self.optimizer = (
            get_optimizer(optimizer) if isinstance(optimizer, str) else optimizer
        )
        return self

    # ------------------------------------------------------------------ #
    def parameters(self) -> list[np.ndarray]:
        """All trainable parameter arrays, in layer order."""
        return [p for layer in self.layers for p in layer.params]

    def gradients(self) -> list[np.ndarray]:
        """Gradient arrays parallel to :meth:`parameters`."""
        return [g for layer in self.layers for g in layer.grads]

    @property
    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the stack; 1-column outputs stay 2-D until :meth:`predict`.

        The returned array is a layer-owned buffer, valid until the next
        forward pass — copy it to keep it (:meth:`predict` does).
        """
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the stack; returns grad w.r.t. the input."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def train_batch(self, xb: np.ndarray, yb: np.ndarray) -> float:
        """One forward/backward/update step; returns the batch loss."""
        if self.loss is None or self.optimizer is None:
            raise RuntimeError("call compile() before training")
        out = self.forward(xb, training=True)
        loss_val = self.loss.forward(out, yb)
        self.backward(self.loss.backward())
        self.optimizer.step(self.parameters(), self.gradients())
        return loss_val

    # ------------------------------------------------------------------ #
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 256,
        validation_data: tuple[np.ndarray, np.ndarray] | None = None,
        callbacks: Sequence[Callback] = (),
        seed: int | np.random.Generator | None = None,
        shuffle: bool = True,
    ) -> History:
        """Minibatch training.

        ``y`` may be 1-D (promoted to a column) or 2-D.  Returns the
        :class:`History` with per-epoch ``loss`` (mean over batches) and,
        when validation data is given, ``val_loss``.
        """
        X = check_2d(X, "X", dtype=self.dtype)
        y = np.ascontiguousarray(y, dtype=self.dtype)
        if y.ndim == 1:
            y = y.reshape(-1, 1)
        check_consistent_length(X, y)
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if self.loss is None or self.optimizer is None:
            raise RuntimeError("call compile() before fit()")
        if validation_data is not None:
            # Cast once up front so per-epoch evaluate() calls are no-copy.
            Xv, yv = validation_data
            validation_data = (check_2d(Xv, "X_val", dtype=self.dtype), yv)
        rng = default_rng(seed)
        n = len(X)
        bs = min(batch_size, n)
        xb_full = self._ws.buf("fit_x", (bs, X.shape[1]), self.dtype)
        yb_full = self._ws.buf("fit_y", (bs, y.shape[1]), self.dtype)
        identity_order = None if shuffle else np.arange(n, dtype=np.intp)
        cbs = [self.history, *callbacks]
        for cb in cbs:
            cb.on_train_begin(self)
        stop = False
        for epoch in range(epochs):
            # One span per epoch: coarse enough to stay cheap, and the
            # report renderer merges same-name siblings into "epoch ×N".
            with tracing.span("epoch") as ep:
                order = rng.permutation(n) if shuffle else identity_order
                total = 0.0
                n_batches = 0
                for lo in range(0, n, batch_size):
                    sel = order[lo : lo + batch_size]
                    m = len(sel)
                    xb = xb_full[:m]
                    yb = yb_full[:m]
                    np.take(X, sel, axis=0, out=xb)
                    np.take(y, sel, axis=0, out=yb)
                    total += self.train_batch(xb, yb)
                    n_batches += 1
                logs: dict[str, float] = {"loss": total / max(n_batches, 1)}
                if validation_data is not None:
                    logs["val_loss"] = self.evaluate(
                        *validation_data, batch_size=batch_size
                    )
                for cb in cbs:
                    stop = cb.on_epoch_end(self, epoch, logs) or stop
            # The span's net sys.getallocatedblocks() delta: flat after the
            # first (buffer-warming) epoch when the step is allocation-free.
            metrics.get_registry().gauge(
                "nn_alloc_blocks_per_epoch",
                help="net heap-block delta over the last training epoch",
                labels={"dtype": self.dtype.name},
            ).set(float(ep.alloc_blocks))
            if stop:
                break
        for cb in cbs:
            cb.on_train_end(self)
        return self.history

    def predict(self, X: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Inference in batches; single-output nets return a 1-D array.

        Streams each batch's (layer-owned) output into one preallocated
        result array, so the caller gets a fresh array without the old
        list-of-batches concatenation.
        """
        X = check_2d(X, "X", dtype=self.dtype)
        n = len(X)
        out: np.ndarray | None = None
        for lo in range(0, n, batch_size):
            ob = self.forward(X[lo : lo + batch_size], training=False)
            if out is None:
                out = np.empty((n, ob.shape[1]), dtype=ob.dtype)
            out[lo : lo + len(ob)] = ob
        return out.ravel() if out.shape[1] == 1 else out

    def evaluate(
        self, X: np.ndarray, y: np.ndarray, batch_size: int = 4096
    ) -> float:
        """Mean loss over a dataset (sample-weighted across batches)."""
        if self.loss is None:
            raise RuntimeError("call compile() before evaluate()")
        X = check_2d(X, "X", dtype=self.dtype)
        y = np.asarray(y)
        if y.ndim == 1:
            y = y.reshape(-1, 1)
        total = 0.0
        for lo in range(0, len(X), batch_size):
            xb = X[lo : lo + batch_size]
            yb = y[lo : lo + batch_size]
            total += self.loss.forward(self.forward(xb, training=False), yb) * len(xb)
        return total / len(X)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return (
            f"Sequential([{inner}], n_params={self.n_parameters}, "
            f"dtype={self.dtype.name})"
        )
