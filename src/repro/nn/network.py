"""Sequential network with minibatch training.

The container for the paper's two models: the 2-hidden-layer quick-start
classifier and the 3-hidden-layer ELU regressor.  ``fit`` runs shuffled
minibatch epochs with optional validation and callbacks; ``predict``
streams batches so inference over a full trace never materialises giant
intermediates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.callbacks import Callback, History
from repro.nn.layers import Layer
from repro.nn.losses import Loss, get_loss
from repro.nn.optimizers import Optimizer, get_optimizer
from repro.obs import tracing
from repro.utils.rng import default_rng
from repro.utils.validation import check_2d, check_consistent_length

__all__ = ["Sequential"]


class Sequential:
    """A stack of layers trained end to end.

    Usage::

        net = Sequential([Dense(33, 128, seed=rng), Activation("elu"), ...])
        net.compile(loss="smooth_l1", optimizer=Adam(lr=1e-3))
        net.fit(X, y, epochs=30, batch_size=512, seed=0)
        pred = net.predict(X_new)
    """

    def __init__(self, layers: Sequence[Layer] | None = None) -> None:
        self.layers: list[Layer] = list(layers or [])
        self.loss: Loss | None = None
        self.optimizer: Optimizer | None = None
        self.history = History()

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer (chainable)."""
        self.layers.append(layer)
        return self

    def compile(self, loss: Loss | str, optimizer: Optimizer | str = "adam") -> "Sequential":
        """Attach loss and optimiser."""
        self.loss = get_loss(loss) if isinstance(loss, str) else loss
        self.optimizer = (
            get_optimizer(optimizer) if isinstance(optimizer, str) else optimizer
        )
        return self

    # ------------------------------------------------------------------ #
    def parameters(self) -> list[np.ndarray]:
        """All trainable parameter arrays, in layer order."""
        return [p for layer in self.layers for p in layer.params]

    def gradients(self) -> list[np.ndarray]:
        """Gradient arrays parallel to :meth:`parameters`."""
        return [g for layer in self.layers for g in layer.grads]

    @property
    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the stack; 1-column outputs stay 2-D until :meth:`predict`."""
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the stack; returns grad w.r.t. the input."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def train_batch(self, xb: np.ndarray, yb: np.ndarray) -> float:
        """One forward/backward/update step; returns the batch loss."""
        if self.loss is None or self.optimizer is None:
            raise RuntimeError("call compile() before training")
        out = self.forward(xb, training=True)
        loss_val = self.loss.forward(out, yb)
        self.backward(self.loss.backward())
        self.optimizer.step(self.parameters(), self.gradients())
        return loss_val

    # ------------------------------------------------------------------ #
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 256,
        validation_data: tuple[np.ndarray, np.ndarray] | None = None,
        callbacks: Sequence[Callback] = (),
        seed: int | np.random.Generator | None = None,
        shuffle: bool = True,
    ) -> History:
        """Minibatch training.

        ``y`` may be 1-D (promoted to a column) or 2-D.  Returns the
        :class:`History` with per-epoch ``loss`` (mean over batches) and,
        when validation data is given, ``val_loss``.
        """
        X = check_2d(X, "X")
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y.reshape(-1, 1)
        check_consistent_length(X, y)
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if self.loss is None or self.optimizer is None:
            raise RuntimeError("call compile() before fit()")
        rng = default_rng(seed)
        n = len(X)
        cbs = [self.history, *callbacks]
        for cb in cbs:
            cb.on_train_begin(self)
        stop = False
        for epoch in range(epochs):
            # One span per epoch: coarse enough to stay cheap, and the
            # report renderer merges same-name siblings into "epoch ×N".
            with tracing.span("epoch"):
                order = rng.permutation(n) if shuffle else np.arange(n)
                total = 0.0
                n_batches = 0
                for lo in range(0, n, batch_size):
                    sel = order[lo : lo + batch_size]
                    total += self.train_batch(X[sel], y[sel])
                    n_batches += 1
                logs: dict[str, float] = {"loss": total / max(n_batches, 1)}
                if validation_data is not None:
                    logs["val_loss"] = self.evaluate(
                        *validation_data, batch_size=batch_size
                    )
                for cb in cbs:
                    stop = cb.on_epoch_end(self, epoch, logs) or stop
            if stop:
                break
        for cb in cbs:
            cb.on_train_end(self)
        return self.history

    def predict(self, X: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Inference in batches; single-output nets return a 1-D array."""
        X = check_2d(X, "X")
        outs = [
            self.forward(X[lo : lo + batch_size], training=False)
            for lo in range(0, len(X), batch_size)
        ]
        out = np.concatenate(outs, axis=0)
        return out.ravel() if out.shape[1] == 1 else out

    def evaluate(
        self, X: np.ndarray, y: np.ndarray, batch_size: int = 4096
    ) -> float:
        """Mean loss over a dataset (sample-weighted across batches)."""
        if self.loss is None:
            raise RuntimeError("call compile() before evaluate()")
        X = check_2d(X, "X")
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y.reshape(-1, 1)
        total = 0.0
        for lo in range(0, len(X), batch_size):
            xb = X[lo : lo + batch_size]
            yb = y[lo : lo + batch_size]
            total += self.loss.forward(self.forward(xb, training=False), yb) * len(xb)
        return total / len(X)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{inner}], n_params={self.n_parameters})"
