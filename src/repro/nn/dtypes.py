"""Network-wide dtype policy and reusable scratch buffers.

The framework computes in **float32 by default**: the two production nets
(quick-start classifier, ELU regressor) spend their time in BLAS matmuls
and elementwise ufuncs, and single precision roughly halves both the
memory traffic and the FLOP cost on every axis that matters here.
**float64 is the reference path** — bit-stable against the pre-policy
behaviour — used by gradient checking and any golden comparison where
last-ulp reproducibility matters.

Resolution order mirrors ``repro.ml.binning.resolve_tree_method``:

1. an explicit ``dtype=...`` argument,
2. the ``REPRO_NN_DTYPE`` environment variable,
3. the ``float32`` default.

:class:`Workspace` is the allocation-free building block: a small cache of
scratch arrays keyed by ``(tag, shape, dtype)``.  Layers, losses and the
training loop request their forward/backward buffers through it, so the
steady state of ``fit`` re-uses the same memory batch after batch and the
per-epoch heap-block delta (visible on the tracing spans) stays flat after
the first epoch.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["DEFAULT_NN_DTYPE", "NN_DTYPES", "resolve_nn_dtype", "Workspace"]

NN_DTYPES = ("float32", "float64")
DEFAULT_NN_DTYPE = "float32"

ENV_VAR = "REPRO_NN_DTYPE"


def resolve_nn_dtype(dtype: str | np.dtype | type | None = None) -> np.dtype:
    """Resolve the effective compute dtype.

    Explicit argument > ``$REPRO_NN_DTYPE`` > float32 default.  Only
    float32 and float64 are valid policies.
    """
    if dtype is None:
        dtype = os.environ.get(ENV_VAR, "").strip() or DEFAULT_NN_DTYPE
    try:
        dt = np.dtype(dtype)
    except TypeError as exc:
        raise ValueError(f"invalid nn dtype {dtype!r}") from exc
    if dt.name not in NN_DTYPES:
        raise ValueError(
            f"nn dtype must be one of {NN_DTYPES}, got {dt.name!r}"
        )
    return dt


class Workspace:
    """Scratch arrays allocated once and reused, keyed by (tag, shape, dtype).

    Buffers come back *uninitialised* (``np.empty``) — every consumer
    overwrites them fully via ``out=`` ufunc calls.  The cache is bounded:
    once ``max_entries`` distinct keys accumulate (e.g. a net driven with
    many unique batch shapes) it is cleared wholesale, trading a one-off
    re-allocation for a hard memory cap.  Correctness never depends on a
    buffer surviving between calls.
    """

    __slots__ = ("_bufs", "max_entries")

    def __init__(self, max_entries: int = 32) -> None:
        self._bufs: dict[tuple, np.ndarray] = {}
        self.max_entries = max_entries

    def buf(
        self, tag: str, shape: tuple[int, ...], dtype: np.dtype | type
    ) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype))
        arr = self._bufs.get(key)
        if arr is None:
            if len(self._bufs) >= self.max_entries:
                self._bufs.clear()
            arr = self._bufs[key] = np.empty(shape, dtype=key[2])
        return arr

    def clear(self) -> None:
        """Drop every cached buffer (e.g. after a dtype switch)."""
        self._bufs.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held — a debugging/telemetry aid."""
        return sum(a.nbytes for a in self._bufs.values())

    def __len__(self) -> int:
        return len(self._bufs)
