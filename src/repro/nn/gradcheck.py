"""Finite-difference gradient checking.

Used by the property-based test suite to certify that every layer/loss
combination backpropagates the exact gradient — the correctness foundation
for trusting the from-scratch framework at all.

Gradient checking is **pinned to float64**: central differences at
``eps=1e-6`` drown in float32 rounding (the perturbation itself is near
the ulp of typical weights), so both helpers convert a float32-policy net
to the float64 reference path in place before measuring.  The check
certifies the backprop *algebra*, which is dtype-independent.
"""

from __future__ import annotations

import numpy as np

from repro.nn.network import Sequential

__all__ = ["numeric_gradients", "max_gradient_error"]


def _pin_float64(net: Sequential, X: np.ndarray, y: np.ndarray):
    if net.dtype != np.float64:
        net.astype(np.float64)
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if y.ndim == 1:
        y = y.reshape(-1, 1)
    return X, y


def numeric_gradients(
    net: Sequential,
    X: np.ndarray,
    y: np.ndarray,
    eps: float = 1e-6,
) -> list[np.ndarray]:
    """Central-difference gradients of the compiled loss w.r.t. all params.

    O(#params) loss evaluations — strictly a test utility.  Casts the net
    to float64 in place (see module docstring).
    """
    if net.loss is None:
        raise RuntimeError("compile() the network before gradient checking")
    X, y = _pin_float64(net, X, y)

    def loss_value() -> float:
        # training=True so batch-norm uses batch statistics — the same
        # function the analytic backward pass differentiates.  (Running
        # stats drift as a side effect; they do not affect the loss.)
        return net.loss.forward(net.forward(X, training=True), y)

    grads = []
    for p in net.parameters():
        g = np.zeros_like(p)
        flat_p = p.ravel()
        flat_g = g.ravel()
        for k in range(flat_p.size):
            orig = flat_p[k]
            flat_p[k] = orig + eps
            up = loss_value()
            flat_p[k] = orig - eps
            down = loss_value()
            flat_p[k] = orig
            flat_g[k] = (up - down) / (2 * eps)
        grads.append(g)
    return grads


def max_gradient_error(
    net: Sequential, X: np.ndarray, y: np.ndarray, eps: float = 1e-6
) -> float:
    """Max relative error between backprop and numeric gradients.

    The network must contain no stochastic layers (dropout) for the check
    to be meaningful.  Relative error uses ``|a−n| / max(1, |a|+|n|)``.
    Casts the net to float64 in place (see module docstring).
    """
    X, y = _pin_float64(net, X, y)
    out = net.forward(X, training=True)
    net.loss.forward(out, y)
    net.backward(net.loss.backward())
    analytic = [g.copy() for g in net.gradients()]
    numeric = numeric_gradients(net, X, y, eps=eps)
    worst = 0.0
    for a, n in zip(analytic, numeric):
        denom = np.maximum(1.0, np.abs(a) + np.abs(n))
        worst = max(worst, float(np.max(np.abs(a - n) / denom)))
    return worst
