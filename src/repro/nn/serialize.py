"""Network serialisation to ``.npz``.

The architecture is stored as a JSON config string alongside the weight
arrays (and batch-norm running statistics), so a trained TROUT model
round-trips through a single file the CLI can load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.layers import Activation, BatchNorm1d, Dense, Dropout, Layer
from repro.nn.network import Sequential

__all__ = ["save_network", "load_network"]


def _layer_from_config(cfg: dict) -> Layer:
    kind = cfg.get("kind")
    if kind == "dense":
        return Dense(cfg["in_features"], cfg["out_features"], init=cfg.get("init", "he_normal"), seed=0)
    if kind == "activation":
        kwargs = {k: v for k, v in cfg.items() if k not in ("kind", "name")}
        return Activation(cfg["name"], **kwargs)
    if kind == "dropout":
        return Dropout(cfg["p"], seed=0)
    if kind == "batchnorm1d":
        return BatchNorm1d(cfg["n_features"], momentum=cfg["momentum"], eps=cfg["eps"])
    raise ValueError(f"unknown layer kind {kind!r} in saved network")


def save_network(net: Sequential, path: str | Path) -> None:
    """Write architecture + weights (+ batchnorm state) to ``path``."""
    path = Path(path)
    configs = []
    arrays: dict[str, np.ndarray] = {}
    for i, layer in enumerate(net.layers):
        cfg = layer.config()
        if not cfg:
            raise ValueError(
                f"layer {type(layer).__name__} has no config and cannot be saved"
            )
        configs.append(cfg)
        for j, p in enumerate(layer.params):
            arrays[f"param_{i}_{j}"] = p
        if isinstance(layer, BatchNorm1d):
            for j, s in enumerate(layer.state_arrays):
                arrays[f"state_{i}_{j}"] = s
    arrays["__config__"] = np.frombuffer(
        json.dumps(configs).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_network(path: str | Path) -> Sequential:
    """Rebuild a :func:`save_network` file.  Loss/optimiser are not saved;
    call :meth:`Sequential.compile` again before further training."""
    path = Path(path)
    with np.load(path) as data:
        configs = json.loads(bytes(data["__config__"].tolist()).decode("utf-8"))
        net = Sequential([_layer_from_config(c) for c in configs])
        for i, layer in enumerate(net.layers):
            for j, p in enumerate(layer.params):
                saved = data[f"param_{i}_{j}"]
                if saved.shape != p.shape:
                    raise ValueError(
                        f"weight shape mismatch at layer {i}: saved "
                        f"{saved.shape}, built {p.shape}"
                    )
                p[...] = saved
            if isinstance(layer, BatchNorm1d):
                for j, s in enumerate(layer.state_arrays):
                    s[...] = data[f"state_{i}_{j}"]
    return net
