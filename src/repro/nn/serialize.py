"""Network serialisation to ``.npz``.

The architecture is stored as a JSON config string alongside the weight
arrays (and batch-norm running statistics), so a trained TROUT model
round-trips through a single file the CLI can load.

The dtype policy round-trips too: ``save_network`` records the net's
dtype next to the layer configs, and ``load_network`` rebuilds under the
saved policy by default — a float32-trained net loads back float32 and
predicts bit-identically.  Passing ``dtype=`` overrides the checkpoint;
down-casting a float64 checkpoint into a float32 policy warns (precision
is silently lost otherwise).  Legacy checkpoints (plain-list config, all
arrays float64) load as float64.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np

from repro.nn.dtypes import resolve_nn_dtype
from repro.nn.layers import Activation, BatchNorm1d, Dense, Dropout, Layer
from repro.nn.network import Sequential

__all__ = ["save_network", "load_network"]


def _layer_from_config(cfg: dict) -> Layer:
    kind = cfg.get("kind")
    if kind == "dense":
        return Dense(cfg["in_features"], cfg["out_features"], init=cfg.get("init", "he_normal"), seed=0)
    if kind == "activation":
        kwargs = {k: v for k, v in cfg.items() if k not in ("kind", "name")}
        return Activation(cfg["name"], **kwargs)
    if kind == "dropout":
        return Dropout(cfg["p"], seed=0)
    if kind == "batchnorm1d":
        return BatchNorm1d(cfg["n_features"], momentum=cfg["momentum"], eps=cfg["eps"])
    raise ValueError(f"unknown layer kind {kind!r} in saved network")


def save_network(net: Sequential, path: str | Path) -> None:
    """Write architecture + dtype + weights (+ batchnorm state) to ``path``."""
    path = Path(path)
    configs = []
    arrays: dict[str, np.ndarray] = {}
    for i, layer in enumerate(net.layers):
        cfg = layer.config()
        if not cfg:
            raise ValueError(
                f"layer {type(layer).__name__} has no config and cannot be saved"
            )
        configs.append(cfg)
        for j, p in enumerate(layer.params):
            arrays[f"param_{i}_{j}"] = p
        if isinstance(layer, BatchNorm1d):
            for j, s in enumerate(layer.state_arrays):
                arrays[f"state_{i}_{j}"] = s
    payload = {"layers": configs, "dtype": net.dtype.name}
    arrays["__config__"] = np.frombuffer(
        json.dumps(payload).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_network(path: str | Path, dtype: str | np.dtype | None = None) -> Sequential:
    """Rebuild a :func:`save_network` file.  Loss/optimiser are not saved;
    call :meth:`Sequential.compile` again before further training.

    ``dtype=None`` restores the checkpoint's own policy; an explicit
    ``dtype`` overrides it (warning when that down-casts the weights).
    """
    path = Path(path)
    with np.load(path) as data:
        payload = json.loads(bytes(data["__config__"].tolist()).decode("utf-8"))
        if isinstance(payload, dict):
            configs = payload["layers"]
            saved_dtype = np.dtype(payload["dtype"])
        else:  # legacy plain-list config: every array was float64
            configs = payload
            saved_dtype = np.dtype(np.float64)
        target = saved_dtype if dtype is None else resolve_nn_dtype(dtype)
        if target.itemsize < saved_dtype.itemsize:
            warnings.warn(
                f"loading a {saved_dtype.name} checkpoint under a "
                f"{target.name} policy down-casts the weights",
                stacklevel=2,
            )
        net = Sequential([_layer_from_config(c) for c in configs], dtype=target)
        for i, layer in enumerate(net.layers):
            for j, p in enumerate(layer.params):
                saved = data[f"param_{i}_{j}"]
                if saved.shape != p.shape:
                    raise ValueError(
                        f"weight shape mismatch at layer {i}: saved "
                        f"{saved.shape}, built {p.shape}"
                    )
                p[...] = saved
            if isinstance(layer, BatchNorm1d):
                for j, s in enumerate(layer.state_arrays):
                    s[...] = data[f"state_{i}_{j}"]
    return net
