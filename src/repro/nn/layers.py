"""Network layers.

Every layer implements ``forward(x, training)`` and ``backward(grad)``
(which must be called after the corresponding forward, as layers cache the
activations backprop needs), and exposes parameter / gradient arrays that
optimisers update in place.

Layers carry the network dtype policy (float32 default, float64 reference
— see :mod:`repro.nn.dtypes`) and own a :class:`~repro.nn.dtypes.Workspace`
of forward/backward buffers allocated once per (batch shape, dtype) and
reused across batches, so steady-state training allocates nothing.  A
layer's forward output is therefore only valid until its *next* forward —
callers that keep results must copy (``Sequential.predict`` does).
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ActivationFn, Identity, get_activation
from repro.nn.dtypes import Workspace, resolve_nn_dtype
from repro.nn.initializers import get_initializer
from repro.utils.rng import default_rng

__all__ = ["Layer", "Dense", "Activation", "Dropout", "BatchNorm1d"]


class Layer:
    """Base layer: stateless pass-through with no parameters."""

    #: names of ndarray attributes cast when the dtype policy changes
    _array_attrs: tuple[str, ...] = ()
    #: names of cached-activation attributes invalidated on a dtype change
    _cache_attrs: tuple[str, ...] = ()

    def __init__(self, dtype: str | np.dtype | None = None) -> None:
        self.dtype = resolve_nn_dtype(dtype)
        self._ws = Workspace()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def set_dtype(self, dtype: str | np.dtype) -> None:
        """Switch the layer to ``dtype``, casting params and dropping buffers."""
        dtype = resolve_nn_dtype(dtype)
        if dtype == self.dtype:
            return
        self.dtype = dtype
        for name in self._array_attrs:
            setattr(self, name, getattr(self, name).astype(dtype))
        for name in self._cache_attrs:
            setattr(self, name, None)
        self._ws.clear()

    @property
    def params(self) -> list[np.ndarray]:
        """Trainable parameter arrays (updated in place by optimisers)."""
        return []

    @property
    def grads(self) -> list[np.ndarray]:
        """Gradient arrays parallel to :attr:`params`."""
        return []

    def config(self) -> dict:
        """Serialisable constructor description (see serialize module)."""
        return {}

    @property
    def n_parameters(self) -> int:
        return sum(p.size for p in self.params)


class Dense(Layer):
    """Fully connected layer ``y = xW + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    init:
        Weight initialiser name (see :mod:`repro.nn.initializers`).
    seed:
        Seed or generator for the initialiser.
    dtype:
        Parameter/compute dtype; ``None`` defers to the policy
        (:func:`repro.nn.dtypes.resolve_nn_dtype`).
    """

    _array_attrs = ("W", "b", "dW", "db")
    _cache_attrs = ("_x",)

    def __init__(
        self,
        in_features: int,
        out_features: int,
        init: str = "he_normal",
        seed: int | np.random.Generator | None = None,
        dtype: str | np.dtype | None = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer widths must be positive")
        super().__init__(dtype)
        rng = default_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.init = init
        self.W = get_initializer(init)(in_features, out_features, rng, dtype=self.dtype)
        self.b = np.zeros(out_features, dtype=self.dtype)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense({self.in_features}->{self.out_features}) got input "
                f"shape {x.shape}"
            )
        if x.dtype != self.dtype:
            x = x.astype(self.dtype)
        self._x = x if training else None
        out = self._ws.buf("fwd", (x.shape[0], self.out_features), self.dtype)
        np.matmul(x, self.W, out=out)
        out += self.b
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() before forward(training=True)")
        if grad.dtype != self.dtype:
            grad = grad.astype(self.dtype)
        # In-place writes keep optimiser references valid.
        np.matmul(self._x.T, grad, out=self.dW)
        np.sum(grad, axis=0, out=self.db)
        gin = self._ws.buf("bwd", self._x.shape, self.dtype)
        np.matmul(grad, self.W.T, out=gin)
        return gin

    @property
    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.dW, self.db]

    def config(self) -> dict:
        return {
            "kind": "dense",
            "in_features": self.in_features,
            "out_features": self.out_features,
            "init": self.init,
        }


class Activation(Layer):
    """Wraps an :class:`~repro.nn.activations.ActivationFn` as a layer."""

    _cache_attrs = ("_x", "_out")

    def __init__(
        self,
        fn: ActivationFn | str,
        dtype: str | np.dtype | None = None,
        **kwargs,
    ) -> None:
        super().__init__(dtype)
        self.fn = get_activation(fn, **kwargs) if isinstance(fn, str) else fn
        self._x: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if isinstance(self.fn, Identity):
            out = x
        else:
            out = self.fn.forward(
                x, out=self._ws.buf("fwd", x.shape, x.dtype), ws=self._ws
            )
        if training:
            self._x, self._out = x, out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() before forward(training=True)")
        # dst=grad: the derivative multiplies into the incoming gradient in
        # place (safe — every ActivationFn reads grad only in its final op).
        return self.fn.backward(grad, self._x, self._out, dst=grad, ws=self._ws)

    def config(self) -> dict:
        return {"kind": "activation", "name": self.fn.name, **self.fn.config()}


class Dropout(Layer):
    """Inverted dropout: active only in training, identity at inference."""

    _cache_attrs = ("_mask",)

    def __init__(
        self,
        p: float,
        seed: int | np.random.Generator | None = None,
        dtype: str | np.dtype | None = None,
    ) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        super().__init__(dtype)
        self.p = p
        self._rng = default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        # Threshold raw generator words at 16-bit resolution: producing
        # bits is ~4x cheaper than converting them to unit-interval
        # floats, and quantising ``keep`` to 1/65536 (≤8e-6 absolute)
        # is far below anything a dropout rate resolves.  The draw is
        # precision-independent, so float32 and float64 policies consume
        # the identical mask sequence.
        nel = x.size
        words = self._rng.bit_generator.random_raw((nel + 3) // 4)
        u16 = words.view(np.uint16)[:nel].reshape(x.shape)
        kept = self._ws.buf("kept", x.shape, np.bool_)
        np.less(u16, int(round(keep * 65536.0)), out=kept)
        mask = self._ws.buf("mask", x.shape, x.dtype)
        # A dtype-matched scalar keeps the bool->float cast on the fast
        # ufunc loop (a python float promotes the whole op to float64).
        np.multiply(kept, mask.dtype.type(1.0 / keep), out=mask)
        self._mask = mask
        # The output cannot alias x: the upstream layer's cached forward
        # buffer must stay intact for its own backward pass.
        out = self._ws.buf("fwd", x.shape, x.dtype)
        np.multiply(x, mask, out=out)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        grad *= self._mask
        return grad

    def config(self) -> dict:
        return {"kind": "dropout", "p": self.p}


class BatchNorm1d(Layer):
    """Batch normalisation over the batch axis (Ioffe & Szegedy 2015).

    The paper tested this on the regressor and rejected it (wide-range
    targets plus huge hidden layers made it impractical); it is kept for
    the batch-norm ablation, so unlike the hot layers above it still
    allocates its intermediates per batch.
    """

    _array_attrs = (
        "gamma", "beta", "dgamma", "dbeta", "running_mean", "running_var",
    )
    _cache_attrs = ("_cache",)

    def __init__(
        self,
        n_features: int,
        momentum: float = 0.1,
        eps: float = 1e-5,
        dtype: str | np.dtype | None = None,
    ):
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        super().__init__(dtype)
        self.n_features = n_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = np.ones(n_features, dtype=self.dtype)
        self.beta = np.zeros(n_features, dtype=self.dtype)
        self.dgamma = np.zeros_like(self.gamma)
        self.dbeta = np.zeros_like(self.beta)
        self.running_mean = np.zeros(n_features, dtype=self.dtype)
        self.running_var = np.ones(n_features, dtype=self.dtype)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.dtype != self.dtype:
            x = x.astype(self.dtype)
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean += self.momentum * (mean - self.running_mean)
            self.running_var += self.momentum * (var - self.running_var)
            inv_std = 1.0 / np.sqrt(var + self.eps)
            x_hat = (x - mean) * inv_std
            self._cache = (x_hat, inv_std)
            return self.gamma * x_hat + self.beta
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        return self.gamma * (x - self.running_mean) * inv_std + self.beta

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() before forward(training=True)")
        x_hat, inv_std = self._cache
        n = grad.shape[0]
        np.sum(grad * x_hat, axis=0, out=self.dgamma)
        np.sum(grad, axis=0, out=self.dbeta)
        # Standard batchnorm backward in terms of normalised activations.
        dxhat = grad * self.gamma
        return (
            inv_std
            / n
            * (n * dxhat - dxhat.sum(axis=0) - x_hat * (dxhat * x_hat).sum(axis=0))
        )

    @property
    def params(self) -> list[np.ndarray]:
        return [self.gamma, self.beta]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.dgamma, self.dbeta]

    def config(self) -> dict:
        return {
            "kind": "batchnorm1d",
            "n_features": self.n_features,
            "momentum": self.momentum,
            "eps": self.eps,
        }

    @property
    def state_arrays(self) -> list[np.ndarray]:
        """Non-trainable state persisted by the serialiser."""
        return [self.running_mean, self.running_var]
