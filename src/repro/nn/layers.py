"""Network layers.

Every layer implements ``forward(x, training)`` and ``backward(grad)``
(which must be called after the corresponding forward, as layers cache the
activations backprop needs), and exposes parameter / gradient arrays that
optimisers update in place.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ActivationFn, get_activation
from repro.nn.initializers import get_initializer
from repro.utils.rng import default_rng

__all__ = ["Layer", "Dense", "Activation", "Dropout", "BatchNorm1d"]


class Layer:
    """Base layer: stateless pass-through with no parameters."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> list[np.ndarray]:
        """Trainable parameter arrays (updated in place by optimisers)."""
        return []

    @property
    def grads(self) -> list[np.ndarray]:
        """Gradient arrays parallel to :attr:`params`."""
        return []

    def config(self) -> dict:
        """Serialisable constructor description (see serialize module)."""
        return {}

    @property
    def n_parameters(self) -> int:
        return sum(p.size for p in self.params)


class Dense(Layer):
    """Fully connected layer ``y = xW + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    init:
        Weight initialiser name (see :mod:`repro.nn.initializers`).
    seed:
        Seed or generator for the initialiser.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        init: str = "he_normal",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer widths must be positive")
        rng = default_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.init = init
        self.W = get_initializer(init)(in_features, out_features, rng)
        self.b = np.zeros(out_features, dtype=np.float64)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense({self.in_features}->{self.out_features}) got input "
                f"shape {x.shape}"
            )
        self._x = x if training else None
        return x @ self.W + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() before forward(training=True)")
        # In-place writes keep optimiser references valid.
        np.matmul(self._x.T, grad, out=self.dW)
        np.sum(grad, axis=0, out=self.db)
        return grad @ self.W.T

    @property
    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.dW, self.db]

    def config(self) -> dict:
        return {
            "kind": "dense",
            "in_features": self.in_features,
            "out_features": self.out_features,
            "init": self.init,
        }


class Activation(Layer):
    """Wraps an :class:`~repro.nn.activations.ActivationFn` as a layer."""

    def __init__(self, fn: ActivationFn | str, **kwargs) -> None:
        self.fn = get_activation(fn, **kwargs) if isinstance(fn, str) else fn
        self._x: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = self.fn.forward(x)
        if training:
            self._x, self._out = x, out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() before forward(training=True)")
        return self.fn.backward(grad, self._x, self._out)

    def config(self) -> dict:
        return {"kind": "activation", "name": self.fn.name, **self.fn.config()}


class Dropout(Layer):
    """Inverted dropout: active only in training, identity at inference."""

    def __init__(self, p: float, seed: int | np.random.Generator | None = None) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self._rng = default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask

    def config(self) -> dict:
        return {"kind": "dropout", "p": self.p}


class BatchNorm1d(Layer):
    """Batch normalisation over the batch axis (Ioffe & Szegedy 2015).

    The paper tested this on the regressor and rejected it (wide-range
    targets plus huge hidden layers made it impractical); it is kept for
    the batch-norm ablation.  Training uses batch statistics and maintains
    exponential running estimates for inference.
    """

    def __init__(self, n_features: int, momentum: float = 0.1, eps: float = 1e-5):
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.n_features = n_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = np.ones(n_features, dtype=np.float64)
        self.beta = np.zeros(n_features, dtype=np.float64)
        self.dgamma = np.zeros_like(self.gamma)
        self.dbeta = np.zeros_like(self.beta)
        self.running_mean = np.zeros(n_features, dtype=np.float64)
        self.running_var = np.ones(n_features, dtype=np.float64)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean += self.momentum * (mean - self.running_mean)
            self.running_var += self.momentum * (var - self.running_var)
            inv_std = 1.0 / np.sqrt(var + self.eps)
            x_hat = (x - mean) * inv_std
            self._cache = (x_hat, inv_std)
            return self.gamma * x_hat + self.beta
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        return self.gamma * (x - self.running_mean) * inv_std + self.beta

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() before forward(training=True)")
        x_hat, inv_std = self._cache
        n = grad.shape[0]
        np.sum(grad * x_hat, axis=0, out=self.dgamma)
        np.sum(grad, axis=0, out=self.dbeta)
        # Standard batchnorm backward in terms of normalised activations.
        dxhat = grad * self.gamma
        return (
            inv_std
            / n
            * (n * dxhat - dxhat.sum(axis=0) - x_hat * (dxhat * x_hat).sum(axis=0))
        )

    @property
    def params(self) -> list[np.ndarray]:
        return [self.gamma, self.beta]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.dgamma, self.dbeta]

    def config(self) -> dict:
        return {
            "kind": "batchnorm1d",
            "n_features": self.n_features,
            "momentum": self.momentum,
            "eps": self.eps,
        }

    @property
    def state_arrays(self) -> list[np.ndarray]:
        """Non-trainable state persisted by the serialiser."""
        return [self.running_mean, self.running_var]
