"""Training losses.

The regressor uses smooth L1 (Girshick 2015) — "a combination of mean
absolute error and mean squared error … can account for large misses due to
long queue time jobs with outlier wait times and help prevent the effects of
the exploding gradient problem".  The classifier trains on
BCE-with-logits, the differentiable surrogate of the paper's "pure
percentage accuracy" objective (valid because SMOTE balances the classes).

All losses return the *mean* over elements; ``backward`` returns the
gradient w.r.t. predictions with the 1/N folded in.

Losses follow the network dtype policy: elementwise work happens in the
dtype of the inputs (float32 under the default policy) inside workspace
buffers reused across batches, while the scalar mean always accumulates
in float64 so reported losses stay well-conditioned.  The gradient array
returned by ``backward`` is a reused buffer — valid until the next
``forward`` of the same loss.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtypes import Workspace

__all__ = ["Loss", "MSELoss", "MAELoss", "SmoothL1Loss", "BCEWithLogitsLoss", "get_loss"]


class Loss:
    """Base loss; stateless apart from the cached residuals and buffers."""

    name = "base"

    def __init__(self) -> None:
        self._ws = Workspace()

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _check(pred: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        pred = np.asarray(pred)
        target = np.asarray(target)
        if not np.issubdtype(pred.dtype, np.floating):
            pred = pred.astype(np.float64)
        if not np.issubdtype(target.dtype, np.floating):
            target = target.astype(np.float64)
        if pred.shape != target.shape:
            raise ValueError(
                f"pred shape {pred.shape} != target shape {target.shape}"
            )
        return pred, target

    def _buf(self, tag: str, like_a: np.ndarray, like_b: np.ndarray) -> np.ndarray:
        dtype = np.result_type(like_a.dtype, like_b.dtype)
        return self._ws.buf(tag, like_a.shape, dtype)


class MSELoss(Loss):
    """Mean squared error."""

    name = "mse"

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = self._check(pred, target)
        self._diff = self._buf("diff", pred, target)
        np.subtract(pred, target, out=self._diff)
        sq = self._ws.buf("t", self._diff.shape, self._diff.dtype)
        np.multiply(self._diff, self._diff, out=sq)
        return float(sq.mean(dtype=np.float64))

    def backward(self) -> np.ndarray:
        g = self._ws.buf("grad", self._diff.shape, self._diff.dtype)
        np.multiply(self._diff, 2.0, out=g)
        g /= self._diff.size
        return g


class MAELoss(Loss):
    """Mean absolute error (subgradient 0 at exact zeros)."""

    name = "mae"

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = self._check(pred, target)
        self._diff = self._buf("diff", pred, target)
        np.subtract(pred, target, out=self._diff)
        a = self._ws.buf("t", self._diff.shape, self._diff.dtype)
        np.abs(self._diff, out=a)
        return float(a.mean(dtype=np.float64))

    def backward(self) -> np.ndarray:
        g = self._ws.buf("grad", self._diff.shape, self._diff.dtype)
        np.sign(self._diff, out=g)
        g /= self._diff.size
        return g


class SmoothL1Loss(Loss):
    """Huber-style smooth L1: quadratic inside ``beta``, linear outside."""

    name = "smooth_l1"

    def __init__(self, beta: float = 1.0) -> None:
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        super().__init__()
        self.beta = beta

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = self._check(pred, target)
        self._diff = self._buf("diff", pred, target)
        np.subtract(pred, target, out=self._diff)
        # With a = |diff| and m = min(a, β) the per-element loss is
        # m²/(2β) + (a − m): the quadratic branch where a < β (m = a),
        # the linear branch a − β/2 where a ≥ β (m = β).
        a = self._ws.buf("t", self._diff.shape, self._diff.dtype)
        m = self._ws.buf("t2", self._diff.shape, self._diff.dtype)
        np.abs(self._diff, out=a)
        np.minimum(a, self.beta, out=m)
        a -= m
        np.multiply(m, m, out=m)
        m *= 0.5 / self.beta
        a += m
        return float(a.mean(dtype=np.float64))

    def backward(self) -> np.ndarray:
        # where(a<β, diff/β, sign(diff)) ≡ clip(diff/β, −1, 1).
        g = self._ws.buf("grad", self._diff.shape, self._diff.dtype)
        np.divide(self._diff, self.beta, out=g)
        np.clip(g, -1.0, 1.0, out=g)
        g /= self._diff.size
        return g


class BCEWithLogitsLoss(Loss):
    """Binary cross-entropy on raw logits (numerically stable).

    ``loss = mean(max(z,0) − z·y + log(1+e^{−|z|}))``; the gradient is the
    classic ``σ(z) − y``.
    """

    name = "bce_logits"

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        z, y = self._check(pred, target)
        if float(y.min()) < 0.0 or float(y.max()) > 1.0:
            raise ValueError("targets must lie in [0, 1]")
        sig = self._buf("sig", z, y)
        np.multiply(z, 0.5, out=sig)
        np.tanh(sig, out=sig)
        sig += 1.0
        sig *= 0.5
        self._sig, self._y = sig, y
        t = self._ws.buf("t", sig.shape, sig.dtype)
        t2 = self._ws.buf("t2", sig.shape, sig.dtype)
        np.abs(z, out=t)
        np.negative(t, out=t)
        np.exp(t, out=t)
        np.log1p(t, out=t)
        np.maximum(z, 0.0, out=t2)
        t += t2
        np.multiply(z, y, out=t2)
        t -= t2
        return float(t.mean(dtype=np.float64))

    def backward(self) -> np.ndarray:
        g = self._ws.buf("grad", self._sig.shape, self._sig.dtype)
        np.subtract(self._sig, self._y, out=g)
        g /= self._y.size
        return g


_REGISTRY: dict[str, type[Loss]] = {
    cls.name: cls for cls in (MSELoss, MAELoss, SmoothL1Loss, BCEWithLogitsLoss)
}


def get_loss(name: str, **kwargs) -> Loss:
    """Instantiate a loss by registry name."""
    try:
        return _REGISTRY[name](**kwargs)
    except KeyError:
        raise KeyError(f"unknown loss {name!r}; known: {sorted(_REGISTRY)}") from None
