"""Training losses.

The regressor uses smooth L1 (Girshick 2015) — "a combination of mean
absolute error and mean squared error … can account for large misses due to
long queue time jobs with outlier wait times and help prevent the effects of
the exploding gradient problem".  The classifier trains on
BCE-with-logits, the differentiable surrogate of the paper's "pure
percentage accuracy" objective (valid because SMOTE balances the classes).

All losses return the *mean* over elements; ``backward`` returns the
gradient w.r.t. predictions with the 1/N folded in.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "MSELoss", "MAELoss", "SmoothL1Loss", "BCEWithLogitsLoss", "get_loss"]


class Loss:
    """Base loss; stateless apart from the cached residuals."""

    name = "base"

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _check(pred: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if pred.shape != target.shape:
            raise ValueError(
                f"pred shape {pred.shape} != target shape {target.shape}"
            )
        return pred, target


class MSELoss(Loss):
    """Mean squared error."""

    name = "mse"

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = self._check(pred, target)
        self._diff = pred - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        return 2.0 * self._diff / self._diff.size


class MAELoss(Loss):
    """Mean absolute error (subgradient 0 at exact zeros)."""

    name = "mae"

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = self._check(pred, target)
        self._diff = pred - target
        return float(np.mean(np.abs(self._diff)))

    def backward(self) -> np.ndarray:
        return np.sign(self._diff) / self._diff.size


class SmoothL1Loss(Loss):
    """Huber-style smooth L1: quadratic inside ``beta``, linear outside."""

    name = "smooth_l1"

    def __init__(self, beta: float = 1.0) -> None:
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = beta

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = self._check(pred, target)
        self._diff = pred - target
        a = np.abs(self._diff)
        quad = 0.5 * a**2 / self.beta
        lin = a - 0.5 * self.beta
        return float(np.mean(np.where(a < self.beta, quad, lin)))

    def backward(self) -> np.ndarray:
        a = np.abs(self._diff)
        g = np.where(a < self.beta, self._diff / self.beta, np.sign(self._diff))
        return g / self._diff.size


class BCEWithLogitsLoss(Loss):
    """Binary cross-entropy on raw logits (numerically stable).

    ``loss = mean(max(z,0) − z·y + log(1+e^{−|z|}))``; the gradient is the
    classic ``σ(z) − y``.
    """

    name = "bce_logits"

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        z, y = self._check(pred, target)
        if np.any((y < 0) | (y > 1)):
            raise ValueError("targets must lie in [0, 1]")
        self._sig = 0.5 * (1.0 + np.tanh(0.5 * z))
        self._y = y
        loss = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
        return float(np.mean(loss))

    def backward(self) -> np.ndarray:
        return (self._sig - self._y) / self._y.size


_REGISTRY: dict[str, type[Loss]] = {
    cls.name: cls for cls in (MSELoss, MAELoss, SmoothL1Loss, BCEWithLogitsLoss)
}


def get_loss(name: str, **kwargs) -> Loss:
    """Instantiate a loss by registry name."""
    try:
        return _REGISTRY[name](**kwargs)
    except KeyError:
        raise KeyError(f"unknown loss {name!r}; known: {sorted(_REGISTRY)}") from None
