"""KernelSHAP-style sampling explainer (Lundberg & Lee 2017).

Approximates Shapley values by sampling feature coalitions, evaluating the
model with "absent" features replaced by background values, and solving a
Shapley-kernel-weighted least squares for the per-feature attributions.
Attributions satisfy local accuracy: they sum (with the base value) to the
model output for the explained row.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.rng import default_rng
from repro.utils.validation import check_2d

__all__ = ["KernelShapExplainer"]


class KernelShapExplainer:
    """Explain single predictions of any ``predict`` callable.

    Parameters
    ----------
    predict:
        ``X → predictions`` callable (batched).
    background:
        Background sample matrix; absent features take these values
        (averaged over the background rows).
    n_samples:
        Coalitions sampled per explanation (besides the two trivial ones).
    """

    def __init__(
        self,
        predict: Callable[[np.ndarray], np.ndarray],
        background: np.ndarray,
        n_samples: int = 256,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.predict = predict
        self.background = check_2d(background, "background")
        if n_samples < 8:
            raise ValueError("n_samples must be >= 8")
        self.n_samples = n_samples
        self.rng = default_rng(seed)
        self.base_value = float(np.mean(predict(self.background)))

    def shap_values(self, x: np.ndarray) -> np.ndarray:
        """Shapley attributions for one row ``x`` (shape (n_features,))."""
        x = np.asarray(x, dtype=np.float64).ravel()
        d = x.size
        if d != self.background.shape[1]:
            raise ValueError(
                f"x has {d} features, background has {self.background.shape[1]}"
            )
        fx = float(np.mean(self.predict(x.reshape(1, -1))))
        if d == 1:
            return np.array([fx - self.base_value])

        # Sample coalition masks with sizes weighted by the Shapley kernel.
        sizes = np.arange(1, d)
        kernel = (d - 1) / (sizes * (d - sizes))
        size_p = kernel / kernel.sum()
        masks = np.zeros((self.n_samples, d), dtype=bool)
        drawn_sizes = self.rng.choice(sizes, size=self.n_samples, p=size_p)
        for i, s in enumerate(drawn_sizes):
            masks[i, self.rng.choice(d, size=s, replace=False)] = True

        # Model value per coalition, averaged over the background.
        nb = len(self.background)
        vals = np.empty(self.n_samples)
        for i in range(self.n_samples):
            Xc = self.background.copy()
            Xc[:, masks[i]] = x[masks[i]]
            vals[i] = float(np.mean(self.predict(Xc)))

        # Weighted least squares with the sum constraint
        # sum(phi) = f(x) − base enforced by eliminating the last feature.
        w = (d - 1) / (
            drawn_sizes * (d - drawn_sizes)
        )
        Z = masks.astype(np.float64)
        target = vals - self.base_value - Z[:, -1] * (fx - self.base_value)
        A = Z[:, :-1] - Z[:, [-1]]
        sw = np.sqrt(w)
        phi_partial, *_ = np.linalg.lstsq(A * sw[:, None], target * sw, rcond=None)
        phi = np.empty(d)
        phi[:-1] = phi_partial
        phi[-1] = (fx - self.base_value) - phi_partial.sum()
        return phi

    def shap_values_batch(self, X: np.ndarray) -> np.ndarray:
        """Explain several rows; returns (n_rows, n_features)."""
        X = check_2d(X, "X")
        return np.stack([self.shap_values(row) for row in X])

    def mean_abs_shap(self, X: np.ndarray) -> np.ndarray:
        """Global importance: mean |SHAP| per feature over rows of ``X`` —
        the ranking the paper uses to drop weak features."""
        return np.abs(self.shap_values_batch(X)).mean(axis=0)
