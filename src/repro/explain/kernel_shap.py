"""KernelSHAP-style sampling explainer (Lundberg & Lee 2017).

Approximates Shapley values by sampling feature coalitions, evaluating the
model with "absent" features replaced by background values, and solving a
Shapley-kernel-weighted least squares for the per-feature attributions.
Attributions satisfy local accuracy: they sum (with the base value) to the
model output for the explained row.

All coalition × background evaluations for one explained row are batched
into a single ``predict`` call, and :meth:`~KernelShapExplainer.
shap_values_batch` draws one coalition sample shared by every row — the
weighted-least-squares design (and its pseudo-inverse) is then factorised
once and reused, so explaining ``m`` rows costs ``m`` model calls and one
matrix factorisation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.rng import default_rng
from repro.utils.validation import check_2d

__all__ = ["KernelShapExplainer"]

#: Cap on (coalitions × background × features) entries materialised per
#: predict batch; larger problems are evaluated in coalition blocks.
_BATCH_ENTRIES = 1 << 22


class KernelShapExplainer:
    """Explain single predictions of any ``predict`` callable.

    Parameters
    ----------
    predict:
        ``X → predictions`` callable (batched).
    background:
        Background sample matrix; absent features take these values
        (averaged over the background rows).
    n_samples:
        Coalitions sampled per explanation (besides the two trivial ones).
    """

    def __init__(
        self,
        predict: Callable[[np.ndarray], np.ndarray],
        background: np.ndarray,
        n_samples: int = 256,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.predict = predict
        self.background = check_2d(background, "background")
        if n_samples < 8:
            raise ValueError("n_samples must be >= 8")
        self.n_samples = n_samples
        self.rng = default_rng(seed)
        self.base_value = float(np.mean(predict(self.background)))

    def _draw_masks(self, d: int) -> tuple[np.ndarray, np.ndarray]:
        """(masks, sizes): coalition subsets, Shapley-kernel size weighting.

        One vectorised draw: each row keeps the ``sizes[i]`` features with
        the smallest uniforms — a uniform without-replacement subset.
        """
        sizes = np.arange(1, d)
        kernel = (d - 1) / (sizes * (d - sizes))
        drawn = self.rng.choice(sizes, size=self.n_samples, p=kernel / kernel.sum())
        ranks = np.argsort(
            np.argsort(self.rng.random((self.n_samples, d)), axis=1), axis=1
        )
        return ranks < drawn[:, None], drawn

    def _coalition_values(self, x: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Mean model value per coalition, batched into few predict calls.

        Present features take the explained row's values, absent ones the
        background's; all (coalition, background-row) combinations go to
        the model in one batch (blocked only to bound peak memory).
        """
        nb, d = self.background.shape
        n = len(masks)
        vals = np.empty(n)
        block = max(1, _BATCH_ENTRIES // (nb * d))
        for a in range(0, n, block):
            mb = masks[a : a + block]
            Xc = np.where(mb[:, None, :], x, self.background)
            preds = np.asarray(self.predict(Xc.reshape(-1, d)), dtype=np.float64)
            vals[a : a + block] = preds.reshape(len(mb), nb).mean(axis=1)
        return vals

    def _solve(
        self,
        fx: float,
        masks: np.ndarray,
        sizes: np.ndarray,
        vals: np.ndarray,
        pinv: np.ndarray | None = None,
    ) -> np.ndarray:
        """Kernel-weighted least squares for one row's attributions.

        The sum constraint ``sum(phi) = f(x) − base`` is enforced by
        eliminating the last feature.  ``pinv`` (from :meth:`_design`)
        reuses one factorisation across rows sharing the coalitions.
        """
        d = masks.shape[1]
        sw, A = self._design(masks, sizes) if pinv is None else (None, None)
        Z_last = masks[:, -1].astype(np.float64)
        target = vals - self.base_value - Z_last * (fx - self.base_value)
        if pinv is None:
            phi_partial, *_ = np.linalg.lstsq(A, target * sw, rcond=None)
        else:
            sw = np.sqrt((d - 1) / (sizes * (d - sizes)))
            phi_partial = pinv @ (target * sw)
        phi = np.empty(d)
        phi[:-1] = phi_partial
        phi[-1] = (fx - self.base_value) - phi_partial.sum()
        return phi

    @staticmethod
    def _design(masks: np.ndarray, sizes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(sqrt-weights, weighted design) of the constrained WLS system."""
        d = masks.shape[1]
        sw = np.sqrt((d - 1) / (sizes * (d - sizes)))
        Z = masks.astype(np.float64)
        A = (Z[:, :-1] - Z[:, [-1]]) * sw[:, None]
        return sw, A

    def shap_values(self, x: np.ndarray) -> np.ndarray:
        """Shapley attributions for one row ``x`` (shape (n_features,))."""
        x = np.asarray(x, dtype=np.float64).ravel()
        d = x.size
        if d != self.background.shape[1]:
            raise ValueError(
                f"x has {d} features, background has {self.background.shape[1]}"
            )
        fx = float(np.mean(self.predict(x.reshape(1, -1))))
        if d == 1:
            return np.array([fx - self.base_value])
        masks, sizes = self._draw_masks(d)
        vals = self._coalition_values(x, masks)
        return self._solve(fx, masks, sizes, vals)

    def shap_values_batch(self, X: np.ndarray) -> np.ndarray:
        """Explain several rows; returns (n_rows, n_features).

        One coalition sample is shared by every row, so the weighted
        design is factorised once; each row costs a single batched model
        call for its coalition values.
        """
        X = check_2d(X, "X")
        d = X.shape[1]
        if d != self.background.shape[1]:
            raise ValueError(
                f"X has {d} features, background has {self.background.shape[1]}"
            )
        fxs = np.asarray(self.predict(X), dtype=np.float64)
        if d == 1:
            return (fxs - self.base_value)[:, None]
        masks, sizes = self._draw_masks(d)
        sw, A = self._design(masks, sizes)
        pinv = np.linalg.pinv(A)
        out = np.empty((len(X), d))
        for i, x in enumerate(np.ascontiguousarray(X, dtype=np.float64)):
            vals = self._coalition_values(x, masks)
            out[i] = self._solve(float(fxs[i]), masks, sizes, vals, pinv=pinv)
        return out

    def mean_abs_shap(self, X: np.ndarray) -> np.ndarray:
        """Global importance: mean |SHAP| per feature over rows of ``X`` —
        the ranking the paper uses to drop weak features."""
        return np.abs(self.shap_values_batch(X)).mean(axis=0)
