"""Permutation feature importance.

Importance of feature j = increase in a loss metric when column j is
shuffled (breaking its relationship to the target while preserving its
marginal).  Model-agnostic; works on any ``predict`` callable.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.rng import default_rng
from repro.utils.validation import check_1d, check_2d, check_consistent_length

__all__ = ["permutation_importance"]


def permutation_importance(
    predict: Callable[[np.ndarray], np.ndarray],
    X: np.ndarray,
    y: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
    n_repeats: int = 5,
    seed: int | np.random.Generator | None = None,
) -> dict[str, np.ndarray]:
    """Mean/std importance per feature over ``n_repeats`` shuffles.

    Parameters
    ----------
    predict:
        ``X → predictions`` callable.
    metric:
        Loss ``(y_true, y_pred) → float`` where lower is better; default
        mean squared error.

    Returns
    -------
    dict with ``importances_mean``, ``importances_std`` and ``baseline``.
    """
    X = check_2d(X, "X")
    y = check_1d(y, "y")
    check_consistent_length(X, y)
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    if metric is None:
        metric = lambda t, p: float(np.mean((t - p) ** 2))  # noqa: E731
    rng = default_rng(seed)
    baseline = metric(y, predict(X))
    n_features = X.shape[1]
    deltas = np.zeros((n_repeats, n_features))
    Xp = X.copy()
    for r in range(n_repeats):
        for j in range(n_features):
            saved = Xp[:, j].copy()
            Xp[:, j] = saved[rng.permutation(len(X))]
            deltas[r, j] = metric(y, predict(Xp)) - baseline
            Xp[:, j] = saved
    return {
        "importances_mean": deltas.mean(axis=0),
        "importances_std": deltas.std(axis=0),
        "baseline": np.asarray(baseline),
    }
