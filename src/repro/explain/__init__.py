"""Model explanation — the SHAP substitute.

The paper prunes features "based on decreased performance in conjunction
with looking at SHAP values".  This package provides permutation importance
(model-agnostic, metric-based) and a KernelSHAP-style sampling explainer
(coalition sampling + weighted least squares) sufficient for the same
workflow: rank features, drop the near-zero ones.
"""

from repro.explain.kernel_shap import KernelShapExplainer
from repro.explain.permutation import permutation_importance

__all__ = ["permutation_importance", "KernelShapExplainer"]
