"""SMOTE: Synthetic Minority Over-sampling TEchnique (Chawla et al. 2002).

Each synthetic sample interpolates a minority point toward one of its k
nearest minority neighbours at a uniform random fraction — populating the
minority manifold rather than duplicating points.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.utils.rng import default_rng
from repro.utils.validation import check_2d

__all__ = ["smote_oversample"]


def smote_oversample(
    X_minority: np.ndarray,
    n_synthetic: int,
    k_neighbors: int = 5,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Generate ``n_synthetic`` synthetic minority samples.

    Parameters
    ----------
    X_minority:
        Minority-class sample matrix (≥ 2 rows).
    n_synthetic:
        Number of synthetic rows to create (0 returns an empty matrix).
    k_neighbors:
        Neighbourhood size; clipped to ``len(X_minority) − 1``.

    Returns
    -------
    (n_synthetic, n_features) array of interpolated samples.
    """
    X_minority = check_2d(X_minority, "X_minority")
    if n_synthetic < 0:
        raise ValueError("n_synthetic must be non-negative")
    if n_synthetic == 0:
        return np.zeros((0, X_minority.shape[1]))
    if len(X_minority) < 2:
        raise ValueError("SMOTE needs at least two minority samples")
    rng = default_rng(seed)
    k = min(k_neighbors, len(X_minority) - 1)
    tree = cKDTree(X_minority)
    # k+1 because each point is its own nearest neighbour.
    _, neigh = tree.query(X_minority, k=k + 1)
    neigh = neigh[:, 1:]  # drop self

    base = rng.integers(0, len(X_minority), size=n_synthetic)
    pick = rng.integers(0, k, size=n_synthetic)
    partner = neigh[base, pick]
    gap = rng.random((n_synthetic, 1))
    return X_minority[base] + gap * (X_minority[partner] - X_minority[base])
