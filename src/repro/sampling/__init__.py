"""Class-imbalance handling (paper §III).

87 % of jobs queue under ten minutes, so the quick-start classifier trains
on rebalanced data: SMOTE oversampling of the minority class (Chawla et
al. 2002) combined with random undersampling of the majority —
"SMOTE … algorithms were used for undersampling the majority class … and
oversampling the minority class through artificial data creation to create
balanced classes".
"""

from repro.sampling.balance import balance_binary, random_undersample
from repro.sampling.smote import smote_oversample

__all__ = ["smote_oversample", "random_undersample", "balance_binary"]
