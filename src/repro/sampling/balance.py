"""Binary class balancing = undersample majority + SMOTE minority."""

from __future__ import annotations

import numpy as np

from repro.sampling.smote import smote_oversample
from repro.utils.rng import default_rng
from repro.utils.validation import check_2d, check_consistent_length

__all__ = ["random_undersample", "balance_binary"]


def random_undersample(
    idx: np.ndarray,
    n_keep: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``n_keep`` of the given indices without replacement."""
    idx = np.asarray(idx)
    if n_keep < 0:
        raise ValueError("n_keep must be non-negative")
    if n_keep >= len(idx):
        return idx.copy()
    rng = default_rng(seed)
    return rng.choice(idx, size=n_keep, replace=False)


def balance_binary(
    X: np.ndarray,
    y: np.ndarray,
    target_ratio: float = 1.0,
    k_neighbors: int = 5,
    undersample_majority_to: float = 2.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Rebalance a binary dataset toward ``minority ≈ target_ratio × majority``.

    The paper's recipe: first the majority class is randomly undersampled to
    ``undersample_majority_to ×`` the minority count, then SMOTE fills the
    remaining gap with synthetic minority samples.  Returns a shuffled
    ``(X_bal, y_bal)``.

    ``y`` must be 0/1.  With a single class the input is returned unchanged.
    """
    X = check_2d(X, "X")
    y = np.asarray(y).astype(np.int64).ravel()
    check_consistent_length(X, y)
    if not np.all(np.isin(y, (0, 1))):
        raise ValueError("y must be binary 0/1")
    if not 0.0 < target_ratio <= 1.0:
        raise ValueError("target_ratio must be in (0, 1]")
    if undersample_majority_to < 1.0:
        raise ValueError("undersample_majority_to must be >= 1")
    rng = default_rng(seed)
    idx0 = np.flatnonzero(y == 0)
    idx1 = np.flatnonzero(y == 1)
    if len(idx0) == 0 or len(idx1) == 0:
        return X, y.astype(np.float64)
    minority, majority = (idx0, idx1) if len(idx0) < len(idx1) else (idx1, idx0)

    keep_major = random_undersample(
        majority, int(undersample_majority_to * len(minority)), seed=rng
    )
    want_minor = int(target_ratio * len(keep_major))
    n_syn = max(0, want_minor - len(minority))
    parts_X = [X[keep_major], X[minority]]
    parts_y = [y[keep_major], y[minority]]
    if n_syn > 0 and len(minority) >= 2:
        syn = smote_oversample(X[minority], n_syn, k_neighbors=k_neighbors, seed=rng)
        parts_X.append(syn)
        parts_y.append(np.full(n_syn, y[minority[0]]))
    Xb = np.concatenate(parts_X)
    yb = np.concatenate(parts_y).astype(np.float64)
    perm = rng.permutation(len(Xb))
    return Xb[perm], yb[perm]
