"""Evaluation: the paper's metrics, model-comparison harness, and report
formatting for the tables/figures reproduced in ``benchmarks/``."""

from repro.eval.calibration import coverage_curve, interval_coverage
from repro.eval.metrics import (
    absolute_percentage_error,
    binary_accuracy,
    binned_ape,
    mean_absolute_percentage_error,
    median_absolute_percentage_error,
    pearson_r,
    within_percent_error,
)
from repro.eval.report import ascii_scatter, density_series, format_table

__all__ = [
    "absolute_percentage_error",
    "mean_absolute_percentage_error",
    "median_absolute_percentage_error",
    "within_percent_error",
    "pearson_r",
    "binary_accuracy",
    "binned_ape",
    "density_series",
    "format_table",
    "ascii_scatter",
    "interval_coverage",
    "coverage_curve",
]
