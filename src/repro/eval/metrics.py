"""The paper's evaluation metrics.

Primary: mean absolute percentage error — chosen "due to wanting to measure
the relative accuracy of predictions in relation to the scale of the
output".  Secondary: the percentage of predictions within 100 % error
(Figs. 8-9), Pearson's r on predicted-vs-actual (Figs. 4-5), and binary
accuracy for the quick-start classifier.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, check_consistent_length

__all__ = [
    "absolute_percentage_error",
    "mean_absolute_percentage_error",
    "median_absolute_percentage_error",
    "within_percent_error",
    "pearson_r",
    "binary_accuracy",
    "binned_ape",
    "confusion_binary",
]


def _pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = check_1d(y_true, "y_true")
    y_pred = check_1d(y_pred, "y_pred")
    check_consistent_length(y_true, y_pred)
    return y_true, y_pred


def absolute_percentage_error(
    y_true: np.ndarray, y_pred: np.ndarray, floor: float = 1e-9
) -> np.ndarray:
    """Per-sample APE in percent: ``100·|pred − true| / max(true, floor)``.

    ``floor`` guards zero targets; the paper evaluates APE only on jobs
    above the 10-minute cutoff, so the floor never binds there.
    """
    y_true, y_pred = _pair(y_true, y_pred)
    return 100.0 * np.abs(y_pred - y_true) / np.maximum(np.abs(y_true), floor)


def mean_absolute_percentage_error(
    y_true: np.ndarray, y_pred: np.ndarray, floor: float = 1e-9
) -> float:
    """Mean APE in percent (the paper's headline regression metric)."""
    return float(np.mean(absolute_percentage_error(y_true, y_pred, floor)))


def median_absolute_percentage_error(
    y_true: np.ndarray, y_pred: np.ndarray, floor: float = 1e-9
) -> float:
    """Median APE in percent (robust companion to the mean)."""
    return float(np.median(absolute_percentage_error(y_true, y_pred, floor)))


def within_percent_error(
    y_true: np.ndarray, y_pred: np.ndarray, threshold: float = 100.0
) -> float:
    """Fraction of predictions with APE below ``threshold`` percent
    (Figs. 8-9 use 100 %)."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    return float(np.mean(absolute_percentage_error(y_true, y_pred) < threshold))


def pearson_r(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Pearson correlation coefficient (0.0 for degenerate inputs)."""
    y_true, y_pred = _pair(y_true, y_pred)
    st, sp = y_true.std(), y_pred.std()
    if st == 0.0 or sp == 0.0:
        return 0.0
    return float(np.corrcoef(y_true, y_pred)[0, 1])


def binary_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of matching binary labels."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean((y_true > 0.5) == (y_pred > 0.5)))


def binned_ape(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    edges: np.ndarray | None = None,
) -> list[dict[str, float]]:
    """Per-magnitude-bin APE summary.

    §IV argues the model "maintain[s] proportionate predictive capabilities
    across periods … when investigating performance on different bins of
    time"; this computes that analysis.  ``edges`` are queue-time bin
    boundaries in minutes (default: 10 m, 30 m, 1 h, 4 h, 1 d, ∞).

    Returns one dict per non-empty bin with ``lo``, ``hi``, ``n``,
    ``mape`` and ``median_ape``.
    """
    y_true, y_pred = _pair(y_true, y_pred)
    if edges is None:
        edges = np.array([10.0, 30.0, 60.0, 240.0, 1440.0, np.inf])
    edges = np.asarray(edges, dtype=np.float64)
    ape = absolute_percentage_error(y_true, y_pred)
    out: list[dict[str, float]] = []
    lo = 0.0
    for hi in edges:
        mask = (y_true >= lo) & (y_true < hi)
        if np.any(mask):
            out.append(
                {
                    "lo": float(lo),
                    "hi": float(hi),
                    "n": int(mask.sum()),
                    "mape": float(ape[mask].mean()),
                    "median_ape": float(np.median(ape[mask])),
                }
            )
        lo = float(hi)
    return out


def confusion_binary(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, int]:
    """TN/FP/FN/TP counts for binary labels."""
    y_true, y_pred = _pair(y_true, y_pred)
    t = y_true > 0.5
    p = y_pred > 0.5
    return {
        "tn": int(np.sum(~t & ~p)),
        "fp": int(np.sum(~t & p)),
        "fn": int(np.sum(t & ~p)),
        "tp": int(np.sum(t & p)),
    }
