"""Compatibility shim — the model zoo moved to :mod:`repro.core.zoo`.

The comparison harness builds ``repro.core`` regressors, which made this
module the repo's one layering inversion (eval importing core, baselined
since the troutlint PR).  The implementation now lives in
:mod:`repro.core.zoo`; this module forwards attribute access lazily
(PEP 562) so ``from repro.eval.comparison import compare_models`` keeps
working without re-introducing a module-level eval→core import.
"""

from __future__ import annotations

__all__ = ["ModelScore", "ComparisonResult", "default_model_zoo", "compare_models"]


def __getattr__(name: str):
    if name.startswith("__"):
        raise AttributeError(name)
    from repro.core import zoo

    try:
        return getattr(zoo, name)
    except AttributeError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None


def __dir__() -> list[str]:
    from repro.core import zoo

    return sorted(set(__all__) | set(dir(zoo)))
