"""Uncertainty calibration for prediction intervals.

The MC-dropout intervals of
:meth:`repro.core.regressor.QueueTimeRegressor.predict_interval` answer
§V's diagnosability concern only if they are *calibrated*: a nominal 80 %
interval should cover roughly 80 % of actual outcomes.  This module
measures that.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, check_consistent_length

__all__ = ["interval_coverage", "coverage_curve"]


def interval_coverage(
    y_true: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> dict[str, float]:
    """Empirical coverage and sharpness of prediction intervals.

    Returns ``coverage`` (fraction of truths inside [lower, upper]),
    ``below`` / ``above`` (miss directions) and ``mean_width`` (interval
    sharpness, same units as the target).
    """
    y_true = check_1d(y_true, "y_true")
    lower = check_1d(lower, "lower")
    upper = check_1d(upper, "upper")
    check_consistent_length(y_true, lower, upper)
    if np.any(upper < lower):
        raise ValueError("upper bound below lower bound")
    inside = (y_true >= lower) & (y_true <= upper)
    return {
        "coverage": float(np.mean(inside)),
        "below": float(np.mean(y_true < lower)),
        "above": float(np.mean(y_true > upper)),
        "mean_width": float(np.mean(upper - lower)),
    }


def coverage_curve(
    regressor,
    X: np.ndarray,
    minutes: np.ndarray,
    alphas: np.ndarray | None = None,
    n_samples: int = 30,
) -> list[dict[str, float]]:
    """Coverage at several nominal levels for one fitted regressor.

    Each row pairs the nominal coverage ``1 − alpha`` with the empirical
    coverage of the corresponding MC-dropout interval — the reliability
    diagram's data.
    """
    if alphas is None:
        alphas = np.array([0.5, 0.2, 0.1])
    rows = []
    for alpha in alphas:
        iv = regressor.predict_interval(X, n_samples=n_samples, alpha=float(alpha))
        stats = interval_coverage(minutes, iv["lower"], iv["upper"])
        rows.append({"nominal": 1.0 - float(alpha), **stats})
    return rows
