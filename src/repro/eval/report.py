"""Report formatting: text tables and figure data series.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and give the density
plot (Fig. 2) a concrete data representation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import default_rng
from repro.utils.text import format_table, format_timing_report

__all__ = [
    "format_table",
    "format_timing_report",
    "density_series",
    "scatter_series",
    "ascii_scatter",
]


def density_series(
    values: np.ndarray,
    n_bins: int = 60,
    log_scale: bool = True,
    clip_min: float = 0.1,
) -> dict[str, np.ndarray]:
    """Histogram density of queue times (Fig. 2's underlying series).

    With ``log_scale`` the bins are logarithmic in minutes (the queue-time
    distribution spans seconds to days).  Returns bin centres and
    normalised densities.
    """
    values = np.asarray(values, dtype=np.float64)
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2")
    if log_scale:
        v = np.maximum(values, clip_min)
        edges = np.logspace(
            np.log10(clip_min), np.log10(max(v.max(), clip_min * 10)), n_bins + 1
        )
    else:
        edges = np.linspace(values.min(), values.max(), n_bins + 1)
    hist, edges = np.histogram(values, bins=edges, density=True)
    centres = 0.5 * (edges[:-1] + edges[1:])
    return {"bin_centers": centres, "density": hist, "edges": edges}


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 64,
    height: int = 20,
    log_scale: bool = True,
    x_label: str = "actual",
    y_label: str = "predicted",
) -> str:
    """Render a scatter plot as text (the terminal stand-in for Figs. 4-7).

    Density per character cell is shown as ``. : * #``; the identity line
    (perfect prediction) is drawn with ``/`` where no points land.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or len(x) == 0:
        raise ValueError("x and y must be equal-length non-empty 1-D arrays")
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4 characters")
    if log_scale:
        x = np.log10(np.maximum(x, 1e-3))
        y = np.log10(np.maximum(y, 1e-3))
    lo = float(min(x.min(), y.min()))
    hi = float(max(x.max(), y.max()))
    if hi <= lo:
        hi = lo + 1.0
    xi = np.clip(((x - lo) / (hi - lo) * (width - 1)).astype(int), 0, width - 1)
    yi = np.clip(((y - lo) / (hi - lo) * (height - 1)).astype(int), 0, height - 1)
    counts = np.zeros((height, width), dtype=np.int64)
    np.add.at(counts, (yi, xi), 1)
    peak = counts.max()
    thresholds = [1, max(2, peak // 8), max(3, peak // 3), max(4, peak // 1)]
    glyphs = ".:*#"
    rows = []
    for r in range(height - 1, -1, -1):
        line = []
        for c in range(width):
            n = counts[r, c]
            if n == 0:
                # identity diagonal where the grids align
                diag = int(round(r * (width - 1) / (height - 1)))
                line.append("/" if diag == c else " ")
            else:
                g = glyphs[0]
                for glyph, thr in zip(glyphs, thresholds):
                    if n >= thr:
                        g = glyph
                line.append(g)
        rows.append("|" + "".join(line))
    axis = "+" + "-" * width
    scale = "log10 " if log_scale else ""
    footer = f" {scale}{x_label} → (range {lo:.1f}..{hi:.1f}); {y_label} ↑"
    return "\n".join([*rows, axis, footer])


def scatter_series(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    max_points: int = 2000,
    seed: int = 0,
) -> dict[str, np.ndarray]:
    """Subsampled predicted-vs-actual points (Figs. 4/5/7 series)."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if len(y_true) > max_points:
        rng = default_rng(seed)
        sel = rng.choice(len(y_true), size=max_points, replace=False)
        y_true, y_pred = y_true[sel], y_pred[sel]
    return {"actual": y_true, "predicted": y_pred}
