"""Hyperparameter optimisation (the Optuna substitute).

The paper tunes learning rate, epochs, layer count/size, dropout, feature
subset and activation with Optuna.  This package provides the same
define-by-run API surface at the scale this reproduction needs: a
:class:`~repro.hpo.study.Study` minimising an objective over
:class:`~repro.hpo.study.Trial` objects, with random and TPE-style
(Parzen-estimator) samplers and a median pruner.
"""

from repro.hpo.pruners import MedianPruner, TrialPruned
from repro.hpo.samplers import RandomSampler, TPESampler
from repro.hpo.space import Categorical, Float, Int, SearchSpace, tree_method_param
from repro.hpo.study import Study, Trial

__all__ = [
    "Categorical",
    "Float",
    "Int",
    "SearchSpace",
    "RandomSampler",
    "TPESampler",
    "MedianPruner",
    "TrialPruned",
    "Study",
    "Trial",
    "tree_method_param",
]
