"""Define-by-run studies (the Optuna-style driver).

An objective receives a :class:`Trial` and calls ``suggest_float`` /
``suggest_int`` / ``suggest_categorical``; the study minimises the returned
value.  Intermediate values can be reported for pruning.

Example::

    def objective(trial):
        lr = trial.suggest_float("lr", 1e-4, 1e-1, log=True)
        width = trial.suggest_int("width", 16, 256, log=True)
        return train_and_eval(lr, width)

    study = Study(sampler=TPESampler(seed=0))
    study.optimize(objective, n_trials=40)
    print(study.best_params, study.best_value)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.hpo.pruners import MedianPruner, NopPruner, TrialPruned
from repro.hpo.samplers import RandomSampler, Sampler
from repro.hpo.space import Categorical, Float, Int, SearchSpace
from repro.utils.logging import get_logger

__all__ = ["Trial", "FrozenTrial", "Study"]

log = get_logger(__name__)


@dataclass
class FrozenTrial:
    """Completed (or pruned) trial record."""

    number: int
    params: dict[str, Any]
    units: dict[str, float]
    value: float | None
    pruned: bool
    intermediate: dict[int, float] = field(default_factory=dict)


class Trial:
    """Live trial handed to the objective."""

    def __init__(self, study: "Study", number: int) -> None:
        self._study = study
        self.number = number
        self.params: dict[str, Any] = {}
        self.units: dict[str, float] = {}
        self.intermediate: dict[int, float] = {}

    # -- suggest API ---------------------------------------------------- #
    def suggest_float(
        self, name: str, low: float, high: float, log: bool = False
    ) -> float:
        param = self._study.space.register(name, Float(low, high, log=log))
        return self._suggest(name, param)

    def suggest_int(self, name: str, low: int, high: int, log: bool = False) -> int:
        param = self._study.space.register(name, Int(low, high, log=log))
        return self._suggest(name, param)

    def suggest_categorical(self, name: str, choices: list) -> Any:
        param = self._study.space.register(name, Categorical(choices))
        return self._suggest(name, param)

    def _suggest(self, name: str, param) -> Any:
        if name in self.params:
            return self.params[name]
        units, values = self._study._history_for(name)
        u = self._study.sampler.sample_unit(param, units, values)
        value = param.from_unit(u)
        self.units[name] = u
        self.params[name] = value
        return value

    # -- pruning API ----------------------------------------------------- #
    def report(self, step: int, value: float) -> None:
        """Record an intermediate objective value at ``step``."""
        self.intermediate[step] = float(value)

    def should_prune(self, step: int) -> bool:
        """Ask the study's pruner whether to abandon this trial."""
        if step not in self.intermediate:
            raise KeyError(f"report(step={step}, ...) before should_prune({step})")
        history = [
            t.intermediate for t in self._study.trials if not t.pruned and t.intermediate
        ]
        return self._study.pruner.should_prune(
            step, self.intermediate[step], history
        )


class Study:
    """Minimisation study.

    Parameters
    ----------
    sampler:
        Suggestion strategy; defaults to :class:`RandomSampler`.
    pruner:
        Intermediate-value pruner; defaults to :class:`MedianPruner`.
    """

    def __init__(self, sampler: Sampler | None = None, pruner=None) -> None:
        self.sampler = sampler or RandomSampler()
        self.pruner = pruner if pruner is not None else MedianPruner()
        self.space = SearchSpace()
        self.trials: list[FrozenTrial] = []

    # ------------------------------------------------------------------ #
    def _history_for(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        units, values = [], []
        for t in self.trials:
            if not t.pruned and t.value is not None and name in t.units:
                units.append(t.units[name])
                values.append(t.value)
        return np.asarray(units), np.asarray(values)

    def optimize(
        self, objective: Callable[[Trial], float], n_trials: int
    ) -> "Study":
        """Run ``n_trials`` trials; pruned trials are recorded but unscored."""
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        for _ in range(n_trials):
            trial = Trial(self, number=len(self.trials))
            try:
                value = float(objective(trial))
                pruned = False
            except TrialPruned:
                value = None
                pruned = True
            self.trials.append(
                FrozenTrial(
                    number=trial.number,
                    params=dict(trial.params),
                    units=dict(trial.units),
                    value=value,
                    pruned=pruned,
                    intermediate=dict(trial.intermediate),
                )
            )
            log.debug("trial %d: value=%s params=%s", trial.number, value, trial.params)
        return self

    @property
    def completed_trials(self) -> list[FrozenTrial]:
        return [t for t in self.trials if not t.pruned and t.value is not None]

    @property
    def best_trial(self) -> FrozenTrial:
        done = self.completed_trials
        if not done:
            raise RuntimeError("no completed trials")
        return min(done, key=lambda t: t.value)

    @property
    def best_value(self) -> float:
        return self.best_trial.value

    @property
    def best_params(self) -> dict[str, Any]:
        return dict(self.best_trial.params)
