"""Trial samplers.

:class:`RandomSampler` draws uniformly in the unit cube.
:class:`TPESampler` is a compact tree-structured-Parzen-estimator in the
spirit of Optuna's default: completed trials are split into a "good"
quantile and the rest, one-dimensional Parzen (Gaussian-kernel) densities
``l(x)`` / ``g(x)`` are fitted per parameter in unit coordinates, a set of
candidates is drawn from ``l``, and the candidate maximising ``l/g`` wins.
"""

from __future__ import annotations

import numpy as np

from repro.hpo.space import Param
from repro.utils.rng import default_rng

__all__ = ["Sampler", "RandomSampler", "TPESampler"]


class Sampler:
    """Maps (parameter, trial history) → next unit-coordinate value."""

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self.rng = default_rng(seed)

    def sample_unit(
        self, param: Param, history_units: np.ndarray, history_values: np.ndarray
    ) -> float:
        """Return the next point in [0, 1) for this parameter.

        ``history_units`` / ``history_values`` are the unit coordinates and
        objective values of completed trials that include the parameter.
        """
        raise NotImplementedError


class RandomSampler(Sampler):
    """Uniform independent sampling."""

    def sample_unit(self, param, history_units, history_values) -> float:
        return float(self.rng.random())


class TPESampler(Sampler):
    """Parzen-estimator sampler with startup random phase.

    Parameters
    ----------
    n_startup:
        Completed trials required before TPE kicks in (random until then).
    gamma:
        Fraction of trials labelled "good".
    n_candidates:
        Candidates drawn from ``l(x)`` per suggestion.
    bandwidth:
        Gaussian kernel width in unit coordinates.
    """

    def __init__(
        self,
        seed: int | np.random.Generator | None = None,
        n_startup: int = 10,
        gamma: float = 0.25,
        n_candidates: int = 24,
        bandwidth: float = 0.12,
    ) -> None:
        super().__init__(seed)
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        if n_startup < 1 or n_candidates < 1:
            raise ValueError("n_startup and n_candidates must be >= 1")
        self.n_startup = n_startup
        self.gamma = gamma
        self.n_candidates = n_candidates
        self.bandwidth = bandwidth

    def sample_unit(self, param, history_units, history_values) -> float:
        n = len(history_values)
        if n < self.n_startup:
            return float(self.rng.random())
        order = np.argsort(history_values)
        n_good = max(1, int(np.ceil(self.gamma * n)))
        good = history_units[order[:n_good]]
        bad = history_units[order[n_good:]]
        if len(bad) == 0:
            bad = good
        # Candidates from l(x): pick a good centre, jitter, reflect into [0,1].
        centres = self.rng.choice(good, size=self.n_candidates)
        cands = centres + self.rng.normal(0.0, self.bandwidth, self.n_candidates)
        cands = np.abs(cands)  # reflect at 0
        cands = 1.0 - np.abs(1.0 - cands)  # reflect at 1
        cands = np.clip(cands, 0.0, 1.0 - 1e-12)
        score = self._log_parzen(cands, good) - self._log_parzen(cands, bad)
        return float(cands[int(np.argmax(score))])

    def _log_parzen(self, x: np.ndarray, centres: np.ndarray) -> np.ndarray:
        """log of a uniform-weight Gaussian mixture density at ``x``."""
        d = (x[:, None] - centres[None, :]) / self.bandwidth
        log_k = -0.5 * d * d
        m = log_k.max(axis=1, keepdims=True)
        return (m.ravel() + np.log(np.exp(log_k - m).sum(axis=1))) - np.log(
            len(centres) * self.bandwidth * np.sqrt(2 * np.pi)
        )
