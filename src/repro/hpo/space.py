"""Search-space parameter definitions.

Each parameter maps to and from a unit-interval internal coordinate so the
samplers can treat every dimension uniformly (log-scaled floats and ints
included).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.ml.binning import TREE_METHODS

__all__ = ["Float", "Int", "Categorical", "SearchSpace", "tree_method_param"]


@dataclass(frozen=True)
class Float:
    """Continuous parameter on [low, high], optionally log-scaled."""

    low: float
    high: float
    log: bool = False

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"need low < high, got [{self.low}, {self.high}]")
        if self.log and self.low <= 0:
            raise ValueError("log scale requires low > 0")

    def from_unit(self, u: float) -> float:
        if self.log:
            v = float(
                np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low)))
            )
        else:
            v = self.low + u * (self.high - self.low)
        # exp/log round-tripping can land a hair outside the bounds.
        return float(min(max(v, self.low), self.high))

    def to_unit(self, value: float) -> float:
        if self.log:
            return float(
                (np.log(value) - np.log(self.low))
                / (np.log(self.high) - np.log(self.low))
            )
        return (value - self.low) / (self.high - self.low)


@dataclass(frozen=True)
class Int:
    """Integer parameter on [low, high] inclusive, optionally log-scaled."""

    low: int
    high: int
    log: bool = False

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise ValueError(f"need low <= high, got [{self.low}, {self.high}]")
        if self.log and self.low <= 0:
            raise ValueError("log scale requires low > 0")

    def from_unit(self, u: float) -> int:
        f = Float(self.low - 0.4999, self.high + 0.4999, log=False)
        if self.log:
            f = Float(max(self.low - 0.4999, 0.5), self.high + 0.4999, log=True)
        return int(np.clip(round(f.from_unit(u)), self.low, self.high))

    def to_unit(self, value: int) -> float:
        if self.high == self.low:
            return 0.5
        if self.log:
            return float(
                (np.log(value) - np.log(self.low))
                / (np.log(self.high) - np.log(self.low))
            )
        return (value - self.low) / (self.high - self.low)


@dataclass(frozen=True)
class Categorical:
    """Unordered choice among explicit values."""

    choices: tuple

    def __init__(self, choices: Sequence[Any]) -> None:
        if len(choices) == 0:
            raise ValueError("Categorical needs at least one choice")
        object.__setattr__(self, "choices", tuple(choices))

    def from_unit(self, u: float) -> Any:
        k = min(int(u * len(self.choices)), len(self.choices) - 1)
        return self.choices[k]

    def to_unit(self, value: Any) -> float:
        k = self.choices.index(value)
        return (k + 0.5) / len(self.choices)


def tree_method_param() -> "Categorical":
    """Categorical over the ensemble split-search methods.

    Sweeping it in a study quantifies the (small) quality delta between
    histogram and exact split finding alongside the usual knobs.
    """
    return Categorical(TREE_METHODS)


Param = Float | Int | Categorical


@dataclass
class SearchSpace:
    """Named parameter collection, grown define-by-run as trials ask."""

    params: dict[str, Param] = field(default_factory=dict)

    def register(self, name: str, param: Param) -> Param:
        """Register (or re-check) a parameter definition."""
        existing = self.params.get(name)
        if existing is None:
            self.params[name] = param
            return param
        if existing != param:
            raise ValueError(
                f"parameter {name!r} re-declared with a different definition"
            )
        return existing
