"""Trial pruning (early termination of unpromising trials)."""

from __future__ import annotations

import numpy as np

__all__ = ["TrialPruned", "MedianPruner", "NopPruner"]


class TrialPruned(Exception):
    """Raised inside an objective to abandon the current trial."""


class NopPruner:
    """Never prunes."""

    def should_prune(self, step: int, value: float, history: list[dict[int, float]]) -> bool:
        return False


class MedianPruner:
    """Prune when a trial's intermediate value is worse than the median of
    completed trials at the same step (Optuna's default pruner).

    Parameters
    ----------
    n_startup_trials:
        Trials that are never pruned (to build the baseline).
    n_warmup_steps:
        Steps within a trial before pruning may trigger.
    """

    def __init__(self, n_startup_trials: int = 5, n_warmup_steps: int = 0) -> None:
        if n_startup_trials < 0 or n_warmup_steps < 0:
            raise ValueError("pruner thresholds must be non-negative")
        self.n_startup_trials = n_startup_trials
        self.n_warmup_steps = n_warmup_steps

    def should_prune(
        self, step: int, value: float, history: list[dict[int, float]]
    ) -> bool:
        """``history`` holds each completed trial's step → value reports."""
        if len(history) < self.n_startup_trials or step < self.n_warmup_steps:
            return False
        at_step = [h[step] for h in history if step in h]
        if not at_step:
            return False
        return value > float(np.median(at_step))
