"""TROUT — the paper's primary contribution.

A hierarchical queue-time predictor: a binary feed-forward classifier
gates jobs into "quick start" (< cutoff, default ten minutes) vs "long
wait"; long-wait jobs get a minute-valued prediction from a feed-forward
regressor (33 features, three hidden ELU layers, smooth-L1 loss, Adam).
A random-forest runtime model supplies predicted-runtime features.

Entry points: :class:`~repro.core.hierarchical.TroutModel` for inference
(Algorithm 1), :func:`~repro.core.training.train_trout` /
:func:`~repro.core.training.run_regression_cv` for training and the
paper's time-series-CV evaluation protocol.
"""

from repro.core.classifier import QuickStartClassifier
from repro.core.config import ClassifierConfig, RegressorConfig, TroutConfig
from repro.core.hierarchical import TroutModel
from repro.core.regressor import QueueTimeRegressor
from repro.core.runtime_model import RuntimePredictor
from repro.core.training import (
    CVResult,
    FoldResult,
    run_regression_cv,
    train_trout,
)
from repro.core.tuning import TuningConfig, tune_regressor
from repro.core.zoo import (
    ComparisonResult,
    ModelScore,
    compare_models,
    default_model_zoo,
)

__all__ = [
    "ComparisonResult",
    "ModelScore",
    "compare_models",
    "default_model_zoo",
    "TroutConfig",
    "ClassifierConfig",
    "RegressorConfig",
    "QuickStartClassifier",
    "QueueTimeRegressor",
    "RuntimePredictor",
    "TroutModel",
    "train_trout",
    "run_regression_cv",
    "CVResult",
    "FoldResult",
    "TuningConfig",
    "tune_regressor",
]
