"""Model-zoo comparison (§IV, Figs. 6-9).

"The regression-based neural network was compared against … an XGBoost
regression model, a random forest regression model, and a k nearest
neighbors regression model.  All models were trained on the same data and
split with the same features."  This harness does exactly that over the
time-series folds, producing per-model average-percent-error and
within-100 %-error series.

All baselines regress ``log1p(minutes)`` like the NN (the shared
natural-log treatment), so the comparison isolates the model family.

Moved here from ``repro.eval.comparison`` (which re-exports lazily): the
zoo builds :class:`repro.core.regressor.QueueTimeRegressor` instances, so
it belongs in ``core`` — leaving it in ``eval`` inverted the layering DAG
and dragged training machinery into anything importing eval's metrics
(the serving layer most of all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.config import TroutConfig
from repro.core.regressor import QueueTimeRegressor
from repro.data.splits import TimeSeriesSplit
from repro.eval.metrics import (
    mean_absolute_percentage_error,
    pearson_r,
    within_percent_error,
)
from repro.features.pipeline import FeatureMatrix
from repro.ml import (
    GradientBoostingRegressor,
    KNeighborsRegressor,
    RandomForestRegressor,
)
from repro.utils.logging import get_logger

__all__ = ["ModelScore", "ComparisonResult", "default_model_zoo", "compare_models"]

log = get_logger(__name__)


@dataclass
class ModelScore:
    """One model's metrics on one fold."""

    model: str
    fold: int
    mape: float
    within_100: float
    pearson: float
    n_test: int


@dataclass
class ComparisonResult:
    """All (model, fold) scores with convenience pivots."""

    scores: list[ModelScore]

    def models(self) -> list[str]:
        seen: list[str] = []
        for s in self.scores:
            if s.model not in seen:
                seen.append(s.model)
        return seen

    def series(self, metric: str, fold: int) -> dict[str, float]:
        """metric value per model on one fold (a Fig. 6-9 bar series)."""
        return {
            s.model: getattr(s, metric) for s in self.scores if s.fold == fold
        }

    def per_fold(self, metric: str) -> dict[str, list[float]]:
        """metric per model across folds, fold-ordered."""
        out: dict[str, list[float]] = {m: [] for m in self.models()}
        for s in sorted(self.scores, key=lambda s: s.fold):
            out[s.model].append(getattr(s, metric))
        return out

    def winner(self, metric: str, fold: int, smaller_is_better: bool = True) -> str:
        """Best model on one fold for one metric."""
        series = self.series(metric, fold)
        pick = min if smaller_is_better else max
        return pick(series, key=series.get)


class _LogSpaceModel:
    """Wrap a raw-space regressor to fit/predict in log1p minutes."""

    def __init__(self, inner) -> None:
        self.inner = inner

    def fit(self, X: np.ndarray, minutes: np.ndarray) -> "_LogSpaceModel":
        self.inner.fit(X, np.log1p(minutes))
        return self

    def predict_minutes(self, X: np.ndarray) -> np.ndarray:
        return np.maximum(np.expm1(np.minimum(self.inner.predict(X), 30.0)), 0.0)


class _TunedNN:
    """The paper's NN: TPE-tuned per fold (see :mod:`repro.core.tuning`)."""

    def __init__(self, tuning) -> None:
        self.tuning = tuning
        self._model = None

    def fit(self, X: np.ndarray, minutes: np.ndarray) -> "_TunedNN":
        from repro.core.tuning import tune_regressor

        self._model, _ = tune_regressor(X, minutes, self.tuning)
        return self

    def predict_minutes(self, X: np.ndarray) -> np.ndarray:
        return self._model.predict_minutes(X)


def default_model_zoo(
    n_features: int,
    config: TroutConfig,
    seed: int = 0,
    tuning=None,
) -> dict[str, Callable[[], object]]:
    """Factories for the four compared models (fresh instance per fold).

    With ``tuning`` (a :class:`repro.core.tuning.TuningConfig`) the NN entry
    is HPO-tuned per fold, as the paper did with Optuna; otherwise it uses
    the fixed default architecture.
    """

    def _nn(k: int):
        if tuning is not None:
            import dataclasses

            return _TunedNN(dataclasses.replace(tuning, seed=tuning.seed + k))
        return QueueTimeRegressor(n_features, config.regressor, seed=seed + k)

    return {
        "neural_net": _nn,
        "xgboost": lambda k: _LogSpaceModel(
            GradientBoostingRegressor(
                n_estimators=120,
                learning_rate=0.08,
                max_depth=6,
                subsample=0.8,
                colsample=0.8,
                seed=seed + k,
            )
        ),
        "random_forest": lambda k: _LogSpaceModel(
            RandomForestRegressor(n_estimators=40, max_depth=14, seed=seed + k)
        ),
        "knn": lambda k: _LogSpaceModel(
            KNeighborsRegressor(n_neighbors=10, weights="distance")
        ),
    }


def compare_models(
    fm: FeatureMatrix,
    config: TroutConfig | None = None,
    zoo: dict[str, Callable[[int], object]] | None = None,
    folds: list[int] | None = None,
    tuning=None,
) -> ComparisonResult:
    """Train every zoo model on every requested fold's long-wait jobs.

    ``folds`` selects 1-based fold numbers (default: all).  Each model gets
    identical train/test rows and the identical 33-feature matrix.  Pass a
    ``tuning`` config to give the NN the paper's per-fold HPO treatment.
    """
    config = config or TroutConfig()
    zoo = zoo or default_model_zoo(
        fm.X.shape[1], config, seed=config.seed, tuning=tuning
    )
    splitter = TimeSeriesSplit(config.n_splits, config.test_fraction)
    q = fm.queue_time_min
    scores: list[ModelScore] = []
    for k, (train_idx, test_idx) in enumerate(splitter.split(len(fm)), start=1):
        if folds is not None and k not in folds:
            continue
        tr = train_idx[q[train_idx] > config.cutoff_min]
        te = test_idx[q[test_idx] > config.cutoff_min]
        if len(tr) < 20 or len(te) < 5:
            log.warning("fold %d skipped: too few long-wait jobs", k)
            continue
        for name, factory in zoo.items():
            model = factory(k)
            model.fit(fm.X[tr], q[tr])
            pred = model.predict_minutes(fm.X[te])
            scores.append(
                ModelScore(
                    model=name,
                    fold=k,
                    mape=mean_absolute_percentage_error(q[te], pred),
                    within_100=within_percent_error(q[te], pred),
                    pearson=pearson_r(q[te], pred),
                    n_test=len(te),
                )
            )
            log.info(
                "fold %d %s: mape=%.1f%% within100=%.2f",
                k,
                name,
                scores[-1].mape,
                scores[-1].within_100,
            )
    return ComparisonResult(scores)
