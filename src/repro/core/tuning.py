"""Hyperparameter tuning of the queue-time regressor (§III).

"The Optuna hyperparameter framework was used to determine the best
combination of hyperparameters within the model.  The hyperparameters
investigated include the learning rate, the number of epochs to train for,
the number of hidden layers for the model, the size of each layer, the
size of the dropout layers to use …" — this module is that step, built on
:mod:`repro.hpo`'s TPE sampler.

Protocol: the most recent ``val_fraction`` of the (time-ordered) training
window is held out; TPE minimises validation MAPE over layer width/depth,
learning rate and dropout; the best configuration is then refit with a few
seeds and the seed with the best validation MAPE wins.  The test window is
never touched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import RegressorConfig
from repro.core.regressor import QueueTimeRegressor
from repro.eval.metrics import mean_absolute_percentage_error
from repro.hpo import Study, TPESampler, Trial
from repro.utils.logging import get_logger

__all__ = ["TuningConfig", "tune_regressor"]

log = get_logger(__name__)


@dataclass
class TuningConfig:
    """Budget and search-space bounds for regressor tuning."""

    n_trials: int = 20
    n_seeds: int = 3  # refits of the winning config, selected on validation
    val_fraction: float = 0.15
    epochs: int = 120
    patience: int = 12
    width_low: int = 64
    width_high: int = 256
    depth_low: int = 2
    depth_high: int = 4
    lr_low: float = 3e-4
    lr_high: float = 5e-3
    dropout_high: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_trials < 1 or self.n_seeds < 1:
            raise ValueError("n_trials and n_seeds must be >= 1")
        if not 0.0 < self.val_fraction < 0.5:
            raise ValueError("val_fraction must be in (0, 0.5)")


def _config_from_params(params: dict, tuning: TuningConfig) -> RegressorConfig:
    """Materialise a RegressorConfig from suggested parameters.

    The architecture is a halving pyramid from the suggested top width —
    the family the paper's three-hidden-layer model belongs to.
    """
    hidden = tuple(
        max(8, params["h1"] // (2**i)) for i in range(params["depth"])
    )
    return RegressorConfig(
        hidden=hidden,
        lr=params["lr"],
        dropout=params["dropout"],
        epochs=tuning.epochs,
        patience=tuning.patience,
    )


def tune_regressor(
    X: np.ndarray,
    minutes: np.ndarray,
    tuning: TuningConfig | None = None,
) -> tuple[QueueTimeRegressor, Study]:
    """TPE-tune, refit and return the best regressor for (X, minutes).

    Rows must be time-ordered; the validation tail is split off before any
    fitting.  Returns the selected fitted model and the completed study.
    """
    tuning = tuning or TuningConfig()
    X = np.ascontiguousarray(X, dtype=np.float64)
    minutes = np.ascontiguousarray(minutes, dtype=np.float64)
    if len(X) != len(minutes):
        raise ValueError("X and minutes must align")
    n_val = max(10, int(tuning.val_fraction * len(X)))
    if n_val >= len(X):
        raise ValueError("not enough rows to hold out a validation tail")
    Xtr, mtr = X[:-n_val], minutes[:-n_val]
    Xval, mval = X[-n_val:], minutes[-n_val:]

    def objective(trial: Trial) -> float:
        params = {
            "h1": trial.suggest_int("h1", tuning.width_low, tuning.width_high, log=True),
            "depth": trial.suggest_int("depth", tuning.depth_low, tuning.depth_high),
            "lr": trial.suggest_float("lr", tuning.lr_low, tuning.lr_high, log=True),
            "dropout": trial.suggest_float("dropout", 0.0, tuning.dropout_high),
        }
        reg = QueueTimeRegressor(
            X.shape[1], _config_from_params(params, tuning), seed=trial.number
        )
        reg.fit(Xtr, mtr)
        return mean_absolute_percentage_error(mval, reg.predict_minutes(Xval))

    study = Study(sampler=TPESampler(seed=tuning.seed))
    study.optimize(objective, n_trials=tuning.n_trials)
    best_cfg = _config_from_params(study.best_params, tuning)
    log.info("tuned regressor: %s (val MAPE %.1f%%)", study.best_params, study.best_value)

    # Seed selection: refit the winner a few times, keep the best on val.
    best_val = np.inf
    best_reg: QueueTimeRegressor | None = None
    for s in range(tuning.n_seeds):
        reg = QueueTimeRegressor(X.shape[1], best_cfg, seed=10_000 + tuning.seed + s)
        reg.fit(Xtr, mtr)
        v = mean_absolute_percentage_error(mval, reg.predict_minutes(Xval))
        if v < best_val:
            best_val, best_reg = v, reg
    assert best_reg is not None
    return best_reg, study
