"""The hierarchical TROUT model (Fig. 1 / Algorithm 1).

Inference exactly follows Algorithm 1: the binary classifier decides
whether the job will wait more than the cutoff; only then does the
regressor produce a minute-valued estimate, otherwise the answer is
"less than ``cutoff`` minutes".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.classifier import QuickStartClassifier
from repro.core.config import TroutConfig
from repro.core.regressor import QueueTimeRegressor
from repro.nn.serialize import load_network, save_network
from repro.utils.validation import check_2d

__all__ = ["TroutModel", "TroutPrediction"]


@dataclass
class TroutPrediction:
    """One job's hierarchical prediction."""

    long_wait: bool
    minutes: float | None  # None for quick-start jobs
    p_long: float

    def message(self, cutoff_min: float) -> str:
        """Algorithm 1's user-facing string."""
        if self.long_wait:
            return f"Predicted to start in {self.minutes:.0f} minutes"
        return f"Predicted to take less than {cutoff_min:.0f} minutes"


class TroutModel:
    """Classifier + regressor behind one inference API.

    Build with already-fitted components (see
    :func:`repro.core.training.train_trout`) or :meth:`load` a saved model.
    """

    def __init__(
        self,
        classifier: QuickStartClassifier,
        regressor: QueueTimeRegressor,
        cutoff_min: float,
        feature_names: tuple[str, ...],
    ) -> None:
        if cutoff_min <= 0:
            raise ValueError("cutoff_min must be positive")
        self.classifier = classifier
        self.regressor = regressor
        self.cutoff_min = cutoff_min
        self.feature_names = tuple(feature_names)

    # ------------------------------------------------------------------ #
    def predict(self, X: np.ndarray) -> list[TroutPrediction]:
        """Hierarchical predictions for a batch of feature rows."""
        X = check_2d(X, "X")
        p_long = self.classifier.predict_proba(X)
        is_long = p_long >= self.classifier.config.threshold
        minutes = np.full(len(X), np.nan)
        if np.any(is_long):
            minutes[is_long] = self.regressor.predict_minutes(X[is_long])
        return [
            TroutPrediction(
                long_wait=bool(is_long[i]),
                minutes=float(minutes[i]) if is_long[i] else None,
                p_long=float(p_long[i]),
            )
            for i in range(len(X))
        ]

    def predict_minutes(self, X: np.ndarray) -> np.ndarray:
        """Scalarised predictions for metric computation.

        Quick-start jobs get ``cutoff/2`` (the midpoint of the "< cutoff"
        statement); long-wait jobs get the regressor's estimate floored at
        the cutoff (the hierarchy asserts they exceed it).
        """
        X = check_2d(X, "X")
        p_long = self.classifier.predict_proba(X)
        is_long = p_long >= self.classifier.config.threshold
        out = np.full(len(X), self.cutoff_min / 2.0)
        if np.any(is_long):
            out[is_long] = np.maximum(
                self.regressor.predict_minutes(X[is_long]), self.cutoff_min
            )
        return out

    def predict_messages(self, X: np.ndarray) -> list[str]:
        """Algorithm 1 output strings."""
        return [p.message(self.cutoff_min) for p in self.predict(X)]

    # ------------------------------------------------------------------ #
    def save(self, directory: str | Path) -> None:
        """Persist both networks + metadata into ``directory``."""
        d = Path(directory)
        d.mkdir(parents=True, exist_ok=True)
        save_network(self.classifier.net_, d / "classifier.npz")
        save_network(self.regressor.net_, d / "regressor.npz")
        np.savez(
            d / "scalers.npz",
            clf_mean=self.classifier._scaler.mean_,
            clf_scale=self.classifier._scaler.scale_,
            reg_mean=self.regressor._scaler.mean_,
            reg_scale=self.regressor._scaler.scale_,
        )
        meta = {
            "cutoff_min": self.cutoff_min,
            "feature_names": list(self.feature_names),
            "threshold": self.classifier.config.threshold,
            "log_target": self.regressor.config.log_target,
            "n_features": self.classifier.n_features,
        }
        (d / "meta.json").write_text(json.dumps(meta, indent=2))

    @classmethod
    def load(cls, directory: str | Path) -> "TroutModel":
        """Load a :meth:`save`'d model directory."""
        d = Path(directory)
        meta = json.loads((d / "meta.json").read_text())
        from repro.core.config import ClassifierConfig, RegressorConfig

        clf = QuickStartClassifier(
            meta["n_features"],
            ClassifierConfig(threshold=meta["threshold"]),
        )
        clf.net_ = load_network(d / "classifier.npz")
        reg = QueueTimeRegressor(
            meta["n_features"], RegressorConfig(log_target=meta["log_target"])
        )
        reg.net_ = load_network(d / "regressor.npz")
        with np.load(d / "scalers.npz") as sc:
            clf._scaler.mean_ = sc["clf_mean"]
            clf._scaler.scale_ = sc["clf_scale"]
            reg._scaler.mean_ = sc["reg_mean"]
            reg._scaler.scale_ = sc["reg_scale"]
        return cls(
            classifier=clf,
            regressor=reg,
            cutoff_min=float(meta["cutoff_min"]),
            feature_names=tuple(meta["feature_names"]),
        )
