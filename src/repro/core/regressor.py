"""The queue-time regressor (§III).

"The regression model's architecture contains 33 input features and three
hidden layers" with ELU activations, smooth-L1 loss and Adam.  It trains
only on long-wait jobs (queue time above the cutoff) and regresses
``log1p(minutes)`` — the natural-log treatment the paper applies against
skew — inverting back to minutes at prediction time.  Batch normalisation
is available behind a flag purely for the ablation that reproduces the
paper's decision to reject it.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import RegressorConfig
from repro.features.transforms import StandardScaler
from repro.nn import (
    Activation,
    Adam,
    BatchNorm1d,
    Dense,
    Dropout,
    EarlyStopping,
    MetricsCallback,
    Sequential,
    SmoothL1Loss,
)
from repro.utils.rng import default_rng
from repro.utils.validation import check_1d, check_2d, check_fitted

__all__ = ["QueueTimeRegressor"]


class QueueTimeRegressor:
    """Feed-forward regression of queue minutes over the Table II features."""

    def __init__(
        self,
        n_features: int,
        config: RegressorConfig | None = None,
        seed: int | None = 0,
    ) -> None:
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        self.n_features = n_features
        self.config = config or RegressorConfig()
        self.seed = seed
        self.net_: Sequential | None = None
        # Input standardisation fitted on the training window.  The paper's
        # features are log-transformed but span ~[0, 10]; zero-mean/unit-
        # variance inputs keep the ELU stack in its responsive range.
        self._scaler = StandardScaler()

    def _build(self, rng: np.random.Generator) -> Sequential:
        cfg = self.config
        layers = []
        width_in = self.n_features
        for width in cfg.hidden:
            layers.append(Dense(width_in, width, seed=rng))
            if cfg.batch_norm:
                layers.append(BatchNorm1d(width))
            layers.append(Activation(cfg.activation))
            if cfg.dropout > 0:
                layers.append(Dropout(cfg.dropout, seed=rng))
            width_in = width
        layers.append(Dense(width_in, 1, init="glorot_uniform", seed=rng))
        net = Sequential(layers, dtype=cfg.nn_dtype)
        net.compile(SmoothL1Loss(beta=cfg.smooth_l1_beta), Adam(lr=cfg.lr))
        return net

    def _encode_target(self, minutes: np.ndarray) -> np.ndarray:
        return np.log1p(minutes) if self.config.log_target else minutes

    def _decode_target(self, y: np.ndarray) -> np.ndarray:
        if self.config.log_target:
            return np.expm1(np.minimum(y, 30.0))  # cap avoids inf on blowups
        return y

    def fit(self, X: np.ndarray, minutes: np.ndarray) -> "QueueTimeRegressor":
        """Train on time-ordered long-wait rows; the most recent 10 % of
        the window serves as the early-stopping validation split."""
        X = check_2d(X, "X")
        minutes = check_1d(minutes, "minutes")
        if X.shape[1] != self.n_features:
            raise ValueError(f"expected {self.n_features} features, got {X.shape[1]}")
        if np.any(minutes < 0):
            raise ValueError("queue minutes must be non-negative")
        rng = default_rng(self.seed)
        cfg = self.config
        X = self._scaler.fit(X).transform(X)
        y = self._encode_target(minutes)
        n_val = max(1, int(0.1 * len(X)))
        Xtr, ytr = X[:-n_val], y[:-n_val]
        Xval, yval = X[-n_val:], y[-n_val:]
        if len(Xtr) == 0:
            Xtr, ytr = X, y
        self.net_ = self._build(rng)
        stopper = EarlyStopping(monitor="val_loss", patience=cfg.patience)
        self.net_.fit(
            Xtr,
            ytr,
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            validation_data=(Xval, yval),
            callbacks=[stopper, MetricsCallback(model="regressor")],
            seed=rng,
        )
        return self

    def predict_minutes(self, X: np.ndarray) -> np.ndarray:
        """Predicted queue time in minutes (non-negative)."""
        check_fitted(self, "net_")
        X = self._scaler.transform(check_2d(X, "X"))
        return np.maximum(self._decode_target(self.net_.predict(X)), 0.0)

    def predict_interval(
        self,
        X: np.ndarray,
        n_samples: int = 30,
        alpha: float = 0.2,
    ) -> dict[str, np.ndarray]:
        """Monte-Carlo-dropout prediction intervals.

        §V notes the difficulty of diagnosing the model's "widely
        inaccurate guesses"; MC dropout (dropout left active at inference,
        Gal & Ghahramani 2016) gives each prediction an epistemic spread.
        Returns ``median``, ``lower`` and ``upper`` (the ``alpha/2`` and
        ``1 − alpha/2`` quantiles over ``n_samples`` stochastic passes),
        all in minutes.  Requires ``dropout > 0`` in the config; with
        deterministic layers only, all quantiles coincide.
        """
        check_fitted(self, "net_")
        if n_samples < 2:
            raise ValueError("n_samples must be >= 2")
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        Xs = self._scaler.transform(check_2d(X, "X"))
        draws = np.empty((n_samples, len(Xs)))
        for s in range(n_samples):
            out = self.net_.forward(Xs, training=True).ravel()
            draws[s] = np.maximum(self._decode_target(out), 0.0)
        lo, med, hi = np.quantile(
            draws, [alpha / 2.0, 0.5, 1.0 - alpha / 2.0], axis=0
        )
        return {"median": med, "lower": lo, "upper": hi}
