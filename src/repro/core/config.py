"""TROUT configuration.

Defaults follow §III: ten-minute cutoff, a two-hidden-layer classifier, a
three-hidden-layer ELU regressor with smooth-L1 loss and Adam, SMOTE-based
class balancing, time-series CV with five folds and test size one-sixth.
All knobs are dataclass fields so the HPO example and the ablation benches
can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ClassifierConfig", "RegressorConfig", "RuntimeModelConfig", "TroutConfig"]


def _check_nn_dtype(value: str | None) -> None:
    # Kept string-based so this module stays import-light; the nn layer
    # re-validates through resolve_nn_dtype at build time.
    if value is not None and value not in ("float32", "float64"):
        raise ValueError(
            f"nn_dtype must be 'float32', 'float64' or None, got {value!r}"
        )


@dataclass
class ClassifierConfig:
    """Quick-start binary classifier (2 hidden layers in the paper)."""

    hidden: tuple[int, ...] = (64, 32)
    activation: str = "elu"
    dropout: float = 0.2
    lr: float = 1e-3
    epochs: int = 40
    batch_size: int = 256
    patience: int = 6
    smote_k: int = 5
    undersample_majority_to: float = 2.0
    threshold: float = 0.5  # decision threshold on P(long wait)
    #: "float32" or "float64"; None defers to $REPRO_NN_DTYPE (default float32).
    nn_dtype: str | None = None

    def __post_init__(self) -> None:
        if not self.hidden:
            raise ValueError("classifier needs at least one hidden layer")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        _check_nn_dtype(self.nn_dtype)


@dataclass
class RegressorConfig:
    """Queue-time regressor (3 hidden ELU layers, smooth L1, in the paper)."""

    hidden: tuple[int, ...] = (128, 64, 32)
    activation: str = "elu"
    dropout: float = 0.1
    lr: float = 1e-3
    epochs: int = 80
    batch_size: int = 256
    patience: int = 8
    smooth_l1_beta: float = 1.0
    batch_norm: bool = False  # tested and rejected in the paper
    log_target: bool = True  # train on log1p(minutes)
    #: "float32" or "float64"; None defers to $REPRO_NN_DTYPE (default float32).
    nn_dtype: str | None = None

    def __post_init__(self) -> None:
        if not self.hidden:
            raise ValueError("regressor needs at least one hidden layer")
        _check_nn_dtype(self.nn_dtype)


@dataclass
class RuntimeModelConfig:
    """Random-forest runtime predictor feeding the Pred-Runtime features."""

    n_estimators: int = 30
    max_depth: int = 12
    min_samples_leaf: int = 4
    n_jobs: int = 1
    #: "hist" or "exact"; None defers to $REPRO_TREE_METHOD (default hist).
    tree_method: str | None = None


@dataclass
class TroutConfig:
    """End-to-end pipeline configuration."""

    cutoff_min: float = 10.0
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    regressor: RegressorConfig = field(default_factory=RegressorConfig)
    runtime_model: RuntimeModelConfig = field(default_factory=RuntimeModelConfig)
    n_splits: int = 5
    test_fraction: float = 1.0 / 6.0
    holdout_fraction: float = 0.2  # most recent 20 % reserved (§III)
    val_fraction: float = 0.1  # tail of each training window for early stop
    seed: int = 0
    #: Network-wide dtype policy; propagated to both model configs unless
    #: they already set their own.  None defers to $REPRO_NN_DTYPE.
    nn_dtype: str | None = None

    def __post_init__(self) -> None:
        if self.cutoff_min <= 0:
            raise ValueError("cutoff_min must be positive")
        if not 0.0 < self.val_fraction < 0.5:
            raise ValueError("val_fraction must be in (0, 0.5)")
        _check_nn_dtype(self.nn_dtype)
        if self.nn_dtype is not None:
            if self.classifier.nn_dtype is None:
                self.classifier.nn_dtype = self.nn_dtype
            if self.regressor.nn_dtype is None:
                self.regressor.nn_dtype = self.nn_dtype
