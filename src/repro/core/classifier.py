"""The quick-start binary classifier (§III).

"A fully connected binary classification model with two hidden layers …
predicts whether jobs will start in ten minutes or less."  Training data is
rebalanced with SMOTE + majority undersampling; early stopping validates on
the most recent tail of the training window (never shuffled across time).
Positive class (label 1) is a **long wait** — queue time over the cutoff —
so the downstream regressor fires when the classifier says 1.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ClassifierConfig
from repro.features.transforms import StandardScaler
from repro.nn import (
    Activation,
    Adam,
    Dense,
    Dropout,
    EarlyStopping,
    MetricsCallback,
    Sequential,
)
from repro.sampling import balance_binary
from repro.utils.rng import default_rng
from repro.utils.validation import check_2d, check_fitted

__all__ = ["QuickStartClassifier"]


class QuickStartClassifier:
    """Binary NN over the Table II features.

    Parameters
    ----------
    n_features:
        Input width (33 for the canonical layout).
    config:
        Architecture/training knobs.
    seed:
        Controls init, balancing, and minibatch order.
    """

    def __init__(
        self,
        n_features: int,
        config: ClassifierConfig | None = None,
        seed: int | None = 0,
    ) -> None:
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        self.n_features = n_features
        self.config = config or ClassifierConfig()
        self.seed = seed
        self.net_: Sequential | None = None
        # Standardise inputs on the training window (see QueueTimeRegressor).
        self._scaler = StandardScaler()

    def _build(self, rng: np.random.Generator) -> Sequential:
        cfg = self.config
        layers = []
        width_in = self.n_features
        for width in cfg.hidden:
            layers.append(Dense(width_in, width, seed=rng))
            layers.append(Activation(cfg.activation))
            if cfg.dropout > 0:
                layers.append(Dropout(cfg.dropout, seed=rng))
            width_in = width
        layers.append(Dense(width_in, 1, init="glorot_uniform", seed=rng))
        net = Sequential(layers, dtype=cfg.nn_dtype)
        net.compile("bce_logits", Adam(lr=cfg.lr))
        return net

    def fit(self, X: np.ndarray, y_long: np.ndarray) -> "QuickStartClassifier":
        """Train on features and binary long-wait labels (time-ordered rows).

        The most recent ``10 %`` of rows become the early-stopping
        validation set *before* balancing (synthetic SMOTE rows never leak
        into validation).
        """
        X = check_2d(X, "X")
        y = np.asarray(y_long, dtype=np.float64).ravel()
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {X.shape[1]}"
            )
        if len(np.unique(y[: len(X)])) < 2:
            raise ValueError("need both classes present to train the classifier")
        rng = default_rng(self.seed)
        cfg = self.config
        X = self._scaler.fit(X).transform(X)
        n_val = max(1, int(0.1 * len(X)))
        Xtr, ytr = X[:-n_val], y[:-n_val]
        Xval, yval = X[-n_val:], y[-n_val:]
        if len(np.unique(ytr)) < 2:
            Xtr, ytr = X, y
            Xval, yval = X[-n_val:], y[-n_val:]
        Xb, yb = balance_binary(
            Xtr,
            ytr,
            k_neighbors=cfg.smote_k,
            undersample_majority_to=cfg.undersample_majority_to,
            seed=rng,
        )
        self.net_ = self._build(rng)
        stopper = EarlyStopping(monitor="val_loss", patience=cfg.patience)
        self.net_.fit(
            Xb,
            yb,
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            validation_data=(Xval, yval),
            callbacks=[stopper, MetricsCallback(model="classifier")],
            seed=rng,
        )
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(long wait) per row."""
        check_fitted(self, "net_")
        logits = self.net_.predict(self._scaler.transform(check_2d(X, "X")))
        return 0.5 * (1.0 + np.tanh(0.5 * logits))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Binary long-wait decision at the configured threshold."""
        return (self.predict_proba(X) >= self.config.threshold).astype(np.int64)
