"""Online learning (§V future work).

"Future work on integrating online learning capabilities is needed to
ensure predictions stay current with the cluster changes."  This module
implements that extension: :class:`OnlineTrout` wraps a trained
:class:`~repro.core.hierarchical.TroutModel` and

- accumulates newly completed jobs into a sliding window,
- monitors drift (rolling classifier accuracy and regressor MAPE on the
  incoming stream, *before* updating — honest prequential evaluation),
- continues training both networks on the window at a reduced learning
  rate whenever enough new jobs arrived.

The networks are updated in place; between refreshes inference is exactly
the wrapped model's.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.hierarchical import TroutModel
from repro.eval.metrics import (
    binary_accuracy,
    mean_absolute_percentage_error,
)
from repro.nn import Adam
from repro.obs import events, metrics, tracing
from repro.utils.logging import get_logger
from repro.utils.rng import default_rng
from repro.utils.validation import check_1d, check_2d, check_consistent_length

__all__ = ["DriftMonitor", "OnlineConfig", "OnlineTrout"]

log = get_logger(__name__)


class DriftMonitor:
    """Rolling-window MAPE with a rising-edge drift alarm.

    The drift machinery extracted from :class:`OnlineTrout` so two
    consumers share it byte-for-byte: the live prequential stream
    (``OnlineTrout.observe``) and ``trout audit replay``, which feeds a
    recorded audit trail back through the same window once actual start
    times are joined.

    ``update`` ingests APE mass (sum of absolute percentage errors and
    how many jobs it covers), trims the window to the most recent
    ``window`` jobs, optionally publishes ``<prefix>_rolling_mape`` /
    ``<prefix>_drift_alarms_total``, and reports ``True`` exactly when
    the rolling MAPE *crosses* the threshold upward (level-triggered
    alarms would fire on every batch of a bad stretch).
    """

    def __init__(
        self,
        threshold: float | None = 200.0,
        window: int = 500,
        min_samples: int = 50,
        prefix: str = "online",
        publish: bool = True,
    ) -> None:
        if threshold is not None and threshold <= 0:
            raise ValueError("threshold must be positive (or None)")
        if window < 1 or min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")
        self.threshold = threshold
        self.window = window
        self.min_samples = min_samples
        self.prefix = prefix
        self.publish = publish
        # Full instrument names, fixed at construction so the prefix is
        # validated once and call sites stay allocation-free.
        self._gauge_name = f"{prefix}_rolling_mape"
        self._counter_name = f"{prefix}_drift_alarms_total"
        self._roll: deque[tuple[float, int]] = deque()
        self._roll_sum = 0.0
        self._roll_n = 0
        self._in_drift = False
        self.n_alarms = 0

    @property
    def rolling_mape(self) -> float:
        """MAPE over the last ``window`` scored jobs (NaN until warm)."""
        if self._roll_n < self.min_samples:
            return float("nan")
        return self._roll_sum / self._roll_n

    def update(self, ape_sum: float, n: int) -> bool:
        """Ingest ``n`` scored jobs' APE mass; ``True`` on a fresh alarm."""
        if n < 1:
            return False
        self._roll.append((float(ape_sum), int(n)))
        self._roll_sum += float(ape_sum)
        self._roll_n += int(n)
        while len(self._roll) > 1 and self._roll_n - self._roll[0][1] >= self.window:
            s, k = self._roll.popleft()
            self._roll_sum -= s
            self._roll_n -= k
        rolling = self.rolling_mape
        if np.isnan(rolling):
            return False
        if self.publish:
            metrics.get_registry().gauge(
                self._gauge_name,
                help="regressor MAPE (%) over the recent drift window",
            ).set(rolling)
        if self.threshold is None:
            return False
        if rolling <= self.threshold:
            self._in_drift = False
            return False
        if self._in_drift:
            return False
        self._in_drift = True
        self.n_alarms += 1
        if self.publish:
            metrics.get_registry().counter(
                self._counter_name,
                help="rolling MAPE crossed the drift threshold",
            ).inc()
        events.emit(
            f"{self.prefix}.drift_alarm",
            level="warning",
            rolling_mape=round(rolling, 2),
            threshold=self.threshold,
            window=self.window,
        )
        return True


@dataclass
class OnlineConfig:
    """Refresh policy for online updates."""

    window: int = 20_000  # sliding window of most recent jobs
    refresh_every: int = 2_000  # jobs between refits
    epochs: int = 3  # passes over the window per refresh
    lr: float = 2e-4  # reduced fine-tuning rate
    batch_size: int = 256
    seed: int = 0
    #: Drift alarm: rolling MAPE over the last ``drift_window`` long-wait
    #: jobs; crossing ``drift_mape_threshold`` (rising edge) bumps the
    #: ``online_drift_alarms_total`` counter.  ``None`` disables alarms.
    drift_mape_threshold: float | None = 200.0
    drift_window: int = 500
    drift_min_samples: int = 50  # rolling MAPE undefined below this

    def __post_init__(self) -> None:
        if self.window < 10 or self.refresh_every < 1:
            raise ValueError("window must be >= 10 and refresh_every >= 1")
        if self.epochs < 1 or self.lr <= 0:
            raise ValueError("epochs must be >= 1 and lr positive")
        if self.drift_mape_threshold is not None and self.drift_mape_threshold <= 0:
            raise ValueError("drift_mape_threshold must be positive (or None)")
        if self.drift_window < 1 or self.drift_min_samples < 1:
            raise ValueError("drift_window and drift_min_samples must be >= 1")


@dataclass
class _DriftStats:
    """Prequential performance on the incoming stream."""

    n_seen: int = 0
    clf_correct: int = 0
    reg_ape_sum: float = 0.0
    n_long: int = 0

    @property
    def classifier_accuracy(self) -> float:
        return self.clf_correct / self.n_seen if self.n_seen else float("nan")

    @property
    def regressor_mape(self) -> float:
        return self.reg_ape_sum / self.n_long if self.n_long else float("nan")


class OnlineTrout:
    """Streaming wrapper over a trained hierarchy.

    Usage::

        online = OnlineTrout(trained.model)
        for X_batch, minutes_batch in stream:      # completed jobs
            online.observe(X_batch, minutes_batch)  # score, buffer, refresh
        online.predict_messages(X_queued)           # always serves
    """

    def __init__(self, model: TroutModel, config: OnlineConfig | None = None):
        self.model = model
        self.config = config or OnlineConfig()
        self._X: deque[np.ndarray] = deque()
        self._m: deque[np.ndarray] = deque()
        self._buffered = 0
        self._since_refresh = 0
        self.n_refreshes = 0
        self.drift = _DriftStats()
        self._rng = default_rng(self.config.seed)
        self.monitor = DriftMonitor(
            threshold=self.config.drift_mape_threshold,
            window=self.config.drift_window,
            min_samples=self.config.drift_min_samples,
        )

    @property
    def rolling_mape(self) -> float:
        """MAPE over the last ``drift_window`` long-wait stream jobs."""
        return self.monitor.rolling_mape

    @property
    def n_drift_alarms(self) -> int:
        """Rising-edge drift alarms raised so far."""
        return self.monitor.n_alarms

    # ------------------------------------------------------------------ #
    def observe(self, X: np.ndarray, minutes: np.ndarray) -> None:
        """Ingest completed jobs: score first (prequential), then learn."""
        X = check_2d(X, "X")
        minutes = check_1d(minutes, "minutes")
        check_consistent_length(X, minutes)
        self._score(X, minutes)
        self._X.append(X)
        self._m.append(minutes)
        self._buffered += len(X)
        self._since_refresh += len(X)
        while self._buffered - len(self._X[0]) >= self.config.window:
            self._buffered -= len(self._X.popleft())
            self._m.popleft()
        if self._since_refresh >= self.config.refresh_every:
            self.refresh()

    def _score(self, X: np.ndarray, minutes: np.ndarray) -> None:
        cutoff = self.model.cutoff_min
        truth_long = (minutes > cutoff).astype(np.float64)
        pred_long = self.model.classifier.predict(X).astype(np.float64)
        self.drift.n_seen += len(X)
        self.drift.clf_correct += int(np.sum(pred_long == truth_long))
        long_mask = truth_long == 1
        if np.any(long_mask):
            pred = self.model.regressor.predict_minutes(X[long_mask])
            ape = 100.0 * np.abs(pred - minutes[long_mask]) / minutes[long_mask]
            self.drift.reg_ape_sum += float(ape.sum())
            self.drift.n_long += int(long_mask.sum())
            # The config is mutable between observations; keep the
            # monitor's threshold in lockstep.
            self.monitor.threshold = self.config.drift_mape_threshold
            if self.monitor.update(float(ape.sum()), int(long_mask.sum())):
                log.warning(
                    "drift alarm: rolling MAPE %.1f%% > threshold %.1f%%",
                    self.monitor.rolling_mape,
                    self.config.drift_mape_threshold,
                )
        self._publish_drift()

    def _publish_drift(self) -> None:
        """Prequential gauges (the rolling window publishes its own)."""
        reg = metrics.get_registry()
        reg.gauge(
            "online_prequential_accuracy",
            help="classifier accuracy on the incoming stream (pre-update)",
        ).set(self.drift.classifier_accuracy if self.drift.n_seen else 0.0)
        if self.drift.n_long:
            reg.gauge(
                "online_prequential_mape",
                help="regressor MAPE (%) on the incoming stream (pre-update)",
            ).set(self.drift.regressor_mape)

    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """Fine-tune both networks on the sliding window."""
        if self._buffered < 10:
            return
        with tracing.span("online.refresh", buffered=self._buffered):
            self._refresh()

    def _refresh(self) -> None:
        cfg = self.config
        X = np.concatenate(list(self._X))
        minutes = np.concatenate(list(self._m))
        cutoff = self.model.cutoff_min

        # Classifier: continue on the (scaled) window with the stored scaler.
        clf = self.model.classifier
        y = (minutes > cutoff).astype(np.float64)
        if len(np.unique(y)) == 2:
            Xs = clf._scaler.transform(X)
            clf.net_.compile(clf.net_.loss, Adam(lr=cfg.lr))
            clf.net_.fit(
                Xs, y, epochs=cfg.epochs, batch_size=cfg.batch_size, seed=self._rng
            )

        # Regressor: continue on the window's long-wait jobs.
        long_mask = minutes > cutoff
        if int(long_mask.sum()) >= 10:
            reg = self.model.regressor
            Xs = reg._scaler.transform(X[long_mask])
            ys = reg._encode_target(minutes[long_mask]).reshape(-1, 1)
            reg.net_.compile(reg.net_.loss, Adam(lr=cfg.lr))
            reg.net_.fit(
                Xs, ys, epochs=cfg.epochs, batch_size=cfg.batch_size, seed=self._rng
            )
        self._since_refresh = 0
        self.n_refreshes += 1
        metrics.get_registry().counter(
            "online_refreshes_total", help="online fine-tuning refreshes"
        ).inc()
        events.emit(
            "online.refresh",
            n_refresh=self.n_refreshes,
            buffered=self._buffered,
            stream_accuracy=round(self.drift.classifier_accuracy, 4),
        )

    # ------------------------------------------------------------------ #
    def predict_messages(self, X: np.ndarray) -> list[str]:
        """Algorithm 1 on the current (possibly refreshed) model."""
        return self.model.predict_messages(X)

    def predict_minutes(self, X: np.ndarray) -> np.ndarray:
        return self.model.predict_minutes(X)
