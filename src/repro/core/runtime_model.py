"""Random-forest runtime prediction (§II/§III, extended per §V).

The paper includes "a separate model for predicting the runtime of existing
jobs" whose output feeds the wait-time model ("Pred Runtime" and the two
partition-aggregate prediction features in Table II); theirs is "basic" —
a random forest, as here.  Inputs are strictly what is known for a job
*still in the queue*: the request (CPUs, memory, nodes, timelimit),
partition, QOS, and priority.  The target is ``log1p(runtime_min)``;
predictions are clipped into ``[0, timelimit]``.

§V flags runtime prediction as the main accuracy bottleneck ("the average
job in our data used only 15 % of requested wall time, with some power
users using less than 5 %") and proposes a more robust model as future
work.  The ``user_history`` feature mode implements that extension: each
job additionally sees its submitter's *expanding past mean* walltime
utilisation and past runtime — strictly causal (only jobs submitted
earlier contribute), so the feature is deployment-safe.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import RuntimeModelConfig
from repro.data.schema import JobSet
from repro.ml.forest import RandomForestRegressor
from repro.utils.validation import check_fitted

__all__ = ["RuntimePredictor", "user_expanding_stats"]

#: Request-time columns the runtime model may see.
RUNTIME_FEATURES: tuple[str, ...] = (
    "req_cpus",
    "req_mem_gb",
    "req_nodes",
    "timelimit_min",
    "partition",
    "qos",
    "priority",
)

#: Prior used before a user has any history (the population mean of §V).
_UTIL_PRIOR = 0.15


def user_expanding_stats(jobs: JobSet) -> dict[str, np.ndarray]:
    """Per-job causal user-history features.

    For each job, the mean walltime utilisation and mean runtime (minutes)
    of the *same user's strictly earlier submissions* (by submit time; ties
    broken by position).  Jobs with no history get the population prior.
    """
    rec = jobs.records
    n = len(jobs)
    util = np.full(n, _UTIL_PRIOR)
    mean_rt = np.full(n, 30.0)
    job_util = jobs.walltime_utilization
    job_rt = jobs.runtime_min
    for user in np.unique(rec["user_id"]):
        g = np.flatnonzero(rec["user_id"] == user)
        order = np.argsort(rec["submit_time"][g], kind="stable")
        gs = g[order]
        cum_u = np.concatenate([[0.0], np.cumsum(job_util[gs])])
        cum_r = np.concatenate([[0.0], np.cumsum(job_rt[gs])])
        k = np.arange(len(gs), dtype=np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            u = np.where(k > 0, cum_u[:-1] / np.maximum(k, 1), _UTIL_PRIOR)
            r = np.where(k > 0, cum_r[:-1] / np.maximum(k, 1), 30.0)
        util[gs] = u
        mean_rt[gs] = r
    return {"user_mean_utilization": util, "user_mean_runtime_min": mean_rt}


class RuntimePredictor:
    """RF regression of actual runtime from request-time features.

    Parameters
    ----------
    features:
        ``"request"`` — the paper's basic model (request attributes only);
        ``"request+user"`` — §V's extension, adding the submitter's causal
        history statistics.
    """

    def __init__(
        self,
        config: RuntimeModelConfig | None = None,
        seed: int = 0,
        features: str = "request",
    ) -> None:
        if features not in ("request", "request+user"):
            raise ValueError(
                f"features must be 'request' or 'request+user', got {features!r}"
            )
        self.config = config or RuntimeModelConfig()
        self.seed = seed
        self.features = features
        self.forest_: RandomForestRegressor | None = None
        # Frozen per-user stats from the training trace, applied at predict
        # time (a deployed model would maintain these incrementally).
        self._user_util: dict[int, float] | None = None
        self._user_rt: dict[int, float] | None = None

    def design_matrix(self, jobs: JobSet) -> np.ndarray:
        """Log-scaled request features (+ optional user history)."""
        rec = jobs.records
        cols = [np.log1p(rec[name].astype(np.float64)) for name in RUNTIME_FEATURES]
        if self.features == "request+user":
            cols.extend(self._user_columns(jobs))
        return np.column_stack(cols)

    def _user_columns(self, jobs: JobSet) -> list[np.ndarray]:
        if self._user_util is None:
            # Training path: causal expanding statistics.
            stats = user_expanding_stats(jobs)
            return [
                stats["user_mean_utilization"],
                np.log1p(stats["user_mean_runtime_min"]),
            ]
        # Inference path: frozen training-time statistics per user.
        users = jobs.records["user_id"]
        util = np.array([self._user_util.get(int(u), _UTIL_PRIOR) for u in users])
        rt = np.array([self._user_rt.get(int(u), 30.0) for u in users])
        return [util, np.log1p(rt)]

    def fit(self, jobs: JobSet) -> "RuntimePredictor":
        """Train on a (past-only) trace; target is log1p(actual minutes)."""
        if len(jobs) < 10:
            raise ValueError(f"need at least 10 jobs to fit, got {len(jobs)}")
        self._user_util = None  # training mode for design_matrix
        self._user_rt = None
        X = self.design_matrix(jobs)
        y = np.log1p(np.maximum(jobs.runtime_min, 0.0))
        cfg = self.config
        self.forest_ = RandomForestRegressor(
            n_estimators=cfg.n_estimators,
            max_depth=cfg.max_depth,
            min_samples_leaf=cfg.min_samples_leaf,
            seed=self.seed,
            n_jobs=cfg.n_jobs,
            tree_method=cfg.tree_method,
        ).fit(X, y)
        if self.features == "request+user":
            # Freeze each user's final training-time statistics.
            rec = jobs.records
            util = jobs.walltime_utilization
            rt = jobs.runtime_min
            self._user_util = {}
            self._user_rt = {}
            for user in np.unique(rec["user_id"]):
                mask = rec["user_id"] == user
                self._user_util[int(user)] = float(util[mask].mean())
                self._user_rt[int(user)] = float(rt[mask].mean())
        return self

    def predict_minutes(self, jobs: JobSet) -> np.ndarray:
        """Predicted runtime in minutes, clipped to the requested limit."""
        check_fitted(self, "forest_")
        X = self.design_matrix(jobs)
        pred = np.expm1(self.forest_.predict(X))
        return np.clip(pred, 0.0, jobs.records["timelimit_min"].astype(np.float64))
