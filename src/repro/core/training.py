"""End-to-end training and the paper's evaluation protocol.

Two entry points:

- :func:`run_regression_cv` — §III's time-series five-fold CV of the
  regressor (test size one-sixth), reporting per-fold MAPE / Pearson r /
  within-100 % (the numbers behind §IV and Figs. 4-5).
- :func:`train_trout` — trains the full hierarchy on the past 80 % and
  evaluates on the most recent 20 % (classifier accuracy ≈ 90 % in §IV),
  returning a ready :class:`~repro.core.hierarchical.TroutModel`.

Leakage discipline: the runtime model trains on the *oldest* sixth of the
trace — a window inside every fold's training set — so its predicted-runtime
features never encode future information; splits are strictly time-ordered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classifier import QuickStartClassifier
from repro.core.config import TroutConfig
from repro.core.hierarchical import TroutModel
from repro.core.regressor import QueueTimeRegressor
from repro.core.runtime_model import RuntimePredictor
from repro.data.schema import JobSet
from repro.data.splits import TimeSeriesSplit, holdout_recent
from repro.eval.metrics import (
    binary_accuracy,
    mean_absolute_percentage_error,
    pearson_r,
    within_percent_error,
)
from repro.features.pipeline import FeatureMatrix, FeaturePipeline
from repro.nn.dtypes import resolve_nn_dtype
from repro.obs import metrics, tracing
from repro.slurm.resources import Cluster
from repro.utils.logging import get_logger

__all__ = [
    "FoldResult",
    "CVResult",
    "TroutTrainingResult",
    "build_feature_matrix",
    "run_regression_cv",
    "train_trout",
]

log = get_logger(__name__)


@dataclass
class FoldResult:
    """Regression metrics for one time-series fold."""

    fold: int
    n_train: int
    n_test: int
    mape: float
    pearson: float
    within_100: float
    y_true: np.ndarray = field(repr=False)
    y_pred: np.ndarray = field(repr=False)


@dataclass
class CVResult:
    """All folds plus the paper's headline aggregates."""

    folds: list[FoldResult]

    @property
    def mape_last3(self) -> float:
        """Mean MAPE over the last three folds (§IV reports 97.567 %)."""
        last = self.folds[-3:]
        return float(np.mean([f.mape for f in last]))

    @property
    def final_pearson(self) -> float:
        """Pearson r on the final fold (§IV reports 0.7532)."""
        return self.folds[-1].pearson


@dataclass
class TroutTrainingResult:
    """A trained hierarchy and its holdout evaluation."""

    model: TroutModel
    classifier_accuracy: float
    classifier_accuracy_quick: float
    classifier_accuracy_long: float
    regression_mape_holdout: float
    n_holdout: int


def build_feature_matrix(
    jobs: JobSet,
    cluster: Cluster,
    config: TroutConfig | None = None,
    n_jobs: int | None = None,
    cache: "FeatureCache | None" = None,
) -> tuple[FeatureMatrix, RuntimePredictor]:
    """Featurise a trace with a leakage-safe runtime model.

    The runtime model trains on the oldest ``test_fraction`` of jobs (a
    subset of every fold's training window) and predicts runtimes for the
    whole trace; those predictions feed the three Pred-Runtime features.

    ``n_jobs`` fans the snapshot stage out across processes (``None`` reads
    ``REPRO_N_JOBS``); ``cache`` memoises the finished matrix on disk —
    both leave the result bit-identical to a serial cold run.
    """
    config = config or TroutConfig()
    n = len(jobs)
    n_rt = max(10, int(n * config.test_fraction))
    runtime = RuntimePredictor(config.runtime_model, seed=config.seed)
    with tracing.span("runtime_model", rows=n_rt):
        runtime.fit(jobs[np.arange(n_rt)])
        pred = runtime.predict_minutes(jobs)
    pipeline = FeaturePipeline(cluster, n_jobs=n_jobs, cache=cache)
    fm = pipeline.compute(jobs, pred_runtime_min=pred)
    if fm.cache_hit:
        log.info("feature matrix served from cache (%d rows)", len(fm))
    return fm, runtime


def run_regression_cv(
    fm: FeatureMatrix,
    config: TroutConfig | None = None,
    tuning: "TuningConfig | None" = None,
) -> CVResult:
    """Time-series CV of the long-wait regressor (the paper's protocol).

    Within each fold, train/evaluate only on jobs whose queue time exceeds
    the cutoff (the regressor's operating regime in the hierarchy).  With
    ``tuning`` set, each fold's regressor is Optuna-style TPE-tuned on a
    validation tail of its training window first — the paper's §III
    protocol.
    """
    config = config or TroutConfig()
    splitter = TimeSeriesSplit(config.n_splits, config.test_fraction)
    q = fm.queue_time_min
    results: list[FoldResult] = []
    for k, (train_idx, test_idx) in enumerate(splitter.split(len(fm)), start=1):
        tr = train_idx[q[train_idx] > config.cutoff_min]
        te = test_idx[q[test_idx] > config.cutoff_min]
        if len(tr) < 20 or len(te) < 5:
            raise ValueError(
                f"fold {k}: too few long-wait jobs (train={len(tr)}, test={len(te)})"
            )
        with tracing.span("cv_fold", fold=k, n_train=len(tr), n_test=len(te)):
            if tuning is not None:
                import dataclasses

                from repro.core.tuning import tune_regressor

                fold_tuning = dataclasses.replace(tuning, seed=tuning.seed + k)
                reg, _study = tune_regressor(fm.X[tr], q[tr], fold_tuning)
            else:
                reg = QueueTimeRegressor(
                    fm.X.shape[1], config.regressor, seed=config.seed + k
                )
                reg.fit(fm.X[tr], q[tr])
            pred = reg.predict_minutes(fm.X[te])
        results.append(
            FoldResult(
                fold=k,
                n_train=len(tr),
                n_test=len(te),
                mape=mean_absolute_percentage_error(q[te], pred),
                pearson=pearson_r(q[te], pred),
                within_100=within_percent_error(q[te], pred),
                y_true=q[te],
                y_pred=pred,
            )
        )
        reg_metrics = metrics.get_registry()
        fold_labels = {"fold": str(k)}
        reg_metrics.gauge(
            "cv_fold_mape", help="per-fold regression MAPE (%)", labels=fold_labels
        ).set(results[-1].mape)
        reg_metrics.gauge(
            "cv_fold_pearson", help="per-fold Pearson r", labels=fold_labels
        ).set(results[-1].pearson)
        log.info(
            "fold %d: mape=%.1f%% r=%.3f within100=%.2f",
            k,
            results[-1].mape,
            results[-1].pearson,
            results[-1].within_100,
        )
    return CVResult(results)


def train_trout(
    fm: FeatureMatrix,
    config: TroutConfig | None = None,
) -> TroutTrainingResult:
    """Train the full hierarchy; evaluate on the most recent holdout.

    Mirrors deployment: both networks see only the past 80 %, the holdout
    supplies the §IV classification accuracy and the hierarchy's MAPE on
    long-wait jobs.
    """
    config = config or TroutConfig()
    q = fm.queue_time_min
    past, recent = holdout_recent(len(fm), config.holdout_fraction)
    y_long = (q > config.cutoff_min).astype(np.float64)

    nn_dtype = resolve_nn_dtype(config.nn_dtype).name
    clf = QuickStartClassifier(fm.X.shape[1], config.classifier, seed=config.seed)
    with tracing.span("train.classifier", rows=len(past), nn_dtype=nn_dtype):
        clf.fit(fm.X[past], y_long[past])

    long_tr = past[q[past] > config.cutoff_min]
    reg = QueueTimeRegressor(fm.X.shape[1], config.regressor, seed=config.seed)
    with tracing.span("train.regressor", rows=len(long_tr), nn_dtype=nn_dtype):
        reg.fit(fm.X[long_tr], q[long_tr])

    model = TroutModel(
        classifier=clf,
        regressor=reg,
        cutoff_min=config.cutoff_min,
        feature_names=fm.names,
    )

    with tracing.span("evaluate.holdout", rows=len(recent)):
        pred_long = clf.predict(fm.X[recent]).astype(np.float64)
        truth = y_long[recent]
        acc = binary_accuracy(truth, pred_long)
        quick_mask = truth == 0
        long_mask = truth == 1
        acc_quick = (
            binary_accuracy(truth[quick_mask], pred_long[quick_mask])
            if np.any(quick_mask)
            else float("nan")
        )
        acc_long = (
            binary_accuracy(truth[long_mask], pred_long[long_mask])
            if np.any(long_mask)
            else float("nan")
        )
        long_te = recent[q[recent] > config.cutoff_min]
        mape = (
            mean_absolute_percentage_error(
                q[long_te], reg.predict_minutes(fm.X[long_te])
            )
            if len(long_te)
            else float("nan")
        )
    reg_metrics = metrics.get_registry()
    reg_metrics.gauge(
        "holdout_classifier_accuracy", help="recent-holdout classifier accuracy"
    ).set(acc)
    reg_metrics.gauge(
        "holdout_regressor_mape", help="recent-holdout long-wait MAPE (%)"
    ).set(mape if np.isfinite(mape) else 0.0)
    log.info(
        "holdout: clf acc=%.4f (quick=%.4f long=%.4f), regressor mape=%.1f%%",
        acc,
        acc_quick,
        acc_long,
        mape,
    )
    return TroutTrainingResult(
        model=model,
        classifier_accuracy=acc,
        classifier_accuracy_quick=acc_quick,
        classifier_accuracy_long=acc_long,
        regression_mape_holdout=mape,
        n_holdout=len(recent),
    )
