"""``trout`` — simulate, train, and predict queue times.

Subcommands
-----------
- ``trout simulate`` — generate a synthetic Anvil-like trace and write it
  as an SWF-style file.
- ``trout stats`` — Table-I statistics and an sacct-style head of a trace.
- ``trout train`` — featurise a trace, train the hierarchy, save a model
  directory, and print holdout metrics.
- ``trout predict`` — Algorithm 1 on an existing job id from a trace.
- ``trout hypothetical`` — §V's future-work feature: predict for a job
  that was never submitted, given its requested resources.
- ``trout serve`` — the online prediction service (DESIGN.md §10):
  micro-batched ``/predict`` over a hot-reloaded model registry, plus
  ``/healthz`` and Prometheus ``/metrics``.
- ``trout publish`` — atomically publish a trained model directory as
  the next version of a serving registry.
- ``trout telemetry`` — pretty-print a telemetry snapshot saved by a
  previous run's ``--telemetry=json --telemetry-out``;
  ``--format=chrome`` re-renders it as Chrome trace-event JSON for
  ``chrome://tracing`` / Perfetto.
- ``trout audit`` — inspect (``tail``/``stats``) or re-score
  (``replay``) the prediction audit trail ``trout serve --audit-log``
  writes; replay joins actual queue minutes and runs the same
  rolling-MAPE drift monitor as the online path.
- ``trout lint`` — run the ``troutlint`` invariant checker
  (:mod:`repro.analysis`) over the source tree; ``--format=json`` for
  machines, ``--baseline`` to grandfather current violations.

``simulate``, ``train`` and ``predict`` accept ``--telemetry[=FMT]``
(``report``, ``json``, ``prom`` or ``chrome``): telemetry is
force-enabled for the run and a snapshot is dumped on exit — to stdout,
or to ``--telemetry-out PATH``.
"""

from __future__ import annotations

import argparse
import pickle
import sys
from pathlib import Path

import numpy as np

from repro.analysis.cli import add_lint_arguments, run_lint
from repro.core import TroutConfig, TroutModel, train_trout
from repro.core.config import RuntimeModelConfig
from repro.core.training import build_feature_matrix
from repro.ml.binning import TREE_METHODS
from repro.nn.dtypes import NN_DTYPES
from repro.data.schema import JOB_DTYPE, JobSet
from repro.data.stats import format_statistics_table, job_statistics
from repro.data.swf import read_swf, write_swf
from repro.features.pipeline import FeaturePipeline
from repro.slurm.accounting import format_sacct
from repro.slurm.anvil import anvil_cluster
from repro.slurm.simulator import SIM_ENGINES
from repro.utils.logging import enable_console_logging
from repro.workload import WorkloadConfig, generate_trace

__all__ = ["main", "build_parser"]


def _add_telemetry_args(sp: argparse.ArgumentParser) -> None:
    sp.add_argument(
        "--telemetry",
        nargs="?",
        const="report",
        choices=("report", "json", "prom", "chrome"),
        default=None,
        help="dump a telemetry snapshot on exit (bare flag = report)",
    )
    sp.add_argument(
        "--telemetry-out",
        type=Path,
        default=None,
        help="write the telemetry dump to this file instead of stdout",
    )


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="trout", description="Hierarchical HPC queue-time prediction"
    )
    p.add_argument("-v", "--verbose", action="store_true", help="log progress")
    sub = p.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic trace")
    sim.add_argument("--n-jobs", type=int, default=20_000)
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--load", type=float, default=0.28, help="target pool load")
    sim.add_argument("--scale", type=float, default=0.05, help="cluster scale")
    sim.add_argument("--out", type=Path, required=True, help="output .swf path")
    sim.add_argument(
        "--sim-engine",
        choices=SIM_ENGINES,
        default=None,
        help="simulation engine (default: $REPRO_SIM_ENGINE or fast; "
        "both engines produce bitwise-identical traces)",
    )
    _add_telemetry_args(sim)

    st = sub.add_parser("stats", help="describe a trace")
    st.add_argument("--trace", type=Path, required=True)
    st.add_argument("--head", type=int, default=10, help="sacct lines to show")

    tr = sub.add_parser("train", help="train TROUT on a trace")
    tr.add_argument("--trace", type=Path, required=True)
    tr.add_argument("--out", type=Path, required=True, help="model directory")
    tr.add_argument("--scale", type=float, default=0.05, help="cluster scale of the trace")
    tr.add_argument("--cutoff-min", type=float, default=10.0)
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        help="feature-engineering worker processes "
        "(default: $REPRO_N_JOBS or 1; results are bit-identical)",
    )
    tr.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="on-disk feature cache directory (reused across runs; "
        "content-hash keyed, so stale entries are impossible)",
    )
    tr.add_argument(
        "--tree-method",
        choices=TREE_METHODS,
        default=None,
        help="split search for the runtime-model forest "
        "(default: $REPRO_TREE_METHOD or hist)",
    )
    tr.add_argument(
        "--nn-dtype",
        choices=NN_DTYPES,
        default=None,
        help="neural-network compute dtype "
        "(default: $REPRO_NN_DTYPE or float32; float64 is the reference path)",
    )
    _add_telemetry_args(tr)

    pr = sub.add_parser("predict", help="predict for an existing job")
    pr.add_argument("--model", type=Path, required=True)
    pr.add_argument("--trace", type=Path, required=True)
    pr.add_argument("--scale", type=float, default=0.05)
    pr.add_argument("--job-id", type=int, required=True)
    pr.add_argument(
        "--interval",
        action="store_true",
        help="also report an 80%% MC-dropout prediction interval",
    )
    _add_telemetry_args(pr)

    qu = sub.add_parser("queue", help="squeue-style view of the queue at a time")
    qu.add_argument("--trace", type=Path, required=True)
    qu.add_argument(
        "--at",
        type=float,
        default=None,
        help="trace time in seconds (default: instant of the last eligibility)",
    )
    qu.add_argument("--model", type=Path, default=None,
                    help="optionally annotate pending jobs with predictions")
    qu.add_argument("--scale", type=float, default=0.05)
    qu.add_argument("--limit", type=int, default=20)

    hy = sub.add_parser("hypothetical", help="predict for an unsubmitted job")
    hy.add_argument("--model", type=Path, required=True)
    hy.add_argument("--trace", type=Path, required=True)
    hy.add_argument("--scale", type=float, default=0.05)
    hy.add_argument("--partition", type=str, default="shared")
    hy.add_argument("--cpus", type=int, default=16)
    hy.add_argument("--mem-gb", type=float, default=32.0)
    hy.add_argument("--nodes", type=int, default=1)
    hy.add_argument("--timelimit-min", type=float, default=240.0)
    hy.add_argument("--user-id", type=int, default=0)

    se = sub.add_parser(
        "serve", help="online prediction service over a model registry"
    )
    se.add_argument(
        "--model-dir",
        type=Path,
        required=True,
        help="a registry root (vNNNN version dirs, hot-reloaded) or a "
        "single trained model directory from `trout train`",
    )
    se.add_argument("--host", type=str, default="127.0.0.1")
    se.add_argument("--port", type=int, default=8080)
    se.add_argument(
        "--max-batch", type=int, default=32,
        help="rows coalesced into one model call",
    )
    se.add_argument(
        "--max-wait-ms", type=float, default=5.0,
        help="how long a batch waits for more requests once one arrived",
    )
    se.add_argument(
        "--queue-depth", type=int, default=128,
        help="pending-request bound; beyond it requests get 503 + Retry-After",
    )
    se.add_argument(
        "--reload-interval", type=float, default=2.0,
        help="registry poll interval (seconds) for hot reload",
    )
    se.add_argument(
        "--audit-log", type=Path, default=None,
        help="append one JSONL audit record per prediction here "
        "(size-rotated; replay later with `trout audit replay`)",
    )
    se.add_argument(
        "--event-log", type=Path, default=None,
        help="write info-and-up structured events here as JSONL "
        "(size-rotated)",
    )

    pu = sub.add_parser(
        "publish", help="atomically publish a trained model into a registry"
    )
    pu.add_argument("--model", type=Path, required=True,
                    help="model directory from `trout train`")
    pu.add_argument("--registry", type=Path, required=True,
                    help="registry root (created if missing)")
    pu.add_argument(
        "--partitions", type=str, default="",
        help="comma-separated partition names the model serves "
        "(empty = accept any)",
    )

    te = sub.add_parser(
        "telemetry", help="pretty-print a saved telemetry snapshot"
    )
    te.add_argument(
        "snapshot", type=Path, help="JSON snapshot from --telemetry=json"
    )
    te.add_argument(
        "--format",
        choices=("report", "chrome"),
        default="report",
        help="terminal report (default) or Chrome trace-event JSON "
        "for chrome://tracing / Perfetto",
    )

    au = sub.add_parser(
        "audit", help="inspect or replay a serving audit trail"
    )
    ausub = au.add_subparsers(dest="audit_command", required=True)
    at = ausub.add_parser("tail", help="print the most recent audit records")
    at.add_argument("log", type=Path, help="audit JSONL from `trout serve --audit-log`")
    at.add_argument("-n", type=int, default=10, help="records to show")
    ast = ausub.add_parser("stats", help="aggregate a whole audit trail")
    ast.add_argument("log", type=Path, help="audit JSONL from `trout serve --audit-log`")
    ar = ausub.add_parser(
        "replay",
        help="score a trail against actual queue minutes (rolling MAPE + drift)",
    )
    ar.add_argument("log", type=Path, help="audit JSONL from `trout serve --audit-log`")
    ar.add_argument(
        "--actuals", type=Path, default=None,
        help="JSON object {request_id: actual_minutes} or JSONL records "
        "with request_id + actual_minutes; records already carrying "
        "actual_minutes need no file",
    )
    ar.add_argument("--threshold", type=float, default=200.0,
                    help="rolling-MAPE drift alarm threshold (%%)")
    ar.add_argument("--window", type=int, default=500,
                    help="rolling window size (scored long-wait jobs)")
    ar.add_argument("--min-samples", type=int, default=50,
                    help="rolling MAPE undefined below this many samples")
    ar.add_argument("--format", choices=("report", "json"), default="report")

    li = sub.add_parser(
        "lint", help="run the troutlint invariant checker over the sources"
    )
    add_lint_arguments(li)
    return p


def _cmd_simulate(args: argparse.Namespace) -> int:
    cfg = WorkloadConfig(
        n_jobs=args.n_jobs, seed=args.seed, load=args.load, cluster_scale=args.scale
    )
    result, _cluster = generate_trace(cfg, engine=args.sim_engine)
    write_swf(result.jobs, args.out)
    q = result.queue_time_min
    print(f"wrote {len(result.jobs)} jobs to {args.out}")
    print(f"queue time: {100 * float(np.mean(q < 10)):.1f}% under 10 min, "
          f"p99 = {np.percentile(q, 99):.0f} min")
    print(format_statistics_table(job_statistics(result.jobs)))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    jobs = read_swf(args.trace)
    print(format_statistics_table(job_statistics(jobs)))
    print()
    print(format_sacct(jobs, limit=args.head))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.eval.report import format_timing_report
    from repro.features.cache import FeatureCache

    jobs = read_swf(args.trace)
    cluster = anvil_cluster(scale=args.scale)
    config = TroutConfig(
        cutoff_min=args.cutoff_min,
        seed=args.seed,
        runtime_model=RuntimeModelConfig(tree_method=args.tree_method),
        nn_dtype=args.nn_dtype,
    )
    try:
        cache = FeatureCache(args.cache_dir) if args.cache_dir is not None else None
    except OSError as exc:
        print(f"unusable --cache-dir: {exc}", file=sys.stderr)
        return 1
    fm, runtime = build_feature_matrix(
        jobs, cluster, config, n_jobs=args.n_jobs, cache=cache
    )
    if fm.cache_hit:
        print("feature matrix loaded from cache")
    elif fm.timings:
        print(format_timing_report(fm.timings, cache.stats if cache else None))
    result = train_trout(fm, config)
    result.model.save(args.out)
    with open(Path(args.out) / "runtime_model.pkl", "wb") as fh:
        pickle.dump(runtime, fh)
    print(f"model saved to {args.out}")
    print(f"classifier accuracy (recent 20% holdout): {result.classifier_accuracy:.4f}")
    print(f"  quick-start class: {result.classifier_accuracy_quick:.4f}")
    print(f"  long-wait class:   {result.classifier_accuracy_long:.4f}")
    print(f"regressor MAPE on long-wait holdout jobs: {result.regression_mape_holdout:.1f}%")
    return 0


def _load_bundle(model_dir: Path) -> tuple[TroutModel, object]:
    model = TroutModel.load(model_dir)
    with open(model_dir / "runtime_model.pkl", "rb") as fh:
        runtime = pickle.load(fh)
    return model, runtime


def _featurise(jobs: JobSet, scale: float, runtime) -> np.ndarray:
    cluster = anvil_cluster(scale=scale)
    pred = runtime.predict_minutes(jobs)
    return FeaturePipeline(cluster).compute(jobs, pred_runtime_min=pred).X


def _cmd_predict(args: argparse.Namespace) -> int:
    model, runtime = _load_bundle(args.model)
    jobs = read_swf(args.trace)
    pos = np.flatnonzero(jobs.column("job_id") == args.job_id)
    if not len(pos):
        print(f"job {args.job_id} not found in {args.trace}", file=sys.stderr)
        return 1
    X = _featurise(jobs, args.scale, runtime)
    msg = model.predict_messages(X[pos])[0]
    actual = float(jobs.queue_time_min[pos[0]])
    print(f"job {args.job_id}: {msg}")
    if args.interval and model.predict(X[pos])[0].long_wait:
        iv = model.regressor.predict_interval(X[pos], n_samples=30, alpha=0.2)
        print(
            f"80% interval: {iv['lower'][0]:.0f} - {iv['upper'][0]:.0f} minutes"
        )
    print(f"(actual queue time in trace: {actual:.1f} minutes)")
    return 0


def _cmd_hypothetical(args: argparse.Namespace) -> int:
    model, runtime = _load_bundle(args.model)
    jobs = read_swf(args.trace)
    try:
        part_idx = list(jobs.partition_names).index(args.partition)
    except ValueError:
        print(
            f"unknown partition {args.partition!r}; trace has "
            f"{jobs.partition_names}",
            file=sys.stderr,
        )
        return 1
    # Append the hypothetical job at "now" (just past the trace end) with
    # an empty pending interval so it matches no snapshot query itself.
    t_now = float(jobs.column("eligible_time").max()) + 1.0
    rec = np.zeros(1, dtype=JOB_DTYPE)
    rec["job_id"] = jobs.column("job_id").max() + 1
    rec["user_id"] = args.user_id
    rec["partition"] = part_idx
    rec["submit_time"] = rec["eligible_time"] = t_now
    rec["start_time"] = rec["end_time"] = t_now
    rec["req_cpus"] = args.cpus
    rec["req_mem_gb"] = args.mem_gb
    rec["req_nodes"] = args.nodes
    rec["timelimit_min"] = args.timelimit_min
    rec["priority"] = float(np.median(jobs.column("priority")))
    extended = jobs.concat(JobSet(rec, jobs.partition_names))
    X = _featurise(extended, args.scale, runtime)
    msg = model.predict_messages(X[-1:])[0]
    print(
        f"hypothetical job ({args.partition}, {args.cpus} CPUs, "
        f"{args.mem_gb} GB, {args.nodes} nodes, {args.timelimit_min:.0f} min "
        f"limit): {msg}"
    )
    return 0


def _cmd_queue(args: argparse.Namespace) -> int:
    from repro.features.live import live_features, pending_at, running_at

    jobs = read_swf(args.trace)
    t_now = (
        float(jobs.column("eligible_time").max())
        if args.at is None
        else float(args.at)
    )
    pend = pending_at(jobs, t_now)
    run = running_at(jobs, t_now)
    names = jobs.partition_names
    print(f"queue state at t={t_now:.0f}s: {len(run)} running, {len(pend)} pending")

    predictions: dict[int, str] = {}
    if args.model is not None and len(pend):
        model, runtime = _load_bundle(args.model)
        pred_rt = runtime.predict_minutes(jobs)
        X_live, positions = live_features(
            jobs, t_now, anvil_cluster(args.scale), pred_runtime_min=pred_rt,
        )
        msgs = model.predict_messages(X_live)
        predictions = {int(p): m for p, m in zip(positions, msgs)}

    rec = jobs.records
    print(f"{'JOBID':>8} {'PARTITION':>10} {'USER':>6} {'CPUS':>6} "
          f"{'WAIT(min)':>10}  PREDICTION")
    order = pend[np.argsort(-rec["priority"][pend])]
    for p in order[: args.limit]:
        wait = (t_now - rec["eligible_time"][p]) / 60.0
        part = names[int(rec["partition"][p])] if names else str(rec["partition"][p])
        print(
            f"{int(rec['job_id'][p]):>8} {part:>10} u{int(rec['user_id'][p]):<5} "
            f"{int(rec['req_cpus'][p]):>6} {wait:>10.1f}  "
            f"{predictions.get(int(p), '-')}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.obs.events import configure_event_log, emit, get_event_log
    from repro.serve import (
        AuditTrail,
        LoadedModel,
        ModelRegistry,
        PredictionService,
        RegistryError,
        ServeConfig,
        start_server,
    )

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_depth=args.queue_depth,
        reload_interval_s=args.reload_interval,
    )
    registry = None
    if (args.model_dir / "meta.json").is_file():
        # A bare `trout train` output: fixed model, no hot reload.
        loaded = LoadedModel(
            model=TroutModel.load(args.model_dir), version=0, fingerprint=""
        )
        print(f"serving fixed model from {args.model_dir}")
    else:
        registry = ModelRegistry(args.model_dir)
        try:
            loaded = registry.load_latest()
        except RegistryError as exc:
            print(f"cannot serve from {args.model_dir}: {exc}", file=sys.stderr)
            return 1
        print(
            f"serving registry {args.model_dir} at version {loaded.version} "
            f"(hot reload every {config.reload_interval_s:g}s)"
        )
    if args.event_log is not None:
        configure_event_log(args.event_log)
        print(f"event log: {args.event_log}")
    audit = None
    if args.audit_log is not None:
        audit = AuditTrail(args.audit_log)
        print(f"audit trail: {args.audit_log}")
    service = PredictionService(loaded, config, registry=registry, audit=audit)
    server = start_server(service, config.host, config.port)
    emit(
        "serve.started",
        host=config.host,
        port=server.port,
        model_version=loaded.version,
        hot_reload=registry is not None,
        audit=args.audit_log is not None,
    )
    print(
        f"listening on http://{config.host}:{server.port} "
        f"(POST /predict, GET /healthz, GET /metrics) — Ctrl-C to stop"
    )
    # SIGTERM must run the same orderly shutdown as Ctrl-C: audit and
    # event sinks are block-buffered, so dying without a flush would
    # drop the tail of the trail.
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda _sig, _frm: stop.set())
    try:
        while not stop.wait(0.5):
            pass
        print("terminated, shutting down")
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown_service()
        if audit is not None:
            audit.close()
        emit(
            "serve.stopped",
            n_audit_records=0 if audit is None else audit.n_appended,
        )
        get_event_log().flush()
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    from repro.serve import RegistryError, publish_model

    try:
        model = TroutModel.load(args.model)
    except (OSError, KeyError, ValueError) as exc:
        print(f"cannot load model {args.model}: {exc}", file=sys.stderr)
        return 1
    partitions = tuple(p for p in args.partitions.split(",") if p)
    try:
        version = publish_model(args.registry, model, partitions=partitions)
    except (OSError, RegistryError) as exc:
        print(f"publish failed: {exc}", file=sys.stderr)
        return 1
    print(f"published version {version} to {args.registry}")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import render_snapshot, to_chrome

    try:
        snap = json.loads(args.snapshot.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read snapshot {args.snapshot}: {exc}", file=sys.stderr)
        return 1
    try:
        if args.format == "chrome":
            print(to_chrome(snap))
        else:
            print(render_snapshot(snap))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    return 0


def _load_actuals(path: Path) -> dict[str, float]:
    """``request_id → actual minutes`` from a JSON object or JSONL file."""
    import json

    text = path.read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict):
        return {str(k): float(v) for k, v in doc.items()}
    actuals: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        rid = rec.get("request_id")
        minutes = rec.get("actual_minutes", rec.get("minutes"))
        if rid is not None and minutes is not None:
            actuals[str(rid)] = float(minutes)
    return actuals


def _cmd_audit(args: argparse.Namespace) -> int:
    import json
    import math

    from repro.serve.audit import audit_stats, iter_audit_records, replay_audit

    if not args.log.is_file():
        print(f"no audit log at {args.log}", file=sys.stderr)
        return 1
    if args.audit_command == "tail":
        for rec in list(iter_audit_records(args.log))[-args.n :]:
            print(json.dumps(rec, sort_keys=True))
        return 0
    if args.audit_command == "stats":
        print(json.dumps(audit_stats(iter_audit_records(args.log)), indent=2))
        return 0
    # replay
    actuals = None
    if args.actuals is not None:
        try:
            actuals = _load_actuals(args.actuals)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot read --actuals {args.actuals}: {exc}", file=sys.stderr)
            return 1
    report = replay_audit(
        iter_audit_records(args.log),
        actuals=actuals,
        threshold=args.threshold,
        window=args.window,
        min_samples=args.min_samples,
    )
    if args.format == "json":
        print(json.dumps(report, indent=2))
        return 0

    def _pct(v: float) -> str:
        return "n/a" if math.isnan(v) else f"{v:.1f}%"

    print(
        f"audit replay: {report['n_records']} records, "
        f"{report['n_joined']} joined, "
        f"{report['n_scored_long']} scored long-wait"
    )
    acc = report["classifier_accuracy"]
    print(
        "classifier accuracy: "
        + ("n/a" if math.isnan(acc) else f"{acc:.4f}")
    )
    print(
        f"MAPE: {_pct(report['mape'])}   "
        f"rolling (last {report['window']}): {_pct(report['rolling_mape'])}"
    )
    print(
        f"drift alarms: {report['n_drift_alarms']} "
        f"(threshold {report['threshold']:g}%, window {report['window']})"
    )
    for alarm in report["alarms"]:
        print(
            f"  alarm at record {alarm['at_record']} "
            f"(request {alarm['request_id']}): "
            f"rolling MAPE {alarm['rolling_mape']:.1f}%"
        )
    return 0


def _dump_telemetry(fmt: str, out: Path | None) -> None:
    from repro.obs import export

    if fmt == "prom":
        text = export.to_prometheus()
    elif fmt == "json":
        text = export.to_json()
    elif fmt == "chrome":
        text = export.to_chrome()
    else:
        text = export.render_report()
    if out is not None:
        out.write_text(text.rstrip("\n") + "\n")
        print(f"telemetry written to {out}")
    else:
        print(text)


_COMMANDS = {
    "simulate": _cmd_simulate,
    "stats": _cmd_stats,
    "train": _cmd_train,
    "predict": _cmd_predict,
    "queue": _cmd_queue,
    "hypothetical": _cmd_hypothetical,
    "serve": _cmd_serve,
    "publish": _cmd_publish,
    "telemetry": _cmd_telemetry,
    "audit": _cmd_audit,
    "lint": run_lint,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose:
        enable_console_logging()
    fmt = getattr(args, "telemetry", None)
    if fmt is not None:
        # The flag overrides REPRO_TELEMETRY=0: asking for a dump implies
        # wanting it populated.
        from repro.obs.metrics import set_enabled

        set_enabled(True)
    rc = _COMMANDS[args.command](args)
    if fmt is not None:
        _dump_telemetry(fmt, args.telemetry_out)
    return rc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
