"""The ``trout`` command-line tool (§V: "We have integrated our model into
a command-line tool that takes a real, existing job in a queue … and
outputs a prediction").  See :mod:`repro.cli.main` for the subcommands."""

from repro.cli.main import main

__all__ = ["main"]
