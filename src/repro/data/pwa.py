"""Standard Workload Format (Parallel Workloads Archive) import.

The reproduction's default data source is the simulator, but TROUT can
train on *real* public traces: the Parallel Workloads Archive distributes
accounting logs from production HPC systems in the 18-field standard SWF,
which carries everything the queue-time problem needs (submit time, wait
time, run time, requested processors/time/memory, user, queue/partition).

:func:`read_standard_swf` converts such a file to a
:class:`~repro.data.schema.JobSet`:

- ``queue_time_min`` falls out of the recorded wait times (field 3);
- the SWF queue number becomes the partition index;
- memory requests default to a per-processor estimate when the trace
  omits them (most do);
- Slurm priority is not recorded in SWF, so the ``priority`` column is
  filled with a constant — models trained on PWA traces simply see an
  uninformative priority feature (documented limitation).

Standard SWF fields (1-based):
 1 job number, 2 submit time, 3 wait time (s), 4 run time (s),
 5 used processors, 6 avg CPU time, 7 used memory, 8 requested processors,
 9 requested time (s), 10 requested memory (KB/proc), 11 status,
 12 user id, 13 group id, 14 executable, 15 queue number,
 16 partition number, 17 preceding job, 18 think time.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.schema import JOB_DTYPE, JobSet, JobState
from repro.utils.logging import get_logger

__all__ = ["read_standard_swf", "write_standard_swf"]

log = get_logger(__name__)

_N_FIELDS = 18
_DEFAULT_MEM_PER_PROC_GB = 2.0


def read_standard_swf(
    path: str | Path,
    cpus_per_node: int = 128,
    mem_per_proc_gb: float = _DEFAULT_MEM_PER_PROC_GB,
    drop_anomalies: bool = True,
) -> JobSet:
    """Parse a Parallel-Workloads-Archive standard SWF file.

    Parameters
    ----------
    cpus_per_node:
        Used to derive a node count from requested processors (SWF records
        processors, not nodes).
    mem_per_proc_gb:
        Fallback memory request when field 10 is missing (−1).
    drop_anomalies:
        Drop records with negative wait/run times or zero processors
        (present in several archive traces); otherwise raise.

    Returns an eligibility-ordered :class:`JobSet` whose partition
    vocabulary is ``("q<k>", …)`` over the queue numbers present.
    """
    path = Path(path)
    rows: list[list[float]] = []
    for line_no, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith(";"):
            continue
        parts = line.split()
        if len(parts) < _N_FIELDS:
            raise ValueError(
                f"{path}:{line_no}: standard SWF needs {_N_FIELDS} fields, "
                f"got {len(parts)}"
            )
        rows.append([float(v) for v in parts[:_N_FIELDS]])
    if not rows:
        raise ValueError(f"{path} contains no job records")
    a = np.asarray(rows, dtype=np.float64)

    submit = a[:, 1]
    wait = a[:, 2]
    run = a[:, 3]
    used_procs = a[:, 4]
    req_procs = np.where(a[:, 7] > 0, a[:, 7], used_procs)
    req_time_s = a[:, 8]
    req_mem_kb_per_proc = a[:, 9]
    status = a[:, 10]
    queue_no = a[:, 14].astype(np.int64)

    ok = np.ones(len(a), dtype=bool)
    ok &= wait >= 0
    ok &= run >= 0
    ok &= req_procs > 0
    ok &= req_time_s > 0
    if not np.all(ok):
        if not drop_anomalies:
            bad = int(np.flatnonzero(~ok)[0])
            raise ValueError(f"anomalous record at data row {bad}")
        log.info("dropped %d anomalous SWF records", int((~ok).sum()))
        a = a[ok]
        submit, wait, run = submit[ok], wait[ok], run[ok]
        req_procs, req_time_s = req_procs[ok], req_time_s[ok]
        req_mem_kb_per_proc = req_mem_kb_per_proc[ok]
        status, queue_no = status[ok], queue_no[ok]

    queues = np.unique(queue_no)
    queue_index = {int(q): i for i, q in enumerate(queues)}
    partition_names = tuple(f"q{int(q)}" for q in queues)

    n = len(submit)
    rec = np.zeros(n, dtype=JOB_DTYPE)
    rec["job_id"] = a[:, 0].astype(np.int64)
    rec["user_id"] = np.maximum(a[:, 11], 0).astype(np.int32)
    rec["partition"] = np.array(
        [queue_index[int(q)] for q in queue_no], dtype=np.int16
    )
    rec["qos"] = 1
    rec["submit_time"] = submit
    # SWF measures wait from submission; eligibility == submission here.
    rec["eligible_time"] = submit
    rec["start_time"] = submit + wait
    rec["end_time"] = submit + wait + run
    rec["req_cpus"] = np.maximum(req_procs, 1).astype(np.int32)
    mem_gb = np.where(
        req_mem_kb_per_proc > 0,
        req_mem_kb_per_proc * req_procs / (1024.0 * 1024.0),
        mem_per_proc_gb * req_procs,
    )
    rec["req_mem_gb"] = np.maximum(mem_gb, 0.1)
    rec["req_nodes"] = np.maximum(
        np.ceil(req_procs / cpus_per_node), 1
    ).astype(np.int32)
    rec["timelimit_min"] = req_time_s / 60.0
    # SWF status: 1 completed, 0 failed, 5 cancelled; map the rest to
    # TIMEOUT when the job ran out its request.
    state = np.full(n, int(JobState.COMPLETED), dtype=np.int8)
    state[status == 0] = int(JobState.FAILED)
    state[status == 5] = int(JobState.CANCELLED)
    state[run >= req_time_s] = int(JobState.TIMEOUT)
    rec["state"] = state
    # Priority is not recorded in SWF; constant = uninformative feature.
    rec["priority"] = 1.0

    jobs = JobSet(rec, partition_names)
    order = np.argsort(rec["eligible_time"], kind="stable")
    log.info(
        "read %d jobs, %d queues from %s", n, len(partition_names), path.name
    )
    return jobs[order]


def write_standard_swf(jobs: JobSet, path: str | Path, computer: str = "repro") -> None:
    """Write a :class:`JobSet` as an 18-field standard SWF file.

    The inverse of :func:`read_standard_swf` up to SWF's representational
    limits: priority and QOS are not representable (SWF has no such
    fields), memory is stored as KB per requested processor, and the queue
    number is the partition index + 1 (SWF queues are 1-based by
    convention).  SWF also has no separate eligibility timestamp, so the
    *eligible* time is written into the submit field (wait is measured
    from eligibility throughout the reproduction).  Round-tripping
    therefore preserves exactly the columns the queue-time problem needs.
    """
    path = Path(path)
    rec = jobs.records
    lines = [
        f"; Computer: {computer}",
        f"; MaxJobs: {len(jobs)}",
        f"; MaxRecords: {len(jobs)}",
        "; Note: written by repro.data.pwa (standard SWF, 18 fields)",
    ]
    wait = np.maximum(rec["start_time"] - rec["eligible_time"], 0.0)
    run = np.maximum(rec["end_time"] - rec["start_time"], 0.0)
    status = np.where(
        rec["state"] == int(JobState.FAILED),
        0,
        np.where(rec["state"] == int(JobState.CANCELLED), 5, 1),
    )
    mem_kb_per_proc = (
        rec["req_mem_gb"] * 1024.0 * 1024.0 / np.maximum(rec["req_cpus"], 1)
    )
    for i in range(len(jobs)):
        fields = [
            int(rec["job_id"][i]),
            int(round(rec["eligible_time"][i])),
            int(round(wait[i])),
            int(round(run[i])),
            int(rec["req_cpus"][i]),  # used = requested in our traces
            -1,
            -1,
            int(rec["req_cpus"][i]),
            int(round(rec["timelimit_min"][i] * 60.0)),
            int(round(mem_kb_per_proc[i])),
            int(status[i]),
            int(rec["user_id"][i]),
            1,
            -1,
            int(rec["partition"][i]) + 1,
            1,
            -1,
            -1,
        ]
        lines.append(" ".join(str(v) for v in fields))
    path.write_text("\n".join(lines) + "\n")
