"""Text serialisation of job traces.

A whitespace-separated format modelled on the Standard Workload Format
(SWF): comment/header lines start with ``;``, one record per line, fixed
column order.  This substitutes for the paper's PostgreSQL staging — the
whole trace round-trips through a flat file that any tool can parse.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.data.schema import JOB_DTYPE, JobSet

__all__ = ["write_swf", "read_swf", "SWF_COLUMNS"]

#: Column order in the file; matches JOB_DTYPE field order.
SWF_COLUMNS: tuple[str, ...] = tuple(JOB_DTYPE.names)

_INT_FIELDS = {
    name for name in SWF_COLUMNS if np.issubdtype(JOB_DTYPE[name], np.integer)
}


def write_swf(jobs: JobSet, path: str | Path) -> None:
    """Write a trace to ``path`` with a self-describing header."""
    path = Path(path)
    buf = io.StringIO()
    buf.write("; repro job trace v1\n")
    buf.write(f"; partitions: {','.join(jobs.partition_names)}\n")
    buf.write(f"; columns: {' '.join(SWF_COLUMNS)}\n")
    rec = jobs.records
    cols = []
    for name in SWF_COLUMNS:
        if name in _INT_FIELDS:
            cols.append([str(int(v)) for v in rec[name]])
        else:
            cols.append([repr(float(v)) for v in rec[name]])
    for row in zip(*cols):
        buf.write(" ".join(row))
        buf.write("\n")
    path.write_text(buf.getvalue())


def read_swf(path: str | Path) -> JobSet:
    """Read a trace written by :func:`write_swf`."""
    path = Path(path)
    partition_names: Sequence[str] = ()
    rows: list[tuple] = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith(";"):
                body = line[1:].strip()
                if body.startswith("partitions:"):
                    spec = body.split(":", 1)[1].strip()
                    partition_names = tuple(p for p in spec.split(",") if p)
                continue
            parts = line.split()
            if len(parts) != len(SWF_COLUMNS):
                raise ValueError(
                    f"bad record in {path}: expected {len(SWF_COLUMNS)} fields, "
                    f"got {len(parts)}"
                )
            rows.append(tuple(parts))
    rec = np.zeros(len(rows), dtype=JOB_DTYPE)
    for j, name in enumerate(SWF_COLUMNS):
        raw = [row[j] for row in rows]
        if name in _INT_FIELDS:
            rec[name] = np.array([int(v) for v in raw], dtype=JOB_DTYPE[name])
        else:
            rec[name] = np.array([float(v) for v in raw], dtype=np.float64)
    return JobSet(rec, partition_names)
