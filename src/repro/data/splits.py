"""Dataset splitting.

The paper is emphatic that naive shuffled splits leak: users submit tens or
hundreds of near-identical jobs back-to-back, so shuffling puts siblings of
training jobs into the test set and roughly *doubles* apparent performance.
The honest protocol is time-ordered: :class:`TimeSeriesSplit` (5 folds,
test size one-sixth of the data, Fig. 3) plus :func:`holdout_recent` for the
"most recent 20 %" validation/test reserve.  :func:`shuffled_split` exists
only so the leakage ablation (experiment A2) can demonstrate the problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.utils.rng import default_rng

__all__ = ["TimeSeriesSplit", "holdout_recent", "shuffled_split"]


@dataclass(frozen=True)
class TimeSeriesSplit:
    """Expanding-window time-series cross-validation (Fig. 3).

    Fold ``k`` trains on the first ``train_end(k)`` samples and tests on the
    next ``test_size`` samples, where successive folds advance by
    ``test_size``.  With the paper's settings (``n_splits=5``,
    ``test_fraction=1/6``) the final fold tests on the most recent sixth of
    the trace.

    Samples must already be in time order (sort by eligibility first).
    """

    n_splits: int = 5
    test_fraction: float = 1.0 / 6.0

    def __post_init__(self) -> None:
        if self.n_splits < 1:
            raise ValueError(f"n_splits must be >= 1, got {self.n_splits}")
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError(
                f"test_fraction must be in (0, 1), got {self.test_fraction}"
            )

    def test_size(self, n: int) -> int:
        """Number of test samples per fold for a trace of length ``n``."""
        return max(1, int(round(n * self.test_fraction)))

    def split(self, n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_idx, test_idx)`` per fold, oldest fold first.

        Raises if ``n`` is too small to give every fold a non-empty
        training window.
        """
        ts = self.test_size(n)
        first_train = n - self.n_splits * ts
        if first_train < 1:
            raise ValueError(
                f"trace of {n} samples too small for {self.n_splits} folds of "
                f"test size {ts}"
            )
        for k in range(self.n_splits):
            train_end = first_train + k * ts
            test_end = min(train_end + ts, n)
            yield (
                np.arange(0, train_end, dtype=np.intp),
                np.arange(train_end, test_end, dtype=np.intp),
            )

    def fold_bounds(self, n: int) -> list[dict[str, int]]:
        """Fold layout as plain dicts (used by the Fig. 3 bench/report)."""
        out = []
        for k, (train, test) in enumerate(self.split(n), start=1):
            out.append(
                {
                    "fold": k,
                    "train_start": 0,
                    "train_end": int(train[-1]) + 1,
                    "test_start": int(test[0]),
                    "test_end": int(test[-1]) + 1,
                }
            )
        return out


def holdout_recent(n: int, fraction: float = 0.2) -> tuple[np.ndarray, np.ndarray]:
    """Reserve the most recent ``fraction`` of samples (paper: 20 %).

    Returns ``(past_idx, recent_idx)``; samples must be time-ordered.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    cut = n - max(1, int(round(n * fraction)))
    if cut < 1:
        raise ValueError(f"holdout fraction {fraction} leaves no training data")
    return np.arange(0, cut, dtype=np.intp), np.arange(cut, n, dtype=np.intp)


def shuffled_split(
    n: int,
    test_fraction: float = 1.0 / 6.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Leaky IID split used *only* by the leakage ablation (A2).

    Shuffles all samples before splitting, which the paper shows inflates
    measured performance ~2× because back-to-back sibling jobs straddle the
    train/test boundary.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = default_rng(seed)
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError("test_fraction leaves no training data")
    return np.sort(perm[:-n_test]), np.sort(perm[-n_test:])
