"""Descriptive trace statistics (paper Table I).

Table I reports, for the Anvil history: requested time, runtime and wasted
time in **hours** (max / mean / median / std-dev / count) plus the number of
jobs submitted per user.  :func:`job_statistics` computes the same rows for
any :class:`~repro.data.schema.JobSet` so the Table I bench can print a
like-for-like table.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.data.schema import JobSet

__all__ = ["summarize_variable", "job_statistics"]


def summarize_variable(values: np.ndarray) -> dict[str, float]:
    """Max / mean / median / std (ddof=0) / count of one variable."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return {"max": 0.0, "mean": 0.0, "median": 0.0, "std": 0.0, "count": 0}
    return {
        "max": float(values.max()),
        "mean": float(values.mean()),
        "median": float(np.median(values)),
        "std": float(values.std()),
        "count": int(values.size),
    }


def job_statistics(jobs: JobSet) -> dict[str, dict[str, float]]:
    """Compute the four Table I rows for a trace.

    Returns a mapping of row name → summary dict.  Time rows are in hours;
    the jobs-per-user row counts accounting records per distinct user.
    """
    req_hr = jobs.column("timelimit_min") / 60.0
    run_hr = jobs.runtime_min / 60.0
    wasted_hr = jobs.wasted_time_min / 60.0
    _, per_user = np.unique(jobs.column("user_id"), return_counts=True)
    return {
        "Requested Time (hr)": summarize_variable(req_hr),
        "Runtime (hr)": summarize_variable(run_hr),
        "Wasted Time (hr)": summarize_variable(wasted_hr),
        "Jobs Submitted By User": summarize_variable(per_user.astype(np.float64)),
    }


def format_statistics_table(stats: Mapping[str, Mapping[str, float]]) -> str:
    """Render :func:`job_statistics` output as an aligned text table."""
    header = f"{'Variable':<26}{'Max':>12}{'Mean':>10}{'Median':>10}{'Std Dev':>10}{'Count':>12}"
    lines = [header, "-" * len(header)]
    for name, row in stats.items():
        lines.append(
            f"{name:<26}{row['max']:>12.1f}{row['mean']:>10.2f}"
            f"{row['median']:>10.2f}{row['std']:>10.2f}{int(row['count']):>12d}"
        )
    return "\n".join(lines)
