"""Columnar job-record schema.

One :class:`JobSet` holds an entire accounting trace as a NumPy structured
array — the cache-friendly layout the hpc-parallel guides recommend over
per-job Python objects.  All timestamps are seconds from the trace origin;
durations exposed to models are minutes, matching the paper's definition of
queue time ("delay in minutes between when a job is eligible to run and when
it starts running").
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["JobState", "JOB_DTYPE", "JobSet"]


class JobState(enum.IntEnum):
    """Terminal job states mirroring the Slurm accounting states the paper
    keeps (administrative states are filtered out upstream)."""

    COMPLETED = 0
    FAILED = 1
    TIMEOUT = 2
    CANCELLED = 3


#: Structured dtype for one accounting record.  Field names follow Slurm's
#: sacct vocabulary where one exists.
JOB_DTYPE = np.dtype(
    [
        ("job_id", np.int64),
        ("user_id", np.int32),
        ("partition", np.int16),
        ("qos", np.int8),
        ("state", np.int8),
        ("submit_time", np.float64),  # seconds from trace origin
        ("eligible_time", np.float64),  # seconds; >= submit_time
        ("start_time", np.float64),  # seconds; >= eligible_time
        ("end_time", np.float64),  # seconds; >= start_time
        ("req_cpus", np.int32),
        ("req_mem_gb", np.float64),
        ("req_nodes", np.int32),
        ("timelimit_min", np.float64),  # requested walltime, minutes
        ("priority", np.float64),  # Slurm priority at eligibility
    ]
)


class JobSet:
    """A trace of jobs backed by one structured array.

    Provides named-column access, derived duration columns, filtering and
    ordering.  All mutating operations return new views/instances; the
    underlying record array is treated as immutable once built.
    """

    def __init__(self, records: np.ndarray, partition_names: Sequence[str] | None = None):
        records = np.asarray(records)
        if records.dtype != JOB_DTYPE:
            raise TypeError(
                f"records must have JOB_DTYPE, got {records.dtype}"
            )
        self._records = records
        self.partition_names: tuple[str, ...] = tuple(partition_names or ())

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, np.ndarray],
        partition_names: Sequence[str] | None = None,
    ) -> "JobSet":
        """Build from a mapping of column name → 1-D array.

        Missing columns default to zeros; unknown columns raise.
        """
        unknown = set(columns) - {name for name in JOB_DTYPE.names}
        if unknown:
            raise KeyError(f"unknown job columns: {sorted(unknown)}")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")
        (n,) = lengths
        rec = np.zeros(n, dtype=JOB_DTYPE)
        for name, values in columns.items():
            rec[name] = values
        return cls(rec, partition_names)

    @classmethod
    def empty(cls, partition_names: Sequence[str] | None = None) -> "JobSet":
        """An empty trace (useful as a fold boundary sentinel)."""
        return cls(np.zeros(0, dtype=JOB_DTYPE), partition_names)

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, key):
        if isinstance(key, str):
            return self._records[key]
        if isinstance(key, (slice, np.ndarray, list)):
            return JobSet(self._records[key], self.partition_names)
        raise TypeError(f"unsupported key type {type(key).__name__}")

    @property
    def records(self) -> np.ndarray:
        """The underlying structured array (do not mutate)."""
        return self._records

    def column(self, name: str) -> np.ndarray:
        """Return one raw column by name."""
        return self._records[name]

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def queue_time_min(self) -> np.ndarray:
        """Queue time in minutes: (start − eligible) / 60."""
        rec = self._records
        return (rec["start_time"] - rec["eligible_time"]) / 60.0

    @property
    def runtime_min(self) -> np.ndarray:
        """Actual runtime in minutes: (end − start) / 60."""
        rec = self._records
        return (rec["end_time"] - rec["start_time"]) / 60.0

    @property
    def wasted_time_min(self) -> np.ndarray:
        """Requested-but-unused walltime in minutes (floored at 0)."""
        return np.maximum(self._records["timelimit_min"] - self.runtime_min, 0.0)

    @property
    def walltime_utilization(self) -> np.ndarray:
        """Fraction of requested walltime actually used, in (0, 1]."""
        tl = np.maximum(self._records["timelimit_min"], 1e-9)
        return np.clip(self.runtime_min / tl, 0.0, 1.0)

    # ------------------------------------------------------------------ #
    # ordering / filtering
    # ------------------------------------------------------------------ #
    def sort_by(self, field: str, kind: str = "stable") -> "JobSet":
        """Return a copy sorted ascending by ``field``."""
        order = np.argsort(self._records[field], kind=kind)
        return JobSet(self._records[order], self.partition_names)

    def where(self, mask: np.ndarray) -> "JobSet":
        """Return the subset selected by a boolean mask."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError(
                f"mask shape {mask.shape} does not match trace length {len(self)}"
            )
        return JobSet(self._records[mask], self.partition_names)

    def in_partition(self, partition: int | str) -> "JobSet":
        """Subset of jobs submitted to one partition (by index or name)."""
        idx = self.partition_index(partition)
        return self.where(self._records["partition"] == idx)

    def partition_index(self, partition: int | str) -> int:
        """Resolve a partition name or index to its integer index."""
        if isinstance(partition, str):
            try:
                return self.partition_names.index(partition)
            except ValueError:
                raise KeyError(
                    f"unknown partition {partition!r}; known: {self.partition_names}"
                ) from None
        return int(partition)

    def validate(self) -> None:
        """Check temporal invariants: submit ≤ eligible ≤ start ≤ end."""
        rec = self._records
        if np.any(rec["eligible_time"] < rec["submit_time"]):
            raise ValueError("eligible_time earlier than submit_time")
        if np.any(rec["start_time"] < rec["eligible_time"]):
            raise ValueError("start_time earlier than eligible_time")
        if np.any(rec["end_time"] < rec["start_time"]):
            raise ValueError("end_time earlier than start_time")
        if np.any(rec["req_cpus"] <= 0) or np.any(rec["req_nodes"] <= 0):
            raise ValueError("non-positive resource request")

    def concat(self, other: "JobSet") -> "JobSet":
        """Concatenate two traces (partition vocabularies must match)."""
        if self.partition_names and other.partition_names:
            if self.partition_names != other.partition_names:
                raise ValueError("partition vocabularies differ")
        names = self.partition_names or other.partition_names
        return JobSet(
            np.concatenate([self._records, other._records]), names
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JobSet(n={len(self)}, partitions={list(self.partition_names)})"
