"""Job accounting data layer.

The paper stages Slurm ``sacct`` history in PostgreSQL; this package is the
equivalent substrate: a columnar, structured-array job store
(:class:`~repro.data.schema.JobSet`), a portable text format modelled on the
Standard Workload Format (:mod:`repro.data.swf`), leakage-safe dataset
splitting (:mod:`repro.data.splits`) and descriptive statistics matching the
paper's Table I (:mod:`repro.data.stats`).
"""

from repro.data.schema import JOB_DTYPE, JobSet, JobState
from repro.data.splits import (
    TimeSeriesSplit,
    holdout_recent,
    shuffled_split,
)
from repro.data.stats import job_statistics, summarize_variable
from repro.data.swf import read_swf, write_swf

__all__ = [
    "JOB_DTYPE",
    "JobSet",
    "JobState",
    "TimeSeriesSplit",
    "holdout_recent",
    "shuffled_split",
    "job_statistics",
    "summarize_variable",
    "read_swf",
    "write_swf",
]
