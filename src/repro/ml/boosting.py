"""Gradient-boosted trees with the XGBoost objective.

The paper benchmarks against "an XGBoost regression model"; this is the
same algorithm family implemented directly: additive trees fitted to
first/second-order gradients of squared error, L2-regularised leaf weights
(−G/(H+λ)), shrinkage, and row/column subsampling.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor
from repro.ml.binning import BinnedMatrix, resolve_tree_method
from repro.ml.tree import Tree, _Builder, _HistBuilder
from repro.obs import metrics
from repro.utils.rng import default_rng
from repro.utils.validation import check_2d, check_fitted

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor(Regressor):
    """Second-order boosting for squared loss.

    Parameters
    ----------
    n_estimators, learning_rate:
        Boosting rounds and shrinkage.
    reg_lambda:
        L2 penalty on leaf weights (XGBoost λ).
    min_split_gain:
        Minimum gain to split (XGBoost γ).
    subsample, colsample:
        Per-round row and per-split column sampling fractions.
    tree_method:
        ``"hist"`` (features binned once per fit, shared by every round —
        the default) or ``"exact"``; ``None`` reads ``REPRO_TREE_METHOD``.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 6,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        reg_lambda: float = 1.0,
        min_split_gain: float = 0.0,
        subsample: float = 1.0,
        colsample: float = 1.0,
        seed: int | np.random.Generator | None = 0,
        tree_method: str | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 < subsample <= 1.0 or not 0.0 < colsample <= 1.0:
            raise ValueError("subsample/colsample must be in (0, 1]")
        if reg_lambda < 0:
            raise ValueError("reg_lambda must be non-negative")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.min_split_gain = min_split_gain
        self.subsample = subsample
        self.colsample = colsample
        self.seed = seed
        self.tree_method = tree_method
        self.trees_: list[Tree] | None = None
        self.base_score_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        X, y = self._validate_fit(X, y)
        rng = default_rng(self.seed)
        n, n_features = X.shape
        method = resolve_tree_method(self.tree_method)
        # Bin once; every boosting round reuses the codes (row subsamples
        # are views into them, the bin edges never move).
        binned = BinnedMatrix.from_matrix(X) if method == "hist" else None
        self.base_score_ = float(y.mean())
        pred = np.full(n, self.base_score_)
        self.trees_ = []
        max_feats = max(1, int(round(self.colsample * n_features)))
        for _ in range(self.n_estimators):
            # Squared loss: g = pred − y, h = 1.
            g = pred - y
            if self.subsample < 1.0:
                rows = rng.random(n) < self.subsample
                if not np.any(rows):
                    rows[rng.integers(0, n)] = True
            else:
                rows = slice(None)
            kwargs = dict(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_feats if self.colsample < 1.0 else None,
                lam=self.reg_lambda,
                min_gain=max(self.min_split_gain, 1e-12),
                rng=rng,
            )
            if binned is not None:
                bm = binned if isinstance(rows, slice) else binned.take(rows)
                tree = _HistBuilder(**kwargs).build_binned(
                    bm, g[rows], None, unit_hessian=True
                )
            else:
                h = np.ones(n)
                tree = _Builder(**kwargs).build(X[rows], g[rows], h[rows])
            self.trees_.append(tree)
            pred += self.learning_rate * tree.predict(X)
        labels = {"model": "boosting", "method": method}
        reg = metrics.get_registry()
        reg.counter(
            "ml_tree_fits_total", help="ensemble fit calls", labels=labels
        ).inc()
        reg.counter(
            "ml_trees_fitted_total", help="individual trees grown", labels=labels
        ).inc(len(self.trees_))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "trees_")
        X = check_2d(X, "X")
        out = np.full(len(X), self.base_score_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(X)
        return out

    def staged_predict(self, X: np.ndarray) -> np.ndarray:
        """(n_estimators, n_samples) predictions after each round."""
        check_fitted(self, "trees_")
        X = check_2d(X, "X")
        out = np.full(len(X), self.base_score_)
        stages = np.empty((len(self.trees_), len(X)))
        for i, tree in enumerate(self.trees_):
            out = out + self.learning_rate * tree.predict(X)
            stages[i] = out
        return stages
