"""Random forest regression.

Bagged CART trees with per-node feature subsampling — the paper's baseline
("a random forest was used as a benchmark … to reduce overfitting and have
less variance") and the engine of the runtime-prediction feature model.
Trees train independently, so fitting fans out across processes via
:func:`repro.utils.parallel.parallel_map` with per-tree seeds spawned from
one root seed (results identical serial or parallel).

With ``tree_method="hist"`` (the default) the feature matrix is
quantile-binned to uint8 codes exactly once per ``fit`` and the resulting
:class:`~repro.ml.binning.BinnedMatrix` is shared by every tree —
bootstrap resamples are row subsets of the codes, so the binning cost is
amortised across the whole ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Regressor
from repro.ml.binning import BinnedMatrix, resolve_tree_method
from repro.ml.tree import DecisionTreeRegressor, Tree, _Builder, _HistBuilder
from repro.obs import metrics
from repro.utils.parallel import parallel_map
from repro.utils.rng import default_rng, spawn_seed_sequences
from repro.utils.validation import check_2d, check_fitted

__all__ = ["RandomForestRegressor"]


@dataclass
class _TreeTask:
    """Picklable unit of work: grow one tree on a bootstrap sample.

    Exactly one of ``X``/``binned`` is set: the raw matrix for the exact
    sorted search, or the shared pre-binned codes for histogram growing.
    """

    X: np.ndarray | None
    binned: BinnedMatrix | None
    y: np.ndarray
    max_depth: int
    min_samples_split: int
    min_samples_leaf: int
    max_features: int | None
    bootstrap: bool
    seed_state: np.random.SeedSequence

    def __call__(self, _: int = 0) -> Tree:
        rng = default_rng(self.seed_state)
        n = len(self.y)
        idx = rng.integers(0, n, size=n) if self.bootstrap else slice(None)
        kwargs = dict(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            lam=0.0,
            min_gain=1e-12,
            rng=rng,
        )
        yb = self.y[idx]
        if self.binned is not None:
            bm = self.binned.take(idx) if self.bootstrap else self.binned
            return _HistBuilder(**kwargs).build_binned(
                bm, -yb, None, unit_hessian=True
            )
        return _Builder(**kwargs).build(self.X[idx], -yb, np.ones_like(yb))


def _run_task(task: _TreeTask) -> Tree:
    return task()


class RandomForestRegressor(Regressor):
    """Bagging ensemble of CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_features:
        Per-split feature subset (default ``1/3`` of features, the
        regression convention).
    n_jobs:
        Processes for tree fitting (1 = serial).
    tree_method:
        ``"hist"`` (histogram splits over a shared binned matrix, the
        default) or ``"exact"``; ``None`` reads ``REPRO_TREE_METHOD``.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 14,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: int | float | str | None = 1.0 / 3.0,
        bootstrap: bool = True,
        seed: int | None = 0,
        n_jobs: int = 1,
        tree_method: str | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.n_jobs = n_jobs
        self.tree_method = tree_method
        self.trees_: list[Tree] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X, y = self._validate_fit(X, y)
        method = resolve_tree_method(self.tree_method)
        binned = BinnedMatrix.from_matrix(X) if method == "hist" else None
        proto = DecisionTreeRegressor(max_features=self.max_features)
        mf = proto._resolve_max_features(X.shape[1])
        seeds = spawn_seed_sequences(self.seed, self.n_estimators)
        tasks = [
            _TreeTask(
                X=None if binned is not None else X,
                binned=binned,
                y=y,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=mf,
                bootstrap=self.bootstrap,
                seed_state=s,
            )
            for s in seeds
        ]
        self.trees_ = parallel_map(_run_task, tasks, n_jobs=self.n_jobs)
        # Counters bump in the parent so parallel fits are still counted
        # (workers have their own registries that die with the pool).
        labels = {"model": "forest", "method": method}
        reg = metrics.get_registry()
        reg.counter(
            "ml_tree_fits_total", help="ensemble fit calls", labels=labels
        ).inc()
        reg.counter(
            "ml_trees_fitted_total", help="individual trees grown", labels=labels
        ).inc(len(self.trees_))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "trees_")
        X = check_2d(X, "X")
        out = np.zeros(len(X), dtype=np.float64)
        for tree in self.trees_:
            out += tree.predict(X)
        out /= len(self.trees_)
        return out

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Across-tree standard deviation — a cheap uncertainty signal."""
        check_fitted(self, "trees_")
        X = check_2d(X, "X")
        preds = np.stack([tree.predict(X) for tree in self.trees_])
        return preds.std(axis=0)

    def feature_importances(self, n_features: int) -> np.ndarray:
        """Split-count importance normalised to sum 1."""
        check_fitted(self, "trees_")
        counts = np.zeros(n_features, dtype=np.float64)
        for tree in self.trees_:
            used = tree.feature[tree.feature >= 0]
            np.add.at(counts, used, tree.n_samples[tree.feature >= 0])
        total = counts.sum()
        return counts / total if total > 0 else counts
