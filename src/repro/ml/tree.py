"""CART regression trees with vectorised split search.

The tree is grown with an explicit node stack; at each node, every
candidate feature's best threshold is found either by the exact sorted
search (one sort plus prefix-sum arithmetic per feature) or by the
histogram method (``tree_method="hist"``, the default): features are
quantile-binned to uint8 once per fit (:mod:`repro.ml.binning`), per-node
(grad, hessian, count) histograms come from one flattened ``np.bincount``,
every bin boundary is scored in a single cumulative-sum pass, and sibling
histograms are derived by subtraction.  Prediction walks the flat node
arrays level-synchronously for whole batches at once and is method-agnostic
(hist thresholds live in raw feature space).

Two split criteria share the machinery:

- ``"mse"`` — classic variance reduction, leaf value = mean(y).
- ``"xgb"`` — second-order gain on (gradient, hessian) pairs with L2
  regularisation λ, leaf value = −G/(H+λ); this is the XGBoost objective
  used by :class:`repro.ml.boosting.GradientBoostingRegressor`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Regressor
from repro.ml.binning import (
    BinnedMatrix,
    evaluate_splits,
    grouped_histograms,
    resolve_tree_method,
    sampled_histograms,
)
from repro.utils.rng import default_rng
from repro.utils.validation import check_2d, check_fitted

__all__ = ["DecisionTreeRegressor", "Tree"]

_LEAF = -1


@dataclass
class Tree:
    """Flat array representation of a fitted tree.

    ``feature[i] == -1`` marks a leaf whose prediction is ``value[i]``;
    internal nodes route ``x[feature] <= threshold`` to ``left``, else
    ``right``.
    """

    feature: np.ndarray  # int32, -1 for leaves
    threshold: np.ndarray  # float64
    left: np.ndarray  # int32 child ids
    right: np.ndarray
    value: np.ndarray  # float64 leaf predictions
    n_samples: np.ndarray  # int64 training samples per node

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.feature == _LEAF))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorised batch prediction by level-synchronous descent."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        node = np.zeros(len(X), dtype=np.int32)
        active = self.feature[node] != _LEAF
        while np.any(active):
            idx = np.flatnonzero(active)
            nd = node[idx]
            f = self.feature[nd]
            go_left = X[idx, f] <= self.threshold[nd]
            node[idx] = np.where(go_left, self.left[nd], self.right[nd])
            active[idx] = self.feature[node[idx]] != _LEAF
        return self.value[node]

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf node index for each row."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        node = np.zeros(len(X), dtype=np.int32)
        active = self.feature[node] != _LEAF
        while np.any(active):
            idx = np.flatnonzero(active)
            nd = node[idx]
            f = self.feature[nd]
            go_left = X[idx, f] <= self.threshold[nd]
            node[idx] = np.where(go_left, self.left[nd], self.right[nd])
            active[idx] = self.feature[node[idx]] != _LEAF
        return node

    def decision_depth(self) -> int:
        """Height of the tree (leaf-only tree has depth 0)."""
        depth = np.zeros(self.n_nodes, dtype=np.int64)
        # Children always have larger indices than parents (build order),
        # so one forward pass computes depths.
        for i in range(self.n_nodes):
            if self.feature[i] != _LEAF:
                depth[self.left[i]] = depth[i] + 1
                depth[self.right[i]] = depth[i] + 1
        return int(depth.max()) if self.n_nodes else 0


def _best_split_feature(
    xf: np.ndarray,
    g: np.ndarray,
    h: np.ndarray,
    min_leaf: int,
    lam: float,
) -> tuple[float, float]:
    """Best (gain, threshold) for one feature column.

    Works on (gradient, hessian) pairs; for the MSE criterion the caller
    passes ``g = −y`` and ``h = 1`` (the two objectives coincide up to
    constants with λ=0).  Gain is the second-order score improvement;
    −inf when no valid split exists.
    """
    order = np.argsort(xf, kind="stable")
    xs = xf[order]
    gs = np.cumsum(g[order])
    hs = np.cumsum(h[order])
    n = len(xs)
    G, H = gs[-1], hs[-1]
    # Candidate split after position k (1-based left count).
    k = np.arange(1, n)
    valid = (xs[1:] != xs[:-1]) & (k >= min_leaf) & ((n - k) >= min_leaf)
    if not np.any(valid):
        return -np.inf, 0.0
    Gl = gs[:-1]
    Hl = hs[:-1]
    gain = Gl**2 / (Hl + lam) + (G - Gl) ** 2 / (H - Hl + lam) - G**2 / (H + lam)
    gain = np.where(valid, gain, -np.inf)
    best = int(np.argmax(gain))
    thr = 0.5 * (xs[best] + xs[best + 1])
    # Guard against midpoint rounding onto the right value for adjacent
    # floats: route on <=, so ensure thr < xs[best+1].
    if thr >= xs[best + 1]:
        thr = xs[best]
    return float(gain[best]), thr


class _NodeArrays:
    """Append-only flat node storage shared by both builders."""

    def __init__(self) -> None:
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.value: list[float] = []
        self.n_samples: list[int] = []

    def new_node(self) -> int:
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(0.0)
        self.n_samples.append(0)
        return len(self.feature) - 1

    def freeze(self) -> Tree:
        return Tree(
            feature=np.asarray(self.feature, dtype=np.int32),
            threshold=np.asarray(self.threshold, dtype=np.float64),
            left=np.asarray(self.left, dtype=np.int32),
            right=np.asarray(self.right, dtype=np.int32),
            value=np.asarray(self.value, dtype=np.float64),
            n_samples=np.asarray(self.n_samples, dtype=np.int64),
        )


class _Builder:
    """Grows one tree on (g, h) pairs; shared by CART and boosting."""

    def __init__(
        self,
        max_depth: int,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: int | None,
        lam: float,
        min_gain: float,
        rng: np.random.Generator,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.lam = lam
        self.min_gain = min_gain
        self.rng = rng

    def _sample_features(self, n_features: int) -> np.ndarray:
        if self.max_features is not None and self.max_features < n_features:
            return self.rng.choice(n_features, self.max_features, replace=False)
        return np.arange(n_features)

    def build(self, X: np.ndarray, g: np.ndarray, h: np.ndarray) -> Tree:
        n_features = X.shape[1]
        nodes = _NodeArrays()
        root = nodes.new_node()
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(len(X)), 0)]
        while stack:
            node, idx, depth = stack.pop()
            Gi = g[idx]
            Hi = h[idx]
            nodes.n_samples[node] = len(idx)
            nodes.value[node] = float(-Gi.sum() / (Hi.sum() + self.lam))
            if depth >= self.max_depth or len(idx) < self.min_samples_split:
                continue
            feats = self._sample_features(n_features)
            best_gain, best_f, best_thr = self.min_gain, -1, 0.0
            Xi = X[idx]
            for f in feats:
                gain, thr = _best_split_feature(
                    Xi[:, f], Gi, Hi, self.min_samples_leaf, self.lam
                )
                if gain > best_gain:
                    best_gain, best_f, best_thr = gain, int(f), thr
            if best_f < 0:
                continue
            mask = Xi[:, best_f] <= best_thr
            li, ri = idx[mask], idx[~mask]
            if len(li) < self.min_samples_leaf or len(ri) < self.min_samples_leaf:
                continue
            nodes.feature[node] = best_f
            nodes.threshold[node] = best_thr
            ln = nodes.new_node()
            rn = nodes.new_node()
            nodes.left[node] = ln
            nodes.right[node] = rn
            stack.append((ln, li, depth + 1))
            stack.append((rn, ri, depth + 1))
        return nodes.freeze()


#: Cap (in float64 entries) on transient per-level histogram blocks; levels
#: whose eval-node histograms would exceed it are processed in slot blocks
#: without retaining hists for subtraction.
_HIST_ENTRY_BUDGET = 1 << 23


class _HistBuilder(_Builder):
    """Level-synchronous histogram growth over a :class:`BinnedMatrix`.

    Same growth policy and gain arithmetic as :class:`_Builder`, but the
    tree is grown one depth level at a time: histograms for every
    splittable node of the level come from a single flattened
    ``np.bincount`` (cost ``O(live_rows × F)`` per level, independent of
    node count), all bin boundaries of all features of all nodes are scored
    in one cumulative-sum pass, and below the root only each pair's smaller
    child is accumulated — its sibling's histogram is the parent's minus
    the smaller child's.
    """

    def build_binned(
        self,
        bm: BinnedMatrix,
        g: np.ndarray,
        h: np.ndarray | None,
        unit_hessian: bool = False,
    ) -> Tree:
        """Grow a tree on binned codes; ``h`` may be None iff unit_hessian."""
        f_all = bm.n_features
        hv = None if unit_hessian else h
        n = bm.n_rows
        rows = np.arange(n, dtype=np.intp)  # rows still in splittable nodes
        slot = np.zeros(n, dtype=np.intp)  # level-local node index per row
        cnt = np.array([n], dtype=np.int64)
        gsum = np.array([g.sum()])
        hsum = np.array([float(n) if unit_hessian else h.sum()])
        depth = 0
        blocks: list[tuple[np.ndarray, ...]] = []  # one node block per level
        lo = 0  # node id of the level's first node
        # Histograms of the previous level's split nodes, ordered by pair:
        # child slots 2t / 2t+1 descend from parent_hists[t].
        parent_hists: tuple[np.ndarray, ...] | None = None
        while True:
            k = len(cnt)
            feature = np.full(k, _LEAF, dtype=np.int32)
            threshold = np.zeros(k)
            left = np.full(k, _LEAF, dtype=np.int32)
            right = np.full(k, _LEAF, dtype=np.int32)
            value = -gsum / (hsum + self.lam)
            # Splitting nodes mutate this block in place below.
            blocks.append((feature, threshold, left, right, value, cnt))
            if depth >= self.max_depth:
                break
            eligible = np.flatnonzero(cnt >= self.min_samples_split)
            if not len(eligible):
                break
            feat_mask = fcols = None
            if self.max_features is not None and self.max_features < f_all:
                # One vectorised draw for the whole level: each node keeps
                # the max_features features with the smallest uniforms
                # (a without-replacement sample per node).
                u = self.rng.random((len(eligible), f_all))
                keep_f = np.argpartition(u, self.max_features - 1, axis=1)
                fcols = keep_f[:, : self.max_features].astype(np.intp)
                feat_mask = np.zeros((len(eligible), f_all), dtype=bool)
                np.put_along_axis(feat_mask, fcols, True, axis=1)
            gain, best_f, best_thr, best_b, lg, lh, lc, ev_hists = (
                self._level_splits(
                    bm, rows, slot, cnt, gsum, hsum, eligible, parent_hists,
                    g, hv, feat_mask, fcols,
                )
            )
            win = np.flatnonzero(gain > self.min_gain)
            if not len(win):
                break
            # Children are created in ascending slot order, so the next
            # level's ids are contiguous and pair t sits at slots 2t/2t+1.
            s = eligible[win]
            new_lo = lo + k
            nw = len(win)
            feature[s] = best_f[win]
            threshold[s] = best_thr[win]
            left[s] = new_lo + 2 * np.arange(nw, dtype=np.int32)
            right[s] = left[s] + 1
            if ev_hists is not None:
                pg, ph, pc = ev_hists
                pgw, pcw = pg[win], pc[win]
                parent_hists = (pgw, pcw if ph is pc else ph[win], pcw)
            else:
                parent_hists = None
            # Children's node statistics come from the chosen split's
            # left-side sums — no per-row rescan.
            cnt_next = np.empty(2 * nw, dtype=np.int64)
            cnt_next[0::2] = lc[win].astype(np.int64)
            cnt_next[1::2] = cnt[s] - cnt_next[0::2]
            gsum_next = np.empty(2 * nw)
            gsum_next[0::2] = lg[win]
            gsum_next[1::2] = gsum[s] - lg[win]
            hsum_next = np.empty(2 * nw)
            hsum_next[0::2] = lh[win]
            hsum_next[1::2] = hsum[s] - lh[win]
            # Route rows of split nodes to their children; drop leaf rows.
            # Splits compare in global-code space (offset[f] + bin), so
            # only ``global_codes`` is touched per row.
            split_t = np.full(k, -1, dtype=np.intp)
            split_t[s] = np.arange(nw, dtype=np.intp)
            f_w = best_f[win].astype(np.intp)
            gb_w = bm.offsets[f_w] + best_b[win]
            t_row = split_t[slot]
            ix = np.flatnonzero(t_row >= 0)
            rows = rows.take(ix)
            t = t_row.take(ix)
            go_right = bm.global_codes[rows, f_w.take(t)] > gb_w.take(t)
            slot = 2 * t
            slot += go_right
            cnt, gsum, hsum = cnt_next, gsum_next, hsum_next
            lo = new_lo
            depth += 1
        return Tree(
            feature=np.concatenate([b[0] for b in blocks]),
            threshold=np.concatenate([b[1] for b in blocks]),
            left=np.concatenate([b[2] for b in blocks]),
            right=np.concatenate([b[3] for b in blocks]),
            value=np.concatenate([b[4] for b in blocks]),
            n_samples=np.concatenate([b[5] for b in blocks]),
        )

    def _level_splits(
        self,
        bm: BinnedMatrix,
        rows: np.ndarray,
        slot: np.ndarray,
        cnt: np.ndarray,
        gsum: np.ndarray,
        hsum: np.ndarray,
        eligible: np.ndarray,
        parent_hists: tuple[np.ndarray, ...] | None,
        g: np.ndarray,
        hv: np.ndarray | None,
        feat_mask: np.ndarray | None,
        fcols: np.ndarray | None,
    ) -> tuple[np.ndarray, ...]:
        """Best split per eligible slot.

        Returns per-eligible-node (gain, feature, threshold, bin,
        left_grad, left_hess, left_count) plus the eligible nodes'
        histograms (for next-level sibling subtraction), or ``None`` for
        the latter when subtraction does not apply (feature-subsampled
        levels, or levels over the histogram memory budget).

        With feature subsampling on (``fcols`` given), only each node's
        drawn columns are accumulated (:func:`sampled_histograms`) and the
        node totals come from the builder's running sums; sibling
        subtraction is skipped because children draw fresh feature
        subsets, making parent histograms non-reusable.  Without
        subsampling, every slot is accumulated directly at the root and
        below it only each pair's smaller child is — its sibling's
        histogram is the parent's minus the smaller child's.
        """
        w = bm.width
        ne = len(eligible)
        lam, min_leaf = self.lam, self.min_samples_leaf
        if fcols is not None:
            lut = np.full(len(cnt), -1, dtype=np.intp)
            lut[eligible] = np.arange(ne)
            grp = lut[slot]
            m = grp >= 0
            r, gm = (rows, grp) if m.all() else (rows[m], grp[m])
            totals = (gsum[eligible], hsum[eligible], cnt[eligible])
            if ne * w > _HIST_ENTRY_BUDGET:
                # Rare huge level: bound memory by scoring nodes in blocks.
                block = max(1, _HIST_ENTRY_BUDGET // w)
                parts = []
                for a in range(0, ne, block):
                    nb = min(block, ne - a)
                    mb = (gm >= a) & (gm < a + nb)
                    grad, hess, count = sampled_histograms(
                        bm, r[mb], gm[mb] - a, nb, g, hv, fcols[a : a + nb]
                    )
                    parts.append(
                        evaluate_splits(
                            grad, hess if hess is not None else count, count,
                            bm, min_leaf, lam, feat_mask[a : a + nb],
                            totals=tuple(t[a : a + nb] for t in totals),
                        )
                    )
                return tuple(
                    np.concatenate([p[i] for p in parts]) for i in range(7)
                ) + (None,)
            grad, hess, count = sampled_histograms(bm, r, gm, ne, g, hv, fcols)
            out = evaluate_splits(
                grad, hess if hess is not None else count, count,
                bm, min_leaf, lam, feat_mask, totals=totals,
            )
            return out + (None,)

        if ne * w > _HIST_ENTRY_BUDGET:
            # Rare huge level: bound memory by scoring eligible slots in
            # blocks and skip histogram retention (next level goes direct).
            block = max(1, _HIST_ENTRY_BUDGET // w)
            parts = []
            for a in range(0, ne, block):
                sub = eligible[a : a + block]
                lut = np.full(len(cnt), -1, dtype=np.intp)
                lut[sub] = np.arange(len(sub))
                grp = lut[slot]
                m = grp >= 0
                grad, hess, count = grouped_histograms(
                    bm, rows[m], grp[m], len(sub), g, hv
                )
                parts.append(
                    evaluate_splits(
                        grad, hess if hess is not None else count, count,
                        bm, min_leaf, lam, None,
                    )
                )
            return tuple(
                np.concatenate([p[i] for p in parts]) for i in range(7)
            ) + (None,)

        if parent_hists is None:
            # Root level (or post-fallback): accumulate every slot directly.
            if ne == 1 and len(cnt) == 1 and len(rows) == bm.n_rows:
                grad, hess, count = grouped_histograms(bm, None, None, 1, g, hv)
            else:
                lut = np.full(len(cnt), -1, dtype=np.intp)
                lut[eligible] = np.arange(ne)
                grp = lut[slot]
                m = grp >= 0
                if m.all():
                    grad, hess, count = grouped_histograms(
                        bm, rows, grp, ne, g, hv
                    )
                else:
                    grad, hess, count = grouped_histograms(
                        bm, rows[m], grp[m], ne, g, hv
                    )
        else:
            # Sibling subtraction: bincount only each pair's smaller child;
            # the larger eligible child is parent − smaller sibling.
            sib = eligible ^ 1
            is_small = (cnt[eligible] < cnt[sib]) | (
                (cnt[eligible] == cnt[sib]) & (eligible < sib)
            )
            direct = np.unique(np.where(is_small, eligible, sib))
            lut = np.full(len(cnt), -1, dtype=np.intp)
            lut[direct] = np.arange(len(direct))
            grp = lut[slot]
            m = grp >= 0
            d_grad, d_hess, d_count = grouped_histograms(
                bm, rows[m], grp[m], len(direct), g, hv
            )
            small_ix = lut[np.where(is_small, eligible, sib)]
            grad = d_grad[small_ix]
            count = d_count[small_ix]
            hess = d_hess[small_ix] if d_hess is not None else None
            der = np.flatnonzero(~is_small)
            if len(der):
                pair = eligible[der] // 2
                pg, ph, pc = parent_hists
                grad[der] = pg[pair] - grad[der]
                count[der] = pc[pair] - count[der]
                if hess is not None:
                    hess[der] = ph[pair] - hess[der]
        ev_hists = (
            grad,
            hess if hess is not None else count,
            count,
        )
        out = evaluate_splits(
            ev_hists[0], ev_hists[1], ev_hists[2], bm, min_leaf, lam, feat_mask
        )
        return out + (ev_hists,)


class DecisionTreeRegressor(Regressor):
    """CART regression tree (variance-reduction splits, mean leaves).

    Parameters follow the scikit-learn vocabulary.  ``max_features`` may be
    ``None`` (all), an int, a float fraction, or ``"sqrt"``.
    ``tree_method`` selects histogram (``"hist"``, the default) or exact
    sorted split search; ``None`` reads ``REPRO_TREE_METHOD``.  Both are
    deterministic for a fixed seed; hist splits coincide with exact ones
    whenever features have at most 256 distinct values, and otherwise land
    on quantile-bin boundaries.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        seed: int | np.random.Generator | None = None,
        tree_method: str | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.tree_method = tree_method
        self.tree_: Tree | None = None

    def _resolve_max_features(self, n_features: int) -> int | None:
        mf = self.max_features
        if mf is None:
            return None
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError("float max_features must be in (0, 1]")
            return max(1, int(mf * n_features))
        if isinstance(mf, int):
            if mf < 1:
                raise ValueError("int max_features must be >= 1")
            return min(mf, n_features)
        raise ValueError(f"bad max_features {mf!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X, y = self._validate_fit(X, y)
        method = resolve_tree_method(self.tree_method)
        kwargs = dict(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self._resolve_max_features(X.shape[1]),
            lam=0.0,
            min_gain=1e-12,
            rng=default_rng(self.seed),
        )
        # MSE criterion as a second-order objective: g = −y, h = 1 gives
        # leaf value mean(y) and gain ∝ variance reduction.
        if method == "hist":
            bm = BinnedMatrix.from_matrix(X)
            self.tree_ = _HistBuilder(**kwargs).build_binned(
                bm, -y, None, unit_hessian=True
            )
        else:
            self.tree_ = _Builder(**kwargs).build(X, -y, np.ones_like(y))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "tree_")
        return self.tree_.predict(check_2d(X, "X"))

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index per row (for tests and leaf-level analyses)."""
        check_fitted(self, "tree_")
        return self.tree_.apply(check_2d(X, "X"))
