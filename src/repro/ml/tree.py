"""CART regression trees with vectorised split search.

The tree is grown with an explicit node stack; at each node, every
candidate feature's best threshold is found with one sort plus prefix-sum
arithmetic (no per-threshold Python loop), and prediction walks the flat
node arrays level-synchronously for whole batches at once.

Two split criteria share the machinery:

- ``"mse"`` — classic variance reduction, leaf value = mean(y).
- ``"xgb"`` — second-order gain on (gradient, hessian) pairs with L2
  regularisation λ, leaf value = −G/(H+λ); this is the XGBoost objective
  used by :class:`repro.ml.boosting.GradientBoostingRegressor`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Regressor
from repro.utils.rng import default_rng
from repro.utils.validation import check_2d, check_fitted

__all__ = ["DecisionTreeRegressor", "Tree"]

_LEAF = -1


@dataclass
class Tree:
    """Flat array representation of a fitted tree.

    ``feature[i] == -1`` marks a leaf whose prediction is ``value[i]``;
    internal nodes route ``x[feature] <= threshold`` to ``left``, else
    ``right``.
    """

    feature: np.ndarray  # int32, -1 for leaves
    threshold: np.ndarray  # float64
    left: np.ndarray  # int32 child ids
    right: np.ndarray
    value: np.ndarray  # float64 leaf predictions
    n_samples: np.ndarray  # int64 training samples per node

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.feature == _LEAF))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorised batch prediction by level-synchronous descent."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        node = np.zeros(len(X), dtype=np.int32)
        active = self.feature[node] != _LEAF
        while np.any(active):
            idx = np.flatnonzero(active)
            nd = node[idx]
            f = self.feature[nd]
            go_left = X[idx, f] <= self.threshold[nd]
            node[idx] = np.where(go_left, self.left[nd], self.right[nd])
            active[idx] = self.feature[node[idx]] != _LEAF
        return self.value[node]

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf node index for each row."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        node = np.zeros(len(X), dtype=np.int32)
        active = self.feature[node] != _LEAF
        while np.any(active):
            idx = np.flatnonzero(active)
            nd = node[idx]
            f = self.feature[nd]
            go_left = X[idx, f] <= self.threshold[nd]
            node[idx] = np.where(go_left, self.left[nd], self.right[nd])
            active[idx] = self.feature[node[idx]] != _LEAF
        return node

    def decision_depth(self) -> int:
        """Height of the tree (leaf-only tree has depth 0)."""
        depth = np.zeros(self.n_nodes, dtype=np.int64)
        # Children always have larger indices than parents (build order),
        # so one forward pass computes depths.
        for i in range(self.n_nodes):
            if self.feature[i] != _LEAF:
                depth[self.left[i]] = depth[i] + 1
                depth[self.right[i]] = depth[i] + 1
        return int(depth.max()) if self.n_nodes else 0


def _best_split_feature(
    xf: np.ndarray,
    g: np.ndarray,
    h: np.ndarray,
    min_leaf: int,
    lam: float,
) -> tuple[float, float]:
    """Best (gain, threshold) for one feature column.

    Works on (gradient, hessian) pairs; for the MSE criterion the caller
    passes ``g = −y`` and ``h = 1`` (the two objectives coincide up to
    constants with λ=0).  Gain is the second-order score improvement;
    −inf when no valid split exists.
    """
    order = np.argsort(xf, kind="stable")
    xs = xf[order]
    gs = np.cumsum(g[order])
    hs = np.cumsum(h[order])
    n = len(xs)
    G, H = gs[-1], hs[-1]
    # Candidate split after position k (1-based left count).
    k = np.arange(1, n)
    valid = (xs[1:] != xs[:-1]) & (k >= min_leaf) & ((n - k) >= min_leaf)
    if not np.any(valid):
        return -np.inf, 0.0
    Gl = gs[:-1]
    Hl = hs[:-1]
    gain = Gl**2 / (Hl + lam) + (G - Gl) ** 2 / (H - Hl + lam) - G**2 / (H + lam)
    gain = np.where(valid, gain, -np.inf)
    best = int(np.argmax(gain))
    thr = 0.5 * (xs[best] + xs[best + 1])
    # Guard against midpoint rounding onto the right value for adjacent
    # floats: route on <=, so ensure thr < xs[best+1].
    if thr >= xs[best + 1]:
        thr = xs[best]
    return float(gain[best]), thr


class _Builder:
    """Grows one tree on (g, h) pairs; shared by CART and boosting."""

    def __init__(
        self,
        max_depth: int,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: int | None,
        lam: float,
        min_gain: float,
        rng: np.random.Generator,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.lam = lam
        self.min_gain = min_gain
        self.rng = rng

    def build(self, X: np.ndarray, g: np.ndarray, h: np.ndarray) -> Tree:
        n_features = X.shape[1]
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        n_samples: list[int] = []

        def new_node() -> int:
            feature.append(_LEAF)
            threshold.append(0.0)
            left.append(_LEAF)
            right.append(_LEAF)
            value.append(0.0)
            n_samples.append(0)
            return len(feature) - 1

        root = new_node()
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(len(X)), 0)]
        while stack:
            node, idx, depth = stack.pop()
            Gi = g[idx]
            Hi = h[idx]
            n_samples[node] = len(idx)
            value[node] = float(-Gi.sum() / (Hi.sum() + self.lam))
            if depth >= self.max_depth or len(idx) < self.min_samples_split:
                continue
            if self.max_features is not None and self.max_features < n_features:
                feats = self.rng.choice(n_features, self.max_features, replace=False)
            else:
                feats = np.arange(n_features)
            best_gain, best_f, best_thr = self.min_gain, -1, 0.0
            Xi = X[idx]
            for f in feats:
                gain, thr = _best_split_feature(
                    Xi[:, f], Gi, Hi, self.min_samples_leaf, self.lam
                )
                if gain > best_gain:
                    best_gain, best_f, best_thr = gain, int(f), thr
            if best_f < 0:
                continue
            mask = Xi[:, best_f] <= best_thr
            li, ri = idx[mask], idx[~mask]
            if len(li) < self.min_samples_leaf or len(ri) < self.min_samples_leaf:
                continue
            feature[node] = best_f
            threshold[node] = best_thr
            ln = new_node()
            rn = new_node()
            left[node] = ln
            right[node] = rn
            stack.append((ln, li, depth + 1))
            stack.append((rn, ri, depth + 1))
        return Tree(
            feature=np.asarray(feature, dtype=np.int32),
            threshold=np.asarray(threshold, dtype=np.float64),
            left=np.asarray(left, dtype=np.int32),
            right=np.asarray(right, dtype=np.int32),
            value=np.asarray(value, dtype=np.float64),
            n_samples=np.asarray(n_samples, dtype=np.int64),
        )


class DecisionTreeRegressor(Regressor):
    """CART regression tree (variance-reduction splits, mean leaves).

    Parameters follow the scikit-learn vocabulary.  ``max_features`` may be
    ``None`` (all), an int, a float fraction, or ``"sqrt"``.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.tree_: Tree | None = None

    def _resolve_max_features(self, n_features: int) -> int | None:
        mf = self.max_features
        if mf is None:
            return None
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError("float max_features must be in (0, 1]")
            return max(1, int(mf * n_features))
        if isinstance(mf, int):
            if mf < 1:
                raise ValueError("int max_features must be >= 1")
            return min(mf, n_features)
        raise ValueError(f"bad max_features {mf!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X, y = self._validate_fit(X, y)
        builder = _Builder(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self._resolve_max_features(X.shape[1]),
            lam=0.0,
            min_gain=1e-12,
            rng=default_rng(self.seed),
        )
        # MSE criterion as a second-order objective: g = −y, h = 1 gives
        # leaf value mean(y) and gain ∝ variance reduction.
        self.tree_ = builder.build(X, -y, np.ones_like(y))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "tree_")
        return self.tree_.predict(check_2d(X, "X"))

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index per row (for tests and leaf-level analyses)."""
        check_fitted(self, "tree_")
        return self.tree_.apply(check_2d(X, "X"))
