"""k-nearest-neighbour regression.

One of the paper's baselines (after Brown et al., who applied kNN to queue
wait prediction).  Queries go through a scipy ``cKDTree``; features should
be scaled by the caller (the comparison harness feeds all models the same
log-transformed matrix).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.ml.base import Regressor
from repro.utils.validation import check_2d, check_fitted

__all__ = ["KNeighborsRegressor"]

#: Cap on (rows × k) entries materialised per prediction block.  The
#: KD-tree query and the neighbour gathers allocate several arrays of that
#: shape; unchunked, a wide query (big trace × big k) peaks at hundreds of
#: MB.  ~1M entries keeps the transient footprint around 8 MB per array.
_QUERY_BLOCK_ENTRIES = 1 << 20


class KNeighborsRegressor(Regressor):
    """kNN with uniform or inverse-distance weights.

    Parameters
    ----------
    n_neighbors:
        k (clipped to the training size at query time).
    weights:
        ``"uniform"`` or ``"distance"`` (inverse distance; exact matches
        dominate their query).
    """

    def __init__(self, n_neighbors: int = 10, weights: str = "uniform") -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"weights must be 'uniform' or 'distance', got {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.tree_: cKDTree | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsRegressor":
        X, y = self._validate_fit(X, y)
        self.tree_ = cKDTree(X)
        self._y = y
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "tree_")
        X = check_2d(X, "X")
        k = min(self.n_neighbors, len(self._y))
        # Bounded row blocks: peak memory stays O(block × k) however large
        # the query matrix is.
        block = max(1, _QUERY_BLOCK_ENTRIES // k)
        out = np.empty(len(X))
        for a in range(0, len(X), block):
            out[a : a + block] = self._predict_block(X[a : a + block], k)
        return out

    def _predict_block(self, X: np.ndarray, k: int) -> np.ndarray:
        dist, idx = self.tree_.query(X, k=k)
        if k == 1:
            dist = dist[:, None]
            idx = idx[:, None]
        neigh = self._y[idx]
        if self.weights == "uniform":
            return neigh.mean(axis=1)
        # Inverse-distance weighting; exact matches get all the mass.
        exact = dist <= 1e-12
        w = np.where(exact, 1.0, 1.0 / np.maximum(dist, 1e-12))
        has_exact = exact.any(axis=1)
        w[has_exact] = exact[has_exact].astype(np.float64)
        return (neigh * w).sum(axis=1) / w.sum(axis=1)
