"""Classical ML models.

From-scratch substitutes for the scikit-learn / XGBoost baselines the paper
compares TROUT against (Fig. 6-9), plus the random forest used as the
runtime-prediction feature model:

- :class:`~repro.ml.tree.DecisionTreeRegressor` — vectorised CART.
- :class:`~repro.ml.forest.RandomForestRegressor` — bagged CART with
  feature subsampling, process-parallel training.
- :class:`~repro.ml.boosting.GradientBoostingRegressor` — second-order
  boosting with L2-regularised leaf weights (the XGBoost objective).
- :class:`~repro.ml.knn.KNeighborsRegressor` — KD-tree k-nearest-neighbour
  regression.

All tree ensembles grow with histogram split finding by default
(``tree_method="hist"``, see :mod:`repro.ml.binning`); the exact sorted
search stays available as the reference implementation via
``tree_method="exact"`` or ``REPRO_TREE_METHOD=exact``.
"""

from repro.ml.binning import TREE_METHODS, BinnedMatrix, resolve_tree_method
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "KNeighborsRegressor",
    "BinnedMatrix",
    "TREE_METHODS",
    "resolve_tree_method",
]
