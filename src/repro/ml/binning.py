"""Feature binning for histogram-based tree growing.

LightGBM-style split finding: each feature column is quantile-binned to
``uint8`` codes once per ensemble fit, per-node (gradient, hessian, count)
statistics are accumulated into histograms with one ``np.bincount`` over a
flattened (node, feature, bin) index, and every candidate threshold of
every feature of every node is scored in a single cumulative-sum pass.
Sibling histograms are obtained by subtraction (child = parent − other
child), halving the accumulation work below the root.

Histograms use a *ragged* per-feature layout: feature ``f`` owns the
``n_bins[f]`` consecutive slots starting at ``offsets[f]``, so a node's
histogram is one row of width ``W = Σ n_bins`` rather than a dense
``F × 256`` block.  Low-cardinality features (queue/QOS codes, node
counts, …) then cost exactly their handful of bins — on the paper's
feature matrices this shrinks every histogram pass several-fold.

Thresholds are stored in *raw* feature space — midpoints between the bin
upper bound and the next observed distinct value, with the same
adjacent-float guard as the exact search — so fitted trees route unbinned
prediction inputs exactly like exact-grown trees.  When a feature has at
most ``max_bins`` distinct values, each value gets its own bin and the
candidate set (and therefore the chosen split) coincides with the exact
sorted search.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DEFAULT_MAX_BINS",
    "TREE_METHODS",
    "BinnedMatrix",
    "evaluate_splits",
    "grouped_histograms",
    "resolve_tree_method",
    "sampled_histograms",
]

#: uint8 codes — 256 bins is LightGBM's default and the dtype ceiling.
DEFAULT_MAX_BINS = 256

#: Valid ``tree_method`` values everywhere the knob is exposed.
TREE_METHODS = ("hist", "exact")


def resolve_tree_method(method: str | None) -> str:
    """``None`` defers to the ``REPRO_TREE_METHOD`` env knob (default ``hist``).

    Mirrors ``repro.features.pipeline.resolve_n_jobs``: CI runs the whole
    suite once per method by exporting the variable, and explicit arguments
    always win over the environment.
    """
    if method is None:
        method = os.environ.get("REPRO_TREE_METHOD", "hist")
    if method not in TREE_METHODS:
        raise ValueError(
            f"tree_method must be one of {TREE_METHODS}, got {method!r}"
        )
    return method


def _bin_column(
    xf: np.ndarray, max_bins: int
) -> tuple[np.ndarray, np.ndarray]:
    """Bin one column: (uint8 codes, boundary thresholds).

    Bin ``b`` holds values ``upper[b-1] < v <= upper[b]`` where ``upper``
    are actual data values (all distinct values when few enough, otherwise
    equal-frequency quantiles).  ``thresholds[b]`` separates bins ``<= b``
    from ``> b`` in raw space; there are ``n_bins - 1`` of them.
    """
    uniq = np.unique(xf)
    if len(uniq) <= max_bins:
        upper = uniq
    else:
        qs = np.quantile(xf, np.arange(1, max_bins) / max_bins, method="lower")
        upper = np.unique(np.append(qs, uniq[-1]))
    codes = np.searchsorted(upper, xf, side="left").astype(np.uint8)
    if len(upper) == 1:
        return codes, np.empty(0)
    # Midpoint between each bin's upper bound and the next observed value,
    # guarded so routing on <= never lands on the right-hand value.
    nxt = uniq[np.searchsorted(uniq, upper[:-1], side="right")]
    thr = 0.5 * (upper[:-1] + nxt)
    thr = np.where(thr >= nxt, upper[:-1], thr)
    return codes, thr


@dataclass
class BinnedMatrix:
    """A feature matrix quantised to per-feature uint8 bin codes.

    Built once per ensemble ``fit`` and shared by every tree (bootstrap
    resamples and boosting rounds take row subsets of the codes via
    :meth:`take`; the bin edges never move).  Picklable, so forest fits
    fan out across processes unchanged.

    ``global_codes`` pre-adds each feature's histogram offset to its codes
    so per-level accumulation is a single add + ``bincount``; the ``col_*``
    arrays describe each histogram slot (owning feature, within-feature
    bin, raw threshold, and whether the slot is a scorable boundary — a
    feature's last bin is not) in (feature, bin) order, matching the exact
    search's lowest-feature-then-lowest-threshold tie-breaking under a
    row-major argmax.
    """

    global_codes: np.ndarray  # (n_rows, n_features) int32, bin + offsets[f]
    offsets: np.ndarray  # (n_features + 1,) intp histogram slot ranges
    n_bins: np.ndarray  # (n_features,) int64 occupied bins per feature
    col_feat: np.ndarray  # (W,) intp owning feature of each slot
    col_bin: np.ndarray  # (W,) int64 within-feature bin of each slot
    col_thr: np.ndarray  # (W,) float64 raw threshold (0 where not scorable)
    col_cand: np.ndarray  # (W,) bool — slot is a scorable bin boundary

    @classmethod
    def from_matrix(
        cls, X: np.ndarray, max_bins: int = DEFAULT_MAX_BINS
    ) -> "BinnedMatrix":
        if not 2 <= max_bins <= 256:
            raise ValueError(f"max_bins must be in [2, 256], got {max_bins}")
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n, f = X.shape
        codes = np.empty((n, f), dtype=np.uint8)
        n_bins = np.empty(f, dtype=np.int64)
        thrs: list[np.ndarray] = []
        for j in range(f):
            codes[:, j], thr = _bin_column(X[:, j], max_bins)
            thrs.append(thr)
            n_bins[j] = len(thr) + 1
        offsets = np.zeros(f + 1, dtype=np.intp)
        np.cumsum(n_bins, out=offsets[1:])
        col_feat = np.repeat(np.arange(f, dtype=np.intp), n_bins)
        col_bin = np.concatenate([np.arange(nb, dtype=np.int64) for nb in n_bins])
        col_cand = col_bin < n_bins[col_feat] - 1
        col_thr = np.zeros(int(offsets[-1]))
        col_thr[col_cand] = np.concatenate(thrs) if thrs else np.empty(0)
        return cls(
            global_codes=codes.astype(np.int32)
            + offsets[:-1][None, :].astype(np.int32),
            offsets=offsets,
            n_bins=n_bins,
            col_feat=col_feat,
            col_bin=col_bin,
            col_thr=col_thr,
            col_cand=col_cand,
        )

    @property
    def n_rows(self) -> int:
        return self.global_codes.shape[0]

    @property
    def n_features(self) -> int:
        return self.global_codes.shape[1]

    @property
    def width(self) -> int:
        """Total histogram slots per node (Σ per-feature bin counts)."""
        return int(self.offsets[-1])

    def take(self, rows: np.ndarray) -> "BinnedMatrix":
        """Row subset sharing the bin edges (bootstrap / subsample views)."""
        return BinnedMatrix(
            global_codes=self.global_codes[rows],
            offsets=self.offsets,
            n_bins=self.n_bins,
            col_feat=self.col_feat,
            col_bin=self.col_bin,
            col_thr=self.col_thr,
            col_cand=self.col_cand,
        )


def grouped_histograms(
    bm: BinnedMatrix,
    rows: np.ndarray | None,
    groups: np.ndarray | None,
    n_groups: int,
    g: np.ndarray,
    h: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
    """(grad, hess, count) histograms of shape ``(n_groups, W)``.

    ``rows`` index into ``bm``/``g``/``h`` (``None`` means every row, with
    no gather); ``groups`` assigns each row to a histogram slot (``None``
    only with ``n_groups=1``).  One flattened ``np.bincount`` over a
    combined (group, feature-bin) index accumulates every group's every
    feature at once — this is what makes level-synchronous tree growth
    fast: the cost per tree level is ``O(live_rows × F)`` regardless of how
    many nodes the level holds.  Pass ``h=None`` for unit hessians
    (squared loss); the count histogram then doubles as the hessian
    histogram.
    """
    f, w = bm.n_features, bm.width
    gc = bm.global_codes if rows is None else bm.global_codes[rows]
    gw = g if rows is None else g[rows]
    if groups is None:
        flat = gc.ravel()
    else:
        flat = (gc + (groups * w)[:, None]).ravel()
    size = n_groups * w
    count = np.bincount(flat, minlength=size).reshape(n_groups, w)
    grad = np.bincount(
        flat, weights=np.repeat(gw, f), minlength=size
    ).reshape(n_groups, w)
    if h is None:
        return grad, None, count
    hw = h if rows is None else h[rows]
    hess = np.bincount(
        flat, weights=np.repeat(hw, f), minlength=size
    ).reshape(n_groups, w)
    return grad, hess, count


def sampled_histograms(
    bm: BinnedMatrix,
    rows: np.ndarray,
    groups: np.ndarray,
    n_groups: int,
    g: np.ndarray,
    h: np.ndarray | None,
    cols: np.ndarray,
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
    """Histograms restricted to each group's sampled feature columns.

    ``cols`` is ``(n_groups, max_features)`` — the feature subset each
    group (node) drew.  Only those columns' codes are gathered and
    bincounted, so with ``max_features ≪ F`` the accumulation cost drops
    to the sampled fraction; unsampled features' slots stay zero (the
    split scan never reads them).  This replaces sibling subtraction when
    feature subsampling is on: a child's sampled features differ from its
    parent's, so parent histograms cannot be reused anyway.
    """
    w = bm.width
    mf = cols.shape[1]
    size = n_groups * w
    base = groups * w
    gw = g[rows]
    hw = None if h is None else h[rows]
    count = np.zeros(size, dtype=np.int64)
    grad = np.zeros(size)
    hess = None if h is None else np.zeros(size)
    # One pass per sampled-column position keeps every intermediate 1-D
    # (and ``gw``/``base`` shared across positions) — much cheaper than
    # materialising the (live, mf) gathered-code block.
    for j in range(mf):
        cj = np.take(cols[:, j], groups)
        # int64 sum up front so bincount needn't convert its input.
        flat = base + bm.global_codes[rows, cj]
        count += np.bincount(flat, minlength=size)
        grad += np.bincount(flat, weights=gw, minlength=size)
        if hess is not None:
            hess += np.bincount(flat, weights=hw, minlength=size)
    count = count.reshape(n_groups, w)
    grad = grad.reshape(n_groups, w)
    if hess is None:
        return grad, None, count
    return grad, hess.reshape(n_groups, w), count


#: Below this many histogram entries per level the dense full-width scan
#: beats the per-feature masked scan (fewer numpy calls); above it, skipping
#: unsampled features' slots wins.
_MASKED_SCAN_MIN_ENTRIES = 1 << 15


def evaluate_splits(
    grad: np.ndarray,
    hess: np.ndarray,
    count: np.ndarray,
    bm: BinnedMatrix,
    min_leaf: int,
    lam: float,
    feat_mask: np.ndarray | None = None,
    totals: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, ...]:
    """Best split per histogram group.

    Returns ``(gain, feature, threshold, bin, left_grad, left_hess,
    left_count)`` arrays, one entry per group; the ``left_*`` sums are the
    chosen split's left-child statistics, which the builder turns into the
    children's node values without re-scanning any rows.

    One cumulative sum per statistic scores every histogram slot of every
    group at once: within-feature prefix sums are the full cumsum minus a
    per-feature base (the cumulative total before the feature), and each
    feature's last slot — not a bin boundary — is masked invalid, so no
    per-candidate gathers are needed.  The row-major argmax over slots
    (ordered by feature, then bin) breaks ties the same way the exact
    search does — lowest feature index first, then lowest threshold.  Gain
    is ``-inf`` where no valid split exists.  ``feat_mask`` (groups, F)
    restricts candidates to each group's sampled feature subset.  Pass
    ``hess is count`` (the same object) for unit hessians; the hessian
    cumsum is then skipped entirely.  ``totals`` supplies per-group
    (grad, hess, count) node sums; it is **required** when the histograms
    came from :func:`sampled_histograms` (unsampled slots are zero, so
    totals cannot be recovered from the histograms themselves).
    """
    k, w = grad.shape
    unit = hess is count
    if not bm.col_cand.any():
        zero = np.zeros(k, dtype=np.intp)
        nan = np.full(k, np.nan)
        return (
            np.full(k, -np.inf), zero, np.zeros(k), zero.astype(np.int64),
            nan, nan, nan,
        )
    if feat_mask is not None and (
        totals is not None or k * w > _MASKED_SCAN_MIN_ENTRIES
    ):
        return _masked_splits(
            grad, hess, count, bm, min_leaf, lam, feat_mask, totals
        )
    ends = bm.offsets[1:] - 1  # last slot of each feature
    col_feat = bm.col_feat

    def prefix(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(within-feature prefix sums, per-group totals) for a statistic."""
        cum = np.cumsum(a, axis=1)
        base = np.zeros((k, len(ends)), dtype=cum.dtype)
        base[:, 1:] = cum[:, ends[:-1]]
        cum -= base[:, col_feat]
        # Feature 0's base is zero, so its last slot is the group total.
        return cum, cum[:, ends[0] : ends[0] + 1].copy()

    gl, g_tot = prefix(grad)
    cl, c_tot = prefix(count)
    cr = c_tot - cl
    if unit:
        hl, hr, h_tot = cl, cr, c_tot
    else:
        hl, h_tot = prefix(hess)
        hr = h_tot - hl
    valid = (cl >= min_leaf) & (cr >= min_leaf)
    valid &= bm.col_cand[None, :]
    if feat_mask is not None:
        valid &= feat_mask[:, col_feat]
    # Left + right second-order scores, computed in place; the per-node
    # constant −G²/(H+λ) shifts every candidate equally, so it is applied
    # after the argmax.  Association matches the exact search's
    # (left + right) − parent evaluation order bit-for-bit.
    with np.errstate(divide="ignore", invalid="ignore"):
        gain = gl * gl
        gain /= hl + lam
        t = g_tot - gl
        t *= t
        t /= hr + lam
        gain += t
    gain[~valid] = -np.inf
    best = np.argmax(gain, axis=1)
    ar = np.arange(k)
    const = np.divide(
        g_tot * g_tot, h_tot + lam,
        out=np.zeros_like(g_tot), where=(c_tot > 0),
    ).ravel()
    return (
        gain[ar, best] - const,
        bm.col_feat[best],
        bm.col_thr[best],
        bm.col_bin[best],
        gl[ar, best],
        hl[ar, best],
        cl[ar, best],
    )


def _masked_splits(
    grad: np.ndarray,
    hess: np.ndarray,
    count: np.ndarray,
    bm: BinnedMatrix,
    min_leaf: int,
    lam: float,
    feat_mask: np.ndarray,
    totals: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, ...]:
    """Feature-at-a-time split scan for feature-subsampled levels.

    When each node samples only ``max_features`` of ``F`` features, the
    full-width scan wastes most of its arithmetic on masked-out slots.
    This path visits one feature at a time, gathering only the rows
    (nodes) that sampled it — arithmetic shrinks to the sampled fraction
    and the per-feature blocks stay cache-resident.  A running strict
    ``>`` maximum over ascending feature index keeps the same
    lowest-feature-then-lowest-threshold tie-breaking as the full scan;
    per-node constants (−G²/(H+λ)) cancel across features, so candidates
    compare by partial gain and the constant is subtracted once at the
    end.
    """
    k = grad.shape[0]
    unit = hess is count
    off = bm.offsets
    best_gain = np.full(k, -np.inf)
    best_f = np.zeros(k, dtype=np.intp)
    best_thr = np.zeros(k)
    best_b = np.zeros(k, dtype=np.int64)
    lg = np.full(k, np.nan)
    lh = np.full(k, np.nan)
    lc = np.full(k, np.nan)
    if totals is not None:
        g_tot, h_tot, c_tot = totals
    else:
        # Every row lands in exactly one bin of every feature, so feature
        # 0's slots alone sum to the per-node totals.
        g_tot = grad[:, off[0] : off[1]].sum(axis=1)
        c_tot = count[:, off[0] : off[1]].sum(axis=1)
        h_tot = c_tot if unit else hess[:, off[0] : off[1]].sum(axis=1)
    for f in range(bm.n_features):
        nb = int(bm.n_bins[f])
        if nb < 2:
            continue
        sel = np.flatnonzero(feat_mask[:, f])
        if not len(sel):
            continue
        a, b = int(off[f]), int(off[f + 1])
        # Prefix sums over this feature's bins; the last column is the
        # node total, not a boundary, and is dropped.
        gl_f = np.cumsum(grad[sel, a:b], axis=1)[:, :-1]
        cl_f = np.cumsum(count[sel, a:b], axis=1)[:, :-1]
        cr_f = c_tot[sel, None] - cl_f
        if unit:
            hl_f, hr_f = cl_f, cr_f
        else:
            hl_f = np.cumsum(hess[sel, a:b], axis=1)[:, :-1]
            hr_f = h_tot[sel, None] - hl_f
        valid = (cl_f >= min_leaf) & (cr_f >= min_leaf)
        with np.errstate(divide="ignore", invalid="ignore"):
            gain = gl_f * gl_f
            gain /= hl_f if lam == 0.0 else hl_f + lam
            t = g_tot[sel, None] - gl_f
            t *= t
            t /= hr_f if lam == 0.0 else hr_f + lam
            gain += t
        gain[~valid] = -np.inf
        bix = np.argmax(gain, axis=1)
        ars = np.arange(len(sel))
        gbest = gain[ars, bix]
        upd = gbest > best_gain[sel]
        if not upd.any():
            continue
        iu = np.flatnonzero(upd)
        us = sel[iu]
        ub = bix[iu]
        best_gain[us] = gbest[iu]
        best_f[us] = f
        best_b[us] = ub
        best_thr[us] = bm.col_thr[a + ub]
        lg[us] = gl_f[iu, ub]
        lh[us] = hl_f[iu, ub]
        lc[us] = cl_f[iu, ub]
    const = np.divide(
        g_tot * g_tot, h_tot + lam,
        out=np.zeros_like(g_tot), where=(c_tot > 0),
    )
    return best_gain - const, best_f, best_thr, best_b, lg, lh, lc
