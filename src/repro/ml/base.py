"""Shared estimator plumbing."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, check_2d, check_consistent_length

__all__ = ["Regressor"]


class Regressor:
    """Minimal regressor base: validation helpers and R² scoring."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor":
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _validate_fit(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = check_2d(X, "X")
        y = check_1d(y, "y")
        check_consistent_length(X, y)
        return X, y

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R² on (X, y)."""
        y = check_1d(y, "y")
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0.0:
            return 0.0 if ss_res > 0 else 1.0
        return 1.0 - ss_res / ss_tot
