"""Partition-state aggregates at eligibility time (Table II "Par *" rows).

For every job ``j`` with eligibility instant ``t_j`` these functions
aggregate, within j's partition, over:

- the **queue**: jobs pending at ``t_j`` (``eligible ≤ t_j < start``),
- the **ahead** subset: pending jobs with strictly higher priority, and
- the **running** set: jobs executing at ``t_j`` (``start ≤ t_j < end``);

summing jobs / CPUs / memory / nodes / timelimit (and, optionally, the
runtime model's predictions).  The job itself is excluded from every set.

Stabbing queries go through the paper's chunked interval trees
(:class:`~repro.features.interval_tree.ChunkedIntervalForest`), one forest
per (partition, interval kind); aggregation from the CSR match lists is a
handful of ``bincount`` calls.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import JobSet
from repro.features.interval_tree import ChunkedIntervalForest
from repro.obs import tracing
from repro.utils.parallel import parallel_map

__all__ = ["partition_snapshots", "SNAPSHOT_KEYS"]

SNAPSHOT_KEYS: tuple[str, ...] = (
    "par_jobs_ahead",
    "par_cpus_ahead",
    "par_mem_ahead",
    "par_nodes_ahead",
    "par_timelimit_ahead",
    "par_jobs_queue",
    "par_cpus_queue",
    "par_mem_queue",
    "par_nodes_queue",
    "par_timelimit_queue",
    "par_jobs_running",
    "par_cpus_running",
    "par_mem_running",
    "par_nodes_running",
    "par_timelimit_running",
    "par_queue_pred_timelimit",
    "par_running_pred_timelimit",
)


def _aggregate(
    qids: np.ndarray,
    matches: np.ndarray,
    m: int,
    values: dict[str, np.ndarray],
    prefix: str,
    out: dict[str, np.ndarray],
) -> None:
    """bincount-accumulate the matched jobs' attributes per query."""
    out[f"par_jobs_{prefix}"] += np.bincount(qids, minlength=m).astype(np.float64)
    for key, vals in values.items():
        out[f"par_{key}_{prefix}"] += np.bincount(
            qids, weights=vals[matches], minlength=m
        )


def _partition_worker(
    payload: tuple,
) -> tuple[dict[str, np.ndarray], "tracing.Span"]:
    """All aggregates for one partition's job slice, plus its span record.

    Module-level (picklable) and a pure function of its slice, so results
    are identical whether it runs in-process or in a worker.  The span is
    built locally (each worker process has a fresh tracer) and shipped
    back pickled so the parent can graft it into its own trace tree.
    """
    (p, elig, start, end, prio, values, pred, chunk_size, overlap, inner) = payload
    m = len(elig)

    with tracing.Tracer(retain=False).span(
        f"partition[{p}]", rows=m
    ) as rec:
        # --- pending intervals [eligible, start) ------------------------ #
        pend = ChunkedIntervalForest(elig, start, chunk_size, overlap, n_jobs=inner)
        iv, indptr = pend.stab_batch(elig)
        qids = np.repeat(np.arange(m), np.diff(indptr))
        not_self = iv != qids
        qq, mi = qids[not_self], iv[not_self]
        sub = {k: np.zeros(m) for k in SNAPSHOT_KEYS}
        _aggregate(qq, mi, m, values, "queue", sub)
        sub["par_queue_pred_timelimit"] += np.bincount(
            qq, weights=pred[mi], minlength=m
        )
        # "Ahead": strictly higher priority among the pending set.
        ahead = prio[mi] > prio[qq]
        _aggregate(qq[ahead], mi[ahead], m, values, "ahead", sub)

        # --- running intervals [start, end) ----------------------------- #
        runf = ChunkedIntervalForest(start, end, chunk_size, overlap, n_jobs=inner)
        iv, indptr = runf.stab_batch(elig)
        qids = np.repeat(np.arange(m), np.diff(indptr))
        not_self = iv != qids
        qq, mi = qids[not_self], iv[not_self]
        _aggregate(qq, mi, m, values, "running", sub)
        sub["par_running_pred_timelimit"] += np.bincount(
            qq, weights=pred[mi], minlength=m
        )
    return sub, rec


def _partition_label(payload: tuple) -> str:
    return f"partition {payload[0]} snapshot ({len(payload[1])} jobs)"


def partition_snapshots(
    jobs: JobSet,
    pred_runtime_min: np.ndarray | None = None,
    chunk_size: int = 100_000,
    overlap: int = 10_000,
    n_jobs: int | None = 1,
) -> dict[str, np.ndarray]:
    """Compute all partition-state aggregates for an eligibility-ordered trace.

    Parameters
    ----------
    jobs:
        The full accounting trace.  Must contain final start/end times
        (feature engineering is done on history, as in the paper).
    pred_runtime_min:
        Per-job predicted runtimes from the runtime model; enables the
        ``par_queue_pred_timelimit`` / ``par_running_pred_timelimit``
        features.  ``None`` falls back to the requested timelimit (the
        scheduler's own assumption).
    chunk_size, overlap:
        Interval-tree chunking (paper: 100 000 / 10 000).
    n_jobs:
        Worker processes.  With several partitions the fan-out is one task
        per partition (chunk builds stay serial inside each worker); with a
        single partition it is pushed down to the chunk-tree builds.  Both
        placements merge in deterministic order, so any ``n_jobs`` yields a
        bit-identical result.

    Returns
    -------
    Mapping of :data:`SNAPSHOT_KEYS` to ``(n_jobs,)`` arrays, aligned with
    the input order.
    """
    n = len(jobs)
    rec = jobs.records
    if pred_runtime_min is None:
        pred_runtime_min = rec["timelimit_min"].astype(np.float64)
    else:
        pred_runtime_min = np.asarray(pred_runtime_min, dtype=np.float64)
        if pred_runtime_min.shape != (n,):
            raise ValueError("pred_runtime_min must have one value per job")

    out: dict[str, np.ndarray] = {k: np.zeros(n) for k in SNAPSHOT_KEYS}
    values_all = {
        "cpus": rec["req_cpus"].astype(np.float64),
        "mem": rec["req_mem_gb"].astype(np.float64),
        "nodes": rec["req_nodes"].astype(np.float64),
        "timelimit": rec["timelimit_min"].astype(np.float64),
    }

    partitions = np.unique(rec["partition"])
    # One level of process parallelism only: across partitions when there
    # are several (the common case), else across chunk-tree builds.
    outer = n_jobs if len(partitions) > 1 else 1
    inner = 1 if len(partitions) > 1 else n_jobs
    groups = [np.flatnonzero(rec["partition"] == p) for p in partitions]
    payloads = [
        (
            int(p),
            rec["eligible_time"][g],
            rec["start_time"][g],
            rec["end_time"][g],
            rec["priority"][g],
            {k: v[g] for k, v in values_all.items()},
            pred_runtime_min[g],
            chunk_size,
            overlap,
            inner,
        )
        for p, g in zip(partitions, groups)
    ]
    results = parallel_map(
        _partition_worker, payloads, n_jobs=outer, label=_partition_label
    )
    for g, (sub, rec) in zip(groups, results):
        tracing.attach(rec)  # graft worker span under the caller's span
        for k in SNAPSHOT_KEYS:
            out[k][g] = sub[k]
    return out
