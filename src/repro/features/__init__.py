"""Feature engineering (paper §III, Table II).

Submodules:

- :mod:`repro.features.interval_tree` — centred interval trees with fully
  vectorised batched stabbing queries, plus the paper's chunked
  build-with-overlap-and-merge scheme and a naive baseline for the A1
  ablation.
- :mod:`repro.features.snapshots` — partition queue / running /
  higher-priority ("ahead") aggregates at each job's eligibility instant.
- :mod:`repro.features.user_history` — per-user past-day aggregates.
- :mod:`repro.features.static_specs` — partition/cluster specification
  features.
- :mod:`repro.features.transforms` — log1p, min-max, standard and Box-Cox
  scaling.
- :mod:`repro.features.pipeline` — assembles the full Table II matrix,
  optionally fanning the snapshot stage out across processes.
- :mod:`repro.features.cache` — content-addressed on-disk store of
  finished feature matrices.
"""

from repro.features.cache import CacheStats, FeatureCache
from repro.features.interval_tree import (
    ChunkedIntervalForest,
    IntervalTree,
    naive_stab_batch,
)
from repro.features.names import FEATURE_NAMES, feature_index
from repro.features.pipeline import FeatureMatrix, FeaturePipeline
from repro.features.transforms import (
    BoxCoxScaler,
    Log1pTransform,
    MinMaxScaler,
    StandardScaler,
    TransformChain,
)

__all__ = [
    "IntervalTree",
    "ChunkedIntervalForest",
    "naive_stab_batch",
    "FEATURE_NAMES",
    "feature_index",
    "FeaturePipeline",
    "FeatureMatrix",
    "FeatureCache",
    "CacheStats",
    "Log1pTransform",
    "MinMaxScaler",
    "StandardScaler",
    "BoxCoxScaler",
    "TransformChain",
]
