"""Canonical feature vocabulary (paper Table II).

33 features in a fixed order; every matrix produced by
:class:`repro.features.pipeline.FeaturePipeline` uses exactly this layout,
and the regressor's "33 input features" statement in §III maps 1:1 onto it.
"""

from __future__ import annotations

__all__ = ["FEATURE_NAMES", "feature_index", "FEATURE_GROUPS"]

#: Table II rows, grouped as: job request (5), partition higher-priority
#: "ahead" aggregates (5), partition queue aggregates (5), partition running
#: aggregates (5), user past-day aggregates (5), static partition specs (5),
#: predicted-runtime features (3).
FEATURE_NAMES: tuple[str, ...] = (
    "priority",
    "timelimit_raw",
    "req_cpus",
    "req_mem",
    "req_nodes",
    "par_jobs_ahead",
    "par_cpus_ahead",
    "par_mem_ahead",
    "par_nodes_ahead",
    "par_timelimit_ahead",
    "par_jobs_queue",
    "par_cpus_queue",
    "par_mem_queue",
    "par_nodes_queue",
    "par_timelimit_queue",
    "par_jobs_running",
    "par_cpus_running",
    "par_mem_running",
    "par_nodes_running",
    "par_timelimit_running",
    "user_jobs_past_day",
    "user_cpus_past_day",
    "user_mem_past_day",
    "user_nodes_past_day",
    "user_timelimit_past_day",
    "par_total_nodes",
    "par_total_cpu",
    "par_cpu_per_node",
    "par_mem_per_node",
    "par_total_gpu",
    "pred_runtime",
    "par_queue_pred_timelimit",
    "par_running_pred_timelimit",
)

FEATURE_GROUPS: dict[str, tuple[str, ...]] = {
    "request": FEATURE_NAMES[0:5],
    "ahead": FEATURE_NAMES[5:10],
    "queue": FEATURE_NAMES[10:15],
    "running": FEATURE_NAMES[15:20],
    "user": FEATURE_NAMES[20:25],
    "static": FEATURE_NAMES[25:30],
    "predicted": FEATURE_NAMES[30:33],
}

_INDEX = {name: i for i, name in enumerate(FEATURE_NAMES)}


def feature_index(name: str) -> int:
    """Column index of a feature name in the canonical layout."""
    try:
        return _INDEX[name]
    except KeyError:
        raise KeyError(f"unknown feature {name!r}") from None
