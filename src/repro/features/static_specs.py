"""Static partition-specification features (Table II "Par Total *" rows).

The paper includes cluster specifications (total nodes/CPUs/GPUs, CPUs and
memory per node for the job's partition) so the model generalises across
reconfiguration: "these statistics can be easily modified without changing
the overall architecture".
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import JobSet
from repro.slurm.resources import Cluster

__all__ = ["static_partition_features", "STATIC_KEYS"]

STATIC_KEYS: tuple[str, ...] = (
    "par_total_nodes",
    "par_total_cpu",
    "par_cpu_per_node",
    "par_mem_per_node",
    "par_total_gpu",
)

_SPEC_TO_KEY = {
    "total_nodes": "par_total_nodes",
    "total_cpus": "par_total_cpu",
    "cpus_per_node": "par_cpu_per_node",
    "mem_per_node_gb": "par_mem_per_node",
    "total_gpus": "par_total_gpu",
}


def static_partition_features(jobs: JobSet, cluster: Cluster) -> dict[str, np.ndarray]:
    """Broadcast each job's partition specs into per-job columns."""
    specs = cluster.partition_specs()
    p = jobs.records["partition"].astype(np.intp)
    if len(p) and (p.min() < 0 or p.max() >= len(cluster.partitions)):
        raise ValueError("trace references partitions outside the cluster")
    return {key: specs[spec][p] for spec, key in _SPEC_TO_KEY.items()}
