"""Feature scaling and skew-reducing transforms (paper §III).

The paper applies a natural-log transform to every feature "to manage the
highly skewed nature of the data and reduce the input scale", and reports
testing min-max and Box-Cox scaling without benefit.  All of those are
implemented here with a common fit/transform/inverse interface so the
ablations can swap them freely; :class:`TransformChain` composes them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats as sps

from repro.utils.validation import check_2d, check_fitted

__all__ = [
    "Log1pTransform",
    "MinMaxScaler",
    "StandardScaler",
    "BoxCoxScaler",
    "TransformChain",
    "IdentityTransform",
]


class IdentityTransform:
    """No-op transform (the control arm of scaling ablations)."""

    def fit(self, X: np.ndarray) -> "IdentityTransform":
        check_2d(X)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        return check_2d(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        return check_2d(X)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class Log1pTransform:
    """Natural-log transform ``log(1 + x)`` applied columnwise.

    ``log1p`` rather than ``log`` because most engineered features (queue
    counts, resource sums) are legitimately zero; negative inputs raise.
    """

    def fit(self, X: np.ndarray) -> "Log1pTransform":
        X = check_2d(X)
        if np.any(X < 0):
            raise ValueError("Log1pTransform requires non-negative inputs")
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = check_2d(X)
        if np.any(X < 0):
            raise ValueError("Log1pTransform requires non-negative inputs")
        return np.log1p(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        return np.expm1(check_2d(X))

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class MinMaxScaler:
    """Columnwise rescale to ``[0, 1]`` on the fitted range.

    Constant columns map to 0.  Out-of-range values at transform time are
    allowed (deployment sees values outside the training range) and simply
    fall outside ``[0, 1]``.
    """

    def __init__(self) -> None:
        self.data_min_: np.ndarray | None = None
        self.data_range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = check_2d(X)
        self.data_min_ = X.min(axis=0)
        rng = X.max(axis=0) - self.data_min_
        rng[rng == 0.0] = 1.0
        self.data_range_ = rng
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "data_min_")
        X = check_2d(X)
        return (X - self.data_min_) / self.data_range_

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "data_min_")
        X = check_2d(X)
        return X * self.data_range_ + self.data_min_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class StandardScaler:
    """Columnwise standardisation to zero mean, unit variance."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_2d(X)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "mean_")
        X = check_2d(X)
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "mean_")
        X = check_2d(X)
        return X * self.scale_ + self.mean_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class BoxCoxScaler:
    """Columnwise Box-Cox power transform with per-column fitted λ.

    Box-Cox requires strictly positive inputs, so each column is shifted by
    ``1 - min`` first (recorded for the inverse).  The paper tried this and
    found no benefit over the plain log transform; it is kept for the
    scaling ablation.
    """

    def __init__(self) -> None:
        self.lambdas_: np.ndarray | None = None
        self.shifts_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "BoxCoxScaler":
        X = check_2d(X)
        n_features = X.shape[1]
        self.lambdas_ = np.zeros(n_features)
        self.shifts_ = np.zeros(n_features)
        for j in range(n_features):
            col = X[:, j]
            shift = 1.0 - col.min() if col.min() <= 0 else 0.0
            shifted = col + shift
            if np.allclose(shifted, shifted[0]):
                lam = 1.0  # constant column: identity power
            else:
                _, lam = sps.boxcox(shifted)
            self.shifts_[j] = shift
            self.lambdas_[j] = lam
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "lambdas_")
        X = check_2d(X)
        out = np.empty_like(X)
        for j in range(X.shape[1]):
            shifted = X[:, j] + self.shifts_[j]
            if np.any(shifted <= 0):
                raise ValueError(
                    f"column {j} not positive after fitted shift; Box-Cox "
                    "cannot transform values below the training minimum"
                )
            lam = self.lambdas_[j]
            if abs(lam) < 1e-12:
                out[:, j] = np.log(shifted)
            else:
                out[:, j] = (shifted**lam - 1.0) / lam
        return out

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "lambdas_")
        X = check_2d(X)
        out = np.empty_like(X)
        for j in range(X.shape[1]):
            lam = self.lambdas_[j]
            if abs(lam) < 1e-12:
                shifted = np.exp(X[:, j])
            else:
                shifted = np.power(np.maximum(lam * X[:, j] + 1.0, 1e-300), 1.0 / lam)
            out[:, j] = shifted - self.shifts_[j]
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class TransformChain:
    """Compose transforms left to right; inverse runs right to left."""

    def __init__(self, steps: Sequence[object]) -> None:
        self.steps = list(steps)

    def fit(self, X: np.ndarray) -> "TransformChain":
        for step in self.steps:
            X = step.fit(X).transform(X)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        for step in self.steps:
            X = step.transform(X)
        return X

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        for step in reversed(self.steps):
            X = step.inverse_transform(X)
        return X

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        for step in self.steps:
            X = step.fit(X).transform(X)
        return X
