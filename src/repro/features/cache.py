"""On-disk feature-matrix cache.

Featurising the paper's 3.8 M-record trace is the dominant offline cost
(§V), yet every train/eval run used to recompute the full Table II matrix
from scratch.  :class:`FeatureCache` stores finished
:class:`~repro.features.pipeline.FeatureMatrix` objects on disk keyed by a
SHA-256 **content hash** of everything the matrix is a function of: the raw
trace records, the partition vocabulary, the pipeline configuration
(including the cluster's static specs) and the predicted-runtime vector.
Any change to any input changes the key, so entries never need explicit
invalidation — stale entries are simply never addressed again.

Robustness rules (all exercised by the failure-path tests):

- **atomic writes** — entries are written to a temp file in the cache
  directory and ``os.replace``-d into place, so a concurrent writer or a
  crash mid-write can never publish a half-written entry;
- **versioned invalidation** — every entry embeds :data:`CACHE_VERSION`;
  entries from an older layout are treated as misses;
- **corrupt-entry fallback** — the failures a bad entry can cause
  (truncation, bad bytes, missing or wrong arrays) are counted in
  :class:`CacheStats` (mirrored to telemetry) and answered with a
  recompute; anything outside that set is a bug and propagates.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.schema import JobSet
from repro.features.pipeline import FeatureMatrix
from repro.obs import metrics
from repro.utils.logging import get_logger

__all__ = ["CACHE_VERSION", "CacheStats", "FeatureCache", "content_key"]

log = get_logger(__name__)

#: Bump whenever the on-disk entry layout or the featurisation semantics
#: change; older entries then read as misses and are recomputed.
CACHE_VERSION = 1


def content_key(
    jobs: JobSet,
    pred_runtime_min: np.ndarray,
    pipeline_signature: tuple,
) -> str:
    """SHA-256 key of everything a feature matrix depends on."""
    h = hashlib.sha256()
    h.update(f"v{CACHE_VERSION}".encode())
    h.update(repr(pipeline_signature).encode())
    h.update(repr(tuple(jobs.partition_names)).encode())
    h.update(np.ascontiguousarray(jobs.records).tobytes())
    h.update(np.ascontiguousarray(pred_runtime_min, dtype=np.float64).tobytes())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting, surfaced by ``eval.report`` and the benches.

    Each bump mirrors into the process-wide telemetry registry
    (``feature_cache_<event>_total``) so dashboards see cache behaviour
    without holding a reference to the cache object.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0  # corrupt / stale-version entries discarded
    store_failed: int = 0  # write attempts lost to I/O errors

    def bump(self, event: str, n: int = 1) -> None:
        setattr(self, event, getattr(self, event) + n)
        metrics.get_registry().counter(
            f"feature_cache_{event}_total",
            help="feature-cache events by outcome",
        ).inc(n)


class FeatureCache:
    """Content-addressed store of feature matrices under one directory.

    Parameters
    ----------
    root:
        Cache directory (created on first use).  One ``<key>.npz`` file per
        entry; safe to delete wholesale at any time.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(
                f"feature cache root {self.root} exists and is not a directory"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """The entry file a key addresses (whether or not it exists)."""
        return self.root / f"{key}.npz"

    def key_for(
        self,
        jobs: JobSet,
        pred_runtime_min: np.ndarray,
        pipeline_signature: tuple,
    ) -> str:
        """Convenience wrapper around :func:`content_key` (lets the pipeline
        stay import-free of this module)."""
        return content_key(jobs, pred_runtime_min, pipeline_signature)

    # ------------------------------------------------------------------ #
    # read / write
    # ------------------------------------------------------------------ #
    def load(self, key: str) -> FeatureMatrix | None:
        """Return the cached matrix for ``key``, or ``None`` to recompute.

        Never raises: a missing entry is a miss; a corrupt or stale-version
        entry is discarded, counted, and also reported as a miss.
        """
        path = self.path_for(key)
        if not path.exists():
            self.stats.bump("misses")
            return None
        try:
            with np.load(path, allow_pickle=False) as z:
                if int(z["version"]) != CACHE_VERSION:
                    raise ValueError(
                        f"stale cache version {int(z['version'])} "
                        f"(current {CACHE_VERSION})"
                    )
                fm = FeatureMatrix(
                    X=np.ascontiguousarray(z["X"], dtype=np.float64),
                    names=tuple(str(s) for s in z["names"]),
                    queue_time_min=np.ascontiguousarray(
                        z["queue_time_min"], dtype=np.float64
                    ),
                    log_transformed=bool(z["log_transformed"]),
                    cache_hit=True,
                )
            if fm.X.ndim != 2 or fm.X.shape[0] != len(fm.queue_time_min):
                raise ValueError("cached matrix shape is inconsistent")
        # Exactly the failures a bad entry can produce: truncated/corrupt
        # zip containers, missing or mistyped members, short reads.  A
        # TypeError or MemoryError here is a bug, not a bad entry — let it
        # propagate instead of silently recomputing forever.
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
            self.stats.bump("invalid")
            self.stats.bump("misses")
            log.warning("discarding unusable cache entry %s: %r", path.name, exc)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.bump("hits")
        return fm

    def store(self, key: str, fm: FeatureMatrix) -> None:
        """Atomically persist a matrix under ``key`` (best-effort).

        The entry is staged in a temp file in the cache directory and
        published with ``os.replace``, so concurrent writers of the same
        key race benignly: the file is always one writer's complete entry.
        Storage failures are logged, never raised.
        """
        path = self.path_for(key)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    version=np.int64(CACHE_VERSION),
                    X=np.ascontiguousarray(fm.X, dtype=np.float64),
                    names=np.array(fm.names),
                    queue_time_min=np.ascontiguousarray(
                        fm.queue_time_min, dtype=np.float64
                    ),
                    log_transformed=np.bool_(fm.log_transformed),
                )
            os.replace(tmp, path)
            self.stats.bump("stores")
        except OSError as exc:  # disk-full, permission flips, etc.
            self.stats.bump("store_failed")
            log.warning("failed to store cache entry %s: %r", path.name, exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
