"""Deployment-time ("live") feature computation.

The deployed tool answers questions about jobs *currently in the queue* —
no start or end times exist yet for them.  The Table II features are
nevertheless fully computable, because every aggregate is evaluated at the
target job's *eligibility instant* ``t_j``, which is in the past at query
time ``t_now``:

- a job was **pending** at ``t_j`` iff it was eligible by ``t_j`` and had
  not started by ``t_j`` — known even if it is still pending now;
- a job was **running** at ``t_j`` iff it started by ``t_j`` and had not
  ended by ``t_j`` — known even if it is still running now;
- user past-day history uses submit times only.

:func:`mask_future` censors a trace at ``t_now`` (unknown starts/ends are
pushed to a far-future sentinel, which behaves correctly under the
half-open stabbing semantics), and :func:`live_features` produces feature
rows for the pending jobs.  The test suite proves these rows are
*identical* to the offline pipeline's — i.e. the offline training features
contain no information a deployed predictor would lack.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import JobSet
from repro.features.pipeline import FeatureMatrix, FeaturePipeline
from repro.slurm.resources import Cluster

__all__ = ["mask_future", "live_features", "pending_at", "running_at"]


def _sentinel(jobs: JobSet, t_now: float) -> float:
    """A finite far-future stand-in for 'unknown' (keeps trees balanced)."""
    horizon = max(float(np.max(jobs.records["end_time"], initial=0.0)), t_now)
    return 2.0 * horizon + 1.0e6


def pending_at(jobs: JobSet, t: float) -> np.ndarray:
    """Positions of jobs pending at time ``t`` (eligible, not started)."""
    rec = jobs.records
    return np.flatnonzero((rec["eligible_time"] <= t) & (rec["start_time"] > t))


def running_at(jobs: JobSet, t: float) -> np.ndarray:
    """Positions of jobs running at time ``t``."""
    rec = jobs.records
    return np.flatnonzero((rec["start_time"] <= t) & (rec["end_time"] > t))


def mask_future(jobs: JobSet, t_now: float) -> JobSet:
    """Censor a trace at ``t_now``: what a live system actually knows.

    - Jobs submitted after ``t_now`` are dropped entirely.
    - Jobs that have not started by ``t_now`` get ``start = end = FUTURE``.
    - Jobs still running at ``t_now`` keep their start but get
      ``end = FUTURE``.

    ``FUTURE`` is a finite far-future sentinel; under half-open interval
    semantics a ``[eligible, FUTURE)`` pending interval and a
    ``[start, FUTURE)`` running interval stab correctly at any past
    instant, and ``[FUTURE, FUTURE)`` is empty.
    """
    known = jobs.where(jobs.records["submit_time"] <= t_now)
    rec = known.records.copy()
    future = _sentinel(jobs, t_now)
    not_started = rec["start_time"] > t_now
    rec["start_time"][not_started] = future
    rec["end_time"][not_started] = future
    still_running = (~not_started) & (rec["end_time"] > t_now)
    rec["end_time"][still_running] = future
    return JobSet(rec, known.partition_names)


def live_features(
    jobs: JobSet,
    t_now: float,
    cluster: Cluster,
    pred_runtime_min: np.ndarray | None = None,
    pipeline: FeaturePipeline | None = None,
    n_jobs: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Feature rows for the jobs pending at ``t_now``, future-blind.

    Parameters
    ----------
    jobs:
        The full trace (only its past-of-``t_now`` part is used).
    pred_runtime_min:
        Runtime-model predictions aligned with ``jobs``; these depend only
        on request-time attributes so they carry no future information.
    n_jobs:
        Snapshot-stage worker processes for the default pipeline (ignored
        when an explicit ``pipeline`` is passed, which carries its own).

    Returns
    -------
    (X_live, positions):
        Feature rows (masked-trace pipeline output) and the pending jobs'
        positions in the *original* trace.
    """
    masked = mask_future(jobs, t_now)
    if len(masked) == 0:
        raise ValueError(f"no jobs known at t_now={t_now}")
    pipeline = pipeline or FeaturePipeline(cluster, n_jobs=n_jobs)
    if pred_runtime_min is not None:
        keep = jobs.records["submit_time"] <= t_now
        pred = np.asarray(pred_runtime_min, dtype=np.float64)[keep]
    else:
        pred = None
    fm = pipeline.compute(masked, pred_runtime_min=pred)
    pend_masked = pending_at(masked, t_now)
    # Map masked positions back to the original trace by job id.
    orig_by_id = {int(j): i for i, j in enumerate(jobs.records["job_id"])}
    positions = np.array(
        [orig_by_id[int(masked.records["job_id"][p])] for p in pend_masked],
        dtype=np.intp,
    )
    return fm.X[pend_masked], positions
