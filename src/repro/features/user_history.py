"""Per-user past-day aggregates (Table II "User * Past Day" rows).

At each job's eligibility instant, count/sum the *same user's* submissions
in the trailing 24 hours — the feature block that lets the model see
fair-share pressure ("this makes it necessary to integrate features
relating to users and their history").

Computed per user with prefix sums over the user's submit-time-sorted jobs:
the past-day window at any instant is a ``searchsorted`` pair, so the whole
block is O(n log n).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import JobSet

__all__ = ["user_past_day", "USER_KEYS", "PAST_DAY_S"]

PAST_DAY_S = 24 * 3600.0

USER_KEYS: tuple[str, ...] = (
    "user_jobs_past_day",
    "user_cpus_past_day",
    "user_mem_past_day",
    "user_nodes_past_day",
    "user_timelimit_past_day",
)


def user_past_day(jobs: JobSet, window_s: float = PAST_DAY_S) -> dict[str, np.ndarray]:
    """Aggregates over each user's submissions in ``[t − window, t)``.

    ``t`` is the job's eligibility instant; the job's own submission is
    inside its window when ``submit > eligible − window`` (it always is for
    immediately-eligible jobs) and is **excluded** — the features describe
    the user's *other* recent activity.

    Returns a mapping of :data:`USER_KEYS` to arrays aligned with the
    input order.
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    rec = jobs.records
    n = len(jobs)
    out = {k: np.zeros(n) for k in USER_KEYS}
    values = {
        "cpus": rec["req_cpus"].astype(np.float64),
        "mem": rec["req_mem_gb"].astype(np.float64),
        "nodes": rec["req_nodes"].astype(np.float64),
        "timelimit": rec["timelimit_min"].astype(np.float64),
    }
    for user in np.unique(rec["user_id"]):
        g = np.flatnonzero(rec["user_id"] == user)
        submit = rec["submit_time"][g]
        elig = rec["eligible_time"][g]
        order = np.argsort(submit, kind="stable")
        submit_sorted = submit[order]
        # Prefix sums over the user's jobs in submit order; window bounds
        # found with two binary searches per query.
        lo = np.searchsorted(submit_sorted, elig - window_s, side="left")
        hi = np.searchsorted(submit_sorted, elig, side="right")
        span = (hi - lo).astype(np.float64)
        # Exclude the job's own submission when it falls in its window.
        pos = np.empty(len(g), dtype=np.intp)
        pos[order] = np.arange(len(g))
        own_in = (pos >= lo) & (pos < hi)
        out["user_jobs_past_day"][g] = span - own_in
        for key, vals in values.items():
            v_sorted = vals[g][order]
            csum = np.concatenate([[0.0], np.cumsum(v_sorted)])
            sums = csum[hi] - csum[lo]
            sums -= np.where(own_in, vals[g], 0.0)
            out[f"user_{key}_past_day"][g] = sums
    return out
