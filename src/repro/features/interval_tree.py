"""Centred interval trees with vectorised batch stabbing.

The paper's feature engineering needs, for every job's eligibility instant
``t``, the set of jobs whose pending interval ``[eligible, start)`` or run
interval ``[start, end)`` contains ``t`` — millions of stabbing queries over
millions of intervals.  The paper's solution, reproduced here, is interval
trees built over chunks of 100 000 jobs with a 10 000-job overlap, queried
independently and merged.

This implementation goes one step further than a textbook tree: stabbing
queries are *batched*.  The query set is pushed down the tree as arrays, and
at each node the matching (query, interval) pairs are emitted with pure
NumPy prefix arithmetic, so the per-query Python overhead is amortised over
the whole batch — the vectorise-the-loop discipline of the hpc-parallel
guides.

All intervals are half-open ``[start, end)``: a point ``t`` is covered when
``start <= t < end``.  Empty intervals (``end <= start``) are legal and
never match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.parallel import overlapping_chunks, parallel_map

__all__ = ["IntervalTree", "ChunkedIntervalForest", "naive_stab_batch"]


@dataclass
class _Node:
    """One node of the centred tree.

    ``ids_by_start`` / ``ids_by_end`` index the *original* interval arrays;
    both hold the same interval set (those straddling ``center``), ordered
    by ascending start and descending end respectively.
    """

    center: float
    starts_sorted: np.ndarray  # ascending starts of straddling intervals
    ends_sorted_desc: np.ndarray  # descending ends of the same intervals
    ids_by_start: np.ndarray
    ids_by_end: np.ndarray
    left: "_Node | None"
    right: "_Node | None"


class IntervalTree:
    """Static centred interval tree over parallel ``starts`` / ``ends``.

    Parameters
    ----------
    starts, ends:
        Parallel 1-D arrays defining half-open intervals ``[start, end)``.
    ids:
        Optional external identifiers returned by queries; defaults to the
        positional index ``0..n-1``.
    """

    def __init__(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        ids: np.ndarray | None = None,
    ) -> None:
        starts = np.ascontiguousarray(starts, dtype=np.float64)
        ends = np.ascontiguousarray(ends, dtype=np.float64)
        if starts.ndim != 1 or starts.shape != ends.shape:
            raise ValueError(
                f"starts/ends must be equal-length 1-D arrays, got "
                f"{starts.shape} and {ends.shape}"
            )
        if ids is None:
            ids = np.arange(len(starts), dtype=np.int64)
        else:
            ids = np.ascontiguousarray(ids, dtype=np.int64)
            if ids.shape != starts.shape:
                raise ValueError("ids must parallel starts/ends")
        self.starts = starts
        self.ends = ends
        self.ids = ids
        # Drop empty intervals up front: they can never match a stab.
        live = np.flatnonzero(ends > starts)
        self.n_intervals = len(starts)
        self._root = self._build(live) if len(live) else None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, idx: np.ndarray) -> _Node | None:
        if len(idx) == 0:
            return None
        s = self.starts[idx]
        e = self.ends[idx]
        # Median of all endpoints keeps the tree balanced for clustered data.
        center = float(np.median(np.concatenate([s, e])))
        straddle = (s <= center) & (center < e)
        left_mask = e <= center
        right_mask = s > center
        node_idx = idx[straddle]
        ns = self.starts[node_idx]
        ne = self.ends[node_idx]
        order_s = np.argsort(ns, kind="stable")
        order_e = np.argsort(-ne, kind="stable")
        left_idx = idx[left_mask]
        right_idx = idx[right_mask]
        # Degenerate split guard: if nothing straddles and one side holds
        # everything, recursion would not shrink — split that side by rank.
        if len(node_idx) == 0 and (len(left_idx) == len(idx) or len(right_idx) == len(idx)):
            side = left_idx if len(left_idx) == len(idx) else right_idx
            half = len(side) // 2
            order = np.argsort(self.starts[side], kind="stable")
            side = side[order]
            lo, hi = side[:half], side[half:]
            # Promote one interval to the node to guarantee progress.
            promoted = hi[:1]
            hi = hi[1:]
            ps = self.starts[promoted]
            pe = self.ends[promoted]
            return _Node(
                center=float(ps[0]),
                starts_sorted=ps,
                ends_sorted_desc=pe,
                ids_by_start=promoted.astype(np.int64),
                ids_by_end=promoted.astype(np.int64),
                left=self._build(lo),
                right=self._build(hi),
            )
        return _Node(
            center=center,
            starts_sorted=ns[order_s],
            ends_sorted_desc=ne[order_e],
            ids_by_start=node_idx[order_s].astype(np.int64),
            ids_by_end=node_idx[order_e].astype(np.int64),
            left=self._build(left_idx),
            right=self._build(right_idx),
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def stab(self, t: float) -> np.ndarray:
        """Positional indices of all intervals containing point ``t``."""
        idx, indptr = self.stab_batch(np.asarray([t], dtype=np.float64))
        return idx[indptr[0] : indptr[1]]

    def stab_batch(self, ts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched stabbing query.

        Parameters
        ----------
        ts:
            1-D array of query points.

        Returns
        -------
        (indices, indptr):
            CSR layout — matches for query ``k`` are
            ``indices[indptr[k]:indptr[k+1]]`` (positional interval indices,
            unordered).
        """
        ts = np.ascontiguousarray(ts, dtype=np.float64)
        if ts.ndim != 1:
            raise ValueError(f"ts must be 1-D, got shape {ts.shape}")
        m = len(ts)
        pair_q: list[np.ndarray] = []
        pair_i: list[np.ndarray] = []
        if self._root is not None and m:
            stack: list[tuple[_Node, np.ndarray]] = [
                (self._root, np.arange(m, dtype=np.intp))
            ]
            while stack:
                node, qidx = stack.pop()
                tq = ts[qidx]
                lt = tq < node.center
                gt = tq > node.center
                eq = ~lt & ~gt
                # t < center: matching straddlers have start <= t.
                q_lt = qidx[lt]
                if len(q_lt):
                    counts = np.searchsorted(
                        node.starts_sorted, ts[q_lt], side="right"
                    )
                    _emit(pair_q, pair_i, q_lt, counts, node.ids_by_start)
                    if node.left is not None:
                        stack.append((node.left, q_lt))
                # t > center: matching straddlers have end > t.
                q_gt = qidx[gt]
                if len(q_gt):
                    # ends_sorted_desc is descending; count of ends > t is
                    # the insertion point in the ascending reversed array.
                    counts = len(node.ends_sorted_desc) - np.searchsorted(
                        node.ends_sorted_desc[::-1], ts[q_gt], side="right"
                    )
                    _emit(pair_q, pair_i, q_gt, counts, node.ids_by_end)
                    if node.right is not None:
                        stack.append((node.right, q_gt))
                # t == center: every straddler matches.
                q_eq = qidx[eq]
                if len(q_eq):
                    k = len(node.ids_by_start)
                    if k:
                        counts = np.full(len(q_eq), k, dtype=np.intp)
                        _emit(pair_q, pair_i, q_eq, counts, node.ids_by_start)
        if pair_q:
            qs = np.concatenate(pair_q)
            iv = np.concatenate(pair_i)
        else:
            qs = np.zeros(0, dtype=np.intp)
            iv = np.zeros(0, dtype=np.int64)
        order = np.argsort(qs, kind="stable")
        qs = qs[order]
        iv = iv[order]
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(indptr, qs + 1, 1)
        np.cumsum(indptr, out=indptr)
        return iv, indptr

    def stab_ids_batch(self, ts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`stab_batch` but returns external ``ids``."""
        iv, indptr = self.stab_batch(ts)
        return self.ids[iv], indptr

    def overlap(self, lo: float, hi: float) -> np.ndarray:
        """Positional indices of intervals overlapping ``[lo, hi)``.

        An interval ``[s, e)`` overlaps iff ``s < hi`` and ``e > lo``.
        """
        if hi <= lo or self._root is None:
            return np.zeros(0, dtype=np.intp)
        mask = (self.starts < hi) & (self.ends > lo) & (self.ends > self.starts)
        return np.flatnonzero(mask)

    def overlap_batch(
        self, los: np.ndarray, his: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched window-overlap query in CSR layout.

        A window ``[lo, hi)`` overlaps interval ``[s, e)`` iff the interval
        stabs at ``lo`` **or** starts inside ``[lo, hi)`` — so the batched
        stab machinery plus one ``searchsorted`` over the start-sorted
        interval list answers every window without O(n·m) work.
        """
        los = np.ascontiguousarray(los, dtype=np.float64)
        his = np.ascontiguousarray(his, dtype=np.float64)
        if los.shape != his.shape or los.ndim != 1:
            raise ValueError("los/his must be equal-length 1-D arrays")
        m = len(los)
        stab_iv, stab_ptr = self.stab_batch(los)
        live = self.ends > self.starts
        order = np.argsort(self.starts, kind="stable")
        order = order[live[order]]
        starts_sorted = self.starts[order]
        pair_q: list[np.ndarray] = []
        pair_i: list[np.ndarray] = []
        for k in range(m):
            if his[k] <= los[k]:
                continue  # empty window overlaps nothing
            hits = set(stab_iv[stab_ptr[k] : stab_ptr[k + 1]].tolist())
            lo_pos = np.searchsorted(starts_sorted, los[k], side="left")
            hi_pos = np.searchsorted(starts_sorted, his[k], side="left")
            hits.update(order[lo_pos:hi_pos].tolist())
            if hits:
                arr = np.fromiter(hits, dtype=np.int64)
                pair_q.append(np.full(len(arr), k, dtype=np.intp))
                pair_i.append(arr)
        if pair_q:
            qs = np.concatenate(pair_q)
            iv = np.concatenate(pair_i)
        else:
            qs = np.zeros(0, dtype=np.intp)
            iv = np.zeros(0, dtype=np.int64)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(indptr, qs + 1, 1)
        np.cumsum(indptr, out=indptr)
        order2 = np.argsort(qs, kind="stable")
        return iv[order2], indptr

    @property
    def depth(self) -> int:
        """Tree height (0 for an empty tree)."""

        def _d(node: _Node | None) -> int:
            if node is None:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        return _d(self._root)


def _emit(
    pair_q: list[np.ndarray],
    pair_i: list[np.ndarray],
    qidx: np.ndarray,
    counts: np.ndarray,
    ids_sorted: np.ndarray,
) -> None:
    """Append the (query, interval) pairs for per-query prefix matches.

    ``counts[k]`` is how many leading entries of ``ids_sorted`` match query
    ``qidx[k]``; the expansion is pure prefix arithmetic (no Python loop).
    """
    total = int(counts.sum())
    if total == 0:
        return
    counts = counts.astype(np.intp, copy=False)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.intp) - offsets
    pair_q.append(np.repeat(qidx, counts))
    pair_i.append(ids_sorted[within])


def _build_chunk_tree(
    payload: tuple[np.ndarray, np.ndarray, int, int],
) -> tuple[IntervalTree, tuple[float, float]]:
    """Build one chunk's tree (+ live time span).  Module-level so process
    pools can pickle it; deterministic given the chunk's slice alone."""
    starts, ends, lo, hi = payload
    ids = np.arange(lo, hi, dtype=np.int64)
    tree = IntervalTree(starts, ends, ids=ids)
    live = ends > starts
    if np.any(live):
        span = (float(starts[live].min()), float(ends[live].max()))
    else:
        span = (np.inf, -np.inf)
    return tree, span


def _chunk_label(payload: tuple[np.ndarray, np.ndarray, int, int]) -> str:
    _, _, lo, hi = payload
    return f"interval-tree chunk [{lo}, {hi})"


class ChunkedIntervalForest:
    """The paper's chunked interval-tree scheme.

    Intervals are split (in the given order) into chunks of ``chunk_size``
    with ``overlap`` shared between consecutive chunks — the paper used
    100 000 and 10 000 — one tree per chunk.  Queries fan out to the trees
    whose time span can contain the point and results are merged with
    duplicates (from the overlap regions) removed, i.e. the trees are
    "merged back together after finishing".

    Chunking bounds per-tree build cost and, with ``n_jobs > 1``, fans the
    chunk builds out across processes ("chunk builds proceed in parallel",
    §V).  Each tree is a pure function of its own slice and the merged list
    preserves chunk order, so parallel construction is bit-identical to
    serial.  Overlap preserves matches for jobs straddling chunk edges when
    the interval list is approximately time-ordered.
    """

    def __init__(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        chunk_size: int = 100_000,
        overlap: int = 10_000,
        n_jobs: int | None = 1,
    ) -> None:
        starts = np.ascontiguousarray(starts, dtype=np.float64)
        ends = np.ascontiguousarray(ends, dtype=np.float64)
        if starts.shape != ends.shape or starts.ndim != 1:
            raise ValueError("starts/ends must be equal-length 1-D arrays")
        self.n_intervals = len(starts)
        self.chunk_size = chunk_size
        self.overlap = overlap
        payloads = [
            (starts[lo:hi], ends[lo:hi], lo, hi)
            for lo, hi in overlapping_chunks(len(starts), chunk_size, overlap)
        ]
        built = parallel_map(
            _build_chunk_tree, payloads, n_jobs=n_jobs, label=_chunk_label
        )
        self._trees: list[IntervalTree] = [tree for tree, _ in built]
        self._spans: list[tuple[float, float]] = [span for _, span in built]

    @property
    def n_trees(self) -> int:
        """Number of chunk trees."""
        return len(self._trees)

    def stab_batch(self, ts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Merged batched stab over all chunk trees (CSR layout).

        Matches are global positional indices, deduplicated per query and
        sorted ascending within each query.
        """
        ts = np.ascontiguousarray(ts, dtype=np.float64)
        m = len(ts)
        all_q: list[np.ndarray] = []
        all_i: list[np.ndarray] = []
        for tree, (lo, hi) in zip(self._trees, self._spans):
            sel = np.flatnonzero((ts >= lo) & (ts < hi))
            if not len(sel):
                continue
            ids, indptr = tree.stab_ids_batch(ts[sel])
            counts = np.diff(indptr)
            if ids.size:
                all_q.append(np.repeat(sel, counts))
                all_i.append(ids)
        if not all_q:
            return np.zeros(0, dtype=np.int64), np.zeros(m + 1, dtype=np.int64)
        qs = np.concatenate(all_q)
        iv = np.concatenate(all_i)
        # Deduplicate (query, interval) pairs introduced by chunk overlap.
        order = np.lexsort((iv, qs))
        qs = qs[order]
        iv = iv[order]
        keep = np.ones(len(qs), dtype=bool)
        keep[1:] = (qs[1:] != qs[:-1]) | (iv[1:] != iv[:-1])
        qs = qs[keep]
        iv = iv[keep]
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(indptr, qs + 1, 1)
        np.cumsum(indptr, out=indptr)
        return iv, indptr

    def stab(self, t: float) -> np.ndarray:
        """Single-point stab returning global positional indices."""
        iv, indptr = self.stab_batch(np.asarray([t], dtype=np.float64))
        return iv[indptr[0] : indptr[1]]


def naive_stab_batch(
    starts: np.ndarray,
    ends: np.ndarray,
    ts: np.ndarray,
    block: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """O(n·m) stabbing baseline for the A1 ablation.

    Broadcast comparison in query blocks of ``block`` to bound peak memory.
    Returns the same CSR layout as :meth:`IntervalTree.stab_batch`, with
    matches sorted ascending per query.
    """
    starts = np.asarray(starts, dtype=np.float64)
    ends = np.asarray(ends, dtype=np.float64)
    ts = np.asarray(ts, dtype=np.float64)
    m = len(ts)
    chunks_i: list[np.ndarray] = []
    counts = np.zeros(m, dtype=np.int64)
    for lo in range(0, m, block):
        hi = min(lo + block, m)
        tq = ts[lo:hi, None]
        hit = (starts[None, :] <= tq) & (tq < ends[None, :])
        qk, ik = np.nonzero(hit)
        chunks_i.append(ik.astype(np.int64))
        np.add.at(counts, qk + lo, 1)
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = (
        np.concatenate(chunks_i) if chunks_i else np.zeros(0, dtype=np.int64)
    )
    return indices, indptr
