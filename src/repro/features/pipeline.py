"""Assembly of the full Table II feature matrix.

:class:`FeaturePipeline` turns an accounting trace into the canonical
33-column matrix (see :mod:`repro.features.names`): job-request columns
straight from the records, partition snapshots from the interval-tree
engine, user past-day history, static partition specs, and the runtime
model's predictions.  ``log1p`` is applied to every column, as in §III
("a natural log transformation was applied to all features").

The snapshot stage — the dominant cost at paper scale — fans out across
processes when ``n_jobs > 1`` (order-stable merge, bit-identical to
serial; see ``tests/features/test_parallel_equivalence.py``), and finished
matrices can be memoised on disk through
:class:`repro.features.cache.FeatureCache`.  Per-stage wall times are
recorded on the returned matrix for the benches and ``eval.report``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.data.schema import JobSet
from repro.features.names import FEATURE_NAMES
from repro.features.snapshots import partition_snapshots
from repro.features.static_specs import static_partition_features
from repro.features.user_history import user_past_day
from repro.obs import metrics, tracing
from repro.slurm.resources import Cluster
from repro.utils.logging import get_logger

__all__ = ["FeatureMatrix", "FeaturePipeline", "resolve_n_jobs"]

log = get_logger(__name__)


def resolve_n_jobs(n_jobs: int | None) -> int:
    """``None`` defers to the ``REPRO_N_JOBS`` environment knob (default 1).

    This is how CI exercises every parallel path: the second workflow job
    sets ``REPRO_N_JOBS=2`` and runs the unmodified suite.
    """
    if n_jobs is not None:
        return n_jobs
    raw = os.environ.get("REPRO_N_JOBS", "1")
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_N_JOBS must be an integer, got {raw!r}"
        ) from None


@dataclass
class FeatureMatrix:
    """A feature matrix with its provenance.

    ``X`` is the log1p-transformed matrix unless ``raw`` was requested;
    rows align with ``jobs`` (eligibility order preserved).  ``timings``
    holds per-stage wall seconds derived from the producing run's span
    tree (see :mod:`repro.obs.tracing`; empty on a cache hit, which sets
    ``cache_hit`` instead).
    """

    X: np.ndarray  # (n_jobs, 33)
    names: tuple[str, ...]
    queue_time_min: np.ndarray  # regression target, minutes
    log_transformed: bool
    timings: dict[str, float] = field(default_factory=dict, repr=False)
    cache_hit: bool = False

    def column(self, name: str) -> np.ndarray:
        """One feature column by name."""
        return self.X[:, self.names.index(name)]

    def __len__(self) -> int:
        return len(self.X)


class FeaturePipeline:
    """Trace → Table II matrix.

    Parameters
    ----------
    cluster:
        Supplies the static partition-spec columns.
    chunk_size, overlap:
        Interval-tree chunking (paper defaults 100 000 / 10 000).
    log_transform:
        Apply ``log1p`` columnwise (the paper's choice).
    n_jobs:
        Worker processes for the snapshot stage (chunk tree builds and
        per-partition aggregation).  ``None`` reads ``REPRO_N_JOBS``
        (default 1).  Any value produces a bit-identical matrix.
    cache:
        Optional :class:`repro.features.cache.FeatureCache`; when set,
        :meth:`compute` is memoised on a content hash of the trace, the
        pipeline configuration and the predicted-runtime vector.
    """

    def __init__(
        self,
        cluster: Cluster,
        chunk_size: int = 100_000,
        overlap: int = 10_000,
        log_transform: bool = True,
        user_window_s: float = 24 * 3600.0,
        n_jobs: int | None = None,
        cache: "FeatureCache | None" = None,
    ) -> None:
        if user_window_s <= 0:
            raise ValueError("user_window_s must be positive")
        self.cluster = cluster
        self.chunk_size = chunk_size
        self.overlap = overlap
        self.log_transform = log_transform
        #: §V proposes matching the user-history window to the cluster's
        #: fair-share period ("user jobs ran in past slurm-period"); the
        #: default is the paper's past-day window.
        self.user_window_s = user_window_s
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.cache = cache

    def signature(self) -> tuple:
        """Everything configuration-side the matrix depends on (cache key
        material): chunking, transforms, and the cluster's static specs."""
        specs = self.cluster.partition_specs()
        return (
            self.chunk_size,
            self.overlap,
            self.log_transform,
            self.user_window_s,
            self.cluster.name,
            tuple(self.cluster.partition_names),
            tuple(
                (k, tuple(np.asarray(v, dtype=np.float64).tolist()))
                for k, v in sorted(specs.items())
            ),
        )

    def compute(
        self,
        jobs: JobSet,
        pred_runtime_min: np.ndarray | None = None,
    ) -> FeatureMatrix:
        """Build the matrix for a full trace.

        ``pred_runtime_min`` comes from
        :class:`repro.core.runtime_model.RuntimePredictor` trained on past
        data only; ``None`` falls back to requested timelimits for the three
        predicted-runtime columns (useful in tests).
        """
        rec = jobs.records
        n = len(jobs)
        if n == 0:
            raise ValueError("cannot featurise an empty trace")
        if pred_runtime_min is None:
            pred = rec["timelimit_min"].astype(np.float64)
        else:
            pred = np.asarray(pred_runtime_min, dtype=np.float64)
            if pred.shape != (n,):
                raise ValueError("pred_runtime_min must align with jobs")

        key: str | None = None
        if self.cache is not None:
            key = self.cache.key_for(jobs, pred, self.signature())
            cached = self.cache.load(key)
            if cached is not None:
                log.info("feature cache hit for %d jobs (key %s…)", n, key[:12])
                return cached

        with tracing.span("featurize", rows=n, n_jobs=self.n_jobs) as root:
            cols: dict[str, np.ndarray] = {
                "priority": rec["priority"].astype(np.float64),
                "timelimit_raw": rec["timelimit_min"].astype(np.float64),
                "req_cpus": rec["req_cpus"].astype(np.float64),
                "req_mem": rec["req_mem_gb"].astype(np.float64),
                "req_nodes": rec["req_nodes"].astype(np.float64),
                "pred_runtime": pred,
            }
            with tracing.span("snapshots"):
                cols.update(
                    partition_snapshots(
                        jobs,
                        pred_runtime_min=pred,
                        chunk_size=self.chunk_size,
                        overlap=self.overlap,
                        n_jobs=self.n_jobs,
                    )
                )
            with tracing.span("user_history"):
                cols.update(user_past_day(jobs, window_s=self.user_window_s))
            with tracing.span("static_specs"):
                cols.update(static_partition_features(jobs, self.cluster))

            with tracing.span("assemble"):
                missing = [name for name in FEATURE_NAMES if name not in cols]
                if missing:
                    raise RuntimeError(
                        f"pipeline did not produce columns: {missing}"
                    )
                X = np.column_stack([cols[name] for name in FEATURE_NAMES])
                if np.any(X < -1e-6):
                    j = int(np.argmin(X.min(axis=0)))
                    raise ValueError(
                        f"negative raw feature value in {FEATURE_NAMES[j]!r}"
                    )
                # Prefix-sum arithmetic can leave −1e-12-scale residue; every
                # Table II quantity is non-negative by construction.
                X = np.maximum(X, 0.0)
                if self.log_transform:
                    X = np.log1p(X)
        timings = tracing.span_timings(root)
        reg = metrics.get_registry()
        reg.counter(
            "featurize_rows_total", help="jobs featurised (cache misses only)"
        ).inc(n)
        reg.histogram(
            "featurize_seconds", help="wall time of full matrix builds"
        ).observe(timings["total"])
        log.info(
            "featurised %d jobs into %d columns in %.2fs (n_jobs=%d)",
            n,
            X.shape[1],
            timings["total"],
            self.n_jobs,
        )
        fm = FeatureMatrix(
            X=np.ascontiguousarray(X),
            names=FEATURE_NAMES,
            queue_time_min=jobs.queue_time_min,
            log_transformed=self.log_transform,
            timings=timings,
        )
        if self.cache is not None and key is not None:
            self.cache.store(key, fm)
        return fm
