"""Per-job request and runtime sampling.

Requests follow partition-specific habits (sub-node jobs on ``shared``,
whole-node multiples on the exclusive partitions, wide jobs on ``wide``,
GPU counts on ``gpu``); requested walltimes come from the human "menu" of
round values with a median of ~4 h and mean ~12.5 h (Table I); actual
runtimes are a mixture of quick exits (crashes, median runtime 0.03 h) and
a Beta-distributed fraction of the request with mean ≈ 15 % — the
overestimation the paper calls a consistent problem on Anvil.
"""

from __future__ import annotations

import numpy as np

from repro.slurm.resources import Cluster

__all__ = ["sample_requests", "sample_runtimes", "TIMELIMIT_MENU_MIN"]

#: The round-number walltime menu users actually pick from, in minutes.
TIMELIMIT_MENU_MIN = np.array(
    [10.0, 30.0, 60.0, 120.0, 240.0, 480.0, 720.0, 1440.0, 2880.0, 5760.0]
)
#: Menu weights tuned for median ≈ 4 h and mean ≈ 12.5 h requested.
_TIMELIMIT_WEIGHTS = np.array(
    [0.06, 0.10, 0.12, 0.11, 0.13, 0.09, 0.09, 0.14, 0.09, 0.07]
)
_TIMELIMIT_WEIGHTS = _TIMELIMIT_WEIGHTS / _TIMELIMIT_WEIGHTS.sum()

#: CPU-count habits for sub-node (shared-style) jobs.
_SHARED_CPUS = np.array([1, 2, 4, 8, 16, 32, 64, 128])
_SHARED_CPU_W = np.array([0.30, 0.10, 0.13, 0.14, 0.13, 0.10, 0.06, 0.04])
_SHARED_CPU_W = _SHARED_CPU_W / _SHARED_CPU_W.sum()


def sample_requests(
    partition_ids: np.ndarray,
    resource_scale: np.ndarray,
    cluster: Cluster,
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """Sample (cpus, mem, nodes, gpus, timelimit) per job.

    Parameters
    ----------
    partition_ids:
        Target partition index per job.
    resource_scale:
        Per-job user habit multiplier (≥ 0) nudging request sizes.
    cluster:
        Used for per-partition caps and node shapes; requests are always
        clamped to what the partition's pool can satisfy.
    """
    partition_ids = np.asarray(partition_ids, dtype=np.intp)
    n = len(partition_ids)
    req_cpus = np.zeros(n, dtype=np.int64)
    req_mem = np.zeros(n, dtype=np.float64)
    req_nodes = np.zeros(n, dtype=np.int64)
    req_gpus = np.zeros(n, dtype=np.int64)
    timelimit = rng.choice(TIMELIMIT_MENU_MIN, size=n, p=_TIMELIMIT_WEIGHTS)

    pool_ids = cluster.partition_pool_ids()
    for pid, part in enumerate(cluster.partitions):
        mask = partition_ids == pid
        m = int(mask.sum())
        if m == 0:
            continue
        pool = cluster.pools[pool_ids[pid]]
        cap_nodes = pool.n_nodes if part.max_nodes is None else min(
            part.max_nodes, pool.n_nodes
        )
        scale = resource_scale[mask]
        if part.name == "shared":
            cpus = rng.choice(_SHARED_CPUS, size=m, p=_SHARED_CPU_W)
            cpus = np.minimum(
                np.maximum(1, (cpus * np.clip(scale, 0.5, 2.0)).astype(np.int64)),
                pool.cpus_per_node,
            )
            nodes = np.ones(m, dtype=np.int64)
            # ~2 GB/core habit with jitter, capped by the node.
            mem = np.minimum(
                cpus * 2.0 * rng.lognormal(0.0, 0.4, m), pool.mem_gb_per_node
            )
        elif part.name in ("wholenode", "wide"):
            lo = 16 if part.name == "wide" else 1
            lo = min(lo, cap_nodes)
            # Heavy-tailed width: geometric-ish with occasional big jobs.
            width = lo + rng.geometric(0.35, size=m) - 1
            width = np.minimum((width * np.clip(scale, 0.5, 3.0)).astype(np.int64), cap_nodes)
            nodes = np.maximum(width, lo)
            cpus = nodes * pool.cpus_per_node
            mem = nodes * pool.mem_gb_per_node
        elif part.name == "standard":
            nodes = np.minimum(rng.geometric(0.5, size=m), cap_nodes)
            per_node_cpus = rng.choice([32, 64, 128], size=m, p=[0.3, 0.3, 0.4])
            cpus = np.minimum(nodes * per_node_cpus, nodes * pool.cpus_per_node)
            mem = np.minimum(cpus * 2.0, nodes * pool.mem_gb_per_node)
        elif part.name == "highmem":
            nodes = np.ones(m, dtype=np.int64)
            cpus = rng.choice([16, 32, 64, 128], size=m, p=[0.25, 0.3, 0.25, 0.2])
            mem = np.minimum(
                rng.uniform(0.3, 1.0, m) * pool.mem_gb_per_node, pool.mem_gb_per_node
            )
        elif part.name == "debug":
            nodes = np.minimum(rng.integers(1, 3, size=m), cap_nodes)
            cpus = np.minimum(
                rng.choice([1, 4, 16, 64], size=m, p=[0.3, 0.3, 0.25, 0.15])
                * nodes,
                nodes * pool.cpus_per_node,
            )
            mem = np.minimum(cpus * 2.0, nodes * pool.mem_gb_per_node)
        elif part.name == "gpu":
            nodes = np.ones(m, dtype=np.int64)
            gpus = rng.choice([1, 2, 4], size=m, p=[0.55, 0.25, 0.2])
            req_gpus[mask] = gpus
            cpus = np.minimum(gpus * 32, pool.cpus_per_node)
            mem = np.minimum(gpus * 64.0, pool.mem_gb_per_node)
        else:  # generic fallback for custom clusters
            nodes = np.minimum(rng.geometric(0.5, size=m), cap_nodes)
            cpus = np.minimum(nodes * pool.cpus_per_node, pool.total_cpus)
            mem = np.minimum(nodes * pool.mem_gb_per_node, pool.total_mem_gb)
        req_cpus[mask] = np.maximum(np.asarray(cpus, dtype=np.int64), 1)
        req_nodes[mask] = np.maximum(np.asarray(nodes, dtype=np.int64), 1)
        req_mem[mask] = np.maximum(np.asarray(mem, dtype=np.float64), 0.5)
        timelimit[mask] = np.minimum(timelimit[mask], part.max_timelimit_min)
    return {
        "req_cpus": req_cpus,
        "req_mem_gb": req_mem,
        "req_nodes": req_nodes,
        "req_gpus": req_gpus,
        "timelimit_min": timelimit,
    }


def sample_runtimes(
    timelimit_min: np.ndarray,
    user_utilization: np.ndarray,
    rng: np.random.Generator,
    crash_fraction: float = 0.32,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample actual runtimes and early-failure flags.

    A ``crash_fraction`` of jobs exits within minutes (failures, instant
    completions — these give the 0.03 h median runtime of Table I); the
    rest uses a Beta-distributed fraction of the request centred on the
    user's utilisation habit (population mean ≈ 0.15), with a small mass of
    jobs hitting their limit (TIMEOUT).

    Returns
    -------
    (runtime_min, fail):
        Actual runtime in minutes and an int8 early-failure flag.
    """
    timelimit_min = np.asarray(timelimit_min, dtype=np.float64)
    n = len(timelimit_min)
    crash = rng.random(n) < crash_fraction
    # Quick exits: seconds to a few minutes, never beyond the limit.
    quick = np.minimum(rng.exponential(1.5, n) + 0.05, timelimit_min)
    # Long-running: Beta shaped around each user's habit.  Concentration 4
    # keeps per-user variability realistic.
    conc = 4.0
    mu = np.clip(user_utilization, 0.02, 0.95)
    frac = rng.beta(mu * conc, (1.0 - mu) * conc)
    frac = np.clip(frac, 1e-4, 1.0)
    normal = frac * timelimit_min
    # ~4 % of non-crash jobs run into their limit.
    hit_limit = (~crash) & (rng.random(n) < 0.04)
    runtime = np.where(crash, quick, normal)
    runtime[hit_limit] = timelimit_min[hit_limit]
    fail = np.zeros(n, dtype=np.int8)
    # Half the quick exits are genuine failures.
    fail[crash & (rng.random(n) < 0.5)] = 1
    return np.maximum(runtime, 0.01), fail
