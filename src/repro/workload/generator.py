"""End-to-end synthetic workload generation.

:func:`generate_submissions` produces a :data:`SUBMISSION_DTYPE` table for a
given cluster; :func:`generate_trace` additionally runs the simulator and
returns the accounting trace.  The number of jobs is fixed by the config and
the trace *duration is derived* from the target average utilisation: total
sampled CPU-work divided by ``load × cluster CPU capacity``, so a higher
``load`` compresses the same jobs into less wall time and queues grow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.slurm.anvil import ANVIL_PARTITIONS, anvil_cluster
from repro.slurm.priority import PriorityWeights
from repro.slurm.resources import Cluster
from repro.slurm.simulator import SUBMISSION_DTYPE, SimulationResult, Simulator
from repro.utils.logging import get_logger
from repro.utils.rng import default_rng
from repro.workload.arrivals import burst_sizes, sample_event_times
from repro.workload.jobs import sample_requests, sample_runtimes
from repro.workload.users import UserPopulation

__all__ = ["WorkloadConfig", "generate_submissions", "generate_trace"]

log = get_logger(__name__)

#: Default global partition shares; ``shared`` carries 68.95 % as in §I.
DEFAULT_PARTITION_SHARES: dict[str, float] = {
    "shared": 0.6895,
    "wholenode": 0.12,
    "standard": 0.08,
    "debug": 0.04,
    "gpu": 0.035,
    "highmem": 0.02,
    "wide": 0.0155,
}


@dataclass
class WorkloadConfig:
    """Knobs of the synthetic trace.

    ``load`` is the target mean CPU utilisation of the busiest pool; around
    0.28 the queue is mostly empty with bursts of congestion, matching the
    paper's ~87 % of jobs queuing under ten minutes while keeping a
    days-long right tail.  (Mean utilisation is calibrated against *actual*
    runtimes; instantaneous load during bursts is far higher.)
    """

    n_jobs: int = 50_000
    seed: int = 7
    cluster_scale: float = 0.05
    load: float = 0.28
    #: Fraction of the simulated trace discarded as warm-up: the cluster
    #: starts empty, so the earliest window is unrepresentatively quiet
    #: (standard steady-state simulation methodology).  The generator
    #: simulates extra jobs so the *returned* trace still has n_jobs.
    warmup_fraction: float = 0.15
    n_users: int | None = None  # default: ceil(n_jobs / 600), min 50
    partition_shares: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_PARTITION_SHARES)
    )
    crash_fraction: float = 0.32
    delayed_eligibility_prob: float = 0.02
    mean_eligibility_delay_s: float = 2 * 3600.0
    max_burst: int = 400

    def resolved_n_users(self) -> int:
        if self.n_users is not None:
            return self.n_users
        return max(50, int(np.ceil(self.n_jobs / 600)))


def generate_submissions(
    config: WorkloadConfig, cluster: Cluster
) -> tuple[np.ndarray, UserPopulation]:
    """Sample a submission table for ``cluster``.

    Returns the table (sorted by submit time, job ids assigned in that
    order) and the user population that produced it.
    """
    if config.n_jobs <= 0:
        raise ValueError(f"n_jobs must be positive, got {config.n_jobs}")
    rng = default_rng(config.seed)
    n_users = config.resolved_n_users()

    shares = np.array(
        [config.partition_shares.get(name, 0.0) for name in cluster.partition_names]
    )
    if shares.sum() <= 0:
        raise ValueError(
            "partition_shares has no overlap with the cluster's partitions"
        )
    pop = UserPopulation.sample(n_users, shares, seed=rng)

    # --- submission events (bursts) until we have n_jobs jobs ------------- #
    user_p = pop.activity_probs()
    mean_batch = float(
        np.mean(1.0 - pop.burstiness + pop.burstiness * pop.mean_burst)
    )
    n_events = max(8, int(config.n_jobs / mean_batch * 1.3))
    ev_users = rng.choice(n_users, size=n_events, p=user_p)
    sizes = burst_sizes(
        n_events,
        pop.burstiness[ev_users],
        pop.mean_burst[ev_users],
        rng,
        max_burst=config.max_burst,
    )
    cum = np.cumsum(sizes)
    # Keep events until we cover n_jobs, truncating the final burst.
    last = int(np.searchsorted(cum, config.n_jobs))
    if last >= n_events:  # undershoot: top up with single-job events
        deficit = config.n_jobs - int(cum[-1])
        extra_users = rng.choice(n_users, size=max(deficit, 0), p=user_p)
        ev_users = np.concatenate([ev_users, extra_users])
        sizes = np.concatenate([sizes, np.ones(max(deficit, 0), dtype=np.int64)])
        last = len(sizes) - 1
        cum = np.cumsum(sizes)
    overshoot = int(cum[last]) - config.n_jobs
    sizes = sizes[: last + 1].copy()
    ev_users = ev_users[: last + 1]
    sizes[-1] -= overshoot
    if sizes[-1] <= 0:
        sizes[-1] = 1
    n_events = len(sizes)
    n_jobs = int(sizes.sum())

    # --- per-burst attributes (identical within a burst) ------------------ #
    ev_part = np.array(
        [rng.choice(len(shares), p=pop.partition_pref[u]) for u in ev_users],
        dtype=np.intp,
    )
    ev_req = sample_requests(
        ev_part, pop.resource_scale[ev_users], cluster, rng
    )

    # --- expand bursts to jobs -------------------------------------------- #
    job_user = np.repeat(ev_users, sizes).astype(np.int32)
    job_part = np.repeat(ev_part, sizes).astype(np.int16)
    req_cpus = np.repeat(ev_req["req_cpus"], sizes).astype(np.int32)
    req_mem = np.repeat(ev_req["req_mem_gb"], sizes)
    req_nodes = np.repeat(ev_req["req_nodes"], sizes).astype(np.int32)
    req_gpus = np.repeat(ev_req["req_gpus"], sizes).astype(np.int32)
    timelimit = np.repeat(ev_req["timelimit_min"], sizes)

    runtime, fail = sample_runtimes(
        timelimit, pop.utilization_mean[job_user], rng, config.crash_fraction
    )

    # --- timeline ---------------------------------------------------------- #
    # Calibrate the trace duration against the *bottleneck* pool: each
    # pool's sampled CPU-work divided by its capacity gives the minimum
    # duration keeping that pool at or below the target load.
    pool_ids = cluster.partition_pool_ids()
    job_pool = pool_ids[job_part.astype(np.intp)]
    cpu_s = req_cpus * runtime * 60.0
    duration_s = 0.0
    for k, pool in enumerate(cluster.pools):
        pool_work = float(cpu_s[job_pool == k].sum())
        if pool_work > 0:
            duration_s = max(duration_s, pool_work / (config.load * pool.total_cpus))
    if duration_s <= 0:
        duration_s = 3600.0
    ev_times = sample_event_times(n_events, duration_s, rng)
    # Jobs within a burst land seconds apart (scripted submissions).
    gaps = rng.exponential(5.0, size=n_jobs)
    burst_start = np.repeat(ev_times, sizes)
    offsets = np.concatenate([np.cumsum(g) for g in np.split(gaps, np.cumsum(sizes)[:-1])])
    submit = burst_start + offsets

    elig_delay = np.zeros(n_jobs)
    delayed = rng.random(n_jobs) < config.delayed_eligibility_prob
    elig_delay[delayed] = rng.exponential(
        config.mean_eligibility_delay_s, int(delayed.sum())
    )
    eligible = submit + elig_delay

    qos = rng.choice(
        np.array([0, 1, 2], dtype=np.int8), size=n_jobs, p=[0.05, 0.85, 0.10]
    )

    order = np.argsort(submit, kind="stable")
    table = np.zeros(n_jobs, dtype=SUBMISSION_DTYPE)
    table["job_id"] = np.arange(1, n_jobs + 1)
    table["user_id"] = job_user[order]
    table["partition"] = job_part[order]
    table["qos"] = qos[order]
    table["submit_time"] = submit[order]
    table["eligible_time"] = eligible[order]
    table["req_cpus"] = req_cpus[order]
    table["req_mem_gb"] = req_mem[order]
    table["req_nodes"] = req_nodes[order]
    table["req_gpus"] = req_gpus[order]
    table["timelimit_min"] = timelimit[order]
    table["runtime_min"] = runtime[order]
    table["fail"] = fail[order]
    log.info(
        "generated %d jobs over %.1f days (load=%.2f, users=%d)",
        n_jobs,
        duration_s / 86400.0,
        config.load,
        n_users,
    )
    return table, pop


def generate_trace(
    config: WorkloadConfig,
    cluster: Cluster | None = None,
    weights: PriorityWeights | None = None,
    engine: str | None = None,
) -> tuple[SimulationResult, Cluster]:
    """Generate submissions and run them through the simulator.

    Returns the :class:`SimulationResult` (trace ordered by eligibility)
    and the cluster used.  ``engine`` picks the simulation engine
    (``fast``/``reference``/None = defer to ``REPRO_SIM_ENGINE``); both
    engines produce bitwise-identical traces.
    """
    import dataclasses

    if cluster is None:
        cluster = anvil_cluster(scale=config.cluster_scale)
    if not 0.0 <= config.warmup_fraction < 0.9:
        raise ValueError("warmup_fraction must be in [0, 0.9)")
    n_keep = config.n_jobs
    if config.warmup_fraction > 0:
        # Simulate extra jobs, then drop the cold-start prefix so the
        # returned trace holds n_jobs of steady-state behaviour.
        n_total = int(np.ceil(n_keep / (1.0 - config.warmup_fraction)))
        config = dataclasses.replace(config, n_jobs=n_total, warmup_fraction=0.0)
    table, pop = generate_submissions(config, cluster)
    sim = Simulator(cluster, n_users=pop.n_users, weights=weights, engine=engine)
    result = sim.run(table)
    if len(result.jobs) > n_keep:
        # Trace is eligibility-ordered; keep the most recent n_keep jobs.
        keep = np.arange(len(result.jobs) - n_keep, len(result.jobs))
        result = SimulationResult(
            jobs=result.jobs[keep],
            priorities_at_eligibility=result.priorities_at_eligibility[keep],
            n_scheduler_passes=result.n_scheduler_passes,
            makespan_s=result.makespan_s,
        )
    return result, cluster
