"""Synthetic Anvil-like workload generation.

Substitutes for the proprietary 3.8 M-job Anvil accounting dump.  The
generator reproduces the *structural* properties the paper's method depends
on: a heavy-tailed jobs-per-user distribution (Table I), users submitting
tens-to-hundreds of near-identical jobs back-to-back (the leakage hazard of
§III), a partition mix dominated by ``shared`` (68.95 %), requested-walltime
habits with ~15 % mean utilisation, and diurnal/weekly arrival modulation.
Queue times are *not* sampled — they emerge from running the submissions
through :class:`repro.slurm.simulator.Simulator`.
"""

from repro.workload.generator import WorkloadConfig, generate_submissions, generate_trace
from repro.workload.users import UserPopulation

__all__ = [
    "WorkloadConfig",
    "generate_submissions",
    "generate_trace",
    "UserPopulation",
]
