"""Submission-time processes.

Submission events arrive from a nonhomogeneous Poisson process with diurnal
and weekly modulation (HPC users work business hours); each event is a
*batch* — usually one job, but with user-dependent probability a burst of
near-identical jobs seconds apart, which is the back-to-back behaviour the
paper warns makes shuffled splits leak.
"""

from __future__ import annotations

import numpy as np

__all__ = ["diurnal_rate", "sample_event_times", "burst_sizes"]

DAY_S = 24 * 3600.0
WEEK_S = 7 * DAY_S


def diurnal_rate(t: np.ndarray) -> np.ndarray:
    """Relative arrival intensity at time-of-trace ``t`` (seconds).

    Peaks mid-working-day, troughs at night; weekends run at ~45 %.
    Normalised so the *peak* is 1.0 (for thinning).
    """
    t = np.asarray(t, dtype=np.float64)
    tod = (t % DAY_S) / DAY_S  # 0..1 through the day
    day = 0.55 + 0.45 * np.sin(2.0 * np.pi * (tod - 0.25))  # max 1 at 12:00
    dow = np.floor((t % WEEK_S) / DAY_S)  # 0=Mon
    weekend = (dow >= 5).astype(np.float64)
    return day * (1.0 - 0.55 * weekend)


def sample_event_times(
    n_events: int,
    duration_s: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``n_events`` arrival times on ``[0, duration_s)``.

    Inverse-CDF sampling against the integrated diurnal/weekly intensity:
    the empirical CDF of :func:`diurnal_rate` on a fine grid is inverted so
    event *counts* are exact (the generator fixes n_jobs, not the rate).
    Returned sorted ascending.
    """
    if n_events <= 0:
        return np.zeros(0, dtype=np.float64)
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    grid = np.linspace(0.0, duration_s, 4096)
    dens = diurnal_rate(grid)
    cdf = np.cumsum(dens)
    cdf = cdf / cdf[-1]
    u = rng.random(n_events)
    times = np.interp(u, cdf, grid)
    return np.sort(times)


def burst_sizes(
    n_events: int,
    burst_prob: np.ndarray,
    mean_burst: np.ndarray,
    rng: np.random.Generator,
    max_burst: int = 400,
) -> np.ndarray:
    """Number of jobs per submission event.

    With probability ``burst_prob[k]`` event ``k`` is a batch whose size is
    geometric with the user's ``mean_burst`` (heavy tail, capped at
    ``max_burst``); otherwise a single job.  Bursts of hundreds of jobs are
    realistic on Anvil (array jobs, parameter sweeps).
    """
    burst_prob = np.asarray(burst_prob, dtype=np.float64)
    mean_burst = np.asarray(mean_burst, dtype=np.float64)
    sizes = np.ones(n_events, dtype=np.int64)
    is_burst = rng.random(n_events) < burst_prob
    k = int(is_burst.sum())
    if k:
        p = 1.0 / np.clip(mean_burst[is_burst], 1.0, None)
        sizes[is_burst] = np.minimum(1 + rng.geometric(np.clip(p, 1e-3, 1.0)), max_burst)
    return sizes
