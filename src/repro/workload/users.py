"""Synthetic user population.

Table I shows an extremely heavy-tailed jobs-per-user distribution (median
43, mean 839, max 516 914 over 4 624 users): a small set of power users
drives most of the load.  Each synthetic user gets an activity weight from
a lognormal with large σ, a dominant partition, a resource-scale habit, a
walltime-utilisation habit (overall mean ≈ 15 %, power users below 5 %) and
a burstiness habit controlling back-to-back batch submissions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import default_rng

__all__ = ["UserPopulation"]


@dataclass
class UserPopulation:
    """Sampled per-user habits.

    All arrays have length ``n_users``.  ``partition_pref`` is an
    ``(n_users, n_partitions)`` row-stochastic matrix: each user
    concentrates on one dominant partition with some spillover, and the
    *column* means approximate the requested global partition shares.
    """

    n_users: int
    activity: np.ndarray  # unnormalised job-count propensity
    partition_pref: np.ndarray  # (n_users, n_partitions)
    resource_scale: np.ndarray  # lognormal multiplier on request sizes
    utilization_mean: np.ndarray  # mean fraction of walltime actually used
    burstiness: np.ndarray  # P(a submission event is a multi-job batch)
    mean_burst: np.ndarray  # mean batch size when bursting

    @classmethod
    def sample(
        cls,
        n_users: int,
        partition_shares: np.ndarray,
        seed: int | np.random.Generator | None = None,
        activity_sigma: float = 2.2,
    ) -> "UserPopulation":
        """Draw a population.

        Parameters
        ----------
        n_users:
            Population size.
        partition_shares:
            Target global share of jobs per partition (sums to 1).
        activity_sigma:
            σ of the lognormal activity weights; 2.2 gives a mean/median
            ratio of ~11, in the same regime as Table I's 839/43 ≈ 19.5
            after burst amplification.
        """
        rng = default_rng(seed)
        shares = np.asarray(partition_shares, dtype=np.float64)
        if np.any(shares < 0) or shares.sum() <= 0:
            raise ValueError("partition shares must be non-negative, not all zero")
        shares = shares / shares.sum()
        n_parts = len(shares)

        activity = rng.lognormal(mean=0.0, sigma=activity_sigma, size=n_users)

        # Dominant partition per user, assigned *activity-aware*: walking
        # users in descending activity, each takes the partition furthest
        # below its target share, so the activity-weighted mix matches the
        # global shares even when a handful of power users dominate.
        act_share = activity / activity.sum()
        dominant = np.zeros(n_users, dtype=np.intp)
        assigned = np.zeros(n_parts)
        noise = rng.random(n_users) * 1e-12  # tie-break jitter
        for u in np.argsort(-activity):
            deficit = shares - assigned
            p = int(np.argmax(deficit + noise[u]))
            dominant[u] = p
            assigned[p] += act_share[u]
        pref = np.full((n_users, n_parts), 0.08 / max(n_parts - 1, 1))
        pref[np.arange(n_users), dominant] = 0.92
        pref /= pref.sum(axis=1, keepdims=True)

        resource_scale = rng.lognormal(mean=0.0, sigma=0.5, size=n_users)

        # Mean utilisation per user: Beta(1.2, 6.8) has mean ≈ 0.15 with a
        # long left shoulder — "power users using less than 5 %".
        utilization_mean = np.clip(rng.beta(1.2, 6.8, size=n_users), 0.01, 0.95)

        # Burstiness correlates with activity: heavy submitters script
        # their submissions.
        rank = np.argsort(np.argsort(activity)) / max(n_users - 1, 1)
        burstiness = np.clip(0.1 + 0.5 * rank + rng.normal(0, 0.05, n_users), 0.02, 0.9)
        mean_burst = np.clip(2.0 + 28.0 * rank**2, 2.0, 60.0)

        return cls(
            n_users=n_users,
            activity=activity,
            partition_pref=pref,
            resource_scale=resource_scale,
            utilization_mean=utilization_mean,
            burstiness=burstiness,
            mean_burst=mean_burst,
        )

    def activity_probs(self) -> np.ndarray:
        """Activity normalised to a sampling distribution."""
        return self.activity / self.activity.sum()
