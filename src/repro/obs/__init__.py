"""Observability: process-wide metrics, pipeline tracing, exporters.

A dependency-free telemetry layer for the serving-scale north star.  Three
pieces, wired through every subsystem:

- :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms, cheap enough to leave on
  and a no-op when disabled via ``REPRO_TELEMETRY=0``;
- :mod:`repro.obs.tracing` — nestable :func:`span` context managers that
  build a tree of wall-time/allocation records (the successor of the
  ad-hoc ``FeatureMatrix.timings`` plumbing);
- :mod:`repro.obs.export` — Prometheus-text and JSON snapshot exporters
  plus a terminal renderer (``trout … --telemetry=report``).

Overhead contract (held by ``benchmarks/test_a12_telemetry_overhead.py``):
the instrumented feature pipeline runs ≤5 % slower with telemetry on than
off, and the ``REPRO_TELEMETRY=0`` path costs ≤1 % — instrumentation is
coarse-grained (per stage / epoch / scheduling pass, never per row).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    log_buckets,
    set_enabled,
    telemetry_enabled,
)
from repro.obs.tracing import Span, Tracer, attach, current_span, get_tracer, span, span_timings

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "log_buckets",
    "set_enabled",
    "telemetry_enabled",
    "Span",
    "Tracer",
    "attach",
    "current_span",
    "get_tracer",
    "span",
    "span_timings",
]
