"""Observability: process-wide metrics, pipeline tracing, exporters.

A dependency-free telemetry layer for the serving-scale north star.  Three
pieces, wired through every subsystem:

- :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms, cheap enough to leave on
  and a no-op when disabled via ``REPRO_TELEMETRY=0``;
- :mod:`repro.obs.tracing` — nestable :func:`span` context managers that
  build a tree of wall-time/allocation records (the successor of the
  ad-hoc ``FeatureMatrix.timings`` plumbing);
- :mod:`repro.obs.export` — Prometheus-text, JSON snapshot, and Chrome
  trace-event exporters plus a terminal renderer
  (``trout … --telemetry=report``);
- :mod:`repro.obs.context` — request/trace/span id generation and the
  :class:`TraceContext` hand-off that joins spans across threads;
- :mod:`repro.obs.events` — the leveled JSON-lines event stream
  (bounded ring + rotating file sink) carrying request-scoped records.

Overhead contract (held by ``benchmarks/test_a12_telemetry_overhead.py``):
the instrumented feature pipeline runs ≤5 % slower with telemetry on than
off, and the ``REPRO_TELEMETRY=0`` path costs ≤1 % — instrumentation is
coarse-grained (per stage / epoch / scheduling pass, never per row).
"""

from repro.obs.context import (
    TraceContext,
    clean_request_id,
    new_request_id,
    new_span_id,
    new_trace_id,
    wall_now,
)
from repro.obs.events import (
    EventLog,
    EventSchemaError,
    configure_event_log,
    emit,
    get_event_log,
    iter_jsonl,
    reset_event_log,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    log_buckets,
    set_enabled,
    telemetry_enabled,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    attach,
    current_context,
    current_span,
    get_tracer,
    span,
    span_timings,
)

__all__ = [
    "Counter",
    "EventLog",
    "EventSchemaError",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceContext",
    "clean_request_id",
    "configure_event_log",
    "emit",
    "get_event_log",
    "get_registry",
    "iter_jsonl",
    "log_buckets",
    "new_request_id",
    "new_span_id",
    "new_trace_id",
    "reset_event_log",
    "set_enabled",
    "telemetry_enabled",
    "wall_now",
    "Span",
    "Tracer",
    "attach",
    "current_context",
    "current_span",
    "get_tracer",
    "span",
    "span_timings",
]
