"""Process-wide metrics registry: counters, gauges, histograms.

Instrument-once, read-anywhere: library code asks the global registry for
a handle (``get_registry().counter("feature_cache_hits_total")``) and
bumps it; exporters (:mod:`repro.obs.export`) walk the registry to render
Prometheus text or a JSON snapshot.

Cost model: handles are plain attribute updates (no locks on the hot
path; creation is locked).  When telemetry is disabled — environment
``REPRO_TELEMETRY=0``, or :func:`set_enabled` — the registry hands out
shared *null* instruments whose mutators are empty methods, so
instrumented call sites cost one dict lookup and one no-op call.

Histograms use **fixed** bucket bounds chosen at creation.  The default
is log-spaced (:func:`log_buckets`): queue-time-like quantities in this
repo are heavily skewed (87 % of jobs start inside 10 minutes, the tail
reaches days), so uniform bins would waste all their resolution on the
tail.
"""

from __future__ import annotations

import bisect
import math
import os
import threading
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "log_buckets",
    "set_enabled",
    "telemetry_enabled",
]

_ENV_FLAG = "REPRO_TELEMETRY"

#: Label key/value pairs, frozen into the metric identity.
Labels = tuple[tuple[str, str], ...]


def telemetry_enabled() -> bool:
    """The environment default: on unless ``REPRO_TELEMETRY=0``."""
    return os.environ.get(_ENV_FLAG, "1") != "0"


def log_buckets(
    lo: float, hi: float, per_decade: int = 3
) -> tuple[float, ...]:
    """Log-spaced histogram bounds from ``lo`` to at least ``hi``.

    ``per_decade`` bounds per power of ten; the classic 1-2-5 ladder at
    the default 3.  Suitable for latencies and queue depths whose mass
    sits orders of magnitude below their extremes.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    n = int(math.ceil(per_decade * math.log10(hi / lo))) + 1
    return tuple(lo * 10 ** (k / per_decade) for k in range(n))


#: Seconds-scale default: 1 ms … ~28 h on the 1-2-5-ish ladder.
DEFAULT_TIME_BUCKETS = log_buckets(1e-3, 1e5)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``bounds`` are inclusive upper bucket bounds; observations above the
    last bound land in the implicit ``+Inf`` bucket.  ``counts`` holds
    per-bucket (non-cumulative) tallies, one slot per bound plus the
    overflow slot; the Prometheus exporter cumulates them.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Iterable[float]) -> None:
        b = tuple(float(x) for x in bounds)
        if not b or any(y <= x for x, y in zip(b, b[1:])):
            raise ValueError("bucket bounds must be non-empty and increasing")
        self.bounds = b
        self.counts = [0] * (len(b) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, v)] += 1
        self.sum += v
        self.count += 1


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, v: float) -> None:
        pass

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__((1.0,))

    def observe(self, v: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


def _freeze_labels(labels: Mapping[str, str] | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named instruments, keyed by (name, frozen labels).

    ``counter``/``gauge``/``histogram`` are get-or-create and cheap to
    call repeatedly — instrumented code fetches handles at use sites
    rather than threading them through signatures.  Re-registering a name
    as a different instrument kind raises.
    """

    def __init__(self, enabled: bool | None = None) -> None:
        self.enabled = telemetry_enabled() if enabled is None else enabled
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, Labels], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, type] = {}
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    def _get(
        self,
        name: str,
        kind: type,
        labels: Mapping[str, str] | None,
        help: str,
        factory,
    ):
        key = (name, _freeze_labels(labels))
        m = self._metrics.get(key)
        if m is not None:
            if type(m) is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as {type(m).__name__}"
                )
            return m
        with self._lock:
            m = self._metrics.get(key)
            if m is not None:
                if type(m) is not kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(m).__name__}"
                    )
                return m
            seen = self._kinds.get(name)
            if seen is not None and seen is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as {seen.__name__}"
                )
            self._kinds[name] = kind
            if help:
                self._help.setdefault(name, help)
            m = factory()
            self._metrics[key] = m
            return m

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get(name, Counter, labels, help, Counter)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get(name, Gauge, labels, help, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        bounds = tuple(buckets) if buckets is not None else DEFAULT_TIME_BUCKETS
        return self._get(name, Histogram, labels, help, lambda: Histogram(bounds))

    # ------------------------------------------------------------------ #
    def items(self) -> list[tuple[str, Labels, Counter | Gauge | Histogram]]:
        """All registered instruments, sorted by (name, labels)."""
        with self._lock:
            entries = sorted(self._metrics.items())
        return [(name, labels, m) for (name, labels), m in entries]

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def snapshot(self) -> dict:
        """JSON-able dump of every instrument's current state."""
        out: dict = {"counters": [], "gauges": [], "histograms": []}
        for name, labels, m in self.items():
            entry: dict = {"name": name, "labels": dict(labels)}
            if isinstance(m, Histogram):
                entry.update(
                    bounds=list(m.bounds),
                    counts=list(m.counts),
                    sum=m.sum,
                    count=m.count,
                )
                out["histograms"].append(entry)
            elif isinstance(m, Gauge):
                entry["value"] = m.value
                out["gauges"].append(entry)
            else:
                entry["value"] = m.value
                out["counters"].append(entry)
        return out

    def reset(self) -> None:
        """Drop every instrument (tests and snapshot-on-exit use this)."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
            self._help.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented module writes to."""
    return _REGISTRY


def set_enabled(flag: bool) -> None:
    """Flip telemetry at runtime (the CLI's ``--telemetry`` forces it on).

    Affects handles fetched *after* the call; instrumented code fetches
    at use sites, so this takes effect on the next operation.  Span
    retention follows the same switch.
    """
    _REGISTRY.enabled = bool(flag)
    from repro.obs import tracing  # late import: tracing imports us

    tracing.get_tracer().retain = bool(flag)
