"""Nestable spans: where did this run spend its time (and allocations)?

A :func:`span` context manager opens a node in a tree of
:class:`Span` records::

    with span("featurize") as root:
        with span("snapshots"):
            ...
        with span("assemble"):
            ...
    root.elapsed            # wall seconds of the whole block
    root.children           # the two inner records

Spans always measure — they are coarse-grained (per pipeline stage,
training epoch, scheduling pass) and the record is what callers like
:class:`~repro.features.pipeline.FeatureMatrix` derive their stage
timings from, so ``REPRO_TELEMETRY=0`` does not blank them.  What the
flag controls is the *retention* of finished root spans for snapshot
export (and all registry metrics; see :mod:`repro.obs.metrics`).

Each thread has its own span stack, so concurrent trainers nest
correctly.  Process-pool workers (``parallel_map``) build their own
records and ship them back pickled; the parent grafts them under its
current span with :func:`attach` — per-chunk featurisation timings
survive the process boundary.

Allocation accounting uses ``sys.getallocatedblocks()`` deltas: the
count of live CPython heap blocks is maintained by the allocator anyway,
so reading it is ~free, and a large positive delta over a span is a
reliable "this stage materialised a lot" signal without tracemalloc's
overhead.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.metrics import telemetry_enabled

__all__ = [
    "Span",
    "Tracer",
    "attach",
    "current_span",
    "get_tracer",
    "reset",
    "span",
    "span_timings",
]


@dataclass
class Span:
    """One timed region; a node of the trace tree.  Picklable."""

    name: str
    elapsed: float = 0.0  # wall seconds
    alloc_blocks: int = 0  # net live-heap-block delta over the span
    count: int = 1  # >1 after renderer-side merging of same-name siblings
    meta: dict[str, object] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-able form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "elapsed": self.elapsed,
            "alloc_blocks": self.alloc_blocks,
            "count": self.count,
            "meta": dict(self.meta),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(
            name=str(d["name"]),
            elapsed=float(d.get("elapsed", 0.0)),
            alloc_blocks=int(d.get("alloc_blocks", 0)),
            count=int(d.get("count", 1)),
            meta=dict(d.get("meta", {})),
            children=[cls.from_dict(c) for c in d.get("children", [])],
        )


class Tracer:
    """Per-thread span stacks plus a bounded buffer of finished roots.

    ``max_roots`` caps retained history so a long-lived server never
    grows without bound; exporters drain what is there.
    """

    def __init__(self, max_roots: int = 128, retain: bool | None = None) -> None:
        self._local = threading.local()
        self._roots_lock = threading.Lock()
        self.roots: deque[Span] = deque(maxlen=max_roots)
        #: Retain finished roots for export.  Off under
        #: ``REPRO_TELEMETRY=0`` so the disabled path keeps no history.
        self.retain = telemetry_enabled() if retain is None else retain

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **meta: object) -> Iterator[Span]:
        rec = Span(name, meta=dict(meta))
        stack = self._stack()
        stack.append(rec)
        b0 = sys.getallocatedblocks()
        t0 = time.perf_counter()
        try:
            yield rec
        finally:
            rec.elapsed = time.perf_counter() - t0
            rec.alloc_blocks = sys.getallocatedblocks() - b0
            stack.pop()
            if stack:
                stack[-1].children.append(rec)
            elif self.retain:
                with self._roots_lock:
                    self.roots.append(rec)

    def attach(self, rec: Span) -> None:
        """Graft an externally built record (e.g. from a pool worker)."""
        cur = self.current()
        if cur is not None:
            cur.children.append(rec)
        elif self.retain:
            with self._roots_lock:
                self.roots.append(rec)

    def drain(self) -> list[Span]:
        """Remove and return all finished root spans."""
        with self._roots_lock:
            out = list(self.roots)
            self.roots.clear()
        return out

    def reset(self) -> None:
        self._local = threading.local()
        with self._roots_lock:
            self.roots.clear()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer all library spans go through."""
    return _TRACER


def span(name: str, **meta: object):
    """Open a span on the global tracer (the usual entry point)."""
    return _TRACER.span(name, **meta)


def current_span() -> Span | None:
    return _TRACER.current()


def attach(rec: Span) -> None:
    _TRACER.attach(rec)


def reset() -> None:
    _TRACER.reset()


def span_timings(rec: Span) -> dict[str, float]:
    """Stage → wall-seconds mapping of a span's direct children.

    The shape :func:`repro.eval.report.format_timing_report` consumes
    (and the successor of the hand-rolled ``FeatureMatrix.timings``
    plumbing): one entry per direct child, plus ``"total"`` for the span
    itself.  Same-name siblings accumulate.
    """
    out: dict[str, float] = {}
    for child in rec.children:
        out[child.name] = out.get(child.name, 0.0) + child.elapsed
    out["total"] = rec.elapsed
    return out
