"""Nestable spans: where did this run spend its time (and allocations)?

A :func:`span` context manager opens a node in a tree of
:class:`Span` records::

    with span("featurize") as root:
        with span("snapshots"):
            ...
        with span("assemble"):
            ...
    root.elapsed            # wall seconds of the whole block
    root.children           # the two inner records

Spans always measure — they are coarse-grained (per pipeline stage,
training epoch, scheduling pass) and the record is what callers like
:class:`~repro.features.pipeline.FeatureMatrix` derive their stage
timings from, so ``REPRO_TELEMETRY=0`` does not blank them.  What the
flag controls is the *retention* of finished root spans for snapshot
export (and all registry metrics; see :mod:`repro.obs.metrics`).

Each thread has its own span stack, so concurrent trainers nest
correctly.  Process-pool workers (``parallel_map``) build their own
records and ship them back pickled; the parent grafts them under its
current span with :func:`attach` — per-chunk featurisation timings
survive the process boundary.

Allocation accounting uses ``sys.getallocatedblocks()`` deltas: the
count of live CPython heap blocks is maintained by the allocator anyway,
so reading it is ~free, and a large positive delta over a span is a
reliable "this stage materialised a lot" signal without tracemalloc's
overhead.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.context import TraceContext, new_span_id, new_trace_id
from repro.obs.metrics import telemetry_enabled

__all__ = [
    "Span",
    "Tracer",
    "attach",
    "current_context",
    "current_span",
    "get_tracer",
    "reset",
    "span",
    "span_timings",
]


@dataclass
class Span:
    """One timed region; a node of the trace tree.  Picklable.

    Every span carries a stable ``(trace_id, span_id)`` pair; spans of
    one logical request share the ``trace_id`` even when they live in
    different threads' trees (the serve path hands the context across
    the batcher boundary explicitly), and ``parent_id`` records the
    causal parent whether or not it is the structural one.
    """

    name: str
    elapsed: float = 0.0  # wall seconds
    alloc_blocks: int = 0  # net live-heap-block delta over the span
    count: int = 1  # >1 after renderer-side merging of same-name siblings
    meta: dict[str, object] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""
    start: float = 0.0  # perf_counter seconds at open (one process clock)
    tid: int = 0  # opening thread's ident (chrome export lanes)

    def __post_init__(self) -> None:
        if not self.span_id:
            self.span_id = new_span_id()
        if not self.trace_id:
            self.trace_id = new_trace_id()

    def context(self, request_id: str | None = None) -> TraceContext:
        """This span's identity, packaged for explicit hand-off."""
        return TraceContext(
            trace_id=self.trace_id, span_id=self.span_id, request_id=request_id
        )

    def to_dict(self) -> dict:
        """JSON-able form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "elapsed": self.elapsed,
            "alloc_blocks": self.alloc_blocks,
            "count": self.count,
            "meta": dict(self.meta),
            "children": [c.to_dict() for c in self.children],
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        """Rebuild from :meth:`to_dict` output.  Version-1 snapshots
        (PR 3, before span ids existed) load fine: missing ids are
        regenerated, missing timestamps default to zero."""
        return cls(
            name=str(d["name"]),
            elapsed=float(d.get("elapsed", 0.0)),
            alloc_blocks=int(d.get("alloc_blocks", 0)),
            count=int(d.get("count", 1)),
            meta=dict(d.get("meta", {})),
            children=[cls.from_dict(c) for c in d.get("children", [])],
            trace_id=str(d.get("trace_id", "")),
            span_id=str(d.get("span_id", "")),
            parent_id=str(d.get("parent_id", "")),
            start=float(d.get("start", 0.0)),
            tid=int(d.get("tid", 0)),
        )


class Tracer:
    """Per-thread span stacks plus a bounded buffer of finished roots.

    ``max_roots`` caps retained history so a long-lived server never
    grows without bound; exporters drain what is there.
    """

    def __init__(self, max_roots: int = 128, retain: bool | None = None) -> None:
        self._local = threading.local()
        self._roots_lock = threading.Lock()
        self.roots: deque[Span] = deque(maxlen=max_roots)
        #: Retain finished roots for export.  Off under
        #: ``REPRO_TELEMETRY=0`` so the disabled path keeps no history.
        self.retain = telemetry_enabled() if retain is None else retain

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self, request_id: str | None = None) -> TraceContext | None:
        """The innermost open span's identity, for cross-thread hand-off."""
        cur = self.current()
        return None if cur is None else cur.context(request_id)

    @contextmanager
    def span(
        self,
        name: str,
        context: TraceContext | None = None,
        **meta: object,
    ) -> Iterator[Span]:
        """Open a span.  ``context`` continues a trace started elsewhere
        (another thread, another process): the new span adopts its
        ``trace_id`` and records its ``span_id`` as parent, taking
        precedence over this thread's stack."""
        stack = self._stack()
        if context is not None:
            rec = Span(
                name,
                meta=dict(meta),
                trace_id=context.trace_id,
                parent_id=context.span_id,
            )
        elif stack:
            parent = stack[-1]
            rec = Span(
                name,
                meta=dict(meta),
                trace_id=parent.trace_id,
                parent_id=parent.span_id,
            )
        else:
            rec = Span(name, meta=dict(meta))
        rec.tid = threading.get_ident()
        stack.append(rec)
        b0 = sys.getallocatedblocks()
        rec.start = t0 = time.perf_counter()
        try:
            yield rec
        finally:
            rec.elapsed = time.perf_counter() - t0
            rec.alloc_blocks = sys.getallocatedblocks() - b0
            stack.pop()
            if stack:
                stack[-1].children.append(rec)
            elif self.retain:
                with self._roots_lock:
                    self.roots.append(rec)

    def attach(self, rec: Span) -> None:
        """Graft an externally built record (e.g. from a pool worker).

        The grafted subtree is re-homed into the current trace: its
        ``trace_id`` (assigned in a worker process that knew nothing of
        the parent) is rewritten to the enclosing span's so the tree
        stays one trace end to end.
        """
        cur = self.current()
        if cur is not None:
            rec.parent_id = cur.span_id
            _rehome(rec, cur.trace_id)
            cur.children.append(rec)
        elif self.retain:
            with self._roots_lock:
                self.roots.append(rec)

    def drain(self) -> list[Span]:
        """Remove and return all finished root spans."""
        with self._roots_lock:
            out = list(self.roots)
            self.roots.clear()
        return out

    def reset(self) -> None:
        self._local = threading.local()
        with self._roots_lock:
            self.roots.clear()


def _rehome(rec: Span, trace_id: str) -> None:
    """Rewrite a grafted subtree's trace_id to the adopting trace's."""
    rec.trace_id = trace_id
    for child in rec.children:
        _rehome(child, trace_id)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer all library spans go through."""
    return _TRACER


def span(name: str, context: TraceContext | None = None, **meta: object):
    """Open a span on the global tracer (the usual entry point)."""
    return _TRACER.span(name, context=context, **meta)


def current_span() -> Span | None:
    return _TRACER.current()


def current_context(request_id: str | None = None) -> TraceContext | None:
    """The global tracer's innermost open-span context on this thread."""
    return _TRACER.current_context(request_id)


def attach(rec: Span) -> None:
    _TRACER.attach(rec)


def reset() -> None:
    _TRACER.reset()


def span_timings(rec: Span) -> dict[str, float]:
    """Stage → wall-seconds mapping of a span's direct children.

    The shape :func:`repro.eval.report.format_timing_report` consumes
    (and the successor of the hand-rolled ``FeatureMatrix.timings``
    plumbing): one entry per direct child, plus ``"total"`` for the span
    itself.  Same-name siblings accumulate.
    """
    out: dict[str, float] = {}
    for child in rec.children:
        out[child.name] = out.get(child.name, 0.0) + child.elapsed
    out["total"] = rec.elapsed
    return out
