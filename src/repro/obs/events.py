"""Structured, leveled JSON-lines event log (dependency-free).

Where :mod:`repro.obs.metrics` answers "how many" and
:mod:`repro.obs.tracing` answers "where did the time go", the event log
answers "what happened, to which request": each record is one flat JSON
object with a wall-clock ``ts``, a ``level``, a dotted snake_case
``event`` name, and arbitrary scalar fields — ``request_id`` /
``trace_id`` / ``model_version`` on the serving path — so one request is
greppable across span forest, event stream, and audit trail.

Retention is two-tier, chosen for hot-path cost:

- a **bounded in-memory ring** receives every record (a dict append
  under a lock — no serialisation), so ``get_event_log().tail()`` and
  tests always see recent history;
- an optional **file sink** (size-rotated JSONL) receives records at or
  above its own level — lifecycle events (reloads, publishes, drift
  alarms, errors) by default, per-request ``debug`` chatter only when
  explicitly asked for.  Each record is written as one ``write()`` call
  of a complete line under the log's lock, so concurrent emitters can
  never tear or interleave lines.

Records are schema-checked at the emit site: a malformed event name or a
field colliding with the reserved keys raises :class:`EventSchemaError`
immediately (a programmer error worth failing loudly on), while
non-JSON-able field *values* degrade to ``repr`` rather than dropping
the record.  ``REPRO_TELEMETRY=0`` (or :func:`repro.obs.metrics.set_enabled`)
turns :func:`emit` into an immediate return.

Records forwarded to the stdlib ``repro.obs.events`` logger keep the
CLI's ``-v`` console behaviour for the call sites that migrated here
from ad-hoc ``utils.logging`` calls.
"""

from __future__ import annotations

import json
import re
import threading
from collections import deque
from pathlib import Path
from typing import Iterator

from repro.obs.context import wall_now
from repro.obs.metrics import get_registry
from repro.utils.logging import get_logger

__all__ = [
    "EventLog",
    "EventSchemaError",
    "FileSink",
    "LEVELS",
    "configure_event_log",
    "emit",
    "get_event_log",
    "iter_jsonl",
    "reset_event_log",
]

log = get_logger(__name__)

#: Event severity → stdlib logging level.  Order matters for filtering.
LEVELS: dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")
_RESERVED = frozenset({"ts", "level", "event"})


class EventSchemaError(ValueError):
    """An event record violates the schema (name grammar, reserved keys)."""


def _json_default(value: object) -> str:
    return repr(value)


def _dumps(record: dict) -> str:
    return json.dumps(record, separators=(",", ":"), default=_json_default)


def iter_jsonl(path: str | Path, include_rotated: bool = True) -> Iterator[dict]:
    """Parsed records from a JSONL file, oldest first.

    With ``include_rotated``, the numbered rotation siblings
    (``path.N`` … ``path.1``) are read before the live file, so callers
    see one chronological stream across rotation boundaries.
    """
    path = Path(path)
    candidates: list[Path] = []
    if include_rotated:
        rotated = []
        for sibling in path.parent.glob(f"{path.name}.*"):
            suffix = sibling.name[len(path.name) + 1 :]
            if suffix.isdigit():
                rotated.append((int(suffix), sibling))
        candidates.extend(p for _, p in sorted(rotated, reverse=True))
    if path.is_file():
        candidates.append(path)
    for file in candidates:
        with open(file, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line)


class FileSink:
    """Append-only JSONL file with size-based rotation.

    When the live file would exceed ``max_bytes``, it is renamed to
    ``<path>.1`` (existing backups shift up; the one past ``backups``
    falls off) and a fresh file is opened.  Rotation happens *between*
    records under the owning log's lock, so a record is always wholly in
    exactly one generation.  Size is tracked in memory — no ``stat`` per
    write.
    """

    def __init__(
        self,
        path: str | Path,
        max_bytes: int = 8 << 20,
        backups: int = 2,
    ) -> None:
        if max_bytes < 1 or backups < 0:
            raise ValueError("max_bytes must be >= 1 and backups >= 0")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = self._fh.tell()

    def write(self, line: str) -> None:
        """Append one complete line (caller holds the log lock)."""
        data = line + "\n"
        if self._size and self._size + len(data) > self.max_bytes:
            self._rotate()
        self._fh.write(data)
        self._size += len(data)

    def _rotate(self) -> None:
        self._fh.close()
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            for i in range(self.backups, 1, -1):
                older = self.path.with_name(f"{self.path.name}.{i - 1}")
                if older.exists():
                    older.replace(self.path.with_name(f"{self.path.name}.{i}"))
            self.path.replace(self.path.with_name(f"{self.path.name}.1"))
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def flush(self) -> None:
        if not self._fh.closed:  # shutdown paths may flush after close
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


class EventLog:
    """Bounded ring + optional rotating file sink, one lock, leveled.

    ``enabled=None`` (the default) follows the process-wide telemetry
    switch dynamically — ``REPRO_TELEMETRY=0`` and ``set_enabled`` null
    this log along with every metric.  Tests pass ``enabled=True`` to be
    independent of the environment.
    """

    def __init__(
        self,
        ring_size: int = 1024,
        min_level: str = "debug",
        sink_level: str = "info",
        enabled: bool | None = None,
        forward: bool = True,
    ) -> None:
        if min_level not in LEVELS or sink_level not in LEVELS:
            raise ValueError(f"levels must be one of {sorted(LEVELS)}")
        self._ring: deque[dict] = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._sink: FileSink | None = None
        self.min_level = min_level
        self.sink_level = sink_level
        self._enabled = enabled
        self.forward = forward
        self.dropped = 0  # records whose sink write failed

    @property
    def enabled(self) -> bool:
        if self._enabled is None:
            return get_registry().enabled
        return self._enabled

    # ------------------------------------------------------------------ #
    def configure_file(
        self,
        path: str | Path,
        max_bytes: int = 8 << 20,
        backups: int = 2,
        sink_level: str | None = None,
    ) -> None:
        """Attach (or replace) the rotating file sink."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
            self._sink = FileSink(path, max_bytes=max_bytes, backups=backups)
            if sink_level is not None:
                if sink_level not in LEVELS:
                    raise ValueError(f"levels must be one of {sorted(LEVELS)}")
                self.sink_level = sink_level

    def emit(self, event: str, level: str = "info", **fields: object) -> dict | None:
        """Record one event; returns the record, or ``None`` when nulled."""
        if not self.enabled:
            return None
        severity = LEVELS.get(level)
        if severity is None:
            raise EventSchemaError(f"unknown level {level!r}")
        if severity < LEVELS[self.min_level]:
            return None
        if not _NAME_RE.match(event):
            raise EventSchemaError(
                f"event name {event!r} must be dotted snake_case"
            )
        if _RESERVED & fields.keys():
            raise EventSchemaError(
                f"fields {sorted(_RESERVED & fields.keys())} are reserved"
            )
        record: dict = {"ts": wall_now(), "level": level, "event": event}
        record.update(fields)
        with self._lock:
            self._ring.append(record)
            if self._sink is not None and severity >= LEVELS[self.sink_level]:
                try:
                    self._sink.write(_dumps(record))
                except (OSError, ValueError) as exc:
                    # ValueError: write on a file closed under us.
                    self.dropped += 1
                    log.warning("event sink write failed: %s", exc)
        if self.forward and log.isEnabledFor(severity):
            log.log(severity, "%s", _dumps(record))
        return record

    # ------------------------------------------------------------------ #
    def tail(self, n: int | None = None) -> list[dict]:
        """The most recent ``n`` ring records (all of them by default)."""
        with self._lock:
            records = list(self._ring)
        return records if n is None else records[-n:]

    def flush(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


_EVENT_LOG = EventLog()


def get_event_log() -> EventLog:
    """The process-wide event log all library emitters write to."""
    return _EVENT_LOG


def emit(event: str, level: str = "info", **fields: object) -> dict | None:
    """Emit on the global event log (the usual entry point)."""
    return _EVENT_LOG.emit(event, level=level, **fields)


def configure_event_log(
    path: str | Path,
    max_bytes: int = 8 << 20,
    backups: int = 2,
    sink_level: str | None = None,
) -> EventLog:
    """Attach a rotating file sink to the global event log."""
    _EVENT_LOG.configure_file(
        path, max_bytes=max_bytes, backups=backups, sink_level=sink_level
    )
    return _EVENT_LOG


def reset_event_log() -> None:
    """Close the sink and drop ring history (tests use this)."""
    _EVENT_LOG.close()
    _EVENT_LOG.clear()
    _EVENT_LOG.dropped = 0
