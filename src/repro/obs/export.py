"""Snapshot exporters: Prometheus text, JSON, and a terminal report.

One :func:`snapshot` dict carries both halves of the telemetry state —
the metrics registry and the finished span trees — and each renderer
formats it for a different consumer:

- :func:`to_prometheus` — the Prometheus text exposition format (label
  escaping, cumulative ``_bucket{le=…}`` series) for scrapers;
- :func:`to_json` — a machine-readable snapshot ``trout telemetry`` can
  reload and pretty-print later;
- :func:`render_report` — a terminal span tree plus metric tables,
  extending :func:`repro.utils.text.format_timing_report` to the whole
  instrumented pipeline;
- :func:`to_chrome` — the Chrome trace-event JSON format, so the
  per-request span forest from the serving path opens directly in
  ``chrome://tracing`` / Perfetto with one lane per thread.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import Gauge, Histogram, MetricsRegistry, get_registry
from repro.obs.tracing import Span, Tracer, get_tracer, span_timings
from repro.utils.text import format_table, format_timing_report

__all__ = [
    "snapshot",
    "to_chrome",
    "to_json",
    "to_prometheus",
    "format_span_tree",
    "render_report",
    "render_snapshot",
]

#: Version 2 (this PR) adds span identity (``trace_id``/``span_id``/
#: ``parent_id``) and scheduling info (``start``/``tid``) to every span
#: dict.  Version-1 snapshots are still readable: the extra keys default.
SNAPSHOT_VERSION = 2
_READABLE_VERSIONS = frozenset({1, 2})


# ---------------------------------------------------------------------- #
# snapshot assembly
# ---------------------------------------------------------------------- #
def snapshot(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    drain_spans: bool = False,
) -> dict:
    """Combined telemetry state as a JSON-able dict."""
    registry = registry or get_registry()
    tracer = tracer or get_tracer()
    roots = tracer.drain() if drain_spans else list(tracer.roots)
    return {
        "version": SNAPSHOT_VERSION,
        "metrics": registry.snapshot(),
        "spans": [r.to_dict() for r in roots],
    }


def to_json(snap: dict | None = None, indent: int = 2) -> str:
    """Serialise a snapshot (taking one from the globals if not given)."""
    return json.dumps(snap if snap is not None else snapshot(), indent=indent)


# ---------------------------------------------------------------------- #
# Prometheus text format
# ---------------------------------------------------------------------- #
def _escape_label_value(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: dict[str, str] | Iterable[tuple[str, str]]) -> str:
    items = labels.items() if isinstance(labels, dict) else labels
    inner = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in items)
    return f"{{{inner}}}" if inner else ""


def _fmt(v: float) -> str:
    f = float(v)
    return str(int(f)) if f == int(f) else repr(f)


def to_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render the registry in the Prometheus text exposition format.

    Histograms expand into cumulative ``_bucket{le=…}`` series (ending at
    ``+Inf``), ``_sum`` and ``_count``, matching what a scraper expects.
    """
    registry = registry or get_registry()
    lines: list[str] = []
    seen_header: set[str] = set()
    for name, labels, m in registry.items():
        if name not in seen_header:
            seen_header.add(name)
            help_text = registry.help_for(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            kind = (
                "histogram"
                if isinstance(m, Histogram)
                else "gauge" if isinstance(m, Gauge) else "counter"
            )
            lines.append(f"# TYPE {name} {kind}")
        if isinstance(m, Histogram):
            cum = 0
            for bound, c in zip(m.bounds, m.counts):
                cum += c
                le = _labels_text([*labels, ("le", _fmt(bound))])
                lines.append(f"{name}_bucket{le} {cum}")
            cum += m.counts[-1]
            le = _labels_text([*labels, ("le", "+Inf")])
            lines.append(f"{name}_bucket{le} {cum}")
            lines.append(f"{name}_sum{_labels_text(labels)} {_fmt(m.sum)}")
            lines.append(f"{name}_count{_labels_text(labels)} {m.count}")
        else:
            lines.append(f"{name}{_labels_text(labels)} {_fmt(m.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------- #
# terminal report
# ---------------------------------------------------------------------- #
def _merge_siblings(children: list[Span]) -> list[Span]:
    """Collapse same-name siblings into one row with a repeat count.

    Per-epoch and per-chunk spans are legion; the report shows
    ``epoch ×30`` with summed time instead of thirty lines.
    """
    merged: dict[str, Span] = {}
    order: list[str] = []
    for c in children:
        m = merged.get(c.name)
        if m is None:
            m = Span(c.name, meta=dict(c.meta))
            m.count = 0
            merged[c.name] = m
            order.append(c.name)
        m.elapsed += c.elapsed
        m.alloc_blocks += c.alloc_blocks
        m.count += c.count
        m.children.extend(c.children)
    return [merged[n] for n in order]


def format_span_tree(roots: list[Span], merge: bool = True) -> str:
    """ASCII tree of spans: wall time, share of root, allocation delta."""
    lines: list[str] = []

    def walk(rec: Span, prefix: str, tail: bool, total: float, depth: int) -> None:
        branch = "" if depth == 0 else ("└─ " if tail else "├─ ")
        share = 100.0 * rec.elapsed / total if total > 0 else 0.0
        times = f"×{rec.count} " if rec.count > 1 else ""
        alloc = f" Δblocks={rec.alloc_blocks:+d}" if rec.alloc_blocks else ""
        lines.append(
            f"{prefix}{branch}{rec.name} {times}"
            f"{rec.elapsed * 1e3:.1f} ms ({share:.1f}%){alloc}"
        )
        kids = _merge_siblings(rec.children) if merge else rec.children
        ext = "" if depth == 0 else ("   " if tail else "│  ")
        for i, c in enumerate(kids):
            walk(c, prefix + ext, i == len(kids) - 1, total, depth + 1)

    for root in roots:
        walk(root, "", False, root.elapsed, 0)
    return "\n".join(lines)


def render_report(snap: dict | None = None) -> str:
    """Human-oriented dump: span trees, stage tables, metric tables."""
    if snap is None:
        snap = snapshot()
    out: list[str] = []
    roots = [Span.from_dict(d) for d in snap.get("spans", [])]
    if roots:
        out.append("── spans " + "─" * 40)
        out.append(format_span_tree(roots))
        for root in roots:
            if root.children:
                out.append(f"\nstage timings — {root.name}:")
                out.append(format_timing_report(span_timings(root)))
    metrics = snap.get("metrics", {})
    scalars = [
        [e["name"], _labels_text(e["labels"]) or "-", e["value"]]
        for kind in ("counters", "gauges")
        for e in metrics.get(kind, [])
    ]
    if scalars:
        out.append("\n── metrics " + "─" * 38)
        out.append(format_table(["metric", "labels", "value"], scalars, "{:.4g}"))
    hists = metrics.get("histograms", [])
    if hists:
        rows = []
        for e in hists:
            mean = e["sum"] / e["count"] if e["count"] else 0.0
            rows.append(
                [e["name"], _labels_text(e["labels"]) or "-", e["count"], mean]
            )
        out.append("\n── histograms (count, mean) " + "─" * 21)
        out.append(format_table(["histogram", "labels", "n", "mean"], rows, "{:.4g}"))
    return "\n".join(out) if out else "(no telemetry recorded)"


def render_snapshot(snap: dict) -> str:
    """``trout telemetry``'s view of a previously saved JSON snapshot."""
    version = int(snap.get("version", 0))
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported snapshot version {version} "
            f"(readable: {sorted(_READABLE_VERSIONS)})"
        )
    return render_report(snap)


# ---------------------------------------------------------------------- #
# Chrome trace-event format
# ---------------------------------------------------------------------- #
def to_chrome(snap: dict | None = None, indent: int | None = None) -> str:
    """Render a snapshot's spans as Chrome trace-event JSON.

    Every span becomes a complete (``ph: "X"``) event on its opening
    thread's lane; timestamps are the process ``perf_counter`` clock
    rebased to the earliest span and scaled to microseconds.  Trace and
    span ids ride in ``args`` so Perfetto's detail pane shows how the
    handler span and the batch span of one request connect across lanes.
    Version-1 snapshots (no ``start``) render with all spans at t=0 —
    durations still display.
    """
    if snap is None:
        snap = snapshot()
    roots = [Span.from_dict(d) for d in snap.get("spans", [])]

    def walk(rec: Span):
        yield rec
        for child in rec.children:
            yield from walk(child)

    spans = [s for r in roots for s in walk(r)]
    starts = [s.start for s in spans if s.start > 0.0]
    base = min(starts) if starts else 0.0
    events = []
    for s in spans:
        args: dict[str, object] = {
            "trace_id": s.trace_id,
            "span_id": s.span_id,
        }
        if s.parent_id:
            args["parent_id"] = s.parent_id
        args.update(s.meta)
        events.append(
            {
                "name": s.name,
                "ph": "X",
                "ts": (s.start - base) * 1e6 if s.start > 0.0 else 0.0,
                "dur": s.elapsed * 1e6,
                "pid": 1,
                "tid": s.tid or 1,
                "args": args,
            }
        )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    return json.dumps(doc, indent=indent, default=str)
