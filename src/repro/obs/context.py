"""Request-scoped trace context: ids and explicit cross-thread hand-off.

The serving path crosses a thread boundary by design — the HTTP handler
thread validates and enqueues, the :class:`~repro.serve.batcher.MicroBatcher`
worker thread runs the model — so the thread-local span stack alone cannot
connect "this batch" to "the requests that caused it".  A
:class:`TraceContext` is the explicit hand-off: the handler captures the
identity of its open span, attaches it to the batch ticket, and the worker
opens its span *under* that context.  The two spans then share a
``trace_id`` and are linked parent→child through ``span_id``/``parent_id``
even though they live in different span trees.

Id generation is dependency-free and deterministic **per process** (a
process-unique prefix plus a monotonically increasing sequence number):
no entropy pool, no RNG001 exemption needed, unique across the
process-pool workers that ship spans back to the parent, and stable
enough to grep a request through span forest, event log, and audit trail.

Wall-clock reads live here (``repro.obs`` is the RNG002-sanctioned home
for observability timestamps): the event log and the audit trail stamp
records via :func:`wall_now` instead of calling ``time.time`` from
library code.
"""

from __future__ import annotations

import itertools
import os
import re
import time
from dataclasses import dataclass

__all__ = [
    "TraceContext",
    "clean_request_id",
    "new_request_id",
    "new_span_id",
    "new_trace_id",
    "wall_now",
]

#: External request ids (e.g. a client-sent ``X-Request-Id``) must match
#: this or be replaced — keeps log lines grep-safe and un-injectable.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._:-]{1,64}\Z")  # \Z: '$' would admit 'id\n'

#: One shared sequence for every id kind; ``itertools.count`` is
#: effectively atomic in CPython, so no lock on the hot path.
_SEQUENCE = itertools.count(1)

_PID_PREFIX: str | None = None
_PID: int | None = None


def _prefix() -> str:
    """Process-unique id prefix, recomputed after a ``fork``."""
    global _PID_PREFIX, _PID
    pid = os.getpid()
    if pid != _PID:
        _PID = pid
        _PID_PREFIX = f"{pid:x}"
    assert _PID_PREFIX is not None
    return _PID_PREFIX


def new_trace_id() -> str:
    """A fresh trace id (``t<pid>-<seq>``), unique across pool workers."""
    return f"t{_prefix()}-{next(_SEQUENCE):08x}"


def new_span_id() -> str:
    """A fresh span id (``s<pid>-<seq>``)."""
    return f"s{_prefix()}-{next(_SEQUENCE):08x}"


def new_request_id() -> str:
    """A fresh request id (``r<pid>-<seq>``) for one served request."""
    return f"r{_prefix()}-{next(_SEQUENCE):08x}"


def clean_request_id(raw: object) -> str | None:
    """A client-supplied request id, sanitised; ``None`` when unusable."""
    if isinstance(raw, str) and _REQUEST_ID_RE.match(raw):
        return raw
    return None


def wall_now() -> float:
    """Wall-clock seconds since the epoch, for observability timestamps.

    The RNG002 invariant bans wall-clock reads in library code so rerun
    determinism cannot silently depend on "now"; observability records
    are the sanctioned exception, and they all read the clock here.
    """
    return time.time()


@dataclass(frozen=True)
class TraceContext:
    """The portable identity of an open span, for explicit hand-off.

    ``trace_id`` groups every span of one logical request; ``span_id`` is
    the span to parent under; ``request_id`` rides along so whoever
    continues the trace can label metrics/events without re-plumbing it.
    """

    trace_id: str
    span_id: str
    request_id: str | None = None
