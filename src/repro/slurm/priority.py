"""Slurm multifactor priority.

``priority = w_age·age + w_fairshare·F + w_jobsize·size + w_partition·tier
+ w_qos·qos`` — the weighted-sum form of Slurm's multifactor plugin, which
the paper identifies (together with preemption order and submit time) as
what determines evaluation order.  All factors are normalised to [0, 1]
before weighting, as in Slurm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.slurm.fairshare import FairShareTracker
from repro.slurm.resources import Cluster

__all__ = ["PriorityWeights", "MultifactorPriority"]


@dataclass(frozen=True)
class PriorityWeights:
    """Weights of the multifactor terms (Slurm ``PriorityWeight*``).

    The defaults mirror a fair-share-dominated configuration like Anvil's:
    fair share dominates, age breaks ties over hours-to-days, job size and
    QOS contribute second-order corrections.
    """

    age: float = 2_000.0
    fairshare: float = 10_000.0
    job_size: float = 1_000.0
    partition: float = 4_000.0
    qos: float = 2_000.0
    max_age_s: float = 3 * 24 * 3600.0  # age factor saturates (PriorityMaxAge)

    def __post_init__(self) -> None:
        if self.max_age_s <= 0:
            raise ValueError("max_age_s must be positive")
        for name in ("age", "fairshare", "job_size", "partition", "qos"):
            if getattr(self, name) < 0:
                raise ValueError(f"weight {name} must be non-negative")


class MultifactorPriority:
    """Vectorised priority computation for batches of pending jobs."""

    def __init__(
        self,
        cluster: Cluster,
        fairshare: FairShareTracker,
        weights: PriorityWeights | None = None,
        n_qos_levels: int = 3,
    ) -> None:
        self.cluster = cluster
        self.fairshare = fairshare
        self.weights = weights or PriorityWeights()
        self.n_qos_levels = max(1, n_qos_levels)
        tiers = np.array(
            [p.priority_tier for p in cluster.partitions], dtype=np.float64
        )
        # Normalise partition tiers to [0, 1].
        self._tier_factor = tiers / tiers.max() if tiers.max() > 0 else tiers
        self._total_cpus = float(
            sum(pool.total_cpus for pool in cluster.pools)
        )

    def compute(
        self,
        t: float,
        eligible_time: np.ndarray,
        user_ids: np.ndarray,
        partitions: np.ndarray,
        req_cpus: np.ndarray,
        qos: np.ndarray,
    ) -> np.ndarray:
        """Priorities for a batch of pending jobs at wall time ``t``.

        ``age`` counts from eligibility (Slurm accrues age once a job is
        eligible) and saturates at ``max_age_s``; ``job size`` favours wide
        jobs (Slurm's default favour-big setting, which keeps large jobs
        from starving under backfill).
        """
        w = self.weights
        age = np.clip((t - eligible_time) / w.max_age_s, 0.0, 1.0)
        fs = self.fairshare.factors(np.asarray(user_ids, dtype=np.intp), t)
        size = np.clip(req_cpus / self._total_cpus, 0.0, 1.0)
        tier = self._tier_factor[np.asarray(partitions, dtype=np.intp)]
        qos_f = np.asarray(qos, dtype=np.float64) / max(self.n_qos_levels - 1, 1)
        return (
            w.age * age
            + w.fairshare * fs
            + w.job_size * size
            + w.partition * tier
            + w.qos * qos_f
        )
