"""Slurm multifactor priority.

``priority = w_age·age + w_fairshare·F + w_jobsize·size + w_partition·tier
+ w_qos·qos`` — the weighted-sum form of Slurm's multifactor plugin, which
the paper identifies (together with preemption order and submit time) as
what determines evaluation order.  All factors are normalised to [0, 1]
before weighting, as in Slurm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.slurm.fairshare import FairShareTracker
from repro.slurm.resources import Cluster

__all__ = ["PriorityWeights", "MultifactorPriority", "CachedPriority"]


@dataclass(frozen=True)
class PriorityWeights:
    """Weights of the multifactor terms (Slurm ``PriorityWeight*``).

    The defaults mirror a fair-share-dominated configuration like Anvil's:
    fair share dominates, age breaks ties over hours-to-days, job size and
    QOS contribute second-order corrections.
    """

    age: float = 2_000.0
    fairshare: float = 10_000.0
    job_size: float = 1_000.0
    partition: float = 4_000.0
    qos: float = 2_000.0
    max_age_s: float = 3 * 24 * 3600.0  # age factor saturates (PriorityMaxAge)

    def __post_init__(self) -> None:
        if self.max_age_s <= 0:
            raise ValueError("max_age_s must be positive")
        for name in ("age", "fairshare", "job_size", "partition", "qos"):
            if getattr(self, name) < 0:
                raise ValueError(f"weight {name} must be non-negative")


class MultifactorPriority:
    """Vectorised priority computation for batches of pending jobs."""

    def __init__(
        self,
        cluster: Cluster,
        fairshare: FairShareTracker,
        weights: PriorityWeights | None = None,
        n_qos_levels: int = 3,
    ) -> None:
        self.cluster = cluster
        self.fairshare = fairshare
        self.weights = weights or PriorityWeights()
        self.n_qos_levels = max(1, n_qos_levels)
        tiers = np.array(
            [p.priority_tier for p in cluster.partitions], dtype=np.float64
        )
        # Normalise partition tiers to [0, 1].
        self._tier_factor = tiers / tiers.max() if tiers.max() > 0 else tiers
        self._total_cpus = float(
            sum(pool.total_cpus for pool in cluster.pools)
        )

    def compute(
        self,
        t: float,
        eligible_time: np.ndarray,
        user_ids: np.ndarray,
        partitions: np.ndarray,
        req_cpus: np.ndarray,
        qos: np.ndarray,
    ) -> np.ndarray:
        """Priorities for a batch of pending jobs at wall time ``t``.

        ``age`` counts from eligibility (Slurm accrues age once a job is
        eligible) and saturates at ``max_age_s``; ``job size`` favours wide
        jobs (Slurm's default favour-big setting, which keeps large jobs
        from starving under backfill).
        """
        w = self.weights
        age = np.clip((t - eligible_time) / w.max_age_s, 0.0, 1.0)
        fs = self.fairshare.factors(np.asarray(user_ids, dtype=np.intp), t)
        size = np.clip(req_cpus / self._total_cpus, 0.0, 1.0)
        tier = self._tier_factor[np.asarray(partitions, dtype=np.intp)]
        qos_f = np.asarray(qos, dtype=np.float64) / max(self.n_qos_levels - 1, 1)
        return (
            w.age * age
            + w.fairshare * fs
            + w.job_size * size
            + w.partition * tier
            + w.qos * qos_f
        )


class CachedPriority:
    """Incremental priority evaluation over a fixed submission table.

    Three of the five multifactor terms (job size, partition tier, QOS)
    never change after submission, so they are pre-weighted once per job
    up front; age is a cheap clip; only the fair-share factor is genuinely
    dynamic, and it is cached as a per-*user* vector keyed
    ``(t, fairshare.version)`` — recomputed when time advances or usage is
    charged, reused across pools and preemption re-passes at the same
    instant.

    Bitwise contract: for any index set, :meth:`compute_for` returns
    exactly what :meth:`MultifactorPriority.compute` would — every term
    is built from the same elementwise operations (which commute with the
    gather) and summed in the same order, and the fair-share cache
    triggers :class:`~repro.slurm.fairshare.FairShareTracker` decay at
    the same sequence of times as per-pass evaluation would.
    """

    def __init__(self, engine: MultifactorPriority, jobs: np.ndarray) -> None:
        w = engine.weights
        self.engine = engine
        self._elig = jobs["eligible_time"].astype(np.float64)
        self._users = jobs["user_id"].astype(np.intp)
        self._w_age = w.age
        self._w_fs = w.fairshare
        self._max_age_s = w.max_age_s
        size = np.clip(
            jobs["req_cpus"].astype(np.float64) / engine._total_cpus, 0.0, 1.0
        )
        tier = engine._tier_factor[jobs["partition"].astype(np.intp)]
        qos_f = jobs["qos"].astype(np.float64) / max(engine.n_qos_levels - 1, 1)
        self._size_term = w.job_size * size
        self._tier_term = w.partition * tier
        self._qos_term = w.qos * qos_f
        # (4, n_jobs) matrix of [eligible_time, size, tier, qos terms]:
        # one fancy-index per vector evaluation gathers all four columns.
        self._cols = np.ascontiguousarray(
            np.stack([self._elig, self._size_term, self._tier_term, self._qos_term])
        )
        # Python-scalar mirrors of the per-job columns: the scalar paths
        # read single elements, where list indexing returns a ready float
        # instead of boxing a NumPy scalar each time.  Values are the
        # same IEEE doubles, so arithmetic is bitwise-unchanged.
        self._elig_l = self._elig.tolist()
        self._users_l = self._users.tolist()
        self._size_l = self._size_term.tolist()
        self._tier_l = self._tier_term.tolist()
        self._qos_l = self._qos_term.tolist()
        self._fs_total = 0.0
        self._fs_total_key: tuple[float, int] | None = None
        # Per-user scalar factor memo keyed like the total: consecutive
        # scalar evaluations at one instant (eligibility snapshot +
        # scheduling pass) share each user's ``2**x``.
        self._fs_scalar: dict[int, float] = {}
        self._fs_scalar_key: tuple[float, int] | None = None

    def touch(self, t: float) -> None:
        """Trigger fair-share decay at ``t`` without computing anything.

        Decay is piecewise (``f(a)·f(b) != f(a+b)`` bitwise), so engines
        must decay at the *same sequence of times*.  The reference pass
        evaluates priorities — and therefore decays — at every pass over
        a non-empty queue; a fast-path pass that skips priority evaluation
        (single-job queue: order is trivial) calls this instead.
        """
        self.engine.fairshare._decay_to(t)

    def _fs_total_at(self, t: float) -> float:
        """Decay to ``t`` and return the (cached) total decayed usage."""
        fairshare = self.engine.fairshare
        fairshare._decay_to(t)
        key = (t, fairshare.version)
        if key != self._fs_total_key:
            self._fs_total = float(fairshare._usage.sum())
            self._fs_total_key = key
        return self._fs_total

    def compute_batch_scalar(self, idx: list[int], t: float) -> list[float]:
        """Scalar :meth:`compute_for` for a short list of job indices.

        Same IEEE operations on the same float64 operands in the same
        order, so every element is bitwise-identical to the vector
        path's.  For a handful of jobs, memoised per-user scalar factors
        (division and ``2**x`` commute with the gather) are far cheaper
        than a factor vector over every user.
        """
        fairshare = self.engine.fairshare
        users = self._users_l
        total = self._fs_total_at(t)
        key = self._fs_total_key
        if key != self._fs_scalar_key:
            self._fs_scalar_key = key
            self._fs_scalar.clear()
        if total <= 0:

            def factor(j: int) -> float:
                return 1.0

        else:
            usage = fairshare._usage
            shares = fairshare._norm_shares
            memo = self._fs_scalar

            def factor(j: int) -> float:
                u = users[j]
                f = memo.get(u)
                if f is None:
                    f = np.power(2.0, -((usage[u] / total) / shares[u]))
                    memo[u] = f
                return f

        elig = self._elig_l
        max_age_s = self._max_age_s
        w_age = self._w_age
        w_fs = self._w_fs
        size_l = self._size_l
        tier_l = self._tier_l
        qos_l = self._qos_l
        out: list[float] = []
        for j in idx:
            age = (t - elig[j]) / max_age_s
            if age < 0.0:
                age = 0.0
            elif age > 1.0:
                age = 1.0
            out.append(
                w_age * age + w_fs * factor(j) + size_l[j] + tier_l[j] + qos_l[j]
            )
        return out

    def compute_one(self, j: int, t: float) -> float:
        """Scalar :meth:`compute_for` for a single job index."""
        return self.compute_batch_scalar([j], t)[0]

    def compute_for(self, idx: np.ndarray, t: float) -> np.ndarray:
        """Priorities for the job indices ``idx`` at wall time ``t``.

        Fair-share factors are computed for exactly the gathered users —
        the same expression as :meth:`FairShareTracker.factors` on those
        ids, so elementwise ops commute with the gather and the result
        matches a full-vector evaluation bitwise.
        """
        fairshare = self.engine.fairshare
        total = self._fs_total_at(t)
        users = self._users[idx]
        if total <= 0:
            fs = np.ones(len(users), dtype=np.float64)
        else:
            u_norm = fairshare._usage[users] / total
            fs = np.power(2.0, -(u_norm / fairshare._norm_shares[users]))
        cols = self._cols[:, idx]
        # minimum(maximum(x)) ≡ np.clip bitwise except at -0.0, which an
        # age cannot be: IEEE a-b of equal operands is +0.0, and the
        # worst negative age (the -1e-9 batching window over the 3-day
        # saturation horizon) is far above the underflow threshold.
        age = np.minimum(np.maximum((t - cols[0]) / self._max_age_s, 0.0), 1.0)
        return self._w_age * age + self._w_fs * fs + cols[1] + cols[2] + cols[3]
