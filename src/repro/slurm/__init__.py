"""Slurm-like scheduling substrate.

The paper trains on accounting history from a real Slurm deployment (Anvil,
multifactor priority + fair-share + backfill).  This package is the
simulation substitute: an event-driven scheduler over an Anvil-shaped
cluster whose queue times *emerge* from resource contention, priority
ordering and backfill — so the engineered features keep their causal
relationship to the target.

Components: resource model (:mod:`resources`), the Anvil shape
(:mod:`anvil`), multifactor priority (:mod:`priority`), fair-share usage
decay (:mod:`fairshare`), the EASY-backfill scheduler (:mod:`scheduler`) and
the event loop (:mod:`simulator`), with sacct-style output
(:mod:`accounting`).
"""

from repro.slurm.anvil import anvil_cluster
from repro.slurm.fairshare import FairShareTracker
from repro.slurm.priority import MultifactorPriority, PriorityWeights
from repro.slurm.resources import Cluster, NodePool, Partition
from repro.slurm.queue import EventQueue, JobPool
from repro.slurm.simulator import (
    SIM_ENGINES,
    PreemptionPolicy,
    SimulationResult,
    Simulator,
    resolve_sim_engine,
)
from repro.slurm.utilization import pool_utilization, utilization_summary

__all__ = [
    "anvil_cluster",
    "FairShareTracker",
    "MultifactorPriority",
    "PriorityWeights",
    "Cluster",
    "NodePool",
    "Partition",
    "Simulator",
    "SimulationResult",
    "PreemptionPolicy",
    "SIM_ENGINES",
    "resolve_sim_engine",
    "EventQueue",
    "JobPool",
    "pool_utilization",
    "utilization_summary",
]
