"""sacct-style accounting output.

The paper's raw material is Slurm's historical job accounting; this module
renders a :class:`~repro.data.schema.JobSet` in a pipe-separated layout
recognisable to anyone who has run ``sacct -P`` — useful for eyeballing
simulated traces and for the CLI's ``trout stats`` output.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.data.schema import JobSet, JobState

__all__ = ["sacct_lines", "format_sacct"]

_FIELDS = (
    "JobID|User|Partition|State|Submit|Eligible|Start|End|ReqCPUS|ReqMem|ReqNodes|Timelimit|Priority"
)


def _fmt_minutes(minutes: float) -> str:
    """Render minutes as D-HH:MM:SS like Slurm."""
    total_s = int(round(minutes * 60))
    days, rem = divmod(total_s, 86400)
    hours, rem = divmod(rem, 3600)
    mins, secs = divmod(rem, 60)
    if days:
        return f"{days}-{hours:02d}:{mins:02d}:{secs:02d}"
    return f"{hours:02d}:{mins:02d}:{secs:02d}"


def sacct_lines(jobs: JobSet, limit: int | None = None) -> Iterable[str]:
    """Yield header + one pipe-separated line per job."""
    yield _FIELDS
    rec = jobs.records
    n = len(jobs) if limit is None else min(limit, len(jobs))
    names = jobs.partition_names
    for i in range(n):
        part = (
            names[int(rec["partition"][i])]
            if names and 0 <= int(rec["partition"][i]) < len(names)
            else str(int(rec["partition"][i]))
        )
        yield "|".join(
            [
                str(int(rec["job_id"][i])),
                f"u{int(rec['user_id'][i])}",
                part,
                JobState(int(rec["state"][i])).name,
                f"{rec['submit_time'][i]:.0f}",
                f"{rec['eligible_time'][i]:.0f}",
                f"{rec['start_time'][i]:.0f}",
                f"{rec['end_time'][i]:.0f}",
                str(int(rec["req_cpus"][i])),
                f"{rec['req_mem_gb'][i]:.1f}G",
                str(int(rec["req_nodes"][i])),
                _fmt_minutes(float(rec["timelimit_min"][i])),
                f"{rec['priority'][i]:.0f}",
            ]
        )


def format_sacct(jobs: JobSet, limit: int | None = 20) -> str:
    """Join :func:`sacct_lines` into one printable block."""
    return "\n".join(sacct_lines(jobs, limit))
