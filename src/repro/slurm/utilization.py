"""Cluster-utilisation diagnostics from accounting traces.

Reconstructs per-pool CPU occupancy over time from the final start/end
records — the operator's view of how loaded the simulated machine was, and
the calibration instrument behind the workload generator's ``load`` knob.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import JobSet
from repro.slurm.resources import Cluster

__all__ = ["pool_utilization", "utilization_summary"]


def pool_utilization(
    jobs: JobSet,
    cluster: Cluster,
    pool: int | str,
) -> dict[str, np.ndarray]:
    """Step function of one pool's busy CPUs over time.

    Returns ``times`` (event instants, ascending) and ``busy_cpus`` (the
    occupancy holding from each instant until the next).  Empty for pools
    with no jobs.
    """
    pool_id = cluster.pool_id(pool) if isinstance(pool, str) else int(pool)
    pool_ids = cluster.partition_pool_ids()
    rec = jobs.records
    mask = pool_ids[rec["partition"].astype(np.intp)] == pool_id
    if not np.any(mask):
        return {"times": np.zeros(0), "busy_cpus": np.zeros(0)}
    starts = rec["start_time"][mask]
    ends = rec["end_time"][mask]
    cpus = rec["req_cpus"][mask].astype(np.float64)
    ts = np.concatenate([starts, ends])
    deltas = np.concatenate([cpus, -cpus])
    order = np.lexsort((deltas, ts))  # releases before grabs at ties
    return {"times": ts[order], "busy_cpus": np.cumsum(deltas[order])}


def utilization_summary(jobs: JobSet, cluster: Cluster) -> dict[str, dict[str, float]]:
    """Mean and peak CPU utilisation per pool over the trace's active span.

    The mean is time-weighted over [first start, last end]; values are
    fractions of pool capacity.
    """
    out: dict[str, dict[str, float]] = {}
    for pool_id, pool in enumerate(cluster.pools):
        prof = pool_utilization(jobs, cluster, pool_id)
        times, busy = prof["times"], prof["busy_cpus"]
        if len(times) < 2:
            out[pool.name] = {"mean": 0.0, "peak": 0.0}
            continue
        dt = np.diff(times)
        span = times[-1] - times[0]
        mean_busy = float(np.sum(busy[:-1] * dt) / span) if span > 0 else 0.0
        out[pool.name] = {
            "mean": mean_busy / pool.total_cpus,
            "peak": float(busy.max()) / pool.total_cpus,
        }
    return out
