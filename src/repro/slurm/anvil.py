"""The Anvil-shaped cluster used throughout the reproduction.

Anvil (Purdue, NSF ACCESS) is ~1000 CPU nodes of 128 cores / 256 GB, a
32-node 1 TB high-memory tier and 16 GPU nodes with 4×A100.  The paper uses
the seven user-facing partitions; the CPU partitions share nodes while the
GPU partition is isolated.  The shapes here follow the public system
description (scaled by ``scale`` so tests can run a miniature Anvil with the
same proportions).
"""

from __future__ import annotations

from repro.slurm.resources import Cluster, NodePool, Partition

__all__ = ["anvil_cluster", "ANVIL_PARTITIONS"]

#: The seven user-facing partitions of the paper's dataset.
ANVIL_PARTITIONS: tuple[str, ...] = (
    "shared",
    "wholenode",
    "wide",
    "standard",
    "highmem",
    "debug",
    "gpu",
)


def anvil_cluster(scale: float = 1.0) -> Cluster:
    """Build an Anvil-shaped :class:`~repro.slurm.resources.Cluster`.

    Parameters
    ----------
    scale:
        Multiplier on node counts (≥ small floor per pool).  ``scale=1``
        approximates the real machine; tests use e.g. ``scale=0.05``.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")

    def n(base: int, floor: int = 2) -> int:
        return max(floor, int(round(base * scale)))

    pools = [
        NodePool("cpu", n_nodes=n(1000, 8), cpus_per_node=128, mem_gb_per_node=256.0),
        NodePool(
            "highmem", n_nodes=n(32, 2), cpus_per_node=128, mem_gb_per_node=1024.0
        ),
        NodePool(
            "gpu",
            n_nodes=n(16, 2),
            cpus_per_node=128,
            mem_gb_per_node=512.0,
            gpus_per_node=4,
        ),
    ]
    partitions = [
        # Anvil's default partition; sub-node jobs share nodes.
        Partition(
            "shared",
            pool="cpu",
            priority_tier=1.0,
            exclusive=False,
            max_nodes=1,
            max_timelimit_min=96 * 60.0,
        ),
        # Node-exclusive production partitions of increasing width.
        Partition(
            "wholenode",
            pool="cpu",
            priority_tier=1.0,
            exclusive=True,
            max_nodes=16,
            max_timelimit_min=96 * 60.0,
        ),
        Partition(
            "wide",
            pool="cpu",
            priority_tier=1.0,
            exclusive=True,
            max_nodes=56,
            max_timelimit_min=12 * 60.0,
        ),
        Partition(
            "standard",
            pool="cpu",
            priority_tier=1.0,
            exclusive=False,
            max_nodes=16,
            max_timelimit_min=96 * 60.0,
        ),
        Partition(
            "highmem",
            pool="highmem",
            priority_tier=1.0,
            exclusive=False,
            max_nodes=1,
            max_timelimit_min=48 * 60.0,
        ),
        # Short-turnaround debug partition gets a higher tier, as on the
        # real system, so its small jobs jump the queue.
        Partition(
            "debug",
            pool="cpu",
            priority_tier=3.0,
            exclusive=False,
            max_nodes=2,
            max_timelimit_min=2 * 60.0,
        ),
        Partition(
            "gpu",
            pool="gpu",
            priority_tier=1.0,
            exclusive=False,
            max_nodes=2,
            max_timelimit_min=48 * 60.0,
        ),
    ]
    return Cluster("anvil", pools, partitions)
