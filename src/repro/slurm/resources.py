"""Cluster resource model.

Resources are tracked at *pool* granularity: a :class:`NodePool` is a set of
identical nodes whose aggregate CPUs / memory / GPUs are consumed by running
jobs.  Partitions reference a pool — several partitions may share one pool
(on Anvil the CPU partitions share nodes while the GPU partition is
isolated), which reproduces the cross-partition contention the paper's
per-partition features have to see through.

Aggregate (rather than per-node) accounting keeps the simulator fully
vectorisable; node-exclusive partitions still behave correctly because
their jobs request whole-node multiples of CPUs and memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["NodePool", "Partition", "Cluster"]


@dataclass
class NodePool:
    """A homogeneous set of nodes sharing one free-resource ledger."""

    name: str
    n_nodes: int
    cpus_per_node: int
    mem_gb_per_node: float
    gpus_per_node: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes <= 0 or self.cpus_per_node <= 0:
            raise ValueError(f"pool {self.name!r} must have positive nodes/cpus")
        if self.mem_gb_per_node <= 0:
            raise ValueError(f"pool {self.name!r} must have positive memory")

    @property
    def total_cpus(self) -> int:
        return self.n_nodes * self.cpus_per_node

    @property
    def total_mem_gb(self) -> float:
        return self.n_nodes * self.mem_gb_per_node

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node


@dataclass
class Partition:
    """A submission target mapping onto one node pool.

    ``priority_tier`` feeds the multifactor priority's partition term (Slurm
    ``PriorityTier``); ``exclusive`` marks whole-node partitions whose jobs
    consume full nodes; ``max_nodes`` caps a single job's width.
    """

    name: str
    pool: str
    priority_tier: float = 1.0
    exclusive: bool = False
    max_nodes: int | None = None
    max_timelimit_min: float = 96.0 * 60.0
    default_timelimit_min: float = 30.0

    def __post_init__(self) -> None:
        if self.max_timelimit_min <= 0:
            raise ValueError(f"partition {self.name!r} needs positive max timelimit")


class Cluster:
    """A named set of pools and partitions with fast index lookups."""

    def __init__(self, name: str, pools: list[NodePool], partitions: list[Partition]):
        self.name = name
        self.pools: list[NodePool] = list(pools)
        self.partitions: list[Partition] = list(partitions)
        self._pool_index = {p.name: i for i, p in enumerate(self.pools)}
        if len(self._pool_index) != len(self.pools):
            raise ValueError("duplicate pool names")
        self._partition_index = {p.name: i for i, p in enumerate(self.partitions)}
        if len(self._partition_index) != len(self.partitions):
            raise ValueError("duplicate partition names")
        for part in self.partitions:
            if part.pool not in self._pool_index:
                raise ValueError(
                    f"partition {part.name!r} references unknown pool {part.pool!r}"
                )

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    @property
    def partition_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.partitions)

    def partition(self, key: int | str) -> Partition:
        return self.partitions[self.partition_id(key)]

    def partition_id(self, key: int | str) -> int:
        if isinstance(key, str):
            try:
                return self._partition_index[key]
            except KeyError:
                raise KeyError(
                    f"unknown partition {key!r}; known: {self.partition_names}"
                ) from None
        return int(key)

    def pool_id(self, key: int | str) -> int:
        if isinstance(key, str):
            try:
                return self._pool_index[key]
            except KeyError:
                raise KeyError(f"unknown pool {key!r}") from None
        return int(key)

    def pool_of_partition(self, key: int | str) -> int:
        """Pool index backing a partition."""
        return self._pool_index[self.partition(key).pool]

    def partition_pool_ids(self) -> np.ndarray:
        """Pool index per partition, vectorised."""
        return np.array(
            [self._pool_index[p.pool] for p in self.partitions], dtype=np.intp
        )

    # ------------------------------------------------------------------ #
    # static feature vectors (Table II "Par Total *" rows)
    # ------------------------------------------------------------------ #
    def partition_specs(self) -> dict[str, np.ndarray]:
        """Static per-partition specification arrays.

        Nodes/CPUs/GPUs belonging to each partition are those of its backing
        pool (shared pools are visible in full from each partition, as with
        Slurm overlapping partitions).
        """
        pool_ids = self.partition_pool_ids()
        n_nodes = np.array([self.pools[i].n_nodes for i in pool_ids], dtype=np.float64)
        cpn = np.array(
            [self.pools[i].cpus_per_node for i in pool_ids], dtype=np.float64
        )
        mpn = np.array(
            [self.pools[i].mem_gb_per_node for i in pool_ids], dtype=np.float64
        )
        gpus = np.array(
            [self.pools[i].total_gpus for i in pool_ids], dtype=np.float64
        )
        return {
            "total_nodes": n_nodes,
            "total_cpus": n_nodes * cpn,
            "cpus_per_node": cpn,
            "mem_per_node_gb": mpn,
            "total_gpus": gpus,
        }

    def validate_request(
        self,
        partition: int | str,
        req_cpus: int,
        req_mem_gb: float,
        req_nodes: int,
        req_gpus: int = 0,
        timelimit_min: float | None = None,
    ) -> None:
        """Raise if a request can never be satisfied by the partition."""
        part = self.partition(partition)
        pool = self.pools[self._pool_index[part.pool]]
        if req_cpus <= 0 or req_nodes <= 0 or req_mem_gb <= 0:
            raise ValueError("resource requests must be positive")
        if req_cpus > pool.total_cpus:
            raise ValueError(
                f"request of {req_cpus} CPUs exceeds pool {pool.name!r} "
                f"capacity {pool.total_cpus}"
            )
        if req_mem_gb > pool.total_mem_gb:
            raise ValueError("memory request exceeds pool capacity")
        if req_gpus > pool.total_gpus:
            raise ValueError("GPU request exceeds pool capacity")
        if req_nodes > pool.n_nodes:
            raise ValueError("node request exceeds pool size")
        if part.max_nodes is not None and req_nodes > part.max_nodes:
            raise ValueError(
                f"partition {part.name!r} caps jobs at {part.max_nodes} nodes"
            )
        if timelimit_min is not None and timelimit_min > part.max_timelimit_min:
            raise ValueError(
                f"timelimit {timelimit_min} exceeds partition cap "
                f"{part.max_timelimit_min}"
            )
