"""Event-driven cluster simulation.

Feed a submission table (what users asked for and when) through the
multifactor-priority + EASY-backfill scheduler over a
:class:`~repro.slurm.resources.Cluster`; queue times come out the other
side.  The result converts to a :class:`~repro.data.schema.JobSet`
accounting trace identical in shape to what the paper extracted from
Slurm's ``sacct``.

The event loop is a binary heap of (time, seq, kind, job) tuples with two
event kinds — a job becoming *eligible* and a job *ending* — and a
scheduling pass over each affected pool after every batch of simultaneous
events.  Job attributes live in one structured array so scheduling passes
are vectorised gathers, not object traversals.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.data.schema import JOB_DTYPE, JobSet, JobState
from repro.obs import metrics, tracing
from repro.slurm.fairshare import FairShareTracker
from repro.slurm.nodes import NodeLedger
from repro.slurm.priority import MultifactorPriority, PriorityWeights
from repro.slurm.resources import Cluster
from repro.slurm.scheduler import BackfillScheduler, PoolLedger
from repro.utils.logging import get_logger

__all__ = ["SUBMISSION_DTYPE", "Simulator", "SimulationResult"]

log = get_logger(__name__)

#: What a user hands the scheduler, one record per job.  ``runtime_min`` is
#: the job's *actual* runtime (known to the workload generator, invisible to
#: the scheduler until the job ends); ``fail`` marks jobs that die early.
SUBMISSION_DTYPE = np.dtype(
    [
        ("job_id", np.int64),
        ("user_id", np.int32),
        ("partition", np.int16),
        ("qos", np.int8),
        ("submit_time", np.float64),
        ("eligible_time", np.float64),
        ("req_cpus", np.int32),
        ("req_mem_gb", np.float64),
        ("req_nodes", np.int32),
        ("req_gpus", np.int32),
        ("timelimit_min", np.float64),
        ("runtime_min", np.float64),
        ("fail", np.int8),
    ]
)

_SIM_DTYPE = np.dtype(SUBMISSION_DTYPE.descr + [("start_time", np.float64), ("end_time", np.float64)])

_EV_ELIGIBLE = 0
_EV_END = 1
_EV_RELEASE = 2  # a requeue hold expired; re-run the pool's scheduler


@dataclass(frozen=True)
class PreemptionPolicy:
    """QOS-based requeue preemption (Slurm ``PreemptMode=REQUEUE``).

    The Slurm docs the paper quotes put "jobs that can preempt" first in
    evaluation order.  Under this policy, a blocked queue-head job whose
    QOS is at least ``min_preemptor_qos`` may evict running jobs of
    strictly lower QOS (most recently started first) until it fits; the
    victims are requeued and restart from scratch (their partial run is
    still charged to fair-share).
    """

    min_preemptor_qos: int = 2
    max_victims_per_pass: int = 32
    #: Seconds a requeued victim is held out of scheduling.  Matches
    #: Slurm's requeue-then-re-pend behaviour and, crucially, prevents the
    #: evict/backfill livelock where a victim re-enters the gap it just
    #: vacated within the same scheduling instant.
    requeue_hold_s: float = 60.0

    def __post_init__(self) -> None:
        if self.min_preemptor_qos < 1:
            raise ValueError("min_preemptor_qos must be >= 1")
        if self.max_victims_per_pass < 1:
            raise ValueError("max_victims_per_pass must be >= 1")
        if self.requeue_hold_s <= 0:
            raise ValueError("requeue_hold_s must be positive")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    jobs: JobSet  # accounting trace, eligibility-ordered
    priorities_at_eligibility: np.ndarray  # parallel to ``jobs``
    n_scheduler_passes: int
    makespan_s: float
    n_preemptions: int = 0

    @property
    def queue_time_min(self) -> np.ndarray:
        return self.jobs.queue_time_min


class Simulator:
    """Run a submission table through the scheduler.

    Parameters
    ----------
    cluster:
        Machine shape (see :func:`repro.slurm.anvil.anvil_cluster`).
    n_users:
        Size of the user-id space for the fair-share tracker.
    weights:
        Multifactor priority weights.
    backfill_depth:
        Per-pass backfill scan bound.
    fairshare_half_life_s:
        Usage decay half-life.
    """

    def __init__(
        self,
        cluster: Cluster,
        n_users: int,
        weights: PriorityWeights | None = None,
        backfill_depth: int = 100,
        fairshare_half_life_s: float = 14 * 24 * 3600.0,
        preemption: "PreemptionPolicy | None" = None,
        node_level: bool = False,
    ) -> None:
        self.cluster = cluster
        self.fairshare = FairShareTracker(n_users, half_life_s=fairshare_half_life_s)
        self.priority = MultifactorPriority(cluster, self.fairshare, weights)
        exclusive = np.array(
            [p.exclusive for p in cluster.partitions], dtype=bool
        )
        self.scheduler = BackfillScheduler(
            self.priority, backfill_depth, exclusive_by_partition=exclusive
        )
        self.preemption = preemption
        #: Fragmentation-aware per-node placement (see repro.slurm.nodes).
        self.node_level = node_level

    # ------------------------------------------------------------------ #
    def run(self, submissions: np.ndarray) -> SimulationResult:
        """Simulate to completion and return the accounting trace.

        ``submissions`` must use :data:`SUBMISSION_DTYPE`.  Every job
        eventually starts (requests are validated as satisfiable up front);
        the simulation drains all events.
        """
        with tracing.span("simulate", jobs=len(submissions)):
            return self._run(submissions)

    def _run(self, submissions: np.ndarray) -> SimulationResult:
        submissions = np.asarray(submissions)
        if submissions.dtype != SUBMISSION_DTYPE:
            raise TypeError(
                f"submissions must use SUBMISSION_DTYPE, got {submissions.dtype}"
            )
        n = len(submissions)
        jobs = np.zeros(n, dtype=_SIM_DTYPE)
        for name in SUBMISSION_DTYPE.names:
            jobs[name] = submissions[name]
        jobs["start_time"] = -1.0
        jobs["end_time"] = -1.0
        self._validate(jobs)

        part_pool = self.cluster.partition_pool_ids()
        pool_of_job = part_pool[jobs["partition"].astype(np.intp)]
        ledgers = [
            PoolLedger(
                pool.total_cpus,
                pool.total_mem_gb,
                pool.total_gpus,
                nodes=NodeLedger(pool) if self.node_level else None,
            )
            for pool in self.cluster.pools
        ]
        pending: list[list[int]] = [[] for _ in self.cluster.pools]
        running: list[list[int]] = [[] for _ in self.cluster.pools]
        prio_at_elig = np.zeros(n, dtype=np.float64)

        # END events carry the job's attempt number so a preempted job's
        # stale completion is ignored (the requeue bumps the attempt).
        attempt = np.zeros(n, dtype=np.int32)
        # Requeued victims are held until this time before rescheduling.
        hold_until = np.zeros(n, dtype=np.float64)
        n_preemptions = 0

        heap: list[tuple[float, int, int, int, int]] = []
        seq = 0
        for j in np.argsort(jobs["eligible_time"], kind="stable"):
            heap.append(
                (float(jobs["eligible_time"][j]), seq, _EV_ELIGIBLE, int(j), 0)
            )
            seq += 1
        heapq.heapify(heap)

        # Metric handles resolved once; per-pass updates are attribute
        # bumps (or no-ops with telemetry disabled).
        reg = metrics.get_registry()
        queue_gauge = reg.gauge("sim_queue_depth", help="pending jobs across all pools")
        running_gauge = reg.gauge(
            "sim_running_jobs", help="running jobs across all pools"
        )
        passes_ctr = reg.counter(
            "sim_scheduler_passes_total", help="scheduling passes executed"
        )
        started_ctr = reg.counter(
            "sim_jobs_started_total", help="job starts (requeued jobs count again)"
        )
        backfill_ctr = reg.counter(
            "sim_jobs_backfilled_total", help="jobs started via EASY backfill"
        )
        preempt_ctr = reg.counter(
            "sim_preemptions_total", help="running jobs evicted by preemption"
        )
        # Queue depth is a dimensionless job count — none of the unit
        # suffixes apply, and the name is a published PR-3 surface.
        depth_hist = reg.histogram(  # repro: ignore[OBS001]
            "sim_queue_depth_per_pass",
            help="pool queue depth seen by each scheduling pass",
            buckets=metrics.log_buckets(1.0, 1e5),
        )

        n_passes = 0
        t = 0.0
        while heap:
            t = heap[0][0]
            dirty: set[int] = set()
            newly_eligible: list[int] = []
            # Drain all events at this timestamp before scheduling.
            while heap and heap[0][0] <= t + 1e-9:
                _, _, kind, j, ev_attempt = heapq.heappop(heap)
                pool = int(pool_of_job[j])
                if kind == _EV_ELIGIBLE:
                    pending[pool].append(j)
                    newly_eligible.append(j)
                elif kind == _EV_RELEASE:
                    pass  # hold expired: just mark the pool dirty below
                else:  # _EV_END
                    if ev_attempt != attempt[j]:
                        continue  # stale: the job was preempted mid-run
                    running[pool].remove(j)
                    ledgers[pool].release_job(
                        int(j),
                        float(jobs["req_cpus"][j]),
                        float(jobs["req_mem_gb"][j]),
                        float(jobs["req_gpus"][j]),
                    )
                    run_s = jobs["end_time"][j] - jobs["start_time"][j]
                    self.fairshare.add_usage(
                        int(jobs["user_id"][j]),
                        float(jobs["req_cpus"][j]) * float(run_s),
                        t,
                    )
                dirty.add(pool)

            if newly_eligible:
                ne = np.asarray(newly_eligible, dtype=np.intp)
                prio_at_elig[ne] = self.priority.compute(
                    t,
                    eligible_time=jobs["eligible_time"][ne],
                    user_ids=jobs["user_id"][ne],
                    partitions=jobs["partition"][ne],
                    req_cpus=jobs["req_cpus"][ne].astype(np.float64),
                    qos=jobs["qos"][ne],
                )

            queue_gauge.set(float(sum(len(p) for p in pending)))
            running_gauge.set(float(sum(len(r) for r in running)))

            for pool in dirty:
                while True:
                    # Jobs under a requeue hold sit out this pass.
                    if self.preemption is not None:
                        ready = [j for j in pending[pool] if hold_until[j] <= t]
                    else:
                        ready = pending[pool]
                    depth_hist.observe(float(len(ready)))
                    started = self.scheduler.run_pass(
                        t, jobs, ready, running[pool], ledgers[pool]
                    )
                    n_passes += 1
                    passes_ctr.inc()
                    started_ctr.inc(len(started))
                    backfill_ctr.inc(self.scheduler.last_backfilled)
                    if ready is not pending[pool]:
                        for j in started:
                            pending[pool].remove(j)
                    for j in started:
                        # Event batching groups times within 1e-9 s; clamp
                        # so a job never starts before its own eligibility.
                        start = max(t, float(jobs["eligible_time"][j]))
                        jobs["start_time"][j] = start
                        end = start + self._effective_runtime_s(jobs, j)
                        jobs["end_time"][j] = end
                        running[pool].append(j)
                        heapq.heappush(
                            heap, (float(end), seq, _EV_END, j, int(attempt[j]))
                        )
                        seq += 1
                    evicted = self._maybe_preempt(
                        t, jobs, pending[pool], running[pool], ledgers[pool], attempt
                    )
                    if not evicted:
                        break
                    n_preemptions += len(evicted)
                    preempt_ctr.inc(len(evicted))
                    release = t + self.preemption.requeue_hold_s
                    for j in evicted:
                        hold_until[j] = release
                    heapq.heappush(
                        heap, (float(release), seq, _EV_RELEASE, int(evicted[0]), 0)
                    )
                    seq += 1

        unstarted = np.flatnonzero(jobs["start_time"] < 0)
        if len(unstarted):
            raise RuntimeError(
                f"{len(unstarted)} jobs never started — first: "
                f"job_id={int(jobs['job_id'][unstarted[0]])}"
            )
        trace = self._to_jobset(jobs, prio_at_elig)
        order = np.argsort(jobs["eligible_time"], kind="stable")
        log.info("simulated %d jobs, %d scheduler passes", n, n_passes)
        return SimulationResult(
            jobs=trace[order],
            priorities_at_eligibility=prio_at_elig[order],
            n_scheduler_passes=n_passes,
            makespan_s=float(jobs["end_time"].max() if n else 0.0),
            n_preemptions=n_preemptions,
        )

    # ------------------------------------------------------------------ #
    def _maybe_preempt(
        self,
        t: float,
        jobs: np.ndarray,
        pending: list[int],
        running: list[int],
        ledger,
        attempt: np.ndarray,
    ) -> list[int]:
        """Evict lower-QOS running jobs for a blocked preemptor head.

        Returns the requeued victims (empty = nothing to do).  The caller
        re-runs the scheduling pass afterwards so the head starts into the
        freed resources, and holds the victims briefly so they cannot
        backfill straight back into the gap.
        """
        policy = self.preemption
        head = self.scheduler.last_blocked
        if policy is None or head is None or not running:
            return []
        head_qos = int(jobs["qos"][head])
        if head_qos < policy.min_preemptor_qos:
            return []
        victims = [j for j in running if int(jobs["qos"][j]) < head_qos]
        if not victims:
            return []
        # Most recently started first: minimises wasted work.
        victims.sort(key=lambda j: -float(jobs["start_time"][j]))
        need = (
            float(jobs["req_cpus"][head]),
            float(jobs["req_mem_gb"][head]),
            float(jobs["req_gpus"][head]),
        )
        evicted: list[int] = []
        for j in victims:
            if ledger.fits(*need) or len(evicted) >= policy.max_victims_per_pass:
                break
            running.remove(j)
            ledger.release_job(
                int(j),
                float(jobs["req_cpus"][j]),
                float(jobs["req_mem_gb"][j]),
                float(jobs["req_gpus"][j]),
            )
            # Charge the wasted partial run to fair-share; requeue from
            # scratch with a bumped attempt so the old END event is stale.
            self.fairshare.add_usage(
                int(jobs["user_id"][j]),
                float(jobs["req_cpus"][j]) * max(t - float(jobs["start_time"][j]), 0.0),
                t,
            )
            attempt[j] += 1
            jobs["start_time"][j] = -1.0
            jobs["end_time"][j] = -1.0
            pending.append(j)
            evicted.append(int(j))
        # If victims ran out before the head fits, the evictions stand and
        # the head keeps waiting (Slurm behaves the same under REQUEUE).
        return evicted

    # ------------------------------------------------------------------ #
    def _effective_runtime_s(self, jobs: np.ndarray, j: int) -> float:
        """Actual runtime, clipped to the timelimit (TIMEOUT kills)."""
        runtime = float(jobs["runtime_min"][j])
        limit = float(jobs["timelimit_min"][j])
        return min(runtime, limit) * 60.0

    def _validate(self, jobs: np.ndarray) -> None:
        """Reject unsatisfiable requests before the event loop starts."""
        part_pool = self.cluster.partition_pool_ids()
        pools = self.cluster.pools
        cap_cpus = np.array([pools[i].total_cpus for i in part_pool])
        cap_mem = np.array([pools[i].total_mem_gb for i in part_pool])
        cap_gpus = np.array([pools[i].total_gpus for i in part_pool])
        p = jobs["partition"].astype(np.intp)
        bad = (
            (jobs["req_cpus"] > cap_cpus[p])
            | (jobs["req_mem_gb"] > cap_mem[p])
            | (jobs["req_gpus"] > cap_gpus[p])
            | (jobs["req_cpus"] <= 0)
            | (jobs["req_nodes"] <= 0)
            | (jobs["req_mem_gb"] <= 0)
            | (jobs["timelimit_min"] <= 0)
            | (jobs["runtime_min"] < 0)
            | (jobs["eligible_time"] < jobs["submit_time"])
        )
        if self.node_level:
            # Per-node share must fit one node even on an empty pool.
            cpn = np.array([pools[i].cpus_per_node for i in part_pool])
            mpn = np.array([pools[i].mem_gb_per_node for i in part_pool])
            gpn = np.array([pools[i].gpus_per_node for i in part_pool])
            nn = np.array([pools[i].n_nodes for i in part_pool])
            k = np.maximum(jobs["req_nodes"], 1).astype(np.float64)
            bad |= np.ceil(jobs["req_cpus"] / k) > cpn[p]
            bad |= (jobs["req_mem_gb"] / k) > mpn[p] + 1e-9
            bad |= np.ceil(jobs["req_gpus"] / k) > gpn[p]
            bad |= jobs["req_nodes"] > nn[p]
        if np.any(bad):
            first = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"unsatisfiable or malformed submission at row {first} "
                f"(job_id={int(jobs['job_id'][first])})"
            )

    def _to_jobset(self, jobs: np.ndarray, prio: np.ndarray) -> JobSet:
        """Convert the simulation array to an accounting JobSet."""
        n = len(jobs)
        rec = np.zeros(n, dtype=JOB_DTYPE)
        for name in (
            "job_id",
            "user_id",
            "partition",
            "qos",
            "submit_time",
            "eligible_time",
            "start_time",
            "end_time",
            "req_cpus",
            "req_mem_gb",
            "req_nodes",
            "timelimit_min",
        ):
            rec[name] = jobs[name]
        rec["priority"] = prio
        ran_full = jobs["runtime_min"] >= jobs["timelimit_min"]
        state = np.full(n, int(JobState.COMPLETED), dtype=np.int8)
        state[ran_full.nonzero()] = int(JobState.TIMEOUT)
        state[(jobs["fail"] == 1) & ~ran_full] = int(JobState.FAILED)
        rec["state"] = state
        return JobSet(rec, self.cluster.partition_names)
