"""Event-driven cluster simulation.

Feed a submission table (what users asked for and when) through the
multifactor-priority + EASY-backfill scheduler over a
:class:`~repro.slurm.resources.Cluster`; queue times come out the other
side.  The result converts to a :class:`~repro.data.schema.JobSet`
accounting trace identical in shape to what the paper extracted from
Slurm's ``sacct``.

Two engines produce bitwise-identical traces (``REPRO_SIM_ENGINE`` /
``Simulator(engine=...)``):

- ``fast`` (default) — an indexed lazy-deletion event queue
  (:class:`~repro.slurm.queue.EventQueue`), O(1) swap-remove
  pending/running sets (:class:`~repro.slurm.queue.JobPool`), cached
  incremental priorities and the vectorised backfill pass
  (:class:`~repro.slurm.scheduler.VectorBackfillScheduler`).
- ``reference`` — the original straight-line implementation: a plain
  binary heap of (time, seq, kind, job, attempt) tuples, Python index
  lists and the scalar scheduling pass.  It exists as the determinism
  oracle; CI runs the scheduling suites under it and the equivalence
  suite asserts trace equality against ``fast``.

The event loop has three event kinds — a job becoming *eligible*, a job
*ending*, and a requeue hold *releasing* — and runs a scheduling pass
over each affected pool after every batch of simultaneous events.  Job
attributes live in one structured array so scheduling passes are
vectorised gathers, not object traversals.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.data.schema import JOB_DTYPE, JobSet, JobState
from repro.obs import metrics, tracing
from repro.slurm.fairshare import FairShareTracker
from repro.slurm.nodes import NodeLedger
from repro.slurm.priority import CachedPriority, MultifactorPriority, PriorityWeights
from repro.slurm.queue import EventQueue, JobPool
from repro.slurm.resources import Cluster
from repro.slurm.scheduler import (
    BackfillScheduler,
    PoolLedger,
    VectorBackfillScheduler,
)
from repro.utils.logging import get_logger

__all__ = [
    "SUBMISSION_DTYPE",
    "SIM_ENGINES",
    "Simulator",
    "SimulationResult",
    "resolve_sim_engine",
]

log = get_logger(__name__)

#: What a user hands the scheduler, one record per job.  ``runtime_min`` is
#: the job's *actual* runtime (known to the workload generator, invisible to
#: the scheduler until the job ends); ``fail`` marks jobs that die early.
SUBMISSION_DTYPE = np.dtype(
    [
        ("job_id", np.int64),
        ("user_id", np.int32),
        ("partition", np.int16),
        ("qos", np.int8),
        ("submit_time", np.float64),
        ("eligible_time", np.float64),
        ("req_cpus", np.int32),
        ("req_mem_gb", np.float64),
        ("req_nodes", np.int32),
        ("req_gpus", np.int32),
        ("timelimit_min", np.float64),
        ("runtime_min", np.float64),
        ("fail", np.int8),
    ]
)

_SIM_DTYPE = np.dtype(SUBMISSION_DTYPE.descr + [("start_time", np.float64), ("end_time", np.float64)])

_EV_ELIGIBLE = 0
_EV_END = 1
_EV_RELEASE = 2  # a requeue hold expired; re-run the pool's scheduler

#: Valid simulation engines; ``fast`` is the default, ``reference`` the
#: bitwise-identical original kept as the determinism oracle.
SIM_ENGINES = ("fast", "reference")


def resolve_sim_engine(engine: str | None) -> str:
    """``None`` defers to the ``REPRO_SIM_ENGINE`` env knob (default ``fast``).

    Mirrors ``repro.ml.binning.resolve_tree_method``: CI runs the
    scheduling suites once per engine by exporting the variable, and
    explicit arguments always win over the environment.
    """
    if engine is None:
        engine = os.environ.get("REPRO_SIM_ENGINE", "fast")
    if engine not in SIM_ENGINES:
        raise ValueError(f"sim engine must be one of {SIM_ENGINES}, got {engine!r}")
    return engine


@dataclass(frozen=True)
class PreemptionPolicy:
    """QOS-based requeue preemption (Slurm ``PreemptMode=REQUEUE``).

    The Slurm docs the paper quotes put "jobs that can preempt" first in
    evaluation order.  Under this policy, a blocked queue-head job whose
    QOS is at least ``min_preemptor_qos`` may evict running jobs of
    strictly lower QOS (most recently started first) until it fits; the
    victims are requeued and restart from scratch (their partial run is
    still charged to fair-share).
    """

    min_preemptor_qos: int = 2
    max_victims_per_pass: int = 32
    #: Seconds a requeued victim is held out of scheduling.  Matches
    #: Slurm's requeue-then-re-pend behaviour and, crucially, prevents the
    #: evict/backfill livelock where a victim re-enters the gap it just
    #: vacated within the same scheduling instant.
    requeue_hold_s: float = 60.0

    def __post_init__(self) -> None:
        if self.min_preemptor_qos < 1:
            raise ValueError("min_preemptor_qos must be >= 1")
        if self.max_victims_per_pass < 1:
            raise ValueError("max_victims_per_pass must be >= 1")
        if self.requeue_hold_s <= 0:
            raise ValueError("requeue_hold_s must be positive")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    jobs: JobSet  # accounting trace, eligibility-ordered
    priorities_at_eligibility: np.ndarray  # parallel to ``jobs``
    n_scheduler_passes: int
    makespan_s: float
    n_preemptions: int = 0

    @property
    def queue_time_min(self) -> np.ndarray:
        return self.jobs.queue_time_min


class _Metrics:
    """Handles resolved once per run; per-pass updates are attribute
    bumps (or no-ops with telemetry disabled)."""

    def __init__(self) -> None:
        reg = metrics.get_registry()
        self.queue = reg.gauge("sim_queue_depth", help="pending jobs across all pools")
        self.running = reg.gauge(
            "sim_running_jobs", help="running jobs across all pools"
        )
        self.passes = reg.counter(
            "sim_scheduler_passes_total", help="scheduling passes executed"
        )
        self.started = reg.counter(
            "sim_jobs_started_total", help="job starts (requeued jobs count again)"
        )
        self.backfilled = reg.counter(
            "sim_jobs_backfilled_total", help="jobs started via EASY backfill"
        )
        self.preempted = reg.counter(
            "sim_preemptions_total", help="running jobs evicted by preemption"
        )
        self.tombstoned = reg.counter(
            "sim_events_tombstoned_total",
            help="events invalidated in the lazy-deletion queue",
        )
        self.jobs_per_second = reg.gauge(
            "sim_jobs_per_second",
            help="simulated jobs per wall-clock second, last run",
        )
        # Queue depth is a dimensionless job count — none of the unit
        # suffixes apply, and the name is a published PR-3 surface.
        self.depth = reg.histogram(  # repro: ignore[OBS001]
            "sim_queue_depth_per_pass",
            help="pool queue depth seen by each scheduling pass",
            buckets=metrics.log_buckets(1.0, 1e5),
        )


class Simulator:
    """Run a submission table through the scheduler.

    Parameters
    ----------
    cluster:
        Machine shape (see :func:`repro.slurm.anvil.anvil_cluster`).
    n_users:
        Size of the user-id space for the fair-share tracker.
    weights:
        Multifactor priority weights.
    backfill_depth:
        Per-pass backfill scan bound.
    fairshare_half_life_s:
        Usage decay half-life.
    engine:
        ``fast`` | ``reference`` | None (defer to ``REPRO_SIM_ENGINE``).
        Both engines produce bitwise-identical traces.
    """

    def __init__(
        self,
        cluster: Cluster,
        n_users: int,
        weights: PriorityWeights | None = None,
        backfill_depth: int = 100,
        fairshare_half_life_s: float = 14 * 24 * 3600.0,
        preemption: "PreemptionPolicy | None" = None,
        node_level: bool = False,
        engine: str | None = None,
    ) -> None:
        self.cluster = cluster
        self.fairshare = FairShareTracker(n_users, half_life_s=fairshare_half_life_s)
        self.priority = MultifactorPriority(cluster, self.fairshare, weights)
        exclusive = np.array(
            [p.exclusive for p in cluster.partitions], dtype=bool
        )
        self.scheduler = BackfillScheduler(
            self.priority, backfill_depth, exclusive_by_partition=exclusive
        )
        self.preemption = preemption
        #: Fragmentation-aware per-node placement (see repro.slurm.nodes).
        self.node_level = node_level
        self.engine = resolve_sim_engine(engine)

    # ------------------------------------------------------------------ #
    def run(self, submissions: np.ndarray) -> SimulationResult:
        """Simulate to completion and return the accounting trace.

        ``submissions`` must use :data:`SUBMISSION_DTYPE`.  Every job
        eventually starts (requests are validated as satisfiable up front);
        the simulation drains all events.
        """
        with tracing.span(
            "simulate", jobs=len(submissions), engine=self.engine
        ):
            return self._run(submissions)

    def _run(self, submissions: np.ndarray) -> SimulationResult:
        submissions = np.asarray(submissions)
        if submissions.dtype != SUBMISSION_DTYPE:
            raise TypeError(
                f"submissions must use SUBMISSION_DTYPE, got {submissions.dtype}"
            )
        n = len(submissions)
        jobs = np.zeros(n, dtype=_SIM_DTYPE)
        for name in SUBMISSION_DTYPE.names:
            jobs[name] = submissions[name]
        jobs["start_time"] = -1.0
        jobs["end_time"] = -1.0
        self._validate(jobs)
        mx = _Metrics()
        t0 = time.perf_counter()
        if self.engine == "reference":
            result = self._run_reference(jobs, mx)
        else:
            result = self._run_fast(jobs, mx)
        elapsed = time.perf_counter() - t0
        mx.jobs_per_second.set(n / elapsed if elapsed > 0 else 0.0)
        return result

    def _make_ledgers(self) -> list[PoolLedger]:
        return [
            PoolLedger(
                pool.total_cpus,
                pool.total_mem_gb,
                pool.total_gpus,
                nodes=NodeLedger(pool) if self.node_level else None,
            )
            for pool in self.cluster.pools
        ]

    # ------------------------------------------------------------------ #
    # Fast engine: lazy-deletion event queue, swap-remove pools,
    # incremental priorities, vectorised scheduling pass.
    # ------------------------------------------------------------------ #
    def _run_fast(self, jobs: np.ndarray, mx: _Metrics) -> SimulationResult:
        n = len(jobs)
        part_pool = self.cluster.partition_pool_ids()
        pool_of_job = part_pool[jobs["partition"].astype(np.intp)]
        ledgers = self._make_ledgers()
        n_pools = len(self.cluster.pools)
        pending = [JobPool(n) for _ in range(n_pools)]
        running = [JobPool(n) for _ in range(n_pools)]
        prio_at_elig = np.zeros(n, dtype=np.float64)

        # Hot job attributes as contiguous columns: scheduling reads are
        # array gathers, never structured-array scalar pulls.
        elig = jobs["eligible_time"].astype(np.float64)
        req_c = jobs["req_cpus"].astype(np.float64)
        req_m = jobs["req_mem_gb"].astype(np.float64)
        req_g = jobs["req_gpus"].astype(np.float64)
        req_nodes = jobs["req_nodes"].astype(np.int64)
        limit_s = jobs["timelimit_min"].astype(np.float64) * 60.0
        eff_run_s = np.minimum(jobs["runtime_min"], jobs["timelimit_min"]) * 60.0
        user_ids = jobs["user_id"].astype(np.intp)
        qos = jobs["qos"].astype(np.int64)
        start_arr = np.full(n, -1.0, dtype=np.float64)
        end_arr = np.full(n, -1.0, dtype=np.float64)
        # Global start counter: equals the reference engine's running-list
        # insertion order, so every tie the reference breaks positionally
        # (shadow release schedule, victim selection) breaks identically.
        start_seq = np.zeros(n, dtype=np.int64)
        next_seq = 0
        if self.scheduler.exclusive_by_partition is not None:
            excl = self.scheduler.exclusive_by_partition[
                jobs["partition"].astype(np.intp)
            ]
        else:
            excl = np.zeros(n, dtype=bool)

        cached = CachedPriority(self.priority, jobs)
        vsched = VectorBackfillScheduler(
            cached,
            self.scheduler.backfill_depth,
            job_ids=jobs["job_id"].astype(np.int64),
            eligible=elig,
            req_cpus=req_c,
            req_mem=req_m,
            req_gpus=req_g,
            req_nodes=req_nodes,
            limit_s=limit_s,
            exclusive=excl,
        )

        # Requeued victims are held until this time before rescheduling.
        hold_until = np.zeros(n, dtype=np.float64)
        n_preemptions = 0
        policy = self.preemption

        q = EventQueue()
        for j in np.argsort(elig, kind="stable"):
            q.push(float(elig[j]), _EV_ELIGIBLE, int(j))

        def preempt(pool: int, ledger: PoolLedger) -> list[int]:
            """Evict lower-QOS running jobs for a blocked preemptor head.

            Same policy as the reference engine's ``_maybe_preempt``; the
            victim's stale END event is tombstoned in the queue instead
            of being attempt-tagged.
            """
            head = vsched.last_blocked
            run_pool = running[pool]
            if policy is None or head is None or len(run_pool) == 0:
                return []
            head_qos = int(qos[head])
            if head_qos < policy.min_preemptor_qos:
                return []
            view = run_pool.view()
            vic = view[qos[view] < head_qos]
            if len(vic) == 0:
                return []
            # Most recently started first (ties: earliest-started-counter
            # first, the reference's list order): minimises wasted work.
            vic = vic[np.lexsort((start_seq[vic], -start_arr[vic]))]
            need = (req_c_l[head], req_m_l[head], req_g_l[head])
            evicted: list[int] = []
            for j in vic:
                if ledger.fits(*need) or len(evicted) >= policy.max_victims_per_pass:
                    break
                j = int(j)
                run_pool.remove(j)
                vsched.schedule_remove(run_pool, j)
                ledger.release_job(j, req_c_l[j], req_m_l[j], req_g_l[j])
                # Charge the wasted partial run to fair-share; requeue
                # from scratch with the old END event tombstoned.
                self.fairshare.add_usage(
                    user_ids_l[j], req_c_l[j] * max(t - start_arr[j], 0.0), t
                )
                q.invalidate(_EV_END, j)
                start_arr[j] = -1.0
                end_arr[j] = -1.0
                pending[pool].add(j)
                evicted.append(j)
            # If victims ran out before the head fits, the evictions stand
            # and the head keeps waiting (Slurm behaves the same).
            return evicted

        # Python-scalar mirrors for per-event lookups in the loop (same
        # IEEE doubles; list indexing skips NumPy scalar boxing).
        pool_ids = pool_of_job.tolist()
        req_c_l = req_c.tolist()
        req_m_l = req_m.tolist()
        req_g_l = req_g.tolist()
        user_ids_l = user_ids.tolist()
        elig_l = elig.tolist()
        eff_run_s_l = eff_run_s.tolist()
        n_pending = 0
        n_running = 0
        # Latest requeue-hold expiry: when ``t`` has passed it, no job is
        # held and the per-pass hold filter is skipped entirely.
        hold_horizon = -np.inf
        n_passes = 0
        # Counter totals accumulate locally and flush once after the
        # loop — the counters are monotone, so only the final value is
        # observable from a finished run.
        n_started_total = 0
        n_backfilled_total = 0
        while True:
            batch = q.drain_next(1e-9)
            if batch is None:
                break
            t, events = batch
            dirty: set[int] = set()
            newly_eligible: list[int] = []
            # Drain all events at this timestamp before scheduling.
            for _, kind, j in events:
                pool = pool_ids[j]
                if kind == _EV_ELIGIBLE:
                    pending[pool].add(j)
                    n_pending += 1
                    newly_eligible.append(j)
                elif kind == _EV_END:
                    running[pool].remove(j)
                    vsched.schedule_remove(running[pool], j)
                    n_running -= 1
                    ledgers[pool].release_job(j, req_c_l[j], req_m_l[j], req_g_l[j])
                    run_s = end_arr[j] - start_arr[j]
                    self.fairshare.add_usage(user_ids_l[j], req_c_l[j] * run_s, t)
                # _EV_RELEASE: hold expired — just mark the pool dirty.
                dirty.add(pool)

            if newly_eligible:
                if len(newly_eligible) == 1:
                    j = newly_eligible[0]
                    prio_at_elig[j] = cached.compute_one(j, t)
                else:
                    ne = np.asarray(newly_eligible, dtype=np.intp)
                    prio_at_elig[ne] = cached.compute_for(ne, t)

            mx.queue.set(float(n_pending))
            mx.running.set(float(n_running))

            for pool in sorted(dirty):
                pend = pending[pool]
                run_pool = running[pool]
                ledger = ledgers[pool]
                while True:
                    # Jobs under a requeue hold sit out this pass.
                    if t < hold_horizon:
                        view = pend.view()
                        ready = view[hold_until[view] <= t]
                    else:
                        ready = pend.view()
                    mx.depth.observe(float(len(ready)))
                    started = vsched.run_pass(t, ready, run_pool, ledger)
                    n_passes += 1
                    n_started_total += len(started)
                    n_backfilled_total += vsched.last_backfilled
                    for j in started:
                        pend.remove(j)
                        # Event batching groups times within 1e-9 s; clamp
                        # so a job never starts before its own eligibility.
                        start = max(t, elig_l[j])
                        start_arr[j] = start
                        end = start + eff_run_s_l[j]
                        end_arr[j] = end
                        run_pool.add(j)
                        start_seq[j] = next_seq
                        vsched.schedule_insert(run_pool, j, start, next_seq)
                        next_seq += 1
                        q.push(end, _EV_END, j)
                    n_pending -= len(started)
                    n_running += len(started)
                    if policy is None:
                        break
                    evicted = preempt(pool, ledger)
                    if not evicted:
                        break
                    n_preemptions += len(evicted)
                    n_pending += len(evicted)
                    n_running -= len(evicted)
                    mx.preempted.inc(len(evicted))
                    release = t + policy.requeue_hold_s
                    for j in evicted:
                        hold_until[j] = release
                    if release > hold_horizon:
                        hold_horizon = release
                    q.push(float(release), _EV_RELEASE, int(evicted[0]))

        mx.passes.inc(n_passes)
        mx.started.inc(n_started_total)
        mx.backfilled.inc(n_backfilled_total)
        mx.tombstoned.inc(q.tombstoned)
        jobs["start_time"] = start_arr
        jobs["end_time"] = end_arr
        return self._finish(jobs, prio_at_elig, n_passes, n_preemptions)

    # ------------------------------------------------------------------ #
    # Reference engine: the original straight-line implementation, kept
    # as the determinism oracle for the fast engine.
    # ------------------------------------------------------------------ #
    def _run_reference(self, jobs: np.ndarray, mx: _Metrics) -> SimulationResult:
        n = len(jobs)
        part_pool = self.cluster.partition_pool_ids()
        pool_of_job = part_pool[jobs["partition"].astype(np.intp)]
        ledgers = self._make_ledgers()
        pending: list[list[int]] = [[] for _ in self.cluster.pools]
        running: list[list[int]] = [[] for _ in self.cluster.pools]
        prio_at_elig = np.zeros(n, dtype=np.float64)

        # END events carry the job's attempt number so a preempted job's
        # stale completion is ignored (the requeue bumps the attempt).
        attempt = np.zeros(n, dtype=np.int32)
        # Requeued victims are held until this time before rescheduling.
        hold_until = np.zeros(n, dtype=np.float64)
        n_preemptions = 0

        heap: list[tuple[float, int, int, int, int]] = []
        seq = 0
        for j in np.argsort(jobs["eligible_time"], kind="stable"):
            heap.append(
                (float(jobs["eligible_time"][j]), seq, _EV_ELIGIBLE, int(j), 0)
            )
            seq += 1
        heapq.heapify(heap)

        n_passes = 0
        t = 0.0
        while heap:
            t = heap[0][0]
            dirty: set[int] = set()
            newly_eligible: list[int] = []
            # Drain all events at this timestamp before scheduling.
            while heap and heap[0][0] <= t + 1e-9:
                _, _, kind, j, ev_attempt = heapq.heappop(heap)
                pool = int(pool_of_job[j])
                if kind == _EV_ELIGIBLE:
                    pending[pool].append(j)
                    newly_eligible.append(j)
                elif kind == _EV_RELEASE:
                    pass  # hold expired: just mark the pool dirty below
                else:  # _EV_END
                    if ev_attempt != attempt[j]:
                        continue  # stale: the job was preempted mid-run
                    running[pool].remove(j)
                    ledgers[pool].release_job(
                        int(j),
                        float(jobs["req_cpus"][j]),
                        float(jobs["req_mem_gb"][j]),
                        float(jobs["req_gpus"][j]),
                    )
                    run_s = jobs["end_time"][j] - jobs["start_time"][j]
                    self.fairshare.add_usage(
                        int(jobs["user_id"][j]),
                        float(jobs["req_cpus"][j]) * float(run_s),
                        t,
                    )
                dirty.add(pool)

            if newly_eligible:
                ne = np.asarray(newly_eligible, dtype=np.intp)
                prio_at_elig[ne] = self.priority.compute(
                    t,
                    eligible_time=jobs["eligible_time"][ne],
                    user_ids=jobs["user_id"][ne],
                    partitions=jobs["partition"][ne],
                    req_cpus=jobs["req_cpus"][ne].astype(np.float64),
                    qos=jobs["qos"][ne],
                )

            mx.queue.set(float(sum(len(p) for p in pending)))
            mx.running.set(float(sum(len(r) for r in running)))

            # Sorted: set iteration order is unspecified, and multi-pool
            # batches must replay identically across runs (fair-share
            # charges are order-sensitive at equal timestamps).
            for pool in sorted(dirty):
                # Jobs under a requeue hold sit out this pool's passes;
                # started jobs leave ``ready`` inside run_pass and evicted
                # jobs are held past ``t``, so one filter per pool
                # suffices — no rebuild inside the requeue-hold loop.
                if self.preemption is not None:
                    ready = [j for j in pending[pool] if hold_until[j] <= t]
                else:
                    ready = pending[pool]
                while True:
                    mx.depth.observe(float(len(ready)))
                    started = self.scheduler.run_pass(
                        t, jobs, ready, running[pool], ledgers[pool]
                    )
                    n_passes += 1
                    mx.passes.inc()
                    mx.started.inc(len(started))
                    mx.backfilled.inc(self.scheduler.last_backfilled)
                    if ready is not pending[pool]:
                        for j in started:
                            pending[pool].remove(j)
                    for j in started:
                        # Event batching groups times within 1e-9 s; clamp
                        # so a job never starts before its own eligibility.
                        start = max(t, float(jobs["eligible_time"][j]))
                        jobs["start_time"][j] = start
                        end = start + self._effective_runtime_s(jobs, j)
                        jobs["end_time"][j] = end
                        running[pool].append(j)
                        heapq.heappush(
                            heap, (float(end), seq, _EV_END, j, int(attempt[j]))
                        )
                        seq += 1
                    evicted = self._maybe_preempt(
                        t, jobs, pending[pool], running[pool], ledgers[pool], attempt
                    )
                    if not evicted:
                        break
                    n_preemptions += len(evicted)
                    mx.preempted.inc(len(evicted))
                    release = t + self.preemption.requeue_hold_s
                    for j in evicted:
                        hold_until[j] = release
                    heapq.heappush(
                        heap, (float(release), seq, _EV_RELEASE, int(evicted[0]), 0)
                    )
                    seq += 1

        return self._finish(jobs, prio_at_elig, n_passes, n_preemptions)

    # ------------------------------------------------------------------ #
    def _finish(
        self,
        jobs: np.ndarray,
        prio_at_elig: np.ndarray,
        n_passes: int,
        n_preemptions: int,
    ) -> SimulationResult:
        n = len(jobs)
        unstarted = np.flatnonzero(jobs["start_time"] < 0)
        if len(unstarted):
            raise RuntimeError(
                f"{len(unstarted)} jobs never started — first: "
                f"job_id={int(jobs['job_id'][unstarted[0]])}"
            )
        trace = self._to_jobset(jobs, prio_at_elig)
        order = np.argsort(jobs["eligible_time"], kind="stable")
        log.info("simulated %d jobs, %d scheduler passes", n, n_passes)
        return SimulationResult(
            jobs=trace[order],
            priorities_at_eligibility=prio_at_elig[order],
            n_scheduler_passes=n_passes,
            makespan_s=float(jobs["end_time"].max() if n else 0.0),
            n_preemptions=n_preemptions,
        )

    # ------------------------------------------------------------------ #
    def _maybe_preempt(
        self,
        t: float,
        jobs: np.ndarray,
        pending: list[int],
        running: list[int],
        ledger,
        attempt: np.ndarray,
    ) -> list[int]:
        """Evict lower-QOS running jobs for a blocked preemptor head.

        Returns the requeued victims (empty = nothing to do).  The caller
        re-runs the scheduling pass afterwards so the head starts into the
        freed resources, and holds the victims briefly so they cannot
        backfill straight back into the gap.
        """
        policy = self.preemption
        head = self.scheduler.last_blocked
        if policy is None or head is None or not running:
            return []
        head_qos = int(jobs["qos"][head])
        if head_qos < policy.min_preemptor_qos:
            return []
        victims = [j for j in running if int(jobs["qos"][j]) < head_qos]
        if not victims:
            return []
        # Most recently started first: minimises wasted work.  Stable
        # argsort over the gathered start times keeps the running-list
        # tiebreak of the equivalent per-victim key sort.
        starts = jobs["start_time"][np.asarray(victims, dtype=np.intp)]
        victims = [victims[k] for k in np.argsort(-starts, kind="stable")]
        need = (
            float(jobs["req_cpus"][head]),
            float(jobs["req_mem_gb"][head]),
            float(jobs["req_gpus"][head]),
        )
        evicted: list[int] = []
        for j in victims:
            if ledger.fits(*need) or len(evicted) >= policy.max_victims_per_pass:
                break
            running.remove(j)
            ledger.release_job(
                int(j),
                float(jobs["req_cpus"][j]),
                float(jobs["req_mem_gb"][j]),
                float(jobs["req_gpus"][j]),
            )
            # Charge the wasted partial run to fair-share; requeue from
            # scratch with a bumped attempt so the old END event is stale.
            self.fairshare.add_usage(
                int(jobs["user_id"][j]),
                float(jobs["req_cpus"][j]) * max(t - float(jobs["start_time"][j]), 0.0),
                t,
            )
            attempt[j] += 1
            jobs["start_time"][j] = -1.0
            jobs["end_time"][j] = -1.0
            pending.append(j)
            evicted.append(int(j))
        # If victims ran out before the head fits, the evictions stand and
        # the head keeps waiting (Slurm behaves the same under REQUEUE).
        return evicted

    # ------------------------------------------------------------------ #
    def _effective_runtime_s(self, jobs: np.ndarray, j: int) -> float:
        """Actual runtime, clipped to the timelimit (TIMEOUT kills)."""
        runtime = float(jobs["runtime_min"][j])
        limit = float(jobs["timelimit_min"][j])
        return min(runtime, limit) * 60.0

    def _validate(self, jobs: np.ndarray) -> None:
        """Reject unsatisfiable requests before the event loop starts."""
        part_pool = self.cluster.partition_pool_ids()
        pools = self.cluster.pools
        cap_cpus = np.array([pools[i].total_cpus for i in part_pool])
        cap_mem = np.array([pools[i].total_mem_gb for i in part_pool])
        cap_gpus = np.array([pools[i].total_gpus for i in part_pool])
        p = jobs["partition"].astype(np.intp)
        bad = (
            (jobs["req_cpus"] > cap_cpus[p])
            | (jobs["req_mem_gb"] > cap_mem[p])
            | (jobs["req_gpus"] > cap_gpus[p])
            | (jobs["req_cpus"] <= 0)
            | (jobs["req_nodes"] <= 0)
            | (jobs["req_mem_gb"] <= 0)
            | (jobs["timelimit_min"] <= 0)
            | (jobs["runtime_min"] < 0)
            | (jobs["eligible_time"] < jobs["submit_time"])
        )
        if self.node_level:
            # Per-node share must fit one node even on an empty pool.
            cpn = np.array([pools[i].cpus_per_node for i in part_pool])
            mpn = np.array([pools[i].mem_gb_per_node for i in part_pool])
            gpn = np.array([pools[i].gpus_per_node for i in part_pool])
            nn = np.array([pools[i].n_nodes for i in part_pool])
            k = np.maximum(jobs["req_nodes"], 1).astype(np.float64)
            bad |= np.ceil(jobs["req_cpus"] / k) > cpn[p]
            bad |= (jobs["req_mem_gb"] / k) > mpn[p] + 1e-9
            bad |= np.ceil(jobs["req_gpus"] / k) > gpn[p]
            bad |= jobs["req_nodes"] > nn[p]
        if np.any(bad):
            first = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"unsatisfiable or malformed submission at row {first} "
                f"(job_id={int(jobs['job_id'][first])})"
            )

    def _to_jobset(self, jobs: np.ndarray, prio: np.ndarray) -> JobSet:
        """Convert the simulation array to an accounting JobSet."""
        n = len(jobs)
        rec = np.zeros(n, dtype=JOB_DTYPE)
        for name in (
            "job_id",
            "user_id",
            "partition",
            "qos",
            "submit_time",
            "eligible_time",
            "start_time",
            "end_time",
            "req_cpus",
            "req_mem_gb",
            "req_nodes",
            "timelimit_min",
        ):
            rec[name] = jobs[name]
        rec["priority"] = prio
        ran_full = jobs["runtime_min"] >= jobs["timelimit_min"]
        state = np.full(n, int(JobState.COMPLETED), dtype=np.int8)
        state[ran_full.nonzero()] = int(JobState.TIMEOUT)
        state[(jobs["fail"] == 1) & ~ran_full] = int(JobState.FAILED)
        rec["state"] = state
        return JobSet(rec, self.cluster.partition_names)
