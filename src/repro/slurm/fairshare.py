"""Fair-share usage tracking with exponential decay.

Anvil runs Slurm's multifactor plugin with a fair-share policy — the paper
singles this out as what forces user-history features into the model.  This
tracker reproduces Slurm's classic behaviour: each user's accumulated usage
(CPU-seconds) decays with a configurable half-life, and the fair-share
factor is ``2^(-(U/S))`` where ``U`` is the user's share of decayed cluster
usage and ``S`` their share of allocation, so heavy recent users sink in
priority.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FairShareTracker"]


class FairShareTracker:
    """Per-user decayed usage and fair-share factors.

    Parameters
    ----------
    n_users:
        Size of the (dense) user id space.
    half_life_s:
        Usage half-life in seconds (Slurm ``PriorityDecayHalfLife``;
        default two weeks).
    shares:
        Per-user allocation shares; default equal shares.
    """

    def __init__(
        self,
        n_users: int,
        half_life_s: float = 14 * 24 * 3600.0,
        shares: np.ndarray | None = None,
    ) -> None:
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        if half_life_s <= 0:
            raise ValueError(f"half_life_s must be positive, got {half_life_s}")
        self.n_users = n_users
        self.half_life_s = half_life_s
        if shares is None:
            shares = np.ones(n_users, dtype=np.float64)
        shares = np.asarray(shares, dtype=np.float64)
        if shares.shape != (n_users,) or np.any(shares <= 0):
            raise ValueError("shares must be positive and one per user")
        self._norm_shares = shares / shares.sum()
        self._usage = np.zeros(n_users, dtype=np.float64)
        self._last_decay = 0.0
        #: Bumped on every usage charge.  Decay alone does not bump it:
        #: the per-user factor *vector* still has to be recomputed at a
        #: new time (decay rescales usage), but callers caching factors
        #: keyed ``(t, version)`` are guaranteed the cache is exact.
        self.version = 0

    # ------------------------------------------------------------------ #
    def _decay_to(self, t: float) -> None:
        """Apply exponential decay of all usage up to time ``t``."""
        dt = t - self._last_decay
        if dt < 0:
            raise ValueError(
                f"time moved backwards: {t} < {self._last_decay}"
            )
        if dt > 0:
            self._usage *= 0.5 ** (dt / self.half_life_s)
            self._last_decay = t

    def add_usage(self, user_id: int, cpu_seconds: float, t: float) -> None:
        """Charge ``cpu_seconds`` of usage to ``user_id`` at time ``t``."""
        if cpu_seconds < 0:
            raise ValueError("cpu_seconds must be non-negative")
        self._decay_to(t)
        self._usage[user_id] += cpu_seconds
        self.version += 1

    def usage(self, t: float | None = None) -> np.ndarray:
        """Decayed usage vector (optionally decayed to time ``t`` first)."""
        if t is not None:
            self._decay_to(t)
        return self._usage.copy()

    def factors(self, user_ids: np.ndarray, t: float) -> np.ndarray:
        """Fair-share factor in (0, 1] for each given user at time ``t``.

        Uses the classic formula ``F = 2^(-U_norm / S_norm)`` with usage
        normalised by total decayed usage.  With zero cluster usage every
        user gets factor 1.
        """
        self._decay_to(t)
        total = self._usage.sum()
        if total <= 0:
            return np.ones(len(user_ids), dtype=np.float64)
        u_norm = self._usage[user_ids] / total
        s_norm = self._norm_shares[user_ids]
        return np.power(2.0, -(u_norm / s_norm))

    def factors_all(self, t: float) -> np.ndarray:
        """Fair-share factors for *every* user at time ``t``.

        Gathering per job from this vector is bitwise-identical to
        :meth:`factors` on the same user ids (division and ``2**x`` are
        elementwise, so they commute with the gather) — the fast
        simulation engine computes the vector once per ``(t, version)``
        instead of re-evaluating ``2**x`` per pending job per pass.
        """
        self._decay_to(t)
        total = self._usage.sum()
        if total <= 0:
            return np.ones(self.n_users, dtype=np.float64)
        u_norm = self._usage / total
        return np.power(2.0, -(u_norm / self._norm_shares))
