"""Per-node placement ledger.

The default simulator tracks free resources per *pool* (aggregate), which
is fast and adequate for queue-time dynamics.  Real schedulers place jobs
on nodes, and fragmentation matters: a pool with 64 free CPUs spread one
per node cannot host a 64-CPU single-node job.  :class:`NodeLedger`
provides that granularity — exclusive jobs need whole free nodes,
non-exclusive jobs need a per-node share of CPUs/memory/GPUs on each of
``req_nodes`` nodes — and plugs into the simulator behind
``Simulator(..., node_level=True)``.

Placement is best-fit decreasing-ish: candidate nodes are chosen
most-loaded-first so small jobs pack onto busy nodes and whole nodes stay
free for exclusive work (the standard anti-fragmentation heuristic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.slurm.resources import NodePool

__all__ = ["NodeLedger", "Allocation"]


@dataclass(frozen=True)
class Allocation:
    """Resources taken on specific nodes (parallel arrays)."""

    node_ids: np.ndarray  # intp
    cpus: np.ndarray  # float64 per node
    mem: np.ndarray
    gpus: np.ndarray


def _split(total: float, k: int, integral: bool) -> np.ndarray:
    """Split ``total`` across ``k`` slots, near-equal, exactly summing."""
    if integral:
        base = int(total) // k
        rem = int(total) - base * k
        out = np.full(k, float(base))
        out[:rem] += 1.0
        return out
    return np.full(k, total / k)


class NodeLedger:
    """Free CPUs/memory/GPUs per node of one pool."""

    def __init__(self, pool: NodePool) -> None:
        n = pool.n_nodes
        self.cpus_cap = float(pool.cpus_per_node)
        self.mem_cap = float(pool.mem_gb_per_node)
        self.gpus_cap = float(pool.gpus_per_node)
        self.free_cpus = np.full(n, self.cpus_cap)
        self.free_mem = np.full(n, self.mem_cap)
        self.free_gpus = np.full(n, self.gpus_cap)

    @property
    def n_nodes(self) -> int:
        return len(self.free_cpus)

    def _node_fully_free(self) -> np.ndarray:
        return (
            (self.free_cpus >= self.cpus_cap - 1e-9)
            & (self.free_mem >= self.mem_cap - 1e-9)
            & (self.free_gpus >= self.gpus_cap - 1e-9)
        )

    def _candidates(
        self, cpus_per: np.ndarray, mem_per: np.ndarray, gpus_per: np.ndarray
    ) -> np.ndarray:
        """Nodes able to host the *largest* per-node share, most-loaded
        first (equal shares make the max share sufficient)."""
        need_c, need_m, need_g = cpus_per.max(), mem_per.max(), gpus_per.max()
        ok = (
            (self.free_cpus >= need_c - 1e-9)
            & (self.free_mem >= need_m - 1e-9)
            & (self.free_gpus >= need_g - 1e-9)
        )
        idx = np.flatnonzero(ok)
        # Most-loaded (least free CPUs) first.
        return idx[np.argsort(self.free_cpus[idx], kind="stable")]

    def can_place(
        self,
        req_cpus: float,
        req_mem: float,
        req_gpus: float,
        req_nodes: int,
        exclusive: bool,
    ) -> bool:
        """Is there a feasible placement right now?"""
        return self._plan(req_cpus, req_mem, req_gpus, req_nodes, exclusive) is not None

    def _plan(
        self, req_cpus: float, req_mem: float, req_gpus: float, req_nodes: int, exclusive: bool
    ) -> Allocation | None:
        k = max(int(req_nodes), 1)
        if k > self.n_nodes:
            return None
        if exclusive:
            free = np.flatnonzero(self._node_fully_free())
            if len(free) < k:
                return None
            chosen = free[:k]
            return Allocation(
                node_ids=chosen,
                cpus=np.full(k, self.cpus_cap),
                mem=np.full(k, self.mem_cap),
                gpus=np.full(k, self.gpus_cap),
            )
        cpus_per = _split(req_cpus, k, integral=True)
        mem_per = _split(req_mem, k, integral=False)
        gpus_per = _split(req_gpus, k, integral=True)
        cands = self._candidates(cpus_per, mem_per, gpus_per)
        if len(cands) < k:
            return None
        chosen = cands[:k]
        return Allocation(chosen, cpus_per, mem_per, gpus_per)

    def place(
        self,
        req_cpus: float,
        req_mem: float,
        req_gpus: float,
        req_nodes: int,
        exclusive: bool,
    ) -> Allocation:
        """Commit a placement; raises if infeasible."""
        alloc = self._plan(req_cpus, req_mem, req_gpus, req_nodes, exclusive)
        if alloc is None:
            raise RuntimeError("no feasible node placement (check can_place first)")
        self.free_cpus[alloc.node_ids] -= alloc.cpus
        self.free_mem[alloc.node_ids] -= alloc.mem
        self.free_gpus[alloc.node_ids] -= alloc.gpus
        if (
            self.free_cpus.min() < -1e-6
            or self.free_mem.min() < -1e-6
            or self.free_gpus.min() < -1e-6
        ):
            raise RuntimeError("node over-allocated — placement invariant broken")
        return alloc

    def release(self, alloc: Allocation) -> None:
        """Return an allocation's resources."""
        self.free_cpus[alloc.node_ids] += alloc.cpus
        self.free_mem[alloc.node_ids] += alloc.mem
        self.free_gpus[alloc.node_ids] += alloc.gpus
        if (
            self.free_cpus.max() > self.cpus_cap + 1e-6
            or self.free_mem.max() > self.mem_cap + 1e-6
            or self.free_gpus.max() > self.gpus_cap + 1e-6
        ):
            raise RuntimeError("double release — node ledger corrupted")
