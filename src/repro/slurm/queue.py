"""Throughput-oriented simulator data structures.

The fast simulation engine replaces the two per-event hot spots of the
reference event loop:

- :class:`EventQueue` — a binary heap of ``[time, kind, seq, job]``
  entries with an index keyed ``(kind, job)`` so a scheduled event can be
  *invalidated in place* (lazy deletion).  A preempted job's END event is
  tombstoned instead of being re-checked against an attempt counter at
  pop time; tombstones are skipped (and discarded) as they surface.
- :class:`JobPool` — a pending/running membership set backed by NumPy
  index arrays with O(1) swap-remove, replacing the O(n)
  ``list.remove`` calls of the reference engine.  Iteration order is
  *not* insertion order; callers that need deterministic ordering sort
  by an explicit key (the simulator uses a global start counter).

Both structures are dependency-free and fully deterministic: heap ties
break on the monotone push sequence, never on job attributes.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["EventQueue", "JobPool"]

#: Tombstone marker in an entry's job slot.  Real jobs are indices >= 0.
_REMOVED = -1


class EventQueue:
    """Indexed min-heap of simulation events with lazy deletion.

    Entries order by ``(time, kind, seq)``: simultaneous events drain
    kind-major (eligibility before completion before release) and, within
    a kind, in push order — ``seq`` is unique, so comparisons never reach
    the job id.  ``(kind, job)`` keys the index; re-adding a key
    tombstones the superseded entry, as does :meth:`invalidate`.
    """

    __slots__ = ("_heap", "_index", "_seq", "tombstoned")

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._index: dict[tuple[int, int], list] = {}
        self._seq = 0
        #: Events invalidated (or superseded by a re-add) so far.
        self.tombstoned = 0

    def __len__(self) -> int:
        return len(self._index)

    def push(self, time: float, kind: int, job: int) -> None:
        """Schedule ``job``'s ``kind`` event, superseding any live one."""
        key = (kind, job)
        entry = self._index.get(key)
        if entry is not None:
            entry[3] = _REMOVED
            self.tombstoned += 1
        entry = [time, kind, self._seq, job]
        self._seq += 1
        self._index[key] = entry
        heapq.heappush(self._heap, entry)

    def invalidate(self, kind: int, job: int) -> bool:
        """Tombstone a live event; returns whether one existed."""
        entry = self._index.pop((kind, job), None)
        if entry is None:
            return False
        entry[3] = _REMOVED
        self.tombstoned += 1
        return True

    def _drop_removed(self) -> None:
        heap = self._heap
        while heap and heap[0][3] == _REMOVED:
            heapq.heappop(heap)

    def empty(self) -> bool:
        self._drop_removed()
        return not self._heap

    def peek_time(self) -> float:
        """Time of the next live event (raises on an empty queue)."""
        self._drop_removed()
        if not self._heap:
            raise IndexError("peek on an empty event queue")
        return self._heap[0][0]

    def pop(self) -> tuple[float, int, int]:
        """Remove and return the next live ``(time, kind, job)``."""
        self._drop_removed()
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        time, kind, _, job = heapq.heappop(self._heap)
        del self._index[(kind, job)]
        return time, kind, job

    def drain(self, cutoff: float) -> list[tuple[float, int, int]]:
        """Pop every live event with ``time <= cutoff``, in order.

        One call per simulation batch replaces a peek/pop call pair per
        event — the heap bookkeeping runs in locals.
        """
        heap = self._heap
        index = self._index
        heappop = heapq.heappop
        out: list[tuple[float, int, int]] = []
        while heap:
            entry = heap[0]
            job = entry[3]
            if job == _REMOVED:
                heappop(heap)
                continue
            if entry[0] > cutoff:
                break
            heappop(heap)
            kind = entry[1]
            del index[(kind, job)]
            out.append((entry[0], kind, job))
        return out

    def drain_next(
        self, window: float
    ) -> tuple[float, list[tuple[float, int, int]]] | None:
        """Pop the next event batch: ``(t, events within t + window)``.

        Fuses :meth:`peek_time` and :meth:`drain` into one heap
        traversal; returns ``None`` on an empty queue.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap and heap[0][3] == _REMOVED:
            heappop(heap)
        if not heap:
            return None
        t = heap[0][0]
        cutoff = t + window
        index = self._index
        out: list[tuple[float, int, int]] = []
        while heap:
            entry = heap[0]
            job = entry[3]
            if job == _REMOVED:
                heappop(heap)
                continue
            if entry[0] > cutoff:
                break
            heappop(heap)
            kind = entry[1]
            del index[(kind, job)]
            out.append((entry[0], kind, job))
        return t, out


class JobPool:
    """Set of job indices with O(1) add/remove and array iteration.

    ``view()`` exposes the members as a NumPy slice for vectorised
    gathers.  Removal swaps the last member into the removed slot, so
    order is unspecified — sort by an explicit key where order matters.
    """

    __slots__ = ("_members", "_pos", "_size", "version")

    def __init__(self, n_jobs: int) -> None:
        self._members = np.empty(max(n_jobs, 1), dtype=np.intp)
        self._pos = np.full(max(n_jobs, 1), -1, dtype=np.intp)
        self._size = 0
        #: Bumped on every membership change; callers caching derived
        #: views (e.g. the backfill shadow schedule) key on it.
        self.version = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, job: int) -> bool:
        return self._pos[job] >= 0

    def add(self, job: int) -> None:
        if self._pos[job] >= 0:
            raise ValueError(f"job {job} already in pool")
        self._members[self._size] = job
        self._pos[job] = self._size
        self._size += 1
        self.version += 1

    def remove(self, job: int) -> None:
        p = self._pos[job]
        if p < 0:
            raise KeyError(f"job {job} not in pool")
        last = self._members[self._size - 1]
        self._members[p] = last
        self._pos[last] = p
        self._pos[job] = -1
        self._size -= 1
        self.version += 1

    def view(self) -> np.ndarray:
        """Current members (unordered); valid until the next mutation."""
        return self._members[: self._size]
