"""Priority scheduling with EASY backfill.

One scheduling pass orders a pool's pending jobs by multifactor priority
(ties broken by eligibility time then job id, Slurm's documented order),
starts jobs until the head of the queue no longer fits, computes that head
job's *shadow time* (when enough running jobs will have released resources
for it) and then lets lower-priority jobs backfill — either because they
will finish before the shadow time, or because they fit inside the spare
("extra") resources the reservation does not need.  This is the classic
EASY algorithm at aggregate-resource granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.slurm.nodes import Allocation, NodeLedger
from repro.slurm.priority import MultifactorPriority

__all__ = ["PoolLedger", "BackfillScheduler"]


@dataclass
class PoolLedger:
    """Free aggregate resources of one node pool.

    With a :class:`~repro.slurm.nodes.NodeLedger` attached, fit checks and
    allocations are additionally node-exact: a job starts only when a
    concrete per-node placement exists (fragmentation-aware mode).  Shadow
    and "extra" reasoning in the backfill pass stays aggregate — the
    classic EASY approximation.
    """

    free_cpus: float
    free_mem: float
    free_gpus: float
    nodes: NodeLedger | None = None
    _allocations: dict[int, Allocation] = field(default_factory=dict, repr=False)

    def fits(self, cpus: float, mem: float, gpus: float) -> bool:
        return (
            cpus <= self.free_cpus + 1e-9
            and mem <= self.free_mem + 1e-9
            and gpus <= self.free_gpus + 1e-9
        )

    def fits_job(
        self,
        cpus: float,
        mem: float,
        gpus: float,
        req_nodes: int,
        exclusive: bool,
    ) -> bool:
        """Aggregate fit plus (in node-level mode) a feasible placement."""
        if not self.fits(cpus, mem, gpus):
            return False
        if self.nodes is not None:
            return self.nodes.can_place(cpus, mem, gpus, req_nodes, exclusive)
        return True

    def allocate(self, cpus: float, mem: float, gpus: float) -> None:
        self.free_cpus -= cpus
        self.free_mem -= mem
        self.free_gpus -= gpus
        if self.free_cpus < -1e-6 or self.free_mem < -1e-6 or self.free_gpus < -1e-6:
            raise RuntimeError("pool over-allocated — scheduler invariant broken")

    def allocate_job(
        self,
        job: int,
        cpus: float,
        mem: float,
        gpus: float,
        req_nodes: int,
        exclusive: bool,
    ) -> None:
        """Allocate for a specific job, recording its node placement."""
        self.allocate(cpus, mem, gpus)
        if self.nodes is not None:
            self._allocations[job] = self.nodes.place(
                cpus, mem, gpus, req_nodes, exclusive
            )

    def release(self, cpus: float, mem: float, gpus: float) -> None:
        self.free_cpus += cpus
        self.free_mem += mem
        self.free_gpus += gpus

    def release_job(self, job: int, cpus: float, mem: float, gpus: float) -> None:
        """Release a job's aggregate share and its node placement."""
        self.release(cpus, mem, gpus)
        if self.nodes is not None:
            self.nodes.release(self._allocations.pop(job))


class BackfillScheduler:
    """EASY backfill over the pending queue of one pool.

    Parameters
    ----------
    priority_engine:
        Multifactor priority evaluator shared with the simulator.
    backfill_depth:
        How many jobs past the blocked head are considered for backfill per
        pass (Slurm's ``bf_max_job_test`` analogue; bounds pass cost).
    """

    def __init__(
        self,
        priority_engine: MultifactorPriority,
        backfill_depth: int = 100,
        exclusive_by_partition: np.ndarray | None = None,
    ) -> None:
        self.priority = priority_engine
        self.backfill_depth = backfill_depth
        #: Per-partition whole-node flags (used in node-level mode).
        self.exclusive_by_partition = exclusive_by_partition
        #: Index of the job that blocked at the head of the queue on the
        #: most recent pass (None when everything started).  The simulator
        #: uses this for preemption decisions.
        self.last_blocked: int | None = None
        #: How many of the most recent pass's started jobs were backfilled
        #: (started from below a blocked head) rather than started in
        #: priority order.  Telemetry reads this after each pass.
        self.last_backfilled: int = 0

    def _is_exclusive(self, jobs: np.ndarray, j: int) -> bool:
        if self.exclusive_by_partition is None:
            return False
        return bool(self.exclusive_by_partition[int(jobs["partition"][j])])

    def run_pass(
        self,
        t: float,
        jobs: np.ndarray,
        pending: list[int],
        running: list[int],
        ledger: PoolLedger,
    ) -> list[int]:
        """Start every job that can start at time ``t``; return their indices.

        ``jobs`` is the submission record array; ``pending`` / ``running``
        are index lists for this pool.  Started jobs are removed from
        ``pending`` and resources allocated in ``ledger``; the caller sets
        start times, pushes end events and updates ``running``.
        """
        self.last_blocked = None
        self.last_backfilled = 0
        if not pending:
            return []
        idx = np.asarray(pending, dtype=np.intp)
        prio = self.priority.compute(
            t,
            eligible_time=jobs["eligible_time"][idx],
            user_ids=jobs["user_id"][idx],
            partitions=jobs["partition"][idx],
            req_cpus=jobs["req_cpus"][idx].astype(np.float64),
            qos=jobs["qos"][idx],
        )
        # Slurm order: priority desc, then eligibility asc, then job id asc.
        order = np.lexsort((jobs["job_id"][idx], jobs["eligible_time"][idx], -prio))
        ordered = idx[order]

        started: list[int] = []
        blocked: int | None = None
        shadow_time = np.inf
        extra = np.array([np.inf, np.inf, np.inf])
        scanned_past_block = 0

        for j in ordered:
            cpus = float(jobs["req_cpus"][j])
            mem = float(jobs["req_mem_gb"][j])
            gpus = float(jobs["req_gpus"][j])
            req_nodes = int(jobs["req_nodes"][j])
            exclusive = self._is_exclusive(jobs, j)
            fits = ledger.fits_job(cpus, mem, gpus, req_nodes, exclusive)

            if blocked is None:
                if fits:
                    ledger.allocate_job(int(j), cpus, mem, gpus, req_nodes, exclusive)
                    started.append(int(j))
                    continue
                blocked = int(j)
                self.last_blocked = blocked
                shadow_time, extra = self._shadow(
                    t, jobs, running, ledger, cpus, mem, gpus
                )
                continue

            # Backfill region: bounded scan below the blocked head.
            scanned_past_block += 1
            if scanned_past_block > self.backfill_depth:
                break
            if not fits:
                continue
            expected_end = t + float(jobs["timelimit_min"][j]) * 60.0
            req = np.array([cpus, mem, gpus])
            if expected_end <= shadow_time + 1e-9:
                # Finishes before the reservation needs its resources.
                ledger.allocate_job(int(j), cpus, mem, gpus, req_nodes, exclusive)
                started.append(int(j))
                self.last_backfilled += 1
            elif np.all(req <= extra + 1e-9):
                # Fits in resources the reservation will not need.
                ledger.allocate_job(int(j), cpus, mem, gpus, req_nodes, exclusive)
                extra = extra - req
                started.append(int(j))
                self.last_backfilled += 1

        for j in started:
            pending.remove(j)
        return started

    def _shadow(
        self,
        t: float,
        jobs: np.ndarray,
        running: list[int],
        ledger: PoolLedger,
        need_cpus: float,
        need_mem: float,
        need_gpus: float,
    ) -> tuple[float, np.ndarray]:
        """Reservation for the blocked head job.

        Walk running jobs in expected-completion order (start + timelimit —
        the scheduler cannot see actual runtimes), accumulating released
        resources until the head job fits.  Returns ``(shadow_time,
        extra)`` where ``extra`` is what remains free at the shadow time
        beyond the head job's needs.  If the head can never fit (should not
        happen for validated requests), the shadow is ``inf`` and everything
        currently free is backfillable.
        """
        free = np.array([ledger.free_cpus, ledger.free_mem, ledger.free_gpus])
        need = np.array([need_cpus, need_mem, need_gpus])
        if not running:
            return np.inf, free.copy()
        ridx = np.asarray(running, dtype=np.intp)
        expected_end = jobs["start_time"][ridx] + jobs["timelimit_min"][ridx] * 60.0
        expected_end = np.maximum(expected_end, t)  # overrunning jobs end "now"
        order = np.argsort(expected_end, kind="stable")
        avail = free.copy()
        for k in order:
            j = ridx[k]
            avail += np.array(
                [
                    float(jobs["req_cpus"][j]),
                    float(jobs["req_mem_gb"][j]),
                    float(jobs["req_gpus"][j]),
                ]
            )
            if np.all(need <= avail + 1e-9):
                return float(expected_end[k]), avail - need
        return np.inf, free.copy()
