"""Priority scheduling with EASY backfill.

One scheduling pass orders a pool's pending jobs by multifactor priority
(ties broken by eligibility time then job id, Slurm's documented order),
starts jobs until the head of the queue no longer fits, computes that head
job's *shadow time* (when enough running jobs will have released resources
for it) and then lets lower-priority jobs backfill — either because they
will finish before the shadow time, or because they fit inside the spare
("extra") resources the reservation does not need.  This is the classic
EASY algorithm at aggregate-resource granularity.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field

import numpy as np

from repro.slurm.nodes import Allocation, NodeLedger
from repro.slurm.priority import CachedPriority, MultifactorPriority

__all__ = ["PoolLedger", "BackfillScheduler", "VectorBackfillScheduler"]

#: Ready-queue sizes at or below this take the scalar pass path — the
#: typical pass sees one or two candidates, where Python scalars beat
#: NumPy's per-call dispatch overhead by an order of magnitude; the
#: crossover against the vector pass's fixed dispatch cost sits around
#: a dozen candidates.
_SCALAR_PASS_MAX = 16



@dataclass
class PoolLedger:
    """Free aggregate resources of one node pool.

    With a :class:`~repro.slurm.nodes.NodeLedger` attached, fit checks and
    allocations are additionally node-exact: a job starts only when a
    concrete per-node placement exists (fragmentation-aware mode).  Shadow
    and "extra" reasoning in the backfill pass stays aggregate — the
    classic EASY approximation.
    """

    free_cpus: float
    free_mem: float
    free_gpus: float
    nodes: NodeLedger | None = None
    _allocations: dict[int, Allocation] = field(default_factory=dict, repr=False)

    def fits(self, cpus: float, mem: float, gpus: float) -> bool:
        return (
            cpus <= self.free_cpus + 1e-9
            and mem <= self.free_mem + 1e-9
            and gpus <= self.free_gpus + 1e-9
        )

    def fits_job(
        self,
        cpus: float,
        mem: float,
        gpus: float,
        req_nodes: int,
        exclusive: bool,
    ) -> bool:
        """Aggregate fit plus (in node-level mode) a feasible placement."""
        if not self.fits(cpus, mem, gpus):
            return False
        if self.nodes is not None:
            return self.nodes.can_place(cpus, mem, gpus, req_nodes, exclusive)
        return True

    def allocate(self, cpus: float, mem: float, gpus: float) -> None:
        self.free_cpus -= cpus
        self.free_mem -= mem
        self.free_gpus -= gpus
        if self.free_cpus < -1e-6 or self.free_mem < -1e-6 or self.free_gpus < -1e-6:
            raise RuntimeError("pool over-allocated — scheduler invariant broken")

    def allocate_job(
        self,
        job: int,
        cpus: float,
        mem: float,
        gpus: float,
        req_nodes: int,
        exclusive: bool,
    ) -> None:
        """Allocate for a specific job, recording its node placement."""
        self.allocate(cpus, mem, gpus)
        if self.nodes is not None:
            self._allocations[job] = self.nodes.place(
                cpus, mem, gpus, req_nodes, exclusive
            )

    def release(self, cpus: float, mem: float, gpus: float) -> None:
        self.free_cpus += cpus
        self.free_mem += mem
        self.free_gpus += gpus

    def release_job(self, job: int, cpus: float, mem: float, gpus: float) -> None:
        """Release a job's aggregate share and its node placement."""
        self.release(cpus, mem, gpus)
        if self.nodes is not None:
            self.nodes.release(self._allocations.pop(job))


class BackfillScheduler:
    """EASY backfill over the pending queue of one pool.

    Parameters
    ----------
    priority_engine:
        Multifactor priority evaluator shared with the simulator.
    backfill_depth:
        How many jobs past the blocked head are considered for backfill per
        pass (Slurm's ``bf_max_job_test`` analogue; bounds pass cost).
    """

    def __init__(
        self,
        priority_engine: MultifactorPriority,
        backfill_depth: int = 100,
        exclusive_by_partition: np.ndarray | None = None,
    ) -> None:
        self.priority = priority_engine
        self.backfill_depth = backfill_depth
        #: Per-partition whole-node flags (used in node-level mode).
        self.exclusive_by_partition = exclusive_by_partition
        #: Index of the job that blocked at the head of the queue on the
        #: most recent pass (None when everything started).  The simulator
        #: uses this for preemption decisions.
        self.last_blocked: int | None = None
        #: How many of the most recent pass's started jobs were backfilled
        #: (started from below a blocked head) rather than started in
        #: priority order.  Telemetry reads this after each pass.
        self.last_backfilled: int = 0

    def _is_exclusive(self, jobs: np.ndarray, j: int) -> bool:
        if self.exclusive_by_partition is None:
            return False
        return bool(self.exclusive_by_partition[int(jobs["partition"][j])])

    def run_pass(
        self,
        t: float,
        jobs: np.ndarray,
        pending: list[int],
        running: list[int],
        ledger: PoolLedger,
    ) -> list[int]:
        """Start every job that can start at time ``t``; return their indices.

        ``jobs`` is the submission record array; ``pending`` / ``running``
        are index lists for this pool.  Started jobs are removed from
        ``pending`` and resources allocated in ``ledger``; the caller sets
        start times, pushes end events and updates ``running``.
        """
        self.last_blocked = None
        self.last_backfilled = 0
        if not pending:
            return []
        idx = np.asarray(pending, dtype=np.intp)
        prio = self.priority.compute(
            t,
            eligible_time=jobs["eligible_time"][idx],
            user_ids=jobs["user_id"][idx],
            partitions=jobs["partition"][idx],
            req_cpus=jobs["req_cpus"][idx].astype(np.float64),
            qos=jobs["qos"][idx],
        )
        # Slurm order: priority desc, then eligibility asc, then job id asc.
        order = np.lexsort((jobs["job_id"][idx], jobs["eligible_time"][idx], -prio))
        ordered = idx[order]

        started: list[int] = []
        blocked: int | None = None
        shadow_time = np.inf
        extra = np.array([np.inf, np.inf, np.inf])
        scanned_past_block = 0

        for j in ordered:
            cpus = float(jobs["req_cpus"][j])
            mem = float(jobs["req_mem_gb"][j])
            gpus = float(jobs["req_gpus"][j])
            req_nodes = int(jobs["req_nodes"][j])
            exclusive = self._is_exclusive(jobs, j)
            fits = ledger.fits_job(cpus, mem, gpus, req_nodes, exclusive)

            if blocked is None:
                if fits:
                    ledger.allocate_job(int(j), cpus, mem, gpus, req_nodes, exclusive)
                    started.append(int(j))
                    continue
                blocked = int(j)
                self.last_blocked = blocked
                shadow_time, extra = self._shadow(
                    t, jobs, running, ledger, cpus, mem, gpus
                )
                continue

            # Backfill region: bounded scan below the blocked head.
            scanned_past_block += 1
            if scanned_past_block > self.backfill_depth:
                break
            if not fits:
                continue
            expected_end = t + float(jobs["timelimit_min"][j]) * 60.0
            req = np.array([cpus, mem, gpus])
            if expected_end <= shadow_time + 1e-9:
                # Finishes before the reservation needs its resources.
                ledger.allocate_job(int(j), cpus, mem, gpus, req_nodes, exclusive)
                started.append(int(j))
                self.last_backfilled += 1
            elif np.all(req <= extra + 1e-9):
                # Fits in resources the reservation will not need.
                ledger.allocate_job(int(j), cpus, mem, gpus, req_nodes, exclusive)
                extra = extra - req
                started.append(int(j))
                self.last_backfilled += 1

        for j in started:
            pending.remove(j)
        return started

    def _shadow(
        self,
        t: float,
        jobs: np.ndarray,
        running: list[int],
        ledger: PoolLedger,
        need_cpus: float,
        need_mem: float,
        need_gpus: float,
    ) -> tuple[float, np.ndarray]:
        """Reservation for the blocked head job.

        Walk running jobs in expected-completion order (start + timelimit —
        the scheduler cannot see actual runtimes), accumulating released
        resources until the head job fits.  Returns ``(shadow_time,
        extra)`` where ``extra`` is what remains free at the shadow time
        beyond the head job's needs.  If the head can never fit (should not
        happen for validated requests), the shadow is ``inf`` and everything
        currently free is backfillable.
        """
        free = np.array([ledger.free_cpus, ledger.free_mem, ledger.free_gpus])
        need = np.array([need_cpus, need_mem, need_gpus])
        if not running:
            return np.inf, free.copy()
        ridx = np.asarray(running, dtype=np.intp)
        expected_end = jobs["start_time"][ridx] + jobs["timelimit_min"][ridx] * 60.0
        expected_end = np.maximum(expected_end, t)  # overrunning jobs end "now"
        order = np.argsort(expected_end, kind="stable")
        avail = free.copy()
        for k in order:
            j = ridx[k]
            avail += np.array(
                [
                    float(jobs["req_cpus"][j]),
                    float(jobs["req_mem_gb"][j]),
                    float(jobs["req_gpus"][j]),
                ]
            )
            if np.all(need <= avail + 1e-9):
                return float(expected_end[k]), avail - need
        return np.inf, free.copy()


class VectorBackfillScheduler:
    """EASY backfill over pre-gathered job-attribute arrays.

    The fast engine's counterpart of :class:`BackfillScheduler`: same
    algorithm, same pass semantics, but the per-job scalar pulls from the
    structured submission array are replaced by contiguous float64 arrays
    gathered once per pass, the greedy head phase by one fit test over
    cumulative free-resource chains, the shadow walk by an early-exit
    scan of an incrementally-sorted release schedule, and the backfill
    scan by a masked vector feasibility test with a Python loop only
    over surviving candidates.

    Bitwise contract with the reference pass: every floating-point chain
    is evaluated in the reference's association order (the cumulative
    arrays are seeded with the current free value, so ``cumsum``
    reproduces the sequential ``+=``/``-=`` exactly), priorities come
    from :class:`~repro.slurm.priority.CachedPriority`, and running-set
    ties resolve on the caller's monotone start counter — which equals
    the reference engine's list insertion order.

    The caller reports every start and end via :meth:`schedule_insert` /
    :meth:`schedule_remove`, which keep a per-pool release schedule
    sorted incrementally for the shadow walk.
    """

    def __init__(
        self,
        priority: CachedPriority,
        backfill_depth: int,
        *,
        job_ids: np.ndarray,
        eligible: np.ndarray,
        req_cpus: np.ndarray,
        req_mem: np.ndarray,
        req_gpus: np.ndarray,
        req_nodes: np.ndarray,
        limit_s: np.ndarray,
        exclusive: np.ndarray,
    ) -> None:
        self.priority = priority
        self.backfill_depth = backfill_depth
        self._job_ids = job_ids
        self._elig = eligible
        self._req_c = req_cpus
        self._req_m = req_mem
        self._req_g = req_gpus
        #: (3, n_jobs) request matrix — one fancy-index per pass gathers
        #: all three resource dimensions at once.
        self._req3 = np.ascontiguousarray(np.stack([req_cpus, req_mem, req_gpus]))
        self._req_nodes = req_nodes
        self._limit_s = limit_s
        self._excl = exclusive
        # Python-scalar mirrors for the scalar pass path (read-only job
        # attributes; list indexing skips NumPy scalar boxing).
        self._job_ids_l = job_ids.tolist()
        self._elig_l = eligible.tolist()
        self._req_c_l = req_cpus.tolist()
        self._req_m_l = req_mem.tolist()
        self._req_g_l = req_gpus.tolist()
        self._req_nodes_l = req_nodes.tolist()
        self._excl_l = exclusive.tolist()
        self._limit_s_l = limit_s.tolist()
        #: Per-pool release schedule: a sorted list of ``(expected_end,
        #: start_seq, job, req_c, req_m, req_g)`` tuples maintained
        #: incrementally via :meth:`schedule_insert` /
        #: :meth:`schedule_remove`.  ``(end, seq)`` is unique and ``seq``
        #: is the caller's monotone start counter, so the order equals
        #: the reference's (expected end, insertion order) sort.
        self._sched: dict[object, list[tuple]] = {}
        self._sched_key: dict[int, tuple[float, int]] = {}
        #: One-entry-per-pool memo of the full shadow result — a pure
        #: function of (running-set version, free resources, head need),
        #: all compared exactly; consecutive blocked passes with no
        #: resource change (eligibility-only batches) hit it.
        self._shadow_result: dict[object, tuple] = {}
        self.last_blocked: int | None = None
        self.last_backfilled: int = 0

    # ------------------------------------------------------------------ #
    def schedule_insert(self, run_pool, j: int, start: float, seq: int) -> None:
        """Record started job ``j`` in the pool's release schedule."""
        lst = self._sched.get(run_pool)
        if lst is None:
            lst = self._sched[run_pool] = []
        ee = start + self._limit_s_l[j]
        self._sched_key[j] = (ee, seq)
        insort(
            lst,
            (ee, seq, j, self._req_c_l[j], self._req_m_l[j], self._req_g_l[j]),
        )

    def schedule_remove(self, run_pool, j: int) -> None:
        """Drop completed or evicted job ``j`` from the release schedule."""
        lst = self._sched[run_pool]
        # A (end, seq) prefix tuple sorts just before its full entry.
        pos = bisect_left(lst, self._sched_key.pop(j))
        del lst[pos]

    # ------------------------------------------------------------------ #
    def run_pass(
        self,
        t: float,
        ready: np.ndarray,
        run_pool,
        ledger: PoolLedger,
    ) -> list[int]:
        """Start every job that can start at ``t``; return their indices.

        ``ready`` is an index array (any order); ``run_pool`` is the
        pool's running :class:`~repro.slurm.queue.JobPool`.  Started jobs
        get resources allocated in ``ledger``; the caller removes them
        from its pending set, stamps start times and pushes end events.
        """
        self.last_blocked = None
        self.last_backfilled = 0
        n = len(ready)
        if n == 0:
            return []
        if n <= _SCALAR_PASS_MAX:
            return self._run_pass_scalar(t, ready, run_pool, ledger)
        prio = self.priority.compute_for(ready, t)
        # Slurm order: priority desc, then eligibility asc, then job id
        # asc — a total order (ids are unique), so the result does not
        # depend on the incoming permutation of ``ready``.
        order = np.lexsort((self._job_ids[ready], self._elig[ready], -prio))
        ordered = ready[order]
        req3 = self._req3[:, ordered]

        j0 = int(ordered[0])
        if not ledger.fits_job(
            self._req_c_l[j0],
            self._req_m_l[j0],
            self._req_g_l[j0],
            self._req_nodes_l[j0],
            self._excl_l[j0],
        ):
            # Blocked at the very head — the most common outcome under
            # load; skip building the cumulative chains entirely.
            started: list[int] = []
            blocked_pos = 0
        elif ledger.nodes is not None:
            started, blocked_pos = self._head_node_level(ordered, req3, ledger)
        else:
            started, blocked_pos = self._head_aggregate(ordered, req3, ledger)
        if blocked_pos >= n:
            return started
        self.last_blocked = int(ordered[blocked_pos])

        # Backfill region: the next ``backfill_depth`` candidates below
        # the blocked head.  Empty window → the shadow would be dead
        # state (it is pure), so skip computing it.
        lo = blocked_pos + 1
        hi = min(lo + self.backfill_depth, n)
        if lo >= hi:
            return started

        # Free resources and ``extra`` only shrink within a pass and the
        # shadow is fixed, so the static mask is an exact superset of the
        # jobs the reference scan would start — the loop re-checks each
        # survivor against live state.
        window = ordered[lo:hi]
        wreq = req3[:, lo:hi]
        eps = 1e-9
        fits_now = (
            (wreq[0] <= ledger.free_cpus + eps)
            & (wreq[1] <= ledger.free_mem + eps)
            & (wreq[2] <= ledger.free_gpus + eps)
        )
        if not fits_now.any():
            # Both backfill branches require the candidate to fit *now*;
            # the shadow is pure state, so skipping it is unobservable.
            return started
        shadow, extra_c, extra_m, extra_g = self._shadow(
            t,
            run_pool,
            ledger,
            float(req3[0, blocked_pos]),
            float(req3[1, blocked_pos]),
            float(req3[2, blocked_pos]),
        )
        before_shadow = (t + self._limit_s[window]) <= shadow + eps
        in_extra = (
            (wreq[0] <= extra_c + eps)
            & (wreq[1] <= extra_m + eps)
            & (wreq[2] <= extra_g + eps)
        )
        for i in np.flatnonzero(fits_now & (before_shadow | in_extra)):
            j = int(window[i])
            cpus = self._req_c_l[j]
            mem = self._req_m_l[j]
            gpus = self._req_g_l[j]
            req_nodes = self._req_nodes_l[j]
            exclusive = self._excl_l[j]
            if not ledger.fits_job(cpus, mem, gpus, req_nodes, exclusive):
                continue
            if before_shadow[i]:
                # Finishes before the reservation needs its resources.
                ledger.allocate_job(j, cpus, mem, gpus, req_nodes, exclusive)
                started.append(j)
                self.last_backfilled += 1
            elif (
                cpus <= extra_c + eps
                and mem <= extra_m + eps
                and gpus <= extra_g + eps
            ):
                # Fits in resources the reservation will not need.
                ledger.allocate_job(j, cpus, mem, gpus, req_nodes, exclusive)
                extra_c = extra_c - cpus
                extra_m = extra_m - mem
                extra_g = extra_g - gpus
                started.append(j)
                self.last_backfilled += 1
        return started

    def _run_pass_scalar(
        self,
        t: float,
        ready: np.ndarray,
        run_pool,
        ledger: PoolLedger,
    ) -> list[int]:
        """Reference-shaped scalar pass for short ready queues.

        Mirrors :meth:`BackfillScheduler.run_pass` operation for
        operation — scalar priorities, a tuple sort on the same
        ``(-priority, eligibility, job id)`` key, greedy head walk,
        bounded backfill scan — because NumPy's per-call dispatch
        overhead dominates at these sizes.
        """
        req_c = self._req_c_l
        req_m = self._req_m_l
        req_g = self._req_g_l
        req_nodes_l = self._req_nodes_l
        excl = self._excl_l
        if len(ready) == 1:
            # Ordering is trivial: trigger fair-share decay for parity
            # with the reference pass (which always evaluates priority
            # over a non-empty queue) and skip the pure shadow — there
            # are no backfill candidates.
            self.priority.touch(t)
            j = int(ready[0])
            c = req_c[j]
            m = req_m[j]
            g = req_g[j]
            rn = req_nodes_l[j]
            ex = excl[j]
            if ledger.fits_job(c, m, g, rn, ex):
                ledger.allocate_job(j, c, m, g, rn, ex)
                return [j]
            self.last_blocked = j
            return []
        idx = ready.tolist()
        prios = self.priority.compute_batch_scalar(idx, t)
        job_ids = self._job_ids_l
        elig = self._elig_l
        order = sorted(
            range(len(idx)),
            key=lambda i: (-prios[i], elig[idx[i]], job_ids[idx[i]]),
        )
        limit_s = self._limit_s_l
        eps = 1e-9
        started: list[int] = []
        blocked = False
        shadow = extra_c = extra_m = extra_g = 0.0
        scanned = 0
        for i in order:
            j = idx[i]
            c = req_c[j]
            m = req_m[j]
            g = req_g[j]
            rn = req_nodes_l[j]
            ex = excl[j]
            if not blocked:
                if ledger.fits_job(c, m, g, rn, ex):
                    ledger.allocate_job(j, c, m, g, rn, ex)
                    started.append(j)
                    continue
                blocked = True
                self.last_blocked = j
                shadow, extra_c, extra_m, extra_g = self._shadow(
                    t, run_pool, ledger, c, m, g
                )
                continue
            scanned += 1
            if scanned > self.backfill_depth:
                break
            if not ledger.fits_job(c, m, g, rn, ex):
                continue
            if t + limit_s[j] <= shadow + eps:
                # Finishes before the reservation needs its resources.
                ledger.allocate_job(j, c, m, g, rn, ex)
                started.append(j)
                self.last_backfilled += 1
            elif c <= extra_c + eps and m <= extra_m + eps and g <= extra_g + eps:
                # Fits in resources the reservation will not need.
                ledger.allocate_job(j, c, m, g, rn, ex)
                extra_c = extra_c - c
                extra_m = extra_m - m
                extra_g = extra_g - g
                started.append(j)
                self.last_backfilled += 1
        return started

    # ------------------------------------------------------------------ #
    def _head_aggregate(
        self,
        ordered: np.ndarray,
        req3: np.ndarray,
        ledger: PoolLedger,
    ) -> tuple[list[int], int]:
        """Longest startable prefix via cumulative free-resource chains.

        Row ``d`` of ``chain`` seeds the current free value of dimension
        ``d`` and subtracts requests left to right, reproducing the
        reference ledger's sequential ``free -= req`` chain bit for bit
        (IEEE ``a - b`` ≡ ``a + (-b)``); the prefix ends at the first job
        whose request exceeds the chained free in any dimension.  The
        ledger then jumps straight to the chained value — requests are
        non-negative, so the chain is monotone and the reference's
        per-allocation over-allocation check reduces to one check of the
        final value.
        """
        n = req3.shape[1]
        chain = np.empty((3, n + 1), dtype=np.float64)
        chain[0, 0] = ledger.free_cpus
        chain[1, 0] = ledger.free_mem
        chain[2, 0] = ledger.free_gpus
        np.negative(req3, out=chain[:, 1:])
        np.cumsum(chain, axis=1, out=chain)
        fits = (req3 <= chain[:, :-1] + 1e-9).all(axis=0)
        blocked = np.flatnonzero(~fits)
        blocked_pos = int(blocked[0]) if len(blocked) else n
        if blocked_pos == 0:
            return [], 0
        end = chain[:, blocked_pos]
        if end[0] < -1e-6 or end[1] < -1e-6 or end[2] < -1e-6:
            raise RuntimeError("pool over-allocated — scheduler invariant broken")
        # Plain floats: keeps all downstream ledger arithmetic on Python
        # scalars (float() of a float64 is exact).
        ledger.free_cpus = float(end[0])
        ledger.free_mem = float(end[1])
        ledger.free_gpus = float(end[2])
        return [int(j) for j in ordered[:blocked_pos]], blocked_pos

    def _head_node_level(
        self,
        ordered: np.ndarray,
        req3: np.ndarray,
        ledger: PoolLedger,
    ) -> tuple[list[int], int]:
        """Greedy head walk when placement feasibility is stateful."""
        started: list[int] = []
        for i in range(req3.shape[1]):
            j = int(ordered[i])
            c = self._req_c_l[j]
            m = self._req_m_l[j]
            g = self._req_g_l[j]
            req_nodes = self._req_nodes_l[j]
            exclusive = self._excl_l[j]
            if not ledger.fits_job(c, m, g, req_nodes, exclusive):
                return started, i
            ledger.allocate_job(j, c, m, g, req_nodes, exclusive)
            started.append(j)
        return started, req3.shape[1]

    def _shadow(
        self,
        t: float,
        run_pool,
        ledger: PoolLedger,
        need_c: float,
        need_m: float,
        need_g: float,
    ) -> tuple[float, float, float, float]:
        """Reservation for the blocked head job.

        Returns ``(shadow_time, extra_c, extra_m, extra_g)``.  Walks the
        incrementally-maintained release schedule — running jobs in
        expected-completion order, ties broken by start sequence = the
        reference engine's insertion order — accumulating freed
        resources with the same left-associated scalar ``avail +=``
        chain and early exit as the reference walk, on the same IEEE
        doubles.  The schedule is kept sorted by :meth:`schedule_insert`
        / :meth:`schedule_remove` (one O(log n) bisect per job start or
        end), so a blocked pass never rebuilds or re-sorts it.

        Results are memoised per pool: the shadow is a pure function of
        the running-set version, the current free resources and the head
        job's needs.  ``t`` does not enter — the reference clamps
        expected ends to ``t`` for "overrunning" jobs, but for a
        *running* job that is provably a no-op (its END event at
        ``end <= start + limit`` has not fired, so ``end > t + 1e-9``).
        """
        free_c = ledger.free_cpus
        free_m = ledger.free_mem
        free_g = ledger.free_gpus
        if len(run_pool) == 0:
            return np.inf, free_c, free_m, free_g
        version = run_pool.version
        memo = self._shadow_result.get(run_pool)
        if (
            memo is not None
            and memo[0] == version
            and memo[1] == free_c
            and memo[2] == free_m
            and memo[3] == free_g
            and memo[4] == need_c
            and memo[5] == need_m
            and memo[6] == need_g
        ):
            return memo[7], memo[8], memo[9], memo[10]
        eps = 1e-9
        avail_c = free_c
        avail_m = free_m
        avail_g = free_g
        result = None
        for ee, _seq, _j, rc, rm, rg in self._sched[run_pool]:
            avail_c = avail_c + rc
            avail_m = avail_m + rm
            avail_g = avail_g + rg
            if (
                need_c <= avail_c + eps
                and need_m <= avail_m + eps
                and need_g <= avail_g + eps
            ):
                result = (
                    ee,
                    avail_c - need_c,
                    avail_m - need_m,
                    avail_g - need_g,
                )
                break
        if result is None:
            result = (np.inf, free_c, free_m, free_g)
        self._shadow_result[run_pool] = (
            version,
            free_c,
            free_m,
            free_g,
            need_c,
            need_m,
            need_g,
        ) + result
        return result
