"""Lightweight timing helpers used by benchmarks and the CLI.

The hpc-parallel guides stress *measure before optimising*; :class:`Timer`
is the minimal instrument for that: a context manager / stopwatch with
monotonic clocks and accumulated laps, cheap enough to leave in hot paths
behind a flag.  For structured, nested timing use
:func:`repro.obs.tracing.span` instead.
"""

from __future__ import annotations

import functools
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

__all__ = ["Timer", "timed"]

F = TypeVar("F", bound=Callable[..., Any])


@dataclass
class Timer:
    """Accumulating stopwatch.

    Usage::

        t = Timer()
        with t:
            work()
        print(t.elapsed)

    Repeated ``with`` blocks accumulate into :attr:`elapsed` and count laps.
    Re-entrant: nested ``with`` blocks on the same instance each time their
    own region (start times are a stack, so an inner block cannot clobber
    an outer block's start).
    """

    elapsed: float = 0.0
    laps: int = 0
    _starts: list[float] = field(default_factory=list, repr=False)

    def __enter__(self) -> "Timer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed += time.perf_counter() - self._starts.pop()
        self.laps += 1

    def reset(self) -> None:
        """Zero the accumulated time and lap count."""
        self.elapsed = 0.0
        self.laps = 0

    @property
    def mean(self) -> float:
        """Mean seconds per lap (0.0 before any lap completes)."""
        return self.elapsed / self.laps if self.laps else 0.0


def timed(fn: F) -> F:
    """Deprecated — use :func:`repro.obs.tracing.span` instead.

    The ``last_elapsed`` attribute this decorator attaches is shared
    mutable state: concurrent or re-entrant calls race on it, and reading
    it after a second call silently reports the wrong region.  Spans carry
    their timing in the record they return, so none of that can happen.
    """
    warnings.warn(
        "repro.utils.timing.timed is deprecated; wrap the call in "
        "repro.obs.tracing.span(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        t0 = time.perf_counter()
        out = fn(*args, **kwargs)
        wrapper.last_elapsed = time.perf_counter() - t0  # type: ignore[attr-defined]
        return out

    wrapper.last_elapsed = 0.0  # type: ignore[attr-defined]
    return wrapper  # type: ignore[return-value]
