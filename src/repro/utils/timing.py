"""Lightweight timing helpers used by benchmarks and the CLI.

The hpc-parallel guides stress *measure before optimising*; :class:`Timer`
is the minimal instrument for that: a context manager / stopwatch with
monotonic clocks and accumulated laps, cheap enough to leave in hot paths
behind a flag.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

__all__ = ["Timer", "timed"]

F = TypeVar("F", bound=Callable[..., Any])


@dataclass
class Timer:
    """Accumulating stopwatch.

    Usage::

        t = Timer()
        with t:
            work()
        print(t.elapsed)

    Repeated ``with`` blocks accumulate into :attr:`elapsed` and count laps.
    """

    elapsed: float = 0.0
    laps: int = 0
    _t0: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed += time.perf_counter() - self._t0
        self.laps += 1

    def reset(self) -> None:
        """Zero the accumulated time and lap count."""
        self.elapsed = 0.0
        self.laps = 0

    @property
    def mean(self) -> float:
        """Mean seconds per lap (0.0 before any lap completes)."""
        return self.elapsed / self.laps if self.laps else 0.0


def timed(fn: F) -> F:
    """Decorator attaching a ``last_elapsed`` attribute with the wall time
    of the most recent call.  Used by ablation benchmarks that need the
    timing *and* the return value in one pass."""

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        t0 = time.perf_counter()
        out = fn(*args, **kwargs)
        wrapper.last_elapsed = time.perf_counter() - t0  # type: ignore[attr-defined]
        return out

    wrapper.last_elapsed = 0.0  # type: ignore[attr-defined]
    return wrapper  # type: ignore[return-value]
