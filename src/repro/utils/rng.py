"""Deterministic random-number management.

Every stochastic component in the library (workload generation, SMOTE,
network initialisation, forest bootstraps, HPO samplers) accepts either an
integer seed or a :class:`numpy.random.Generator`.  This module centralises
the conversion and provides reproducible *spawning* of independent streams
for parallel workers, following the ``SeedSequence`` discipline recommended
for HPC workloads (independent streams per worker, no sharing of a single
generator across processes).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "default_rng",
    "spawn_rngs",
    "spawn_seed_sequences",
    "SeedSequenceFactory",
]

def default_rng(
    seed: int | np.random.Generator | np.random.SeedSequence | None = None,
) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, a
        ``SeedSequence`` (e.g. a spawned child carried to a worker
        process), or an existing ``Generator`` which is passed through
        unchanged (so callers can thread one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed.

    Used when fanning work out to parallel workers (e.g. one tree per
    process in the random forest): each worker gets its own stream, and the
    result is identical whether the work runs serially or in parallel.
    """
    return [np.random.default_rng(c) for c in spawn_seed_sequences(seed, n)]


def spawn_seed_sequences(
    seed: int | None, n: int
) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent child ``SeedSequence`` states from one seed.

    The picklable flavour of :func:`spawn_rngs`: ship a child to a worker
    process and materialise the generator there with
    ``default_rng(child)`` — cheaper to pickle than a ``Generator`` and
    identical serial or parallel.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return list(np.random.SeedSequence(seed).spawn(n))


class SeedSequenceFactory:
    """Hands out reproducible child seeds on demand.

    A convenience wrapper around :class:`numpy.random.SeedSequence` for
    long-lived objects (e.g. an HPO study) that need a fresh independent
    stream per trial without carrying ``Generator`` state across processes.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._seq = np.random.SeedSequence(seed)
        self._spawned = 0

    @property
    def n_spawned(self) -> int:
        """Number of child streams handed out so far."""
        return self._spawned

    def next_rng(self) -> np.random.Generator:
        """Return the next independent generator."""
        (child,) = self._seq.spawn(1)
        self._spawned += 1
        return np.random.default_rng(child)

    def next_seed(self) -> int:
        """Return the next independent integer seed (for pickling to workers)."""
        (child,) = self._seq.spawn(1)
        self._spawned += 1
        return int(child.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1))

    def spawn(self, n: int) -> list[np.random.Generator]:
        """Return ``n`` independent generators."""
        children = self._seq.spawn(n)
        self._spawned += n
        return [np.random.default_rng(c) for c in children]


def permutation_chunks(
    rng: np.random.Generator, n: int, n_chunks: int
) -> Iterable[np.ndarray]:
    """Yield ``n_chunks`` disjoint random index chunks covering ``range(n)``."""
    perm = rng.permutation(n)
    bounds = np.linspace(0, n, n_chunks + 1).astype(np.intp)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        yield perm[lo:hi]
