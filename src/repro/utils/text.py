"""Plain-text rendering helpers: aligned tables and timing reports.

These live in ``utils`` (the bottom layer) because both the evaluation
reports (``repro.eval.report``) and the telemetry exporters
(``repro.obs.export``) render tables — and ``obs`` may not import
``eval`` under the layering DAG.  ``repro.eval.report`` re-exports them,
so benchmark and CLI call sites keep their historical import path.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_timing_report"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned text table."""
    def fmt(v: object) -> str:
        if isinstance(v, float) or isinstance(v, np.floating):
            return float_fmt.format(float(v))
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[j]) for r in cells)) if cells else len(str(h))
        for j, h in enumerate(headers)
    ]
    out = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def format_timing_report(
    timings: Mapping[str, float],
    cache_stats: object | None = None,
) -> str:
    """Per-stage wall-time table, optionally with cache hit/miss counters.

    ``timings`` is the :attr:`FeatureMatrix.timings` mapping (stage →
    seconds); ``cache_stats`` duck-types
    :class:`repro.features.cache.CacheStats`.  Used by ``trout train -v``
    and the feature-engineering benches.
    """
    total = float(timings.get("total", sum(timings.values())))
    rows = []
    for stage, secs in timings.items():
        share = 100.0 * secs / total if total > 0 else 0.0
        rows.append([stage, secs * 1e3, share])
    out = format_table(["stage", "wall (ms)", "% of total"], rows)
    if cache_stats is not None:
        out += (
            f"\ncache: {cache_stats.hits} hits, {cache_stats.misses} misses, "
            f"{cache_stats.stores} stores, {cache_stats.invalid} invalid"
        )
    return out
