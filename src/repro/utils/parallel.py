"""Process-level parallelism helpers.

The library's embarrassingly parallel stages (forest training, chunked
interval-tree construction, HPO trials) fan out through
:func:`parallel_map`, which degrades gracefully to a serial loop when
``n_jobs == 1`` or when the workload is too small to amortise process
startup.  Results are returned in input order regardless of completion
order, so parallel and serial execution are bit-identical given per-task
seeds (see :mod:`repro.utils.rng`).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

__all__ = [
    "ParallelWorkerError",
    "parallel_map",
    "chunk_indices",
    "effective_n_jobs",
    "overlapping_chunks",
]

T = TypeVar("T")
R = TypeVar("R")


class ParallelWorkerError(RuntimeError):
    """A worker task failed; the message names the failing work item.

    Raised (with the original exception chained as ``__cause__``) when
    :func:`parallel_map` is given a ``label`` callable, so a failure deep in
    a fan-out identifies its chunk instead of surfacing as an anonymous
    pickled traceback.
    """


def effective_n_jobs(n_jobs: int | None) -> int:
    """Resolve an ``n_jobs`` request to a worker count.

    ``None`` or ``0`` → 1 (serial).  Negative values count back from the CPU
    count, sklearn-style (``-1`` → all cores).  Positive requests are taken
    at face value — oversubscription is deliberate, so equivalence tests can
    exercise real worker processes even on single-core runners.
    """
    cpus = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        return 1
    if n_jobs < 0:
        return max(1, cpus + 1 + n_jobs)
    return n_jobs


class _LabelledCall:
    """Picklable wrapper attaching an item label to worker exceptions.

    Items arrive as ``(label_str, item)`` pairs — labels are rendered in the
    parent so the ``label`` callable itself (often a lambda) never needs to
    be picklable.
    """

    def __init__(self, fn: Callable[[T], R]) -> None:
        self.fn = fn

    def __call__(self, pair: tuple[str, T]) -> R:
        label, item = pair
        try:
            return self.fn(item)
        except Exception as exc:
            # Broad on purpose: every worker failure must come back naming
            # its chunk.  Re-raised immediately — nothing is swallowed.
            raise ParallelWorkerError(
                f"worker failed on {label}: {exc!r}"
            ) from exc


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: int | None = 1,
    min_items_per_job: int = 1,
    label: Callable[[T], str] | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    Parameters
    ----------
    fn:
        Picklable callable applied to each item.
    items:
        The work list; each item must be picklable when ``n_jobs > 1``.
    n_jobs:
        Worker processes; see :func:`effective_n_jobs`.
    min_items_per_job:
        If ``len(items) / n_jobs`` falls below this, the pool is shrunk so
        process startup cannot dominate tiny workloads.
    label:
        Optional ``item → str`` describing each work item; when given, a
        worker exception is re-raised as :class:`ParallelWorkerError` naming
        the failing item (identically in serial and parallel execution).
    """
    items = list(items)
    if label is not None:
        items = [(label(item), item) for item in items]
        fn = _LabelledCall(fn)
    n = effective_n_jobs(n_jobs)
    if min_items_per_job > 0:
        n = min(n, max(1, len(items) // min_items_per_job))
    try:
        if n <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=n) as pool:
            return list(pool.map(fn, items))
    except ParallelWorkerError:
        _count_worker_failure()
        raise


def _count_worker_failure() -> None:
    """Bump the fan-out failure counter in the *parent* process.

    Function-scoped import: ``utils`` sits below ``obs`` in the layering
    DAG, so the dependency stays runtime-only (IMP001 exempts these).
    Counting here, rather than in the worker, also means the bump lands
    in the registry that survives the pool.
    """
    from repro.obs import metrics

    metrics.get_registry().counter(
        "parallel_worker_failures_total",
        help="parallel_map tasks that raised (labelled chunk re-raised)",
    ).inc()


def chunk_indices(n: int, n_chunks: int) -> list[np.ndarray]:
    """Split ``range(n)`` into ``n_chunks`` contiguous, near-equal chunks.

    The first ``n % n_chunks`` chunks get one extra element, matching the
    block decomposition conventional in MPI codes.
    """
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    bounds = np.linspace(0, n, min(n_chunks, max(n, 1)) + 1).astype(np.intp)
    return [np.arange(lo, hi, dtype=np.intp) for lo, hi in zip(bounds[:-1], bounds[1:])]


def overlapping_chunks(
    n: int, chunk_size: int, overlap: int
) -> list[tuple[int, int]]:
    """Half-open ``[start, stop)`` windows of ``chunk_size`` with ``overlap``.

    This is the decomposition the paper uses for interval-tree construction:
    "groupings of 100,000 jobs with an overlap of 10,000 jobs between trees".
    Consecutive windows advance by ``chunk_size - overlap`` and the final
    window is clipped to ``n``.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if not 0 <= overlap < chunk_size:
        raise ValueError(f"overlap must be in [0, chunk_size), got {overlap}")
    if n <= 0:
        return []
    step = chunk_size - overlap
    out: list[tuple[int, int]] = []
    start = 0
    while True:
        stop = min(start + chunk_size, n)
        out.append((start, stop))
        if stop >= n:
            break
        start += step
    return out
