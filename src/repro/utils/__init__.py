"""Shared utilities: seeding, parallelism, timing, logging, validation."""

from repro.utils.rng import SeedSequenceFactory, default_rng, spawn_rngs
from repro.utils.timing import Timer, timed
from repro.utils.parallel import chunk_indices, parallel_map
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_consistent_length,
    check_finite,
    ensure_float64,
)

__all__ = [
    "SeedSequenceFactory",
    "default_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "chunk_indices",
    "parallel_map",
    "check_1d",
    "check_2d",
    "check_consistent_length",
    "check_finite",
    "ensure_float64",
]
