"""Minimal structured logging for training loops and the simulator.

Uses the stdlib :mod:`logging` with a library-wide namespace so downstream
applications control verbosity with one handler.  The simulator and training
pipeline log at DEBUG/INFO; nothing in the library configures root handlers.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_console_logging"]

_ROOT = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the ``repro`` namespace."""
    if name.startswith(_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple stderr handler to the library root (idempotent).

    Called by the CLI; library code never calls this.  Idempotency is
    keyed on a sentinel attribute rather than ``isinstance`` — a
    ``FileHandler`` someone else attached *is* a ``StreamHandler``, and
    must not suppress the console handler.  Repeat calls update the level
    on both the root and the existing console handler instead of stacking
    duplicates.
    """
    root = logging.getLogger(_ROOT)
    root.setLevel(level)
    for h in root.handlers:
        if getattr(h, "_repro_console_handler", False):
            h.setLevel(level)
            return
    handler = logging.StreamHandler()
    handler.setLevel(level)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    handler._repro_console_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
