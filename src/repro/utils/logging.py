"""Minimal structured logging for training loops and the simulator.

Uses the stdlib :mod:`logging` with a library-wide namespace so downstream
applications control verbosity with one handler.  The simulator and training
pipeline log at DEBUG/INFO; nothing in the library configures root handlers.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_console_logging"]

_ROOT = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the ``repro`` namespace."""
    if name.startswith(_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple stderr handler to the library root (idempotent).

    Called by the CLI; library code never calls this.
    """
    root = logging.getLogger(_ROOT)
    root.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)
