"""Input validation shared across estimators.

Centralising these checks keeps the hot code free of scattered asserts and
gives users consistent error messages across the NN framework, tree
ensembles and feature pipeline.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ensure_float64",
    "check_2d",
    "check_1d",
    "check_consistent_length",
    "check_finite",
    "check_fitted",
]


def ensure_float64(a: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``a`` as a C-contiguous float64 array (no copy if already so)."""
    out = np.ascontiguousarray(a, dtype=np.float64)
    return out


def check_2d(a: np.ndarray, name: str = "X", dtype: np.dtype | type = np.float64) -> np.ndarray:
    """Validate a 2-D sample matrix; 1-D input is promoted to a column.

    ``dtype`` is the target dtype (float64 historically; the NN stack
    passes its policy dtype).  No copy when already contiguous and typed.
    """
    a = np.asarray(a)
    if a.ndim == 1:
        a = a.reshape(-1, 1)
    if a.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {a.shape}")
    if a.shape[0] == 0:
        raise ValueError(f"{name} has zero samples")
    return np.ascontiguousarray(a, dtype=dtype)


def check_1d(a: np.ndarray, name: str = "y") -> np.ndarray:
    """Validate a 1-D target vector; column vectors are squeezed."""
    a = np.asarray(a)
    if a.ndim == 2 and a.shape[1] == 1:
        a = a.ravel()
    if a.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {a.shape}")
    return ensure_float64(a, name)


def check_consistent_length(*arrays: np.ndarray) -> None:
    """Raise if the first dimensions of the given arrays differ."""
    lengths = {len(a) for a in arrays if a is not None}
    if len(lengths) > 1:
        raise ValueError(f"inconsistent sample counts: {sorted(lengths)}")


def check_finite(a: np.ndarray, name: str = "array") -> None:
    """Raise if ``a`` contains NaN or infinity."""
    if not np.all(np.isfinite(a)):
        bad = int(np.size(a) - np.count_nonzero(np.isfinite(a)))
        raise ValueError(f"{name} contains {bad} non-finite values")


def check_fitted(obj: object, attr: str) -> None:
    """Raise a uniform error when an estimator is used before ``fit``."""
    if getattr(obj, attr, None) is None:
        raise RuntimeError(
            f"{type(obj).__name__} is not fitted; call fit() before predict()"
        )
