"""``troutlint`` — AST-based invariant checker for the whole stack.

A dependency-free static pass enforcing the conventions the test suite's
determinism depends on: the seeded-RNG discipline (RNG001/RNG002), the
``repro.nn`` dtype contract (DT001), the import-layering DAG (IMP001),
telemetry naming (OBS001), and no silently-swallowed failures (EXC001).

Run it as ``trout lint`` or ``python -m repro.analysis``; suppress one
line with ``# repro: ignore[RULE001]``; grandfather what you cannot fix
via the checked-in baseline (``trout lint --baseline``).  Rule catalogue
and semantics: DESIGN.md §9.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineEntry, apply
from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import (
    LintResult,
    Rule,
    Violation,
    lint_file,
    lint_paths,
    registered_rules,
)
from repro.analysis.report import render_json, render_report

__all__ = [
    "Baseline",
    "BaselineEntry",
    "LintConfig",
    "LintResult",
    "Rule",
    "Violation",
    "apply",
    "lint_file",
    "lint_paths",
    "load_config",
    "registered_rules",
    "render_json",
    "render_report",
]
