"""The rule catalogue — this repo's invariants, one class per rule.

=======  ==========================================================
RNG001   raw ``np.random.*`` calls / unseeded ``default_rng()``
         anywhere outside :mod:`repro.utils.rng`
RNG002   wall-clock reads (``time.time``, ``datetime.now`` …) in
         library code outside ``repro.obs``
DT001    ``np.zeros/empty/ones/full/arange`` without an explicit
         dtype inside ``repro.nn`` (the PR-4 buffer contract)
IMP001   module-level imports that violate the layering DAG
OBS001   metric names: snake_case; counters end ``_total``;
         histograms carry a unit suffix
EXC001   bare/broad ``except`` that neither re-raises nor records
         (logging or telemetry) what it swallowed
=======  ==========================================================

Every check runs off the shared single-parse walk in
:mod:`repro.analysis.engine`; rules here never re-read or re-parse.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.engine import FileContext, Rule, Violation, register

__all__ = [
    "RngSourceRule",
    "WallClockRule",
    "DtypeRule",
    "ImportLayeringRule",
    "MetricNameRule",
    "BroadExceptRule",
]

_NUMPY_RANDOM = ("numpy.random", "np.random")


def _is_numpy_random(dotted: str) -> bool:
    return dotted.startswith("numpy.random.")


@register
class RngSourceRule(Rule):
    """RNG001 — all randomness flows through ``repro.utils.rng``.

    The golden-matrix SHA lock and the hist/exact parity tests assume a
    single seeded stream discipline; a stray ``np.random.rand`` (global
    state) or zero-argument ``default_rng()`` (OS entropy) silently breaks
    replay.  Flags any call into ``numpy.random`` and any unseeded
    ``default_rng()`` outside the blessed module.
    """

    id = "RNG001"
    summary = "raw numpy.random call or unseeded default_rng()"
    interests = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module != ctx.config.rng_module

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        dotted = ctx.dotted_name(node.func)
        if dotted and _is_numpy_random(dotted):
            yield self.violation(
                ctx,
                node,
                f"call to {dotted} — route through "
                f"{ctx.config.rng_module} helpers",
            )
            return
        # unseeded default_rng(): catches both the repro helper and a raw
        # numpy one — no arguments means OS entropy, i.e. unreproducible.
        fn = node.func
        name = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else None
        )
        if name == "default_rng" and not node.args and not node.keywords:
            yield self.violation(
                ctx,
                node,
                "unseeded default_rng() draws OS entropy — pass a seed "
                "or an existing Generator",
            )


#: dotted origins that read the wall clock (RNG002)
_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    """RNG002 — no wall-clock reads in library code.

    Wall-clock values leaking into features or model state are the
    classic silent-nondeterminism bug (Brown et al. 2022): a rerun
    produces different numbers with no failing test.  Monotonic duration
    clocks (``perf_counter``, ``monotonic``) stay legal — they only ever
    feed telemetry.  ``repro.obs`` is exempt: observability timestamps
    are its job.
    """

    id = "RNG002"
    summary = "wall-clock read outside repro.obs"
    interests = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return not any(
            ctx.in_package(pkg) for pkg in ctx.config.wallclock_packages
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        dotted = ctx.dotted_name(node.func)
        if dotted in _WALLCLOCK:
            yield self.violation(
                ctx,
                node,
                f"wall-clock call {dotted}() in library code — pass times "
                "in as data, or move the read into repro.obs",
            )


#: constructor → index of the positional slot that is the dtype
_DTYPE_POSITIONAL = {"zeros": 1, "empty": 1, "ones": 1, "full": 2}


@register
class DtypeRule(Rule):
    """DT001 — array constructors in ``repro.nn`` must pin their dtype.

    The PR-4 compute path hands buffers between layers via ``out=``; a
    constructor that silently defaults to float64 breaks the float32
    policy (dtype mismatch → ufunc copies → the allocation-free contract
    quietly degrades).  ``*_like`` constructors inherit a dtype and are
    exempt.
    """

    id = "DT001"
    summary = "array constructor without explicit dtype in repro.nn"
    interests = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return any(
            ctx.in_package(pkg) for pkg in ctx.config.dtype_strict_packages
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        dotted = ctx.dotted_name(node.func)
        if dotted is None or not dotted.startswith("numpy."):
            return
        ctor = dotted[len("numpy."):]
        if ctor not in ("zeros", "empty", "ones", "full", "arange"):
            return
        if any(kw.arg == "dtype" for kw in node.keywords):
            return
        pos = _DTYPE_POSITIONAL.get(ctor)
        if pos is not None and len(node.args) > pos:
            return  # dtype passed positionally
        yield self.violation(
            ctx,
            node,
            f"np.{ctor}(...) without dtype= — the nn dtype policy "
            "(DESIGN.md §8) requires every buffer to pin its dtype",
        )


@register
class ImportLayeringRule(Rule):
    """IMP001 — module-level imports must follow the layering DAG.

    The DAG (``utils`` → ``obs`` → ``data`` → ``features``/``ml``/``nn``
    → ``core`` → ``cli``) is what keeps the subsystems independently
    testable and import-cycle-free.  Only module-level imports count:
    function-scoped imports are the sanctioned escape hatch for
    runtime-only dependencies and cannot create import-time cycles.
    Imports under ``if TYPE_CHECKING:`` are annotations, not
    dependencies, and are skipped.
    """

    id = "IMP001"
    summary = "module-level import violates the layering DAG"
    interests = (ast.Import, ast.ImportFrom)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module is not None and ctx.config.package_of(
            ctx.module
        ) is not None

    def start(self, ctx: FileContext) -> None:
        # Pre-compute the TYPE_CHECKING-guarded statements for this file.
        guarded: set[int] = set()
        for stmt in ast.walk(ctx.tree):
            if not isinstance(stmt, ast.If):
                continue
            test = stmt.test
            name = (
                test.id
                if isinstance(test, ast.Name)
                else test.attr
                if isinstance(test, ast.Attribute)
                else None
            )
            if name == "TYPE_CHECKING":
                for sub in stmt.body:
                    for inner in ast.walk(sub):
                        guarded.add(id(inner))
        ctx._imp001_guarded = guarded  # type: ignore[attr-defined]

    def _targets(self, node: ast.Import | ast.ImportFrom, ctx: FileContext):
        pkg = ctx.config.package
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == pkg or alias.name.startswith(pkg + "."):
                    yield alias.name
        else:
            base = node.module or ""
            if node.level:  # relative: resolve against this module's package
                assert ctx.module is not None
                parts = ctx.module.split(".")
                # level=1 means "this package": strip the module name for a
                # regular module, nothing for a package __init__.
                is_pkg = ctx.path.name == "__init__.py"
                drop = node.level - (1 if is_pkg else 0)
                anchor = parts[: len(parts) - drop]
                base = ".".join(anchor + ([base] if base else []))
            if base == pkg or base.startswith(pkg + "."):
                if base == pkg:
                    # ``from repro import core`` → repro.core per name
                    for alias in node.names:
                        yield f"{pkg}.{alias.name}"
                else:
                    yield base

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Violation]:
        assert isinstance(node, (ast.Import, ast.ImportFrom))
        if not ctx.is_top_level(node):
            return
        if id(node) in getattr(ctx, "_imp001_guarded", ()):
            return
        assert ctx.module is not None
        here = ctx.config.package_of(ctx.module)
        assert here is not None
        allowed = ctx.config.layers.get(here)
        for target in self._targets(node, ctx):
            tpkg = ctx.config.package_of(target)
            if tpkg is None or tpkg == here:
                continue
            if allowed is None:
                yield self.violation(
                    ctx,
                    node,
                    f"package {here!r} is not in the layering config "
                    "([tool.troutlint.layers] in pyproject.toml)",
                )
                return
            if tpkg not in allowed:
                label = here or "the package root"
                yield self.violation(
                    ctx,
                    node,
                    f"{label} may not import repro.{tpkg} "
                    f"(allowed: {', '.join(allowed) or 'nothing'})",
                )


_SNAKE_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_SNAKE_FRAGMENT_RE = re.compile(r"^[a-z0-9_]*$")


@register
class MetricNameRule(Rule):
    """OBS001 — telemetry names are snake_case and carry their unit.

    Prometheus conventions, frozen here so dashboards built on one PR's
    names survive the next: counters end ``_total``; histograms end in a
    unit suffix (``_seconds``/``_blocks``/``_bytes``/``_total``) so a
    reader can tell what the buckets measure; everything is snake_case.
    f-string names are checked on their constant fragments.
    """

    id = "OBS001"
    summary = "metric name violates naming/unit-suffix conventions"
    interests = (ast.Call,)

    _KINDS = ("counter", "gauge", "histogram")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        fn = node.func
        if not isinstance(fn, ast.Attribute) or fn.attr not in self._KINDS:
            return
        kind = fn.attr
        name_node: ast.expr | None = node.args[0] if node.args else None
        if name_node is None:
            for kw in node.keywords:
                if kw.arg == "name":
                    name_node = kw.value
                    break
        if name_node is None:
            return
        fragments, suffix = self._literal_parts(name_node)
        if fragments is None:
            return  # dynamic name, nothing checkable statically
        for frag in fragments:
            check = _SNAKE_RE if frag is fragments[0] else _SNAKE_FRAGMENT_RE
            if not check.match(frag):
                yield self.violation(
                    ctx,
                    node,
                    f"metric name fragment {frag!r} is not snake_case",
                )
                return
        if suffix is None:
            return  # f-string ends in an expression: suffix unknowable
        if kind == "counter" and not suffix.endswith("_total"):
            yield self.violation(
                ctx, node, f"counter {suffix!r} must end with '_total'"
            )
        elif kind == "histogram" and not suffix.endswith(
            tuple(ctx.config.histogram_suffixes)
        ):
            yield self.violation(
                ctx,
                node,
                f"histogram {suffix!r} needs a unit suffix "
                f"({', '.join(ctx.config.histogram_suffixes)})",
            )

    @staticmethod
    def _literal_parts(
        node: ast.expr,
    ) -> tuple[list[str] | None, str | None]:
        """(constant fragments, trailing-constant text) of a name literal.

        Plain string → ([name], name).  f-string → its constant pieces,
        with the suffix known only when the last piece is constant.
        Anything else → (None, None).
        """
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return [node.value], node.value
        if isinstance(node, ast.JoinedStr):
            frags = [
                v.value
                for v in node.values
                if isinstance(v, ast.Constant) and isinstance(v.value, str)
            ]
            last = node.values[-1] if node.values else None
            suffix = (
                last.value
                if isinstance(last, ast.Constant)
                and isinstance(last.value, str)
                else None
            )
            return frags, suffix
        return None, None


#: method names whose presence in a handler counts as "recorded it"
_RECORDING_CALLS = frozenset(
    {
        "debug", "info", "warning", "error", "exception", "critical",
        "log",  # logger.log(level, ...)
        "inc", "observe", "set", "bump",  # telemetry instruments
    }
)


@register
class BroadExceptRule(Rule):
    """EXC001 — broad handlers must re-raise or record.

    ``except Exception: pass`` turns a real failure (corrupt cache entry,
    dead worker) into silent wrong numbers.  A broad handler is fine if
    it *raises* (narrowing to a domain error), *logs*, or *bumps a
    telemetry instrument* — the failure stays observable.  Bare
    ``except:`` must re-raise regardless: it swallows
    ``KeyboardInterrupt``/``SystemExit``.
    """

    id = "EXC001"
    summary = "bare/broad except without re-raise, logging, or telemetry"
    interests = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Violation]:
        assert isinstance(node, ast.ExceptHandler)
        broad, bare = self._breadth(node.type, ctx)
        if not broad:
            return
        raises = any(
            isinstance(n, ast.Raise) for sub in node.body for n in ast.walk(sub)
        )
        if bare:
            if not raises:
                yield self.violation(
                    ctx,
                    node,
                    "bare except must re-raise (it swallows SystemExit "
                    "and KeyboardInterrupt)",
                )
            return
        if raises or self._records(node):
            return
        yield self.violation(
            ctx,
            node,
            "broad except swallows the failure — re-raise, log it, or "
            "bump a telemetry counter",
        )

    @staticmethod
    def _breadth(
        type_node: ast.expr | None, ctx: FileContext
    ) -> tuple[bool, bool]:
        """(is broad, is bare) for a handler's exception spec."""
        if type_node is None:
            return True, True

        def name_of(n: ast.expr) -> str | None:
            if isinstance(n, ast.Name):
                return n.id
            if isinstance(n, ast.Attribute):
                return n.attr
            return None

        if isinstance(type_node, ast.Tuple):
            names = [name_of(e) for e in type_node.elts]
        else:
            names = [name_of(type_node)]
        return any(n in ("Exception", "BaseException") for n in names), False

    @staticmethod
    def _records(handler: ast.ExceptHandler) -> bool:
        for sub in handler.body:
            for n in ast.walk(sub):
                if not isinstance(n, ast.Call):
                    continue
                fn = n.func
                name = (
                    fn.attr
                    if isinstance(fn, ast.Attribute)
                    else fn.id
                    if isinstance(fn, ast.Name)
                    else None
                )
                if name in _RECORDING_CALLS:
                    return True
        return False
