"""``trout lint`` / ``python -m repro.analysis`` — run the checker.

Exit codes: 0 clean, 1 violations or stale baseline entries or parse
errors, 2 configuration errors.  ``--baseline`` rewrites the baseline
file from the current violations (keeping the reasons of entries that
survive) instead of failing on them — the sanctioned way to grandfather
a violation you cannot fix yet.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import baseline as baseline_mod
from repro.analysis.config import load_config
from repro.analysis.engine import lint_paths
from repro.analysis.report import render_json, render_report

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared by ``trout lint`` and ``-m``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to lint (default: the configured paths, "
        "normally src/)",
    )
    parser.add_argument(
        "--format",
        choices=("report", "json"),
        default="report",
        help="output format (default: report)",
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="rewrite the baseline file from the current violations "
        "instead of failing on them",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root holding pyproject.toml and the baseline "
        "(default: cwd)",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation."""
    try:
        config = load_config(args.root)
    except ValueError as exc:
        print(f"troutlint: {exc}", file=sys.stderr)
        return 2
    result = lint_paths(args.paths or None, config)
    baseline_path = config.root / config.baseline_path
    try:
        base = baseline_mod.Baseline.load(baseline_path)
    except ValueError as exc:
        print(f"troutlint: {exc}", file=sys.stderr)
        return 2
    if args.baseline:
        rewritten = baseline_mod.Baseline.from_violations(
            result.violations, old=base
        )
        rewritten.save(baseline_path)
        print(
            f"baseline rewritten: {len(rewritten.entries)} entr"
            f"{'y' if len(rewritten.entries) == 1 else 'ies'} "
            f"covering {len(result.violations)} violation(s) "
            f"→ {baseline_path}"
        )
        return 0
    new, grandfathered, stale = baseline_mod.apply(result.violations, base)
    render = render_json if args.format == "json" else render_report
    print(render(result, new, grandfathered, stale))
    failed = bool(new or stale or result.parse_errors)
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checker for this repo "
        "(rules: RNG001 RNG002 DT001 IMP001 OBS001 EXC001)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
