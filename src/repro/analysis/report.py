"""Render lint results as a terminal report or versioned JSON."""

from __future__ import annotations

import json

from repro.analysis.baseline import BaselineEntry
from repro.analysis.engine import LintResult, Violation, registered_rules

__all__ = ["render_report", "render_json", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_report(
    result: LintResult,
    new: list[Violation],
    grandfathered: list[Violation],
    stale: list[BaselineEntry],
) -> str:
    """Human-readable summary: violations, baseline health, rule counts."""
    out: list[str] = []
    for v in new:
        out.append(v.render())
    for err in result.parse_errors:
        out.append(f"{err}: parse error")
    if stale:
        out.append("")
        out.append("stale baseline entries (fix: remove them or rerun "
                   "with --baseline):")
        for e in stale:
            out.append(f"  {e.rule} {e.path}: {e.snippet!r}")
    out.append("")
    counts: dict[str, int] = {}
    for v in new:
        counts[v.rule] = counts.get(v.rule, 0) + 1
    summary = ", ".join(f"{r}:{n}" for r, n in sorted(counts.items()))
    out.append(
        f"checked {result.files_checked} files: "
        f"{len(new)} violation(s)"
        + (f" ({summary})" if summary else "")
        + (f", {len(grandfathered)} baselined" if grandfathered else "")
        + (f", {len(stale)} stale baseline entr"
           f"{'y' if len(stale) == 1 else 'ies'}" if stale else "")
        + (f", {len(result.parse_errors)} parse error(s)"
           if result.parse_errors else "")
    )
    if not new and not stale and not result.parse_errors:
        out.append("clean.")
    return "\n".join(out).lstrip("\n")


def _violation_dict(v: Violation, baselined: bool) -> dict:
    return {
        "rule": v.rule,
        "path": v.path,
        "line": v.line,
        "col": v.col,
        "message": v.message,
        "snippet": v.snippet,
        "baselined": baselined,
    }


def render_json(
    result: LintResult,
    new: list[Violation],
    grandfathered: list[Violation],
    stale: list[BaselineEntry],
) -> str:
    """Machine-readable dump (schema pinned by ``version``)."""
    rules = registered_rules()
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "rules": {rid: r.summary for rid, r in sorted(rules.items())},
        "violations": [
            _violation_dict(v, baselined=False) for v in new
        ] + [
            _violation_dict(v, baselined=True) for v in grandfathered
        ],
        "stale_baseline": [
            {
                "rule": e.rule,
                "path": e.path,
                "snippet": e.snippet,
                "reason": e.reason,
            }
            for e in stale
        ],
        "parse_errors": list(result.parse_errors),
        "summary": {
            "new": len(new),
            "baselined": len(grandfathered),
            "stale": len(stale),
        },
    }
    return json.dumps(payload, indent=2)
