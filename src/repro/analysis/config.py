"""Lint configuration: baked-in defaults plus ``pyproject.toml`` overrides.

The defaults below *are* the repo's invariants — the layering DAG, the
blessed RNG module, the telemetry unit suffixes.  ``[tool.troutlint]`` in
``pyproject.toml`` can override any of them, so the checker stays useful
if the package layout grows (add the new package to ``layers`` and its
allowed imports) without touching this module.

The DAG is expressed as an *allowed-imports* mapping: package → the
repro packages its module-level imports may target.  Function-scoped
imports are deliberately exempt from IMP001 — they are the established
escape hatch for runtime-only dependencies (``metrics.set_enabled``'s
late tracing import, the CLI's lazy subcommand imports) and cannot
create import-time cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["LintConfig", "load_config", "DEFAULT_LAYERS"]

#: package → repro packages its module-level imports may target.  The
#: package name "" is the distribution root (``repro/__init__.py`` and any
#: future root-level module) which, like ``cli``, sits on top.
DEFAULT_LAYERS: dict[str, tuple[str, ...]] = {
    "utils": (),
    "obs": ("utils",),
    "data": ("utils", "obs"),
    "nn": ("utils", "obs"),
    "sampling": ("utils", "obs"),
    "explain": ("utils", "obs"),
    "ml": ("utils", "obs", "data"),
    "slurm": ("utils", "obs", "data"),
    "hpo": ("utils", "obs", "ml"),
    "features": ("utils", "obs", "data", "slurm"),
    "workload": ("utils", "obs", "data", "slurm"),
    "eval": ("utils", "obs", "data", "features", "ml", "nn"),
    "core": (
        "utils", "obs", "data", "slurm", "features", "ml", "nn",
        "sampling", "hpo", "eval",
    ),
    "serve": (
        "utils", "obs", "data", "features", "ml", "nn", "eval", "core",
    ),
    "analysis": ("utils",),
    "cli": (
        "utils", "obs", "data", "slurm", "features", "ml", "nn",
        "sampling", "explain", "hpo", "eval", "core", "workload",
        "analysis", "serve",
    ),
    "": (
        "utils", "obs", "data", "slurm", "features", "ml", "nn",
        "sampling", "explain", "hpo", "eval", "core", "workload",
        "analysis", "serve", "cli",
    ),
}

#: Counters must end ``_total`` (Prometheus convention); histograms must
#: carry one of these unit suffixes so dashboards can tell seconds from
#: bytes without reading help strings.
DEFAULT_HISTOGRAM_SUFFIXES: tuple[str, ...] = (
    "_seconds", "_blocks", "_bytes", "_total",
)


@dataclass
class LintConfig:
    """Everything the rules need to know about this repo's conventions."""

    #: top-level package whose sources are linted
    package: str = "repro"
    #: directories (relative to project root) searched for the package
    src_roots: tuple[str, ...] = ("src",)
    #: default lint targets when the CLI gets no paths
    paths: tuple[str, ...] = ("src",)
    #: baseline file, relative to project root
    baseline_path: str = "troutlint-baseline.json"
    #: module allowed to own raw numpy RNG state (RNG001 exemption)
    rng_module: str = "repro.utils.rng"
    #: packages allowed wall-clock reads (RNG002 exemption)
    wallclock_packages: tuple[str, ...] = ("repro.obs",)
    #: packages whose array constructors must pin dtype= (DT001 scope)
    dtype_strict_packages: tuple[str, ...] = ("repro.nn",)
    #: import-layering DAG (IMP001)
    layers: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERS)
    )
    #: unit suffixes accepted on histogram metric names (OBS001)
    histogram_suffixes: tuple[str, ...] = DEFAULT_HISTOGRAM_SUFFIXES
    #: rule ids disabled wholesale
    disable: tuple[str, ...] = ()
    #: project root everything above is relative to
    root: Path = field(default_factory=Path.cwd)

    def module_name(self, path: Path) -> str | None:
        """Dotted module name for a source path, or ``None`` if outside
        every src root (fixture files, scripts)."""
        try:
            rel = path.resolve().relative_to(self.root.resolve())
        except ValueError:
            return None
        for root in self.src_roots:
            parts = rel.parts
            root_parts = Path(root).parts
            if parts[: len(root_parts)] == root_parts:
                mod_parts = parts[len(root_parts):]
                if not mod_parts or not mod_parts[-1].endswith(".py"):
                    return None
                name = ".".join(mod_parts)[: -len(".py")]
                if name.endswith(".__init__"):
                    name = name[: -len(".__init__")]
                elif name == "__init__":
                    return None
                return name
        return None

    def package_of(self, module: str) -> str | None:
        """The layering unit of a module: ``repro.ml.tree`` → ``ml``,
        ``repro`` → ``""``, non-repro modules → ``None``."""
        parts = module.split(".")
        if parts[0] != self.package:
            return None
        return parts[1] if len(parts) > 1 else ""


def _as_str_tuple(value: object, where: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(v, str) for v in value
    ):
        raise ValueError(f"[tool.troutlint] {where} must be a list of strings")
    return tuple(value)


def load_config(root: Path | None = None) -> LintConfig:
    """Defaults merged with ``[tool.troutlint]`` from ``pyproject.toml``.

    Missing file or missing table both mean pure defaults; a malformed
    table raises ``ValueError`` so CI fails loudly instead of silently
    linting with the wrong invariants.
    """
    cfg = LintConfig(root=root or Path.cwd())
    pyproject = cfg.root / "pyproject.toml"
    if not pyproject.is_file():
        return cfg
    try:
        import tomllib
    except ImportError:  # pragma: no cover - py<3.11 fallback: defaults
        return cfg
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("troutlint")
    if table is None:
        return cfg
    if not isinstance(table, dict):
        raise ValueError("[tool.troutlint] must be a table")
    simple = {
        "package": str,
        "baseline_path": str,
        "rng_module": str,
    }
    for key, typ in simple.items():
        if key in table:
            if not isinstance(table[key], typ):
                raise ValueError(f"[tool.troutlint] {key} must be a string")
            setattr(cfg, key, table[key])
    for key in (
        "src_roots", "paths", "wallclock_packages",
        "dtype_strict_packages", "histogram_suffixes", "disable",
    ):
        if key in table:
            setattr(cfg, key, _as_str_tuple(table[key], key))
    if "layers" in table:
        layers = table["layers"]
        if not isinstance(layers, dict):
            raise ValueError("[tool.troutlint] layers must be a table")
        cfg.layers = {
            str(pkg): _as_str_tuple(allowed, f"layers.{pkg}")
            for pkg, allowed in layers.items()
        }
    return cfg
