"""Grandfathered-violation baseline: load, match, stale-check, rewrite.

A baseline entry pins one known violation by ``(rule, path, snippet)`` —
the stripped source line, not a line number, so edits elsewhere in the
file don't invalidate it.  Every entry carries a human ``reason``; the
file is checked in, so a justification survives reviews.

Semantics enforced by :func:`apply`:

- a current violation matching an entry is *suppressed* (grandfathered);
- an entry matching nothing is *stale* and fails the run — baselines may
  only shrink, silently dead entries are forbidden (the CI stale check);
- duplicates of one entry match all their occurrences (``count`` many at
  most; extra occurrences above ``count`` surface as new violations).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.engine import Violation

__all__ = ["BaselineEntry", "Baseline", "apply"]

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered violation."""

    rule: str
    path: str
    snippet: str
    reason: str = ""
    count: int = 1

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)


@dataclass
class Baseline:
    """The checked-in set of grandfathered violations."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(f"baseline {path} has no 'entries' list")
        version = data.get("version", BASELINE_VERSION)
        if version != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} is version {version}, "
                f"this checker expects {BASELINE_VERSION}"
            )
        entries = []
        for i, raw in enumerate(data["entries"]):
            try:
                entries.append(
                    BaselineEntry(
                        rule=str(raw["rule"]),
                        path=str(raw["path"]),
                        snippet=str(raw["snippet"]),
                        reason=str(raw.get("reason", "")),
                        count=int(raw.get("count", 1)),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"baseline {path} entry {i} is malformed: {exc!r}"
                ) from exc
        return cls(entries)

    def save(self, path: Path) -> None:
        data = {
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "snippet": e.snippet,
                    "reason": e.reason,
                    **({"count": e.count} if e.count != 1 else {}),
                }
                for e in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.snippet)
                )
            ],
        }
        path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_violations(
        cls, violations: list[Violation], old: "Baseline | None" = None
    ) -> "Baseline":
        """Baseline covering ``violations``, keeping reasons from ``old``."""
        reasons = {e.key(): e.reason for e in (old.entries if old else [])}
        counts: dict[tuple[str, str, str], int] = {}
        for v in violations:
            counts[v.key()] = counts.get(v.key(), 0) + 1
        return cls(
            [
                BaselineEntry(
                    rule=rule,
                    path=path,
                    snippet=snippet,
                    reason=reasons.get((rule, path, snippet), "TODO: justify"),
                    count=n,
                )
                for (rule, path, snippet), n in counts.items()
            ]
        )


def apply(
    violations: list[Violation], baseline: Baseline
) -> tuple[list[Violation], list[Violation], list[BaselineEntry]]:
    """Split violations against a baseline.

    Returns ``(new, grandfathered, stale_entries)``: violations not
    covered by the baseline, violations it suppresses, and entries that
    matched fewer occurrences than their ``count`` (fully unmatched or
    over-counted — either way the baseline no longer reflects reality).
    """
    budget = {e.key(): e.count for e in baseline.entries}
    new: list[Violation] = []
    grandfathered: list[Violation] = []
    for v in violations:
        k = v.key()
        if budget.get(k, 0) > 0:
            budget[k] -= 1
            grandfathered.append(v)
        else:
            new.append(v)
    stale = [e for e in baseline.entries if budget.get(e.key(), 0) > 0]
    return new, grandfathered, stale
