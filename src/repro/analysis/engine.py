"""Single-parse lint engine: walk files, parse once, dispatch to rules.

Each file is read and ``ast.parse``-d exactly once; every registered rule
sees the same tree through one shared walk.  Rules declare the node types
they care about (``interests``) and the engine routes nodes to them, so
adding a rule never adds a parse or a traversal.

Suppression is per-line: a ``# repro: ignore[RULE001]`` (or
``# repro: ignore[RULE001,RULE002]``, or a blanket ``# repro: ignore``)
comment on the *reported* line silences matching violations on that line.
Pragmas are extracted with a line scan, not the tokenizer, so a syntax
error in one file still reports cleanly for the rest.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.config import LintConfig

__all__ = [
    "FileContext",
    "LintResult",
    "Rule",
    "Violation",
    "iter_source_files",
    "lint_file",
    "lint_paths",
    "registered_rules",
    "register",
]

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule: str
    path: str  # project-root-relative, POSIX separators
    line: int
    col: int
    message: str
    #: the stripped source line — the baseline's drift-tolerant fingerprint
    snippet: str

    def key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching: line numbers excluded so
        unrelated edits above a grandfathered violation don't stale it."""
        return (self.rule, self.path, self.snippet)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class FileContext:
    """Everything rules may ask about the file under the current walk."""

    def __init__(
        self,
        path: Path,
        rel_path: str,
        source: str,
        tree: ast.Module,
        config: LintConfig,
    ) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.module = config.module_name(path)
        #: local alias → dotted module it names (``np`` → ``numpy``,
        #: ``random`` → ``numpy.random`` after ``from numpy import random``)
        self.module_aliases: dict[str, str] = {}
        #: local name → dotted origin for from-imports of attributes
        #: (``default_rng`` → ``numpy.random.default_rng``)
        self.name_aliases: dict[str, str] = {}
        self._top_level_nodes: set[int] | None = None

    # ---------------------------------------------------------------- #
    def in_package(self, prefix: str) -> bool:
        """Is this module inside ``prefix`` (a dotted package path)?"""
        return self.module is not None and (
            self.module == prefix or self.module.startswith(prefix + ".")
        )

    def snippet_at(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def record_import(self, node: ast.Import | ast.ImportFrom) -> None:
        """Feed the alias maps (the engine calls this for every import)."""
        if isinstance(node, ast.Import):
            for alias in node.names:
                self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        else:
            if node.level or node.module is None:
                return  # relative imports never rebind numpy/time/datetime
            for alias in node.names:
                full = f"{node.module}.{alias.name}"
                local = alias.asname or alias.name
                # ``from numpy import random`` binds a module; record it in
                # both maps — dotted_name() resolves through either.
                self.module_aliases[local] = full
                self.name_aliases[local] = full

    def dotted_name(self, node: ast.expr) -> str | None:
        """Resolve an attribute chain to its imported dotted origin.

        ``np.random.default_rng`` → ``numpy.random.default_rng`` given
        ``import numpy as np``; plain names resolve through from-import
        aliases; anything not rooted in an import returns ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        origin = self.module_aliases.get(root) or self.name_aliases.get(root)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))

    def is_top_level(self, node: ast.stmt) -> bool:
        """True for statements in the module body, including bodies of
        top-level ``if`` blocks (``if TYPE_CHECKING:`` guards are handled
        separately by IMP001)."""
        if self._top_level_nodes is None:
            tops: set[int] = set()
            stack: list[ast.stmt] = list(self.tree.body)
            while stack:
                stmt = stack.pop()
                tops.add(id(stmt))
                if isinstance(stmt, (ast.If, ast.Try)):
                    for part in ast.iter_child_nodes(stmt):
                        if isinstance(part, ast.stmt):
                            stack.append(part)
                    if isinstance(stmt, ast.Try):
                        for h in stmt.handlers:
                            stack.extend(h.body)
            self._top_level_nodes = tops
        return id(node) in self._top_level_nodes


class Rule:
    """A named invariant check.

    Subclasses set ``id``/``summary``, list the ``ast`` node classes they
    want in ``interests``, and implement ``visit``; ``start``/``finish``
    bracket each file for rules that need per-file state.
    """

    id: str = ""
    summary: str = ""
    interests: tuple[type, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        """Rules can scope themselves to packages (DT001 → repro.nn)."""
        return True

    def start(self, ctx: FileContext) -> None:  # pragma: no cover - default
        pass

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Violation]:
        return ()

    def finish(self, ctx: FileContext) -> Iterable[Violation]:
        return ()

    # helper for subclasses
    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            rule=self.id,
            path=ctx.rel_path,
            line=line,
            col=col,
            message=message,
            snippet=ctx.snippet_at(line),
        )


_RULES: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no id")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return rule_cls


def registered_rules() -> dict[str, Rule]:
    """id → rule instance, import-order stable."""
    from repro.analysis import rules as _  # noqa: F401 - registration import

    return dict(_RULES)


def _pragmas_for(lines: Sequence[str]) -> dict[int, frozenset[str] | None]:
    """line number → suppressed rule ids (``None`` = every rule)."""
    out: dict[int, frozenset[str] | None] = {}
    for i, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        m = _PRAGMA_RE.search(text)
        if not m:
            continue
        listed = m.group("rules")
        if listed is None:
            out[i] = None
        else:
            out[i] = frozenset(
                r.strip().upper() for r in listed.split(",") if r.strip()
            )
    return out


@dataclass
class LintResult:
    """Violations plus bookkeeping for one lint run."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)


def iter_source_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: set[Path] = set()
    for p in paths:
        if p.is_dir():
            seen.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            seen.add(p)
    return sorted(seen)


def lint_file(
    path: Path,
    config: LintConfig,
    rules: Sequence[Rule],
    result: LintResult,
    source: str | None = None,
) -> None:
    """Parse one file once and run every applicable rule over the walk."""
    if source is None:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            result.parse_errors.append(f"{path}: {exc}")
            return
    try:
        rel = path.resolve().relative_to(config.root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        result.parse_errors.append(f"{rel}:{exc.lineno}: {exc.msg}")
        return
    ctx = FileContext(path, rel, source, tree, config)
    active = [
        r for r in rules if r.id not in config.disable and r.applies_to(ctx)
    ]
    result.files_checked += 1
    if not active:
        return
    for rule in active:
        rule.start(ctx)
    interest_map: list[tuple[Rule, tuple[type, ...]]] = [
        (r, r.interests) for r in active
    ]
    pragmas = _pragmas_for(ctx.lines)
    found: list[Violation] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            ctx.record_import(node)
        for rule, interests in interest_map:
            if interests and not isinstance(node, interests):
                continue
            found.extend(rule.visit(node, ctx))
    for rule in active:
        found.extend(rule.finish(ctx))
    for v in found:
        suppressed = pragmas.get(v.line, ...)
        if suppressed is None or (
            suppressed is not ... and v.rule.upper() in suppressed
        ):
            continue
        result.violations.append(v)


def lint_paths(
    paths: Sequence[Path] | None,
    config: LintConfig,
    rules: Sequence[Rule] | None = None,
) -> LintResult:
    """Lint files/directories (default: the configured paths)."""
    if rules is None:
        rules = list(registered_rules().values())
    if paths is None:
        paths = [config.root / p for p in config.paths]
    result = LintResult()
    for path in iter_source_files(list(paths)):
        lint_file(path, config, rules, result)
    result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return result
