"""Request micro-batcher: many concurrent callers, one model pass.

Single-request serving wastes the NN's batch throughput — a forward pass
over 32 rows costs barely more than over one (the PR-4 allocation-free
path amortises its fixed per-call work across rows).  The batcher owns a
bounded queue of pending requests and one worker thread that drains it:
the first request opens a batch, further arrivals join until either
``max_batch`` rows are collected or ``max_wait`` elapses, then the whole
block goes through ``predict_fn`` in one call.

Concurrency contract, relied on by the serve test suite:

- only the worker thread ever touches the shared row workspace; caller
  rows are **copied in** before the model call and results are plain
  per-request Python objects, so nothing a caller receives aliases the
  workspace;
- every submitted ticket is resolved exactly once (result or error),
  including on shutdown;
- ``submit`` never blocks on the model: a full queue raises
  :class:`QueueFullError` immediately (admission control's shed signal).
"""

from __future__ import annotations

import threading
from collections import deque
from time import monotonic, perf_counter
from typing import Callable, Sequence

import numpy as np

from repro.obs import tracing
from repro.obs.context import TraceContext
from repro.obs.events import emit
from repro.obs.metrics import get_registry
from repro.utils.logging import get_logger

__all__ = ["BatchTicket", "MicroBatcher", "QueueFullError"]

log = get_logger(__name__)


class QueueFullError(RuntimeError):
    """The pending-request queue is at ``queue_depth`` — shed the request."""


class BatchTicket:
    """One pending request: a feature row in, one result or error out.

    Besides the row and the outcome, a ticket carries the caller's
    :class:`TraceContext` across the thread boundary (so the worker's
    batch span can continue the request's trace) and reports back the
    latency split the worker measured: how long the ticket queued, how
    long its batch's model call took, and how many requests shared it.
    """

    __slots__ = (
        "row",
        "result",
        "error",
        "_event",
        "context",
        "enqueued_at",
        "queue_wait_s",
        "compute_s",
        "batch_size",
    )

    def __init__(self, row: np.ndarray, context: TraceContext | None = None) -> None:
        self.row = row
        self.result: object | None = None
        self.error: BaseException | None = None
        self._event = threading.Event()
        self.context = context
        self.enqueued_at = 0.0
        self.queue_wait_s = 0.0
        self.compute_s = 0.0
        self.batch_size = 0

    def resolve(self, result: object) -> None:
        self.result = result
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._event.set()

    def wait(self, timeout: float | None = None) -> object:
        """Block until resolved; re-raises the batch's error if it failed."""
        if not self._event.wait(timeout):
            raise TimeoutError("prediction did not complete in time")
        if self.error is not None:
            raise self.error
        return self.result


class MicroBatcher:
    """Coalesce concurrent prediction requests into bounded batches.

    Parameters
    ----------
    predict_fn:
        Called from the worker thread with a ``(n, n_features)`` float64
        view into the reused workspace (``1 <= n <= max_batch``); must
        return one result per row.  Swappable at runtime (hot reload
        assigns a new closure); the assignment is atomic, and a batch in
        flight finishes on whichever function it started with.
    """

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], Sequence[object]],
        n_features: int,
        max_batch: int = 32,
        max_wait_s: float = 0.005,
        queue_depth: int = 128,
    ) -> None:
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.predict_fn = predict_fn
        self.n_features = n_features
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.queue_depth = queue_depth
        self._queue: deque[BatchTicket] = deque()
        self._cond = threading.Condition()
        self._closed = False
        # Shared batch workspace: worker-thread-only by contract.
        self._workspace = np.empty((max_batch, n_features), dtype=np.float64)
        reg = get_registry()
        self._batches_total = reg.counter(
            "serve_batches_total", help="model calls made by the micro-batcher"
        )
        self._batched_requests_total = reg.counter(
            "serve_batched_requests_total",
            help="requests answered through the micro-batcher",
        )
        self._batch_errors_total = reg.counter(
            "serve_batch_errors_total",
            help="batches whose model call raised",
        )
        self._queue_depth_gauge = reg.gauge(
            "serve_queue_depth", help="requests waiting for a batch slot"
        )
        self._batch_wait = reg.histogram(
            "serve_batch_wait_seconds",
            help="time the first request of each batch waited for company",
            buckets=(0.0005, 0.001, 0.002, 0.005, 0.01, 0.025, 0.05, 0.1),
        )
        self._queue_wait = reg.histogram(
            "serve_queue_wait_seconds",
            help="time a ticket sat in the deque before its batch opened",
            buckets=(0.0005, 0.001, 0.002, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25),
        )
        self._thread = threading.Thread(
            target=self._run, name="trout-serve-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    def submit(
        self, row: np.ndarray, context: TraceContext | None = None
    ) -> BatchTicket:
        """Enqueue one feature row; raises :class:`QueueFullError` when the
        pending queue is at ``queue_depth`` and on a closed batcher.

        ``context`` (the caller's open span + request id) rides the
        ticket so the worker's batch span continues the request's trace.
        """
        row = np.ascontiguousarray(row, dtype=np.float64)
        if row.shape != (self.n_features,):
            raise ValueError(
                f"expected a ({self.n_features},) feature row, got {row.shape}"
            )
        ticket = BatchTicket(row, context=context)
        ticket.enqueued_at = perf_counter()
        with self._cond:
            if self._closed:
                raise QueueFullError("batcher is shut down")
            if len(self._queue) >= self.queue_depth:
                raise QueueFullError(
                    f"queue depth {self.queue_depth} reached"
                )
            self._queue.append(ticket)
            self._queue_depth_gauge.set(float(len(self._queue)))
            self._cond.notify()
        return ticket

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker; unresolved tickets fail with QueueFullError."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout)
        with self._cond:
            drained = list(self._queue)
            self._queue.clear()
        for ticket in drained:
            ticket.fail(QueueFullError("batcher shut down before serving"))

    # ------------------------------------------------------------------ #
    def _collect(self) -> list[BatchTicket] | None:
        """Block for the first ticket, then gather until full or deadline."""
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                self._cond.wait()
            batch = [self._queue.popleft()]
            deadline = monotonic() + self.max_wait_s
            while len(batch) < self.max_batch:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                remaining = deadline - monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._cond.wait(remaining)
            self._queue_depth_gauge.set(float(len(self._queue)))
            return batch

    def _run(self) -> None:
        while True:
            t0 = perf_counter()
            batch = self._collect()
            if batch is None:
                return
            opened = perf_counter()
            self._batch_wait.observe(opened - t0)
            n = len(batch)
            rows = self._workspace[:n]
            context = None
            for i, ticket in enumerate(batch):
                rows[i] = ticket.row
                ticket.queue_wait_s = opened - ticket.enqueued_at
                ticket.batch_size = n
                self._queue_wait.observe(ticket.queue_wait_s)
                if context is None:
                    context = ticket.context
            predict = self.predict_fn  # snapshot: hot reload swaps this
            # The batch span continues the oldest member's trace; the
            # other members connect through their request spans' meta
            # and the request_ids recorded here.
            request_ids = [
                t.context.request_id
                for t in batch
                if t.context is not None and t.context.request_id
            ]
            try:
                with tracing.span(
                    "serve.batch",
                    context=context,
                    batch_size=n,
                    request_ids=request_ids,
                ) as batch_span:
                    results = predict(rows)
                if len(results) != n:
                    raise RuntimeError(
                        f"predict_fn returned {len(results)} results "
                        f"for {n} rows"
                    )
            except Exception as exc:
                self._batch_errors_total.inc()
                emit(
                    "serve.batch_failed",
                    level="error",
                    batch_size=n,
                    request_ids=request_ids,
                    error=str(exc),
                )
                for ticket in batch:
                    ticket.fail(exc)
                continue
            compute_s = batch_span.elapsed
            self._batches_total.inc()
            self._batched_requests_total.inc(float(n))
            for ticket, result in zip(batch, results):
                ticket.compute_s = compute_s
                ticket.resolve(result)
