"""Stdlib threaded HTTP front end for the prediction service.

One route table, three routes:

- ``POST /predict`` — JSON body in, hierarchical prediction out (the
  request rides the micro-batcher; overload answers 503 + Retry-After);
- ``GET /healthz`` — liveness + currently served model version;
- ``GET /metrics`` — the process-wide telemetry registry in Prometheus
  text format (:func:`repro.obs.export.to_prometheus`).

Every response carries an ``X-Request-Id`` header: a sanitised
client-supplied id is honoured, otherwise one is minted, and ``/predict``
echoes it in the JSON payload too.  Access logging is a structured
``serve.access`` event per request (the stock
``BaseHTTPRequestHandler.log_message`` stderr line is silenced — the
event stream is the single source, and it carries the request id).

``ThreadingHTTPServer`` gives a thread per connection; every worker
funnels into the single batcher, which is where the real concurrency
control lives.  ``start_server`` binds (port 0 = ephemeral, used by the
test suite), starts the accept loop in a daemon thread, and returns the
server object, whose ``shutdown_service`` tears down loop, watcher, and
batcher in order.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter

from repro.obs.context import clean_request_id, new_request_id
from repro.obs.events import emit
from repro.obs.metrics import get_registry
from repro.serve.service import PredictionService, ServeResponse
from repro.utils.logging import get_logger

__all__ = ["TroutHTTPServer", "start_server"]

log = get_logger(__name__)

#: request bodies above this are rejected outright (64 KiB is ~500 rows
#: of named features; real requests are a few hundred bytes)
MAX_BODY_BYTES = 64 * 1024


class TroutHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: PredictionService):
        super().__init__(address, _Handler)
        self.service = service
        self._loop: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> None:
        self._loop = threading.Thread(
            target=self.serve_forever,
            name="trout-serve-http",
            daemon=True,
        )
        self._loop.start()

    def shutdown_service(self) -> None:
        """Stop accepting, then stop the watcher and batcher."""
        self.shutdown()
        self.server_close()
        if self._loop is not None:
            self._loop.join(timeout=5.0)
        self.service.close()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: TroutHTTPServer

    # ------------------------------------------------------------------ #
    def _request_id(self) -> str:
        """Honour a sane client-sent ``X-Request-Id``, else mint one."""
        return clean_request_id(self.headers.get("X-Request-Id")) or new_request_id()

    def _send(self, route: str, resp: ServeResponse, request_id: str) -> None:
        body = json.dumps(resp.payload, sort_keys=True).encode("utf-8")
        # Count before writing: a client that has read this response must
        # see it reflected in an immediately following /metrics scrape.
        self._status = resp.status
        get_registry().counter(
            "serve_requests_total",
            help="HTTP requests served, by route and status code",
            labels={"route": route, "code": str(resp.status)},
        ).inc()
        self.send_response(resp.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", request_id)
        for key, value in resp.headers.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, route: str, status: int, text: str, request_id: str
    ) -> None:
        body = text.encode("utf-8")
        self._status = status
        get_registry().counter(
            "serve_requests_total",
            help="HTTP requests served, by route and status code",
            labels={"route": route, "code": str(status)},
        ).inc()
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    def _finish(self, method: str, route: str, rid: str, t0: float) -> None:
        seconds = perf_counter() - t0
        get_registry().histogram(
            "serve_request_seconds",
            help="end-to-end request handling time",
            buckets=(0.001, 0.002, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0),
        ).observe(seconds)
        emit(
            "serve.access",
            level="debug",
            request_id=rid,
            method=method,
            route=route,
            status=getattr(self, "_status", 0),
            duration_s=round(seconds, 6),
        )

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        t0 = perf_counter()
        rid = self._request_id()
        try:
            if self.path == "/healthz":
                self._send("/healthz", self.server.service.handle_healthz(), rid)
            elif self.path == "/metrics":
                from repro.obs.export import to_prometheus

                self._send_text("/metrics", 200, to_prometheus(), rid)
            else:
                self._send(
                    self.path,
                    ServeResponse(404, {"error": f"no route {self.path!r}"}),
                    rid,
                )
        finally:
            self._finish("GET", self.path, rid, t0)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        t0 = perf_counter()
        rid = self._request_id()
        try:
            if self.path != "/predict":
                self._send(
                    self.path,
                    ServeResponse(404, {"error": f"no route {self.path!r}"}),
                    rid,
                )
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                length = -1
            if length < 0 or length > MAX_BODY_BYTES:
                self._send(
                    "/predict",
                    ServeResponse(400, {"error": "bad Content-Length"}),
                    rid,
                )
                return
            body = self.rfile.read(length)
            self._send(
                "/predict",
                self.server.service.handle_predict(body, request_id=rid),
                rid,
            )
        finally:
            self._finish("POST", self.path, rid, t0)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the stock stderr access line — the structured
        ``serve.access`` event (with request id) is the single source."""

    def log_error(self, format: str, *args) -> None:  # noqa: A002
        emit(
            "serve.http_error",
            level="warning",
            client=self.address_string(),
            message=format % args,
        )


def start_server(
    service: PredictionService, host: str = "127.0.0.1", port: int = 0
) -> TroutHTTPServer:
    """Bind, start the accept loop in the background, return the server."""
    server = TroutHTTPServer((host, port), service)
    server.start_background()
    log.info("trout serve listening on %s:%d", host, server.port)
    return server
