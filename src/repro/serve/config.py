"""Serving knobs, one dataclass.

Every number here is a contract the tests pin down: ``max_batch`` caps
the rows per NN pass, ``max_wait_ms`` bounds how long the first request
in a batch waits for company, ``queue_depth`` is the admission-control
line beyond which requests are shed with 503 + ``Retry-After``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig"]


@dataclass
class ServeConfig:
    """Knobs for the HTTP serving layer (``trout serve`` flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: max rows coalesced into one model call
    max_batch: int = 32
    #: how long the batch collector waits for more rows once one arrived
    max_wait_ms: float = 5.0
    #: pending-request bound; submissions beyond it are shed (503)
    queue_depth: int = 128
    #: registry poll interval for hot reload
    reload_interval_s: float = 2.0
    #: Retry-After hint sent with shedding responses
    retry_after_s: int = 1
    #: server-side cap on a single request's end-to-end wait
    request_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.reload_interval_s <= 0:
            raise ValueError("reload_interval_s must be positive")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1000.0
