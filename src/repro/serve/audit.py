"""Replayable prediction audit trail for the serving path.

Every successful ``/predict`` appends one compact JSONL record — enough
to answer "what did we predict, with which model, how fast" for any past
request, and to *re-score* the served model once ground truth arrives:
``replay_audit`` joins actual start times onto the trail and feeds the
errors through the same :class:`~repro.core.online.DriftMonitor`
window the live prequential stream uses, so an offline replay raises
exactly the alarms the online path would have.

Record layout (one flat JSON object per line)::

    ts                 wall-clock seconds (repro.obs.context.wall_now)
    request_id         the id returned to the client (X-Request-Id)
    trace_id           joins the record to the span forest / event log
    features_hash      sha256(row bytes)[:16] — dedup/join key, not PII
    model_version      registry version that answered
    model_fingerprint  artifact fingerprint prefix (provenance)
    p_long             classifier probability
    long_wait          routed to the regressor?
    minutes            predicted queue minutes (null for short waits)
    cutoff_min         the hierarchy's classification cutoff
    partition          requested partition (null if unspecified)
    queue_wait_s       time in the micro-batcher deque
    compute_s          model-call share of the batch
    total_s            submit → resolve wall time
    batch_size         how many requests shared the model call

Hot-path budget: the line is assembled with one f-string (ids and hashes
are grep-safe by construction — only ``partition`` can need JSON string
escaping), written block-buffered under a lock, and flushed on
``flush``/``close`` (the CLI hooks SIGTERM so a terminated server loses
nothing).  ``REPRO_TELEMETRY=0`` nulls :meth:`AuditTrail.append` like
every other instrument.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.core.online import DriftMonitor
from repro.obs.context import wall_now
from repro.obs.events import FileSink, iter_jsonl
from repro.obs.metrics import get_registry

__all__ = [
    "AuditTrail",
    "audit_stats",
    "features_hash",
    "iter_audit_records",
    "replay_audit",
]

AUDIT_VERSION = 1


def features_hash(row: np.ndarray) -> str:
    """Stable 16-hex digest of one feature row (dedup/join key)."""
    return hashlib.sha256(np.ascontiguousarray(row).tobytes()).hexdigest()[:16]


def _json_str(value: str | None) -> str:
    """``null`` or a JSON string — only ``partition`` needs real escaping."""
    return "null" if value is None else json.dumps(value)


class AuditTrail:
    """Append-only, size-rotated JSONL log of served predictions.

    ``enabled=None`` (the default) follows the process-wide telemetry
    switch; tests pass ``enabled=True``.  Appends are thread-safe; writes
    are block-buffered for hot-path cost and made durable by ``flush``
    (metrics scrape points, shutdown) and ``close``.
    """

    def __init__(
        self,
        path: str | Path,
        max_bytes: int = 32 << 20,
        backups: int = 3,
        enabled: bool | None = None,
    ) -> None:
        self.path = Path(path)
        self._sink = FileSink(self.path, max_bytes=max_bytes, backups=backups)
        self._lock = threading.Lock()
        self._enabled = enabled
        self._records_total = get_registry().counter(
            "serve_audit_records_total", help="prediction audit records written"
        )
        self.n_appended = 0

    @property
    def enabled(self) -> bool:
        if self._enabled is None:
            return get_registry().enabled
        return self._enabled

    def append(
        self,
        *,
        request_id: str,
        trace_id: str,
        row: np.ndarray,
        model_version: int,
        model_fingerprint: str,
        p_long: float,
        long_wait: bool,
        minutes: float | None,
        cutoff_min: float,
        partition: str | None,
        queue_wait_s: float,
        compute_s: float,
        total_s: float,
        batch_size: int,
    ) -> None:
        """Record one served prediction (no-op when telemetry is off)."""
        if not self.enabled:
            return
        minutes_s = "null" if minutes is None else f"{float(minutes):.4f}"
        line = (
            f'{{"ts":{wall_now():.6f},"request_id":"{request_id}",'
            f'"trace_id":"{trace_id}","features_hash":"{features_hash(row)}",'
            f'"model_version":{int(model_version)},'
            f'"model_fingerprint":"{model_fingerprint[:16]}",'
            f'"p_long":{float(p_long):.6f},'
            f'"long_wait":{"true" if long_wait else "false"},'
            f'"minutes":{minutes_s},"cutoff_min":{float(cutoff_min):g},'
            f'"partition":{_json_str(partition)},'
            f'"queue_wait_s":{queue_wait_s:.6f},"compute_s":{compute_s:.6f},'
            f'"total_s":{total_s:.6f},"batch_size":{int(batch_size)}}}'
        )
        with self._lock:
            self._sink.write(line)
            self.n_appended += 1
        self._records_total.inc()

    def flush(self) -> None:
        with self._lock:
            self._sink.flush()

    def close(self) -> None:
        with self._lock:
            self._sink.close()


# ---------------------------------------------------------------------- #
# read side: tail / stats / replay
# ---------------------------------------------------------------------- #
def iter_audit_records(
    path: str | Path, include_rotated: bool = True
) -> Iterator[dict]:
    """Audit records oldest-first, rotation generations included."""
    return iter_jsonl(path, include_rotated=include_rotated)


def audit_stats(records: Iterable[dict]) -> dict:
    """Aggregate view of a trail: volume, routing mix, latency, versions."""
    n = n_long = 0
    p_long_sum = 0.0
    total_s_sum = queue_s_sum = compute_s_sum = 0.0
    total_s_max = 0.0
    batch_sum = 0
    versions: dict[int, int] = {}
    ts_min = ts_max = None
    for rec in records:
        n += 1
        n_long += bool(rec.get("long_wait"))
        p_long_sum += float(rec.get("p_long", 0.0))
        t = float(rec.get("total_s", 0.0))
        total_s_sum += t
        total_s_max = max(total_s_max, t)
        queue_s_sum += float(rec.get("queue_wait_s", 0.0))
        compute_s_sum += float(rec.get("compute_s", 0.0))
        batch_sum += int(rec.get("batch_size", 1))
        v = int(rec.get("model_version", 0))
        versions[v] = versions.get(v, 0) + 1
        ts = rec.get("ts")
        if isinstance(ts, (int, float)):
            ts_min = ts if ts_min is None else min(ts_min, ts)
            ts_max = ts if ts_max is None else max(ts_max, ts)
    return {
        "n_records": n,
        "n_long_wait": n_long,
        "long_wait_share": n_long / n if n else 0.0,
        "mean_p_long": p_long_sum / n if n else 0.0,
        "mean_total_s": total_s_sum / n if n else 0.0,
        "max_total_s": total_s_max,
        "mean_queue_wait_s": queue_s_sum / n if n else 0.0,
        "mean_compute_s": compute_s_sum / n if n else 0.0,
        "mean_batch_size": batch_sum / n if n else 0.0,
        "versions": {str(v): c for v, c in sorted(versions.items())},
        "span_seconds": (ts_max - ts_min) if n and ts_min is not None else 0.0,
    }


def replay_audit(
    records: Iterable[dict],
    actuals: Mapping[str, float] | None = None,
    threshold: float | None = 200.0,
    window: int = 500,
    min_samples: int = 50,
) -> dict:
    """Score a recorded trail against actual queue minutes.

    ``actuals`` maps ``request_id`` → actual minutes; records that
    already carry an ``actual_minutes`` field (a pre-joined trail) need
    no mapping.  Scoring mirrors the live prequential path: every joined
    record scores the classifier (was the wait really past the cutoff?),
    and truly-long records with a regressor output feed APE into a
    :class:`DriftMonitor` — the report's alarms are the ones the online
    monitor would have raised, in order.
    """
    monitor = DriftMonitor(
        threshold=threshold,
        window=window,
        min_samples=min_samples,
        prefix="audit",
        publish=False,
    )
    n = joined = clf_correct = n_scored = 0
    ape_sum = 0.0
    alarms: list[dict] = []
    for rec in records:
        n += 1
        actual = rec.get("actual_minutes")
        if actual is None and actuals is not None:
            actual = actuals.get(rec.get("request_id"))
        if actual is None:
            continue
        actual = float(actual)
        joined += 1
        truth_long = actual > float(rec.get("cutoff_min", 0.0))
        clf_correct += truth_long == bool(rec.get("long_wait"))
        minutes = rec.get("minutes")
        if truth_long and minutes is not None and actual > 0:
            ape = 100.0 * abs(float(minutes) - actual) / actual
            n_scored += 1
            ape_sum += ape
            if monitor.update(ape, 1):
                alarms.append(
                    {
                        "at_record": n,
                        "request_id": rec.get("request_id"),
                        "rolling_mape": round(monitor.rolling_mape, 2),
                    }
                )
    rolling = monitor.rolling_mape
    return {
        "n_records": n,
        "n_joined": joined,
        "n_scored_long": n_scored,
        "classifier_accuracy": clf_correct / joined if joined else float("nan"),
        "mape": ape_sum / n_scored if n_scored else float("nan"),
        "rolling_mape": rolling,
        "n_drift_alarms": monitor.n_alarms,
        "alarms": alarms,
        "threshold": threshold,
        "window": window,
    }
