"""Request validation, admission control, and hot reload.

:class:`PredictionService` is the HTTP-agnostic middle of the serving
stack: it owns the loaded model, the micro-batcher, and (in registry
mode) the reload watcher.  The HTTP front end hands it raw request
bodies and gets back a status code + JSON-able payload + headers, so the
whole wire contract is unit-testable without a socket.

Error contract (golden-tested, do not drift):

- malformed body / wrong feature shape → **400** ``{"error": ...}``
- unknown partition → **422** ``{"error": ...}``
- queue full (admission control) → **503** + ``Retry-After``
- model call failure / timeout → **500** / **503**

Hot reload: the watcher polls the registry every ``reload_interval_s``.
A new highest version is loaded and verified **off the request path**,
then swapped in by a single attribute assignment — in-flight batches
finish on the model they started with, so no request is dropped.  Any
failure (corrupt artifact, half-written publish, version mismatch,
feature-width change) leaves the current model serving and bumps
``serve_reload_failures_total``.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.hierarchical import TroutModel
from repro.obs import tracing
from repro.obs.context import new_request_id
from repro.obs.events import emit
from repro.obs.metrics import get_registry
from repro.serve.audit import AuditTrail
from repro.serve.batcher import MicroBatcher, QueueFullError
from repro.serve.config import ServeConfig
from repro.serve.registry import LoadedModel, ModelRegistry, RegistryError
from repro.utils.logging import get_logger

__all__ = ["PredictionService", "ServeResponse"]

log = get_logger(__name__)


@dataclass
class ServeResponse:
    """One HTTP-shaped answer: status, JSON payload, extra headers."""

    status: int
    payload: dict
    headers: dict[str, str] = field(default_factory=dict)


class _BadRequest(ValueError):
    """Client-side validation failure; ``status`` picks 400 vs 422."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _is_number(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


class PredictionService:
    """Model + batcher + (optionally) registry watcher, one object.

    Build from a registry root for hot reload, or from a fixed
    :class:`LoadedModel` (``registry=None``) for tests and single-model
    serving.
    """

    def __init__(
        self,
        loaded: LoadedModel,
        config: ServeConfig | None = None,
        registry: ModelRegistry | None = None,
        audit: AuditTrail | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry
        self.audit = audit
        self._current = loaded
        self._reload_lock = threading.Lock()
        reg = get_registry()
        self._reloads_total = reg.counter(
            "serve_reloads_total", help="successful model hot reloads"
        )
        self._shed_total = reg.counter(
            "serve_shed_total",
            help="requests shed by admission control (503)",
        )
        self._version_gauge = reg.gauge(
            "serve_model_version", help="currently served registry version"
        )
        self._version_gauge.set(float(loaded.version))
        self.batcher = MicroBatcher(
            self._predict_fn_for(loaded),
            n_features=loaded.model.classifier.n_features,
            max_batch=self.config.max_batch,
            max_wait_s=self.config.max_wait_s,
            queue_depth=self.config.queue_depth,
        )
        self._stop = threading.Event()
        self._watcher: threading.Thread | None = None
        if registry is not None:
            self._watcher = threading.Thread(
                target=self._watch, name="trout-serve-reload", daemon=True
            )
            self._watcher.start()

    # ------------------------------------------------------------------ #
    # model lifecycle
    # ------------------------------------------------------------------ #
    @property
    def current(self) -> LoadedModel:
        return self._current

    @staticmethod
    def _predict_fn_for(loaded: LoadedModel):
        model: TroutModel = loaded.model
        version = loaded.version
        fingerprint = loaded.fingerprint

        def predict(rows: np.ndarray) -> list[tuple[int, str, object]]:
            return [(version, fingerprint, p) for p in model.predict(rows)]

        return predict

    def _reload_failure(self, reason: str, detail: str) -> None:
        get_registry().counter(
            "serve_reload_failures_total",
            help="registry reloads rejected (current model kept serving)",
            labels={"reason": reason},
        ).inc()
        emit("serve.reload_rejected", level="warning", reason=reason, detail=detail)

    def poll_registry(self) -> bool:
        """One reload check; True iff a new version was swapped in.

        Safe to call from tests or cron-style drivers; the watcher thread
        calls it on its interval.  A failed candidate is retried on the
        next poll (it may still be mid-publish repair).
        """
        if self.registry is None:
            return False
        with self._reload_lock:
            latest = self.registry.latest_version()
            if latest is None or latest <= self._current.version:
                return False
            try:
                candidate = self.registry.load(latest)
            except RegistryError as exc:
                self._reload_failure("load", str(exc))
                return False
            width = candidate.model.classifier.n_features
            if width != self.batcher.n_features:
                self._reload_failure(
                    "shape",
                    f"version {latest} expects {width} features, "
                    f"server built for {self.batcher.n_features}",
                )
                return False
            self._current = candidate
            self.batcher.predict_fn = self._predict_fn_for(candidate)
            self._version_gauge.set(float(candidate.version))
            self._reloads_total.inc()
            emit(
                "serve.model_reloaded",
                version=candidate.version,
                fingerprint=candidate.fingerprint[:16],
            )
            return True

    def _watch(self) -> None:
        while not self._stop.wait(self.config.reload_interval_s):
            try:
                self.poll_registry()
            except Exception:
                # A watcher crash must never take serving down with it.
                log.exception("reload watcher error; current model kept")
                self._reload_failure("watcher", "unexpected watcher error")

    def close(self) -> None:
        self._stop.set()
        if self._watcher is not None:
            self._watcher.join(timeout=5.0)
        self.batcher.close()
        if self.audit is not None:
            self.audit.flush()

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def _parse_features(self, body: bytes) -> tuple[np.ndarray, str | None]:
        try:
            doc = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from exc
        if not isinstance(doc, dict):
            raise _BadRequest("request body must be a JSON object")
        names = self._current.model.feature_names
        features = doc.get("features")
        if features is None:
            raise _BadRequest("missing required field 'features'")
        if isinstance(features, dict):
            missing = [n for n in names if n not in features]
            unknown = sorted(set(features) - set(names))
            if missing or unknown:
                raise _BadRequest(
                    "feature dict mismatch: "
                    f"missing {missing[:5]}, unknown {unknown[:5]}"
                )
            values = [features[n] for n in names]
        elif isinstance(features, list):
            if len(features) != len(names):
                raise _BadRequest(
                    f"'features' must have {len(names)} entries, "
                    f"got {len(features)}"
                )
            values = features
        else:
            raise _BadRequest("'features' must be a list or an object")
        if not all(_is_number(v) and math.isfinite(v) for v in values):
            raise _BadRequest("features must all be finite numbers")
        partition = doc.get("partition")
        if partition is not None and not isinstance(partition, str):
            raise _BadRequest("'partition' must be a string")
        if partition is not None and not self._current.known_partition(partition):
            raise _BadRequest(
                f"unknown partition {partition!r}; model serves "
                f"{list(self._current.partitions)}",
                status=422,
            )
        return np.array(values, dtype=np.float64), partition

    def _shed(self, why: str, request_id: str) -> ServeResponse:
        self._shed_total.inc()
        emit("serve.request_shed", level="warning", request_id=request_id, reason=why)
        return ServeResponse(
            status=503,
            payload={"error": why, "request_id": request_id},
            headers={"Retry-After": str(self.config.retry_after_s)},
        )

    def handle_predict(
        self, body: bytes, request_id: str | None = None
    ) -> ServeResponse:
        """The full ``/predict`` pipeline for one request body.

        ``request_id`` is the (already sanitised) client-supplied id; one
        is minted here otherwise.  Every JSON answer echoes it, and the
        whole pipeline runs inside a ``serve.request`` span whose context
        rides the batch ticket into the worker thread — handler span and
        batch span share one ``trace_id``.
        """
        rid = request_id or new_request_id()
        with tracing.span("serve.request", request_id=rid) as req_span:
            return self._predict(body, rid, req_span)

    def _predict(
        self, body: bytes, rid: str, req_span: tracing.Span
    ) -> ServeResponse:
        t0 = perf_counter()
        try:
            row, partition = self._parse_features(body)
        except _BadRequest as exc:
            return ServeResponse(
                status=exc.status,
                payload={"error": str(exc), "request_id": rid},
            )
        try:
            ticket = self.batcher.submit(row, context=req_span.context(rid))
        except QueueFullError as exc:
            return self._shed(f"overloaded: {exc}", rid)
        try:
            version, fingerprint, prediction = ticket.wait(
                self.config.request_timeout_s
            )
        except TimeoutError:
            return self._shed("prediction timed out", rid)
        except Exception as exc:
            get_registry().counter(
                "serve_prediction_failures_total",
                help="predictions that raised inside the batch worker",
            ).inc()
            emit(
                "serve.prediction_failed",
                level="error",
                request_id=rid,
                error=str(exc),
            )
            return ServeResponse(
                status=500,
                payload={"error": f"prediction failed: {exc}", "request_id": rid},
            )
        total_s = perf_counter() - t0
        req_span.meta["batch_size"] = ticket.batch_size
        req_span.meta["queue_wait_s"] = round(ticket.queue_wait_s, 6)
        req_span.meta["compute_s"] = round(ticket.compute_s, 6)
        req_span.meta["model_version"] = version
        minutes = prediction.minutes
        cutoff = self._current.model.cutoff_min
        if self.audit is not None:
            self.audit.append(
                request_id=rid,
                trace_id=req_span.trace_id,
                row=row,
                model_version=version,
                model_fingerprint=fingerprint,
                p_long=float(prediction.p_long),
                long_wait=bool(prediction.long_wait),
                minutes=None if minutes is None else float(minutes),
                cutoff_min=float(cutoff),
                partition=partition,
                queue_wait_s=ticket.queue_wait_s,
                compute_s=ticket.compute_s,
                total_s=total_s,
                batch_size=ticket.batch_size,
            )
        return ServeResponse(
            status=200,
            payload={
                "long_wait": prediction.long_wait,
                "message": prediction.message(cutoff),
                "minutes": None if minutes is None else float(minutes),
                "model_version": version,
                "p_long": float(prediction.p_long),
                "request_id": rid,
            },
        )

    def handle_healthz(self) -> ServeResponse:
        loaded = self._current
        if loaded is None:  # defensive: construction requires a model
            return ServeResponse(status=503, payload={"status": "unavailable"})
        return ServeResponse(
            status=200,
            payload={
                "model_version": loaded.version,
                "partitions": list(loaded.partitions),
                "status": "ok",
            },
        )
