"""Versioned on-disk model registry with atomic publish.

Layout — one directory per published version under a registry root::

    registry/
      v0001/
        classifier.npz  regressor.npz  scalers.npz  meta.json
        MANIFEST.json
      v0002/
        ...

Highest version wins.  Publishing stages the artifact into a
dot-prefixed temporary directory (invisible to :meth:`ModelRegistry.scan`)
and then ``os.replace``-renames it into place, so a reader can never see
a half-written version.  ``MANIFEST.json`` records the version number and
a SHA-256 fingerprint over every artifact file; :meth:`ModelRegistry.load`
re-hashes and refuses anything that does not match — a truncated weight
file, a tampered manifest, or a version field that disagrees with the
directory name all fail loudly instead of serving garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

from repro.core.hierarchical import TroutModel
from repro.obs.events import emit

__all__ = ["LoadedModel", "ModelRegistry", "RegistryError", "publish_model"]

MANIFEST_NAME = "MANIFEST.json"
_VERSION_WIDTH = 4


class RegistryError(RuntimeError):
    """A registry version is missing, corrupt, or inconsistent."""


@dataclass
class LoadedModel:
    """One registry version, loaded and verified."""

    model: TroutModel
    version: int
    fingerprint: str
    partitions: tuple[str, ...] = ()

    def known_partition(self, name: str) -> bool:
        """Whether ``name`` is servable (no partition list = accept all)."""
        return not self.partitions or name in self.partitions


def _version_dirname(version: int) -> str:
    return f"v{version:0{_VERSION_WIDTH}d}"


def _parse_version(name: str) -> int | None:
    if len(name) < _VERSION_WIDTH + 1 or name[0] != "v":
        return None
    digits = name[1:]
    return int(digits) if digits.isdigit() else None


def artifact_fingerprint(directory: str | Path) -> str:
    """SHA-256 over every artifact file (name + bytes), manifest excluded.

    Order-independent of the filesystem: files are hashed in sorted-name
    order, so the same artifact always fingerprints identically.
    """
    d = Path(directory)
    h = hashlib.sha256()
    for path in sorted(p for p in d.iterdir() if p.name != MANIFEST_NAME):
        if not path.is_file():
            raise RegistryError(f"unexpected non-file artifact {path.name!r}")
        h.update(path.name.encode("utf-8"))
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    return h.hexdigest()


def publish_model(
    registry_root: str | Path,
    model: TroutModel,
    partitions: tuple[str, ...] | list[str] = (),
) -> int:
    """Atomically publish ``model`` as the registry's next version.

    Stages into ``.staging-vNNNN`` (ignored by scans), writes the
    manifest last, then renames the whole directory into place.  Returns
    the published version number.
    """
    root = Path(registry_root)
    root.mkdir(parents=True, exist_ok=True)
    registry = ModelRegistry(root)
    version = (registry.latest_version() or 0) + 1
    final = root / _version_dirname(version)
    staging = root / f".staging-{_version_dirname(version)}"
    if staging.exists():
        shutil.rmtree(staging)
    try:
        model.save(staging)
        manifest = {
            "version": version,
            "fingerprint": artifact_fingerprint(staging),
            "partitions": list(partitions),
        }
        (staging / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        os.replace(staging, final)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    emit(
        "registry.published",
        version=version,
        fingerprint=manifest["fingerprint"][:16],
        path=str(final),
    )
    return version


class ModelRegistry:
    """Read side of the registry: scan, verify, load."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    def versions(self) -> list[int]:
        """Published version numbers, ascending (staging dirs excluded)."""
        if not self.root.is_dir():
            return []
        found = []
        for entry in self.root.iterdir():
            v = _parse_version(entry.name)
            if v is not None and entry.is_dir():
                found.append(v)
        return sorted(found)

    def latest_version(self) -> int | None:
        versions = self.versions()
        return versions[-1] if versions else None

    def version_dir(self, version: int) -> Path:
        return self.root / _version_dirname(version)

    # ------------------------------------------------------------------ #
    def read_manifest(self, version: int) -> dict:
        path = self.version_dir(version) / MANIFEST_NAME
        try:
            manifest = json.loads(path.read_text())
        except FileNotFoundError:
            raise RegistryError(
                f"version {version} has no {MANIFEST_NAME} — "
                "half-written publish (missing atomic rename)?"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(
                f"version {version} manifest unreadable: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise RegistryError(f"version {version} manifest is not an object")
        return manifest

    def load(self, version: int) -> LoadedModel:
        """Load and verify one version; raises :class:`RegistryError` on
        any inconsistency, leaving the caller's current model untouched."""
        d = self.version_dir(version)
        if not d.is_dir():
            raise RegistryError(f"version {version} does not exist")
        manifest = self.read_manifest(version)
        declared = manifest.get("version")
        if declared != version:
            raise RegistryError(
                f"version downgrade/mismatch: directory {d.name} declares "
                f"version {declared!r}"
            )
        fingerprint = manifest.get("fingerprint")
        if not isinstance(fingerprint, str):
            raise RegistryError(f"version {version} manifest lacks a fingerprint")
        actual = artifact_fingerprint(d)
        if actual != fingerprint:
            raise RegistryError(
                f"version {version} fingerprint mismatch: artifact is "
                "corrupt or was modified after publish"
            )
        try:
            model = TroutModel.load(d)
        except Exception as exc:
            raise RegistryError(f"version {version} failed to load: {exc}") from exc
        partitions = tuple(str(p) for p in manifest.get("partitions", ()))
        return LoadedModel(
            model=model,
            version=version,
            fingerprint=fingerprint,
            partitions=partitions,
        )

    def load_latest(self) -> LoadedModel:
        latest = self.latest_version()
        if latest is None:
            raise RegistryError(f"registry {self.root} has no published versions")
        return self.load(latest)
