"""Online serving: ``trout serve`` (DESIGN.md §10).

The pieces, bottom-up:

- :mod:`repro.serve.registry` — versioned on-disk model registry with
  atomic publish and fingerprint-verified loads;
- :mod:`repro.serve.batcher` — the request micro-batcher that coalesces
  concurrent predictions into one pass through the allocation-free NN
  predict path;
- :mod:`repro.serve.service` — request validation, admission control,
  and the hot-reload watcher tying registry and batcher together;
- :mod:`repro.serve.http` — the stdlib threaded HTTP front end
  (``/predict``, ``/healthz``, ``/metrics``);
- :mod:`repro.serve.audit` — the per-prediction audit trail (rotating
  JSONL) and its offline ``tail``/``stats``/``replay`` read side.
"""

from repro.serve.audit import (
    AuditTrail,
    audit_stats,
    iter_audit_records,
    replay_audit,
)
from repro.serve.batcher import BatchTicket, MicroBatcher, QueueFullError
from repro.serve.config import ServeConfig
from repro.serve.registry import (
    LoadedModel,
    ModelRegistry,
    RegistryError,
    publish_model,
)
from repro.serve.service import PredictionService, ServeResponse
from repro.serve.http import TroutHTTPServer, start_server

__all__ = [
    "AuditTrail",
    "BatchTicket",
    "LoadedModel",
    "MicroBatcher",
    "ModelRegistry",
    "PredictionService",
    "QueueFullError",
    "RegistryError",
    "ServeConfig",
    "ServeResponse",
    "TroutHTTPServer",
    "audit_stats",
    "iter_audit_records",
    "publish_model",
    "replay_audit",
    "start_server",
]
