"""repro — reproduction of "A Hierarchical Deep Learning Approach for
Predicting Job Queue Times in HPC Systems" (SC 2024).

The package builds every layer of the paper's system from scratch on
NumPy: a Slurm-like scheduler simulator and Anvil-shaped synthetic
workload (substituting for the proprietary trace), interval-tree feature
engineering, a feed-forward NN framework, classical-ML baselines, SMOTE
balancing, Optuna-style HPO, SHAP-style attribution, and the hierarchical
TROUT model with its CLI.

Quickstart::

    from repro.workload import WorkloadConfig, generate_trace
    from repro.core import TroutConfig, train_trout
    from repro.core.training import build_feature_matrix

    trace, cluster = generate_trace(WorkloadConfig(n_jobs=30_000, seed=7))
    fm, runtime = build_feature_matrix(trace.jobs, cluster)
    result = train_trout(fm)
    print(result.model.predict_messages(fm.X[-5:]))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
