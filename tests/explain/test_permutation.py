"""Permutation importance."""

import numpy as np
import pytest

from repro.explain.permutation import permutation_importance


def test_identifies_signal_features():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(500, 4))
    y = 3 * X[:, 0] + 0.1 * X[:, 1]  # x2, x3 are noise

    def predict(X):
        return 3 * X[:, 0] + 0.1 * X[:, 1]

    out = permutation_importance(predict, X, y, n_repeats=3, seed=0)
    imp = out["importances_mean"]
    assert imp[0] > imp[1] > 0
    np.testing.assert_allclose(imp[2:], 0.0, atol=1e-9)
    assert out["baseline"] == 0.0


def test_custom_metric():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 2))
    y = X[:, 0]

    mae = lambda t, p: float(np.mean(np.abs(t - p)))  # noqa: E731
    out = permutation_importance(lambda X: X[:, 0], X, y, metric=mae, seed=0)
    assert out["importances_mean"][0] > 0.5


def test_repeats_reduce_variance():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 2))
    y = X[:, 0] + 0.5 * rng.normal(size=300)
    out = permutation_importance(lambda X: X[:, 0], X, y, n_repeats=8, seed=0)
    assert out["importances_std"][0] < out["importances_mean"][0]


def test_validation():
    with pytest.raises(ValueError):
        permutation_importance(lambda X: X[:, 0], np.zeros((3, 2)), np.zeros(3), n_repeats=0)
