"""KernelSHAP-style explainer properties."""

import numpy as np
import pytest

from repro.explain.kernel_shap import KernelShapExplainer


def _linear_model(w):
    return lambda X: X @ w


def test_local_accuracy():
    """Attributions + base value must reconstruct the prediction."""
    rng = np.random.default_rng(0)
    w = np.array([2.0, -1.0, 0.5, 0.0])
    background = rng.normal(size=(50, 4))
    expl = KernelShapExplainer(_linear_model(w), background, n_samples=256, seed=0)
    x = rng.normal(size=4)
    phi = expl.shap_values(x)
    fx = float(x @ w)
    np.testing.assert_allclose(phi.sum() + expl.base_value, fx, rtol=1e-6)


def test_linear_model_exact_attributions():
    """For a linear model, SHAP values are w_i (x_i − E[x_i])."""
    rng = np.random.default_rng(1)
    w = np.array([3.0, -2.0, 1.0])
    background = rng.normal(size=(100, 3))
    expl = KernelShapExplainer(_linear_model(w), background, n_samples=512, seed=0)
    x = np.array([1.0, 2.0, -1.0])
    phi = expl.shap_values(x)
    expected = w * (x - background.mean(axis=0))
    np.testing.assert_allclose(phi, expected, atol=0.05)


def test_irrelevant_feature_gets_zero():
    rng = np.random.default_rng(2)
    w = np.array([5.0, 0.0])
    background = rng.normal(size=(60, 2))
    expl = KernelShapExplainer(_linear_model(w), background, n_samples=256, seed=0)
    phi = expl.shap_values(np.array([2.0, 10.0]))
    assert abs(phi[1]) < 0.05


def test_single_feature_case():
    background = np.array([[0.0], [2.0]])
    expl = KernelShapExplainer(lambda X: X[:, 0] * 2, background, n_samples=16, seed=0)
    phi = expl.shap_values(np.array([3.0]))
    # f(x) − base = 6 − 2
    np.testing.assert_allclose(phi, [4.0])


def test_mean_abs_ranking_for_pruning():
    rng = np.random.default_rng(3)
    w = np.array([4.0, 1.0, 0.0])
    background = rng.normal(size=(40, 3))
    expl = KernelShapExplainer(_linear_model(w), background, n_samples=128, seed=0)
    imp = expl.mean_abs_shap(rng.normal(size=(10, 3)))
    assert imp[0] > imp[1] > imp[2]


def test_validation():
    bg = np.zeros((5, 3))
    with pytest.raises(ValueError):
        KernelShapExplainer(lambda X: X[:, 0], bg, n_samples=2)
    expl = KernelShapExplainer(lambda X: X[:, 0], bg, n_samples=16, seed=0)
    with pytest.raises(ValueError):
        expl.shap_values(np.zeros(5))
