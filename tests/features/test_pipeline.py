"""Table II pipeline assembly."""

import numpy as np
import pytest

from repro.features.names import FEATURE_GROUPS, FEATURE_NAMES, feature_index
from repro.features.pipeline import FeaturePipeline
from repro.features.static_specs import static_partition_features


def test_feature_vocabulary_is_33():
    assert len(FEATURE_NAMES) == 33
    assert len(set(FEATURE_NAMES)) == 33
    assert sum(len(g) for g in FEATURE_GROUPS.values()) == 33


def test_feature_index_lookup():
    assert feature_index("priority") == 0
    assert FEATURE_NAMES[feature_index("pred_runtime")] == "pred_runtime"
    with pytest.raises(KeyError):
        feature_index("nope")


def test_pipeline_shapes_and_finiteness(trace_jobs, cluster):
    fm = FeaturePipeline(cluster).compute(trace_jobs)
    assert fm.X.shape == (len(trace_jobs), 33)
    assert np.all(np.isfinite(fm.X))
    assert fm.names == FEATURE_NAMES
    assert len(fm.queue_time_min) == len(trace_jobs)
    assert fm.log_transformed


def test_pipeline_raw_mode(trace_jobs, cluster):
    raw = FeaturePipeline(cluster, log_transform=False).compute(trace_jobs)
    logd = FeaturePipeline(cluster).compute(trace_jobs)
    np.testing.assert_allclose(np.log1p(np.maximum(raw.X, 0)), logd.X, atol=1e-9)


def test_request_columns_match_records(trace_jobs, cluster):
    fm = FeaturePipeline(cluster, log_transform=False).compute(trace_jobs)
    np.testing.assert_allclose(
        fm.column("req_cpus"), trace_jobs.column("req_cpus").astype(float)
    )
    np.testing.assert_allclose(
        fm.column("timelimit_raw"), trace_jobs.column("timelimit_min")
    )
    np.testing.assert_allclose(fm.column("priority"), trace_jobs.column("priority"))


def test_static_specs_broadcast(trace_jobs, cluster):
    cols = static_partition_features(trace_jobs, cluster)
    specs = cluster.partition_specs()
    p = trace_jobs.column("partition").astype(int)
    np.testing.assert_allclose(cols["par_total_cpu"], specs["total_cpus"][p])
    # Every partition's nodes positive.
    assert np.all(cols["par_total_nodes"] > 0)


def test_pred_runtime_fallback_is_timelimit(trace_jobs, cluster):
    fm = FeaturePipeline(cluster, log_transform=False).compute(trace_jobs)
    np.testing.assert_allclose(fm.column("pred_runtime"), trace_jobs.column("timelimit_min"))


def test_pred_runtime_misalignment_rejected(trace_jobs, cluster):
    with pytest.raises(ValueError):
        FeaturePipeline(cluster).compute(trace_jobs, pred_runtime_min=np.ones(3))


def test_empty_trace_rejected(cluster):
    from repro.data.schema import JobSet

    with pytest.raises(ValueError):
        FeaturePipeline(cluster).compute(JobSet.empty(cluster.partition_names))


def test_feature_matrix_column_accessor(feature_matrix):
    fm, _ = feature_matrix
    np.testing.assert_array_equal(fm.column("priority"), fm.X[:, 0])
    assert len(fm) == len(fm.X)


def test_user_window_configurable(trace_jobs, cluster):
    """§V: the user-history window can match the fair-share period."""
    import pytest as _pytest

    day = FeaturePipeline(cluster, log_transform=False).compute(trace_jobs)
    week = FeaturePipeline(
        cluster, log_transform=False, user_window_s=7 * 24 * 3600.0
    ).compute(trace_jobs)
    # A wider window can only see more history.
    assert (
        week.column("user_jobs_past_day").sum()
        >= day.column("user_jobs_past_day").sum()
    )
    with _pytest.raises(ValueError):
        FeaturePipeline(cluster, user_window_s=0.0)
