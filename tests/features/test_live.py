"""Deployment-path features: future-blindness and offline equivalence.

The decisive property: for every job pending at a query instant, the
feature row computed from the *censored* trace (no starts/ends after
t_now) is identical to the row the offline training pipeline computes with
full hindsight — so the trained model serves unchanged at deployment and
the offline evaluation is honest about what deployment can know.
"""

import numpy as np
import pytest

from repro.core.training import build_feature_matrix
from repro.features.live import live_features, mask_future, pending_at, running_at
from repro.features.pipeline import FeaturePipeline


def _query_times(trace_jobs, n=4):
    """A few instants where something is actually pending."""
    q = trace_jobs.queue_time_min
    waiting = np.flatnonzero(q > 5.0)
    rec = trace_jobs.records
    # Midpoints of some long waits: the job is pending right then.
    return [
        float(0.5 * (rec["eligible_time"][j] + rec["start_time"][j]))
        for j in waiting[:: max(1, len(waiting) // n)][:n]
    ]


def test_mask_future_censors_correctly(trace_jobs):
    t_now = float(np.median(trace_jobs.records["start_time"]))
    masked = mask_future(trace_jobs, t_now)
    rec = masked.records
    # No knowledge of future submissions.
    assert np.all(rec["submit_time"] <= t_now)
    # Everything that "happened" in the masked trace happened by t_now...
    started = rec["start_time"] <= t_now
    ended = rec["end_time"] <= t_now
    assert np.all(rec["start_time"][ended] <= t_now)
    # ...and unknown futures are far beyond any real timestamp.
    horizon = trace_jobs.records["end_time"].max()
    assert np.all(rec["start_time"][~started] > horizon)
    assert np.all(rec["end_time"][~ended] > horizon)


def test_pending_running_membership(trace_jobs):
    for t_now in _query_times(trace_jobs):
        pend = pending_at(trace_jobs, t_now)
        run = running_at(trace_jobs, t_now)
        assert len(np.intersect1d(pend, run)) == 0
        rec = trace_jobs.records
        assert np.all(rec["eligible_time"][pend] <= t_now)
        assert np.all(rec["start_time"][pend] > t_now)
        assert np.all(rec["start_time"][run] <= t_now)
        assert np.all(rec["end_time"][run] > t_now)


def test_live_rows_equal_offline_rows(small_trace, feature_matrix):
    """THE deployment guarantee: censored == hindsight, feature by feature."""
    result, cluster = small_trace
    fm, runtime = feature_matrix
    jobs = result.jobs
    pred = runtime.predict_minutes(jobs)
    for t_now in _query_times(jobs, n=3):
        X_live, positions = live_features(
            jobs, t_now, cluster, pred_runtime_min=pred
        )
        assert len(positions) > 0
        np.testing.assert_allclose(
            X_live,
            fm.X[positions],
            atol=1e-9,
            err_msg=f"live/offline feature mismatch at t={t_now}",
        )


def test_live_features_reject_empty(trace_jobs, cluster):
    with pytest.raises(ValueError, match="no jobs known"):
        live_features(trace_jobs, t_now=-1.0, cluster=cluster)


def test_pending_set_matches_masked_pipeline(trace_jobs, cluster):
    t_now = _query_times(trace_jobs, 1)[0]
    X_live, positions = live_features(trace_jobs, t_now, cluster)
    pend = pending_at(trace_jobs, t_now)
    np.testing.assert_array_equal(np.sort(positions), np.sort(pend))
    assert X_live.shape == (len(pend), 33)
