"""Serial-vs-parallel equivalence harness.

The paper's chunked feature engineering is refactored to fan out across
processes; parallel refactors of numeric code silently drift, so these
property tests pin the contract: for ANY trace, chunk size and overlap,
``n_jobs=4`` produces **byte-identical** results to ``n_jobs=1`` at every
level — chunked forest stabs, partition snapshots, the full Table II
matrix, and the deployment-time (``features.live``) path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import JOB_DTYPE, JobSet
from repro.features.interval_tree import ChunkedIntervalForest
from repro.features.live import live_features
from repro.features.pipeline import FeaturePipeline
from repro.features.snapshots import SNAPSHOT_KEYS, partition_snapshots
from repro.slurm.anvil import ANVIL_PARTITIONS, anvil_cluster

# Keep examples modest: every parallel case forks a real process pool.
EQUIV_SETTINGS = dict(max_examples=8, deadline=None)


@st.composite
def chunking(draw) -> tuple[int, int]:
    """A (chunk_size, overlap) pair with 0 <= overlap < chunk_size."""
    chunk_size = draw(st.integers(min_value=2, max_value=40))
    overlap = draw(st.integers(min_value=0, max_value=chunk_size - 1))
    return chunk_size, overlap


@st.composite
def intervals(draw, max_n: int = 80) -> tuple[np.ndarray, np.ndarray]:
    """Random half-open interval sets, empty intervals included."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    t = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
    starts = np.array(draw(st.lists(t, min_size=n, max_size=n)))
    lengths = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    return starts, starts + lengths


@st.composite
def traces(draw, max_n: int = 60) -> JobSet:
    """Random small JobSets over the Anvil partition vocabulary."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    rec = np.zeros(n, dtype=JOB_DTYPE)
    rec["job_id"] = np.arange(1, n + 1)
    rec["user_id"] = rng.integers(0, 5, n)
    rec["partition"] = rng.integers(0, len(ANVIL_PARTITIONS), n)
    submit = np.sort(rng.uniform(0.0, 5e4, n))
    wait = rng.exponential(600.0, n)
    run = rng.exponential(1800.0, n)
    rec["submit_time"] = submit
    rec["eligible_time"] = submit + rng.uniform(0.0, 10.0, n)
    rec["start_time"] = rec["eligible_time"] + wait
    rec["end_time"] = rec["start_time"] + run
    rec["req_cpus"] = rng.integers(1, 128, n)
    rec["req_mem_gb"] = rng.uniform(1.0, 256.0, n)
    rec["req_nodes"] = rng.integers(1, 4, n)
    rec["timelimit_min"] = rng.uniform(10.0, 2880.0, n)
    rec["priority"] = rng.integers(0, 10_000, n).astype(np.float64)
    return JobSet(rec, ANVIL_PARTITIONS)


@given(iv=intervals(), ck=chunking())
@settings(**EQUIV_SETTINGS)
def test_forest_stab_parallel_equivalence(iv, ck):
    starts, ends = iv
    chunk_size, overlap = ck
    ts = np.concatenate([starts, ends - 0.5])
    serial = ChunkedIntervalForest(starts, ends, chunk_size, overlap, n_jobs=1)
    par = ChunkedIntervalForest(starts, ends, chunk_size, overlap, n_jobs=4)
    assert serial.n_trees == par.n_trees
    iv_s, ptr_s = serial.stab_batch(ts)
    iv_p, ptr_p = par.stab_batch(ts)
    assert iv_s.tobytes() == iv_p.tobytes()
    assert ptr_s.tobytes() == ptr_p.tobytes()


@given(jobs=traces(), ck=chunking())
@settings(**EQUIV_SETTINGS)
def test_snapshots_parallel_equivalence(jobs, ck):
    chunk_size, overlap = ck
    serial = partition_snapshots(
        jobs, chunk_size=chunk_size, overlap=overlap, n_jobs=1
    )
    par = partition_snapshots(
        jobs, chunk_size=chunk_size, overlap=overlap, n_jobs=4
    )
    for key in SNAPSHOT_KEYS:
        assert serial[key].tobytes() == par[key].tobytes(), key


@given(jobs=traces(), ck=chunking())
@settings(**EQUIV_SETTINGS)
def test_pipeline_parallel_equivalence(jobs, ck):
    chunk_size, overlap = ck
    cluster = anvil_cluster(scale=0.05)
    kw = dict(chunk_size=chunk_size, overlap=overlap)
    fm_s = FeaturePipeline(cluster, n_jobs=1, **kw).compute(jobs)
    fm_p = FeaturePipeline(cluster, n_jobs=4, **kw).compute(jobs)
    assert fm_s.X.tobytes() == fm_p.X.tobytes()
    assert fm_s.names == fm_p.names


@given(jobs=traces(max_n=40), ck=chunking())
@settings(**EQUIV_SETTINGS)
def test_live_path_parallel_equivalence(jobs, ck):
    chunk_size, overlap = ck
    cluster = anvil_cluster(scale=0.05)
    rec = jobs.records
    # An instant with at least one known job; median keeps both pending and
    # running sets non-trivial in most draws.
    t_now = float(np.median(rec["eligible_time"]))
    if not np.any(rec["submit_time"] <= t_now):
        t_now = float(rec["submit_time"].max())
    kw = dict(chunk_size=chunk_size, overlap=overlap)
    X_s, pos_s = live_features(
        jobs, t_now, cluster, pipeline=FeaturePipeline(cluster, n_jobs=1, **kw)
    )
    X_p, pos_p = live_features(
        jobs, t_now, cluster, pipeline=FeaturePipeline(cluster, n_jobs=4, **kw)
    )
    assert X_s.tobytes() == X_p.tobytes()
    np.testing.assert_array_equal(pos_s, pos_p)


def test_resolve_n_jobs_env(monkeypatch):
    from repro.features.pipeline import resolve_n_jobs

    monkeypatch.delenv("REPRO_N_JOBS", raising=False)
    assert resolve_n_jobs(None) == 1
    assert resolve_n_jobs(3) == 3
    monkeypatch.setenv("REPRO_N_JOBS", "2")
    assert resolve_n_jobs(None) == 2
    assert resolve_n_jobs(1) == 1  # explicit beats the environment
    monkeypatch.setenv("REPRO_N_JOBS", "abc")
    with pytest.raises(ValueError, match="REPRO_N_JOBS"):
        resolve_n_jobs(None)


def test_effective_pipeline_trace_equivalence(trace_jobs, cluster):
    """One realistic (simulator-generated) trace through the full pipeline
    at paper-style chunking, serial vs parallel."""
    sub = trace_jobs[: min(len(trace_jobs), 3_000)]
    kw = dict(chunk_size=500, overlap=50)
    fm_s = FeaturePipeline(cluster, n_jobs=1, **kw).compute(sub)
    fm_p = FeaturePipeline(cluster, n_jobs=4, **kw).compute(sub)
    assert fm_s.X.tobytes() == fm_p.X.tobytes()
    assert fm_s.queue_time_min.tobytes() == fm_p.queue_time_min.tobytes()
