"""User past-day aggregates vs brute force."""

import numpy as np
import pytest

from repro.data.schema import JOB_DTYPE, JobSet
from repro.features.user_history import PAST_DAY_S, USER_KEYS, user_past_day


def _trace(n=80, seed=0, n_users=5):
    rng = np.random.default_rng(seed)
    rec = np.zeros(n, dtype=JOB_DTYPE)
    rec["job_id"] = np.arange(n)
    rec["user_id"] = rng.integers(0, n_users, n)
    submit = np.sort(rng.uniform(0, 5 * PAST_DAY_S, n))
    rec["submit_time"] = submit
    delay = rng.exponential(3600, n) * (rng.random(n) < 0.3)
    rec["eligible_time"] = submit + delay
    rec["start_time"] = rec["eligible_time"] + 1
    rec["end_time"] = rec["start_time"] + 1
    rec["req_cpus"] = rng.integers(1, 32, n)
    rec["req_mem_gb"] = rng.uniform(1, 64, n)
    rec["req_nodes"] = rng.integers(1, 3, n)
    rec["timelimit_min"] = rng.choice([10, 60, 600], n)
    return JobSet(rec, ("p0",))


def _brute(jobs, window):
    rec = jobs.records
    n = len(jobs)
    out = {k: np.zeros(n) for k in USER_KEYS}
    for j in range(n):
        t = rec["eligible_time"][j]
        for i in range(n):
            if i == j or rec["user_id"][i] != rec["user_id"][j]:
                continue
            if t - window <= rec["submit_time"][i] < t:
                out["user_jobs_past_day"][j] += 1
                out["user_cpus_past_day"][j] += rec["req_cpus"][i]
                out["user_mem_past_day"][j] += rec["req_mem_gb"][i]
                out["user_nodes_past_day"][j] += rec["req_nodes"][i]
                out["user_timelimit_past_day"][j] += rec["timelimit_min"][i]
    return out


@pytest.mark.parametrize("seed", [0, 1, 5])
def test_matches_bruteforce(seed):
    jobs = _trace(seed=seed)
    got = user_past_day(jobs)
    want = _brute(jobs, PAST_DAY_S)
    for key in USER_KEYS:
        np.testing.assert_allclose(got[key], want[key], err_msg=key, atol=1e-6)


def test_window_parameter():
    jobs = _trace(seed=2)
    narrow = user_past_day(jobs, window_s=60.0)
    wide = user_past_day(jobs, window_s=10 * PAST_DAY_S)
    assert narrow["user_jobs_past_day"].sum() <= wide["user_jobs_past_day"].sum()
    with pytest.raises(ValueError):
        user_past_day(jobs, window_s=0.0)


def test_own_job_excluded():
    # Single user, single job: nothing in the window.
    rec = np.zeros(1, dtype=JOB_DTYPE)
    rec["req_cpus"] = rec["req_nodes"] = 1
    rec["req_mem_gb"] = rec["timelimit_min"] = 1.0
    got = user_past_day(JobSet(rec, ("p0",)))
    assert all(got[k][0] == 0.0 for k in USER_KEYS)
