"""Partition snapshot aggregates vs a brute-force reference."""

import numpy as np
import pytest

from repro.data.schema import JOB_DTYPE, JobSet
from repro.features.snapshots import SNAPSHOT_KEYS, partition_snapshots


def _trace(n=60, seed=0, n_parts=2):
    rng = np.random.default_rng(seed)
    rec = np.zeros(n, dtype=JOB_DTYPE)
    rec["job_id"] = np.arange(n)
    rec["partition"] = rng.integers(0, n_parts, n)
    elig = np.sort(rng.uniform(0, 500, n))
    queue = rng.exponential(40, n) * (rng.random(n) < 0.6)
    run = rng.exponential(60, n) + 1
    rec["submit_time"] = elig
    rec["eligible_time"] = elig
    rec["start_time"] = elig + queue
    rec["end_time"] = elig + queue + run
    rec["req_cpus"] = rng.integers(1, 64, n)
    rec["req_mem_gb"] = rng.uniform(1, 128, n)
    rec["req_nodes"] = rng.integers(1, 4, n)
    rec["timelimit_min"] = rng.choice([30, 60, 240], n)
    rec["priority"] = rng.uniform(0, 1000, n)
    return JobSet(rec, tuple(f"p{i}" for i in range(n_parts)))


def _brute(jobs, pred):
    rec = jobs.records
    n = len(jobs)
    out = {k: np.zeros(n) for k in SNAPSHOT_KEYS}
    for j in range(n):
        t = rec["eligible_time"][j]
        p = rec["partition"][j]
        for i in range(n):
            if i == j or rec["partition"][i] != p:
                continue
            pending = rec["eligible_time"][i] <= t < rec["start_time"][i]
            running = rec["start_time"][i] <= t < rec["end_time"][i]
            if pending:
                out["par_jobs_queue"][j] += 1
                out["par_cpus_queue"][j] += rec["req_cpus"][i]
                out["par_mem_queue"][j] += rec["req_mem_gb"][i]
                out["par_nodes_queue"][j] += rec["req_nodes"][i]
                out["par_timelimit_queue"][j] += rec["timelimit_min"][i]
                out["par_queue_pred_timelimit"][j] += pred[i]
                if rec["priority"][i] > rec["priority"][j]:
                    out["par_jobs_ahead"][j] += 1
                    out["par_cpus_ahead"][j] += rec["req_cpus"][i]
                    out["par_mem_ahead"][j] += rec["req_mem_gb"][i]
                    out["par_nodes_ahead"][j] += rec["req_nodes"][i]
                    out["par_timelimit_ahead"][j] += rec["timelimit_min"][i]
            if running:
                out["par_jobs_running"][j] += 1
                out["par_cpus_running"][j] += rec["req_cpus"][i]
                out["par_mem_running"][j] += rec["req_mem_gb"][i]
                out["par_nodes_running"][j] += rec["req_nodes"][i]
                out["par_timelimit_running"][j] += rec["timelimit_min"][i]
                out["par_running_pred_timelimit"][j] += pred[i]
    return out


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_snapshots_match_bruteforce(seed):
    jobs = _trace(seed=seed)
    rng = np.random.default_rng(seed + 99)
    pred = rng.uniform(1, 100, len(jobs))
    got = partition_snapshots(jobs, pred_runtime_min=pred)
    want = _brute(jobs, pred)
    for key in SNAPSHOT_KEYS:
        np.testing.assert_allclose(got[key], want[key], err_msg=key, atol=1e-9)


def test_snapshots_chunked_equals_monolithic():
    jobs = _trace(n=120, seed=3)
    a = partition_snapshots(jobs, chunk_size=100_000, overlap=10_000)
    b = partition_snapshots(jobs, chunk_size=30, overlap=5)
    for key in SNAPSHOT_KEYS:
        np.testing.assert_allclose(a[key], b[key], err_msg=key, atol=1e-9)


def test_ahead_subset_of_queue():
    jobs = _trace(n=100, seed=4)
    got = partition_snapshots(jobs)
    assert np.all(got["par_jobs_ahead"] <= got["par_jobs_queue"])
    assert np.all(got["par_cpus_ahead"] <= got["par_cpus_queue"] + 1e-9)


def test_zero_queue_jobs_see_no_self():
    # A job that starts instantly has an empty pending interval and must
    # not count itself anywhere.
    rec = np.zeros(1, dtype=JOB_DTYPE)
    rec["end_time"] = 10.0
    rec["req_cpus"] = rec["req_nodes"] = 1
    rec["req_mem_gb"] = rec["timelimit_min"] = 1.0
    got = partition_snapshots(JobSet(rec, ("p0",)))
    for key in ("par_jobs_queue", "par_jobs_ahead", "par_jobs_running"):
        assert got[key][0] == 0.0


def test_pred_runtime_shape_checked():
    jobs = _trace(n=10)
    with pytest.raises(ValueError):
        partition_snapshots(jobs, pred_runtime_min=np.ones(3))
