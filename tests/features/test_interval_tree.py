"""Interval tree correctness — including hypothesis equivalence with the
naive O(n·m) reference on arbitrary interval sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.interval_tree import (
    ChunkedIntervalForest,
    IntervalTree,
    naive_stab_batch,
)


def _csr_sets(indices, indptr):
    return [
        frozenset(indices[indptr[k] : indptr[k + 1]].tolist())
        for k in range(len(indptr) - 1)
    ]


def test_single_interval_stab():
    t = IntervalTree(np.array([1.0]), np.array([3.0]))
    assert list(t.stab(2.0)) == [0]
    assert list(t.stab(1.0)) == [0]  # inclusive start
    assert list(t.stab(3.0)) == []  # exclusive end
    assert list(t.stab(0.0)) == []


def test_empty_tree():
    t = IntervalTree(np.zeros(0), np.zeros(0))
    iv, indptr = t.stab_batch(np.array([1.0, 2.0]))
    assert len(iv) == 0 and list(indptr) == [0, 0, 0]
    assert t.depth == 0


def test_empty_intervals_never_match():
    t = IntervalTree(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
    assert list(t.stab(1.0)) == []
    assert list(t.stab(2.0)) == []


def test_identical_intervals():
    n = 50
    t = IntervalTree(np.full(n, 5.0), np.full(n, 9.0))
    assert len(t.stab(7.0)) == n
    assert len(t.stab(4.0)) == 0


def test_external_ids():
    ids = np.array([100, 200, 300])
    t = IntervalTree(np.array([0.0, 1.0, 2.0]), np.array([10.0, 2.0, 3.0]), ids=ids)
    got, indptr = t.stab_ids_batch(np.array([1.5]))
    assert set(got[indptr[0] : indptr[1]].tolist()) == {100, 200}


def test_input_validation():
    with pytest.raises(ValueError):
        IntervalTree(np.zeros(3), np.zeros(2))
    with pytest.raises(ValueError):
        IntervalTree(np.zeros(2), np.zeros(2), ids=np.zeros(3, dtype=np.int64))
    t = IntervalTree(np.zeros(2), np.ones(2))
    with pytest.raises(ValueError):
        t.stab_batch(np.zeros((2, 2)))


@given(
    data=st.lists(
        st.tuples(
            st.floats(-100, 100, allow_nan=False),
            st.floats(0, 50, allow_nan=False),
        ),
        min_size=1,
        max_size=120,
    ),
    queries=st.lists(st.floats(-120, 180, allow_nan=False), min_size=1, max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_tree_matches_naive(data, queries):
    starts = np.array([s for s, _ in data])
    ends = starts + np.array([d for _, d in data])
    ts = np.array(queries)
    tree = IntervalTree(starts, ends)
    got = _csr_sets(*tree.stab_batch(ts))
    want = _csr_sets(*naive_stab_batch(starts, ends, ts))
    assert got == want


@given(
    n=st.integers(1, 200),
    chunk=st.integers(2, 60),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_forest_matches_naive(n, chunk, seed):
    rng = np.random.default_rng(seed)
    starts = np.sort(rng.uniform(0, 100, n))
    ends = starts + rng.exponential(10, n)
    empty = rng.random(n) < 0.15
    ends[empty] = starts[empty]  # some empty intervals
    overlap = min(chunk - 1, 5)
    forest = ChunkedIntervalForest(starts, ends, chunk_size=chunk, overlap=overlap)
    ts = rng.uniform(-5, 115, 25)
    got = _csr_sets(*forest.stab_batch(ts))
    want = _csr_sets(*naive_stab_batch(starts, ends, ts))
    assert got == want


def test_forest_chunk_count():
    f = ChunkedIntervalForest(np.zeros(250), np.ones(250), chunk_size=100, overlap=10)
    assert f.n_trees == 3
    assert f.n_intervals == 250


def test_forest_dedupes_overlap_region():
    # All intervals identical: every tree matches its whole chunk, and the
    # overlap rows appear in two trees; dedup must keep them once.
    n = 60
    starts = np.zeros(n)
    ends = np.full(n, 10.0)
    f = ChunkedIntervalForest(starts, ends, chunk_size=40, overlap=20)
    hit = f.stab(5.0)
    assert len(hit) == n
    assert len(np.unique(hit)) == n


def test_overlap_query():
    t = IntervalTree(np.array([0.0, 5.0, 10.0]), np.array([4.0, 9.0, 14.0]))
    assert set(t.overlap(3.0, 6.0).tolist()) == {0, 1}
    assert set(t.overlap(4.0, 5.0).tolist()) == set()
    assert len(t.overlap(6.0, 6.0)) == 0  # empty query window


@given(
    n=st.integers(1, 80),
    m=st.integers(1, 20),
    seed=st.integers(0, 5000),
)
@settings(max_examples=40, deadline=None)
def test_overlap_batch_matches_bruteforce(n, m, seed):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0, 100, n)
    ends = starts + rng.exponential(10, n)
    degenerate = rng.random(n) < 0.1
    ends[degenerate] = starts[degenerate]  # empty intervals never overlap
    tree = IntervalTree(starts, ends)
    los = rng.uniform(-10, 110, m)
    his = los + rng.exponential(15, m) * (rng.random(m) < 0.9)  # some empty
    iv, ptr = tree.overlap_batch(los, his)
    got = _csr_sets(iv, ptr)
    want = []
    for lo, hi in zip(los, his):
        mask = (starts < hi) & (ends > lo) & (ends > starts) & (hi > lo)
        want.append(frozenset(np.flatnonzero(mask).tolist()))
    assert got == want


def test_overlap_batch_validation():
    t = IntervalTree(np.zeros(2), np.ones(2))
    with pytest.raises(ValueError):
        t.overlap_batch(np.zeros(3), np.zeros(2))


def test_depth_logarithmic():
    n = 4096
    rng = np.random.default_rng(0)
    starts = rng.uniform(0, 1e6, n)
    ends = starts + rng.exponential(100, n)
    t = IntervalTree(starts, ends)
    assert t.depth <= 3 * int(np.log2(n))


def test_naive_block_boundaries():
    # Results identical across block sizes.
    rng = np.random.default_rng(1)
    s = rng.uniform(0, 10, 30)
    e = s + 1.0
    ts = rng.uniform(0, 11, 20)
    a = _csr_sets(*naive_stab_batch(s, e, ts, block=3))
    b = _csr_sets(*naive_stab_batch(s, e, ts, block=1000))
    assert a == b
