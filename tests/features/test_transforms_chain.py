"""TransformChain fit/transform split path."""

import numpy as np

from repro.features.transforms import (
    Log1pTransform,
    MinMaxScaler,
    StandardScaler,
    TransformChain,
)


def test_fit_then_transform_equals_fit_transform():
    rng = np.random.default_rng(0)
    X = rng.lognormal(0, 1, size=(100, 3))
    a = TransformChain([Log1pTransform(), MinMaxScaler()])
    b = TransformChain([Log1pTransform(), MinMaxScaler()])
    Xa = a.fit_transform(X)
    b.fit(X)
    Xb = b.transform(X)
    np.testing.assert_allclose(Xa, Xb)


def test_chain_applies_to_new_data_with_fitted_state():
    rng = np.random.default_rng(1)
    X = rng.lognormal(0, 1, size=(200, 2))
    chain = TransformChain([Log1pTransform(), StandardScaler()])
    chain.fit(X)
    Xnew = rng.lognormal(0, 1, size=(50, 2))
    out = chain.transform(Xnew)
    # Fitted on X's stats: new data is generally NOT zero-mean.
    assert abs(out.mean()) < 5.0  # sane scale
    np.testing.assert_allclose(chain.inverse_transform(out), Xnew, rtol=1e-8)


def test_empty_chain_is_identity():
    X = np.ones((4, 2))
    chain = TransformChain([])
    np.testing.assert_array_equal(chain.fit_transform(X), X)
    np.testing.assert_array_equal(chain.inverse_transform(X), X)
