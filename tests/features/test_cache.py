"""Feature-cache behaviour, especially the failure paths.

The cache must never be able to make a run fail or return wrong data:
truncated files, corrupt bytes, stale version tags and racing writers all
degrade to a recompute (a miss), and a hit is byte-identical to the matrix
that was stored.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.cache import CACHE_VERSION, FeatureCache, content_key
from repro.features.pipeline import FeatureMatrix, FeaturePipeline


@pytest.fixture()
def cache(tmp_path):
    return FeatureCache(tmp_path / "feat")


@pytest.fixture(scope="module")
def computed(trace_jobs, cluster):
    """A small real matrix plus its cache key material."""
    jobs = trace_jobs[:800]
    pipeline = FeaturePipeline(cluster, chunk_size=300, overlap=30, n_jobs=1)
    fm = pipeline.compute(jobs)
    pred = jobs.records["timelimit_min"].astype(np.float64)
    key = content_key(jobs, pred, pipeline.signature())
    return jobs, pipeline, fm, key


def test_round_trip_bit_identical(cache, computed):
    _, _, fm, key = computed
    assert cache.load(key) is None  # cold
    cache.store(key, fm)
    hit = cache.load(key)
    assert hit is not None and hit.cache_hit
    assert hit.X.tobytes() == fm.X.tobytes()
    assert hit.queue_time_min.tobytes() == fm.queue_time_min.tobytes()
    assert hit.names == fm.names
    assert hit.log_transformed == fm.log_transformed
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert cache.stats.stores == 1 and cache.stats.invalid == 0


def test_pipeline_integration_hit(tmp_path, trace_jobs, cluster):
    jobs = trace_jobs[:500]
    cache = FeatureCache(tmp_path / "feat")
    pipeline = FeaturePipeline(
        cluster, chunk_size=200, overlap=20, n_jobs=1, cache=cache
    )
    cold = pipeline.compute(jobs)
    warm = pipeline.compute(jobs)
    assert not cold.cache_hit and warm.cache_hit
    assert cold.X.tobytes() == warm.X.tobytes()
    # A different pred vector must key a different entry, not a stale hit.
    other = pipeline.compute(
        jobs, pred_runtime_min=np.full(len(jobs), 123.0)
    )
    assert not other.cache_hit
    assert cache.stats.hits == 1 and cache.stats.stores == 2


def test_truncated_entry_falls_back(cache, computed):
    _, _, fm, key = computed
    cache.store(key, fm)
    path = cache.path_for(key)
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
    assert cache.load(key) is None  # no exception, counted as invalid miss
    assert cache.stats.invalid == 1
    assert not path.exists()  # unusable entry was evicted


def test_corrupt_bytes_fall_back(cache, computed):
    _, _, fm, key = computed
    cache.path_for(key).write_bytes(b"this is not an npz archive")
    assert cache.load(key) is None
    assert cache.stats.invalid == 1


def test_stale_version_falls_back(cache, computed):
    _, _, fm, key = computed
    # Forge an entry with an outdated version tag but valid arrays.
    with open(cache.path_for(key), "wb") as fh:
        np.savez(
            fh,
            version=np.int64(CACHE_VERSION - 1),
            X=fm.X,
            names=np.array(fm.names),
            queue_time_min=fm.queue_time_min,
            log_transformed=np.bool_(fm.log_transformed),
        )
    assert cache.load(key) is None
    assert cache.stats.invalid == 1


def test_inconsistent_shape_falls_back(cache, computed):
    _, _, fm, key = computed
    with open(cache.path_for(key), "wb") as fh:
        np.savez(
            fh,
            version=np.int64(CACHE_VERSION),
            X=fm.X,
            names=np.array(fm.names),
            queue_time_min=fm.queue_time_min[:-5],  # rows no longer align
            log_transformed=np.bool_(fm.log_transformed),
        )
    assert cache.load(key) is None
    assert cache.stats.invalid == 1


def test_concurrent_writers_race_benignly(cache, computed):
    """Two writers storing the same key: os.replace publishes whole files,
    so whoever lands last wins and the entry always loads cleanly; stray
    staging temp files never shadow the entry."""
    _, _, fm, key = computed
    cache.store(key, fm)
    cache.store(key, fm)  # second writer replaces the first atomically
    # A crashed writer's leftover staging file must not break reads.
    (cache.root / f".{key[:16]}-deadbeef.tmp").write_bytes(b"partial")
    hit = cache.load(key)
    assert hit is not None
    assert hit.X.tobytes() == fm.X.tobytes()
    assert cache.stats.stores == 2 and cache.stats.hits == 1


def test_root_colliding_with_file_is_a_clear_error(tmp_path):
    f = tmp_path / "occupied"
    f.write_text("not a directory")
    with pytest.raises(NotADirectoryError, match="not a directory"):
        FeatureCache(f)


def test_keys_separate_config_trace_and_pred(computed, cluster):
    jobs, pipeline, _, key = computed
    pred = jobs.records["timelimit_min"].astype(np.float64)
    other_pipeline = FeaturePipeline(
        cluster, chunk_size=301, overlap=30, n_jobs=1
    )
    assert content_key(jobs, pred, other_pipeline.signature()) != key
    assert content_key(jobs[:-1], pred[:-1], pipeline.signature()) != key
    assert content_key(jobs, pred + 1.0, pipeline.signature()) != key
    # Same inputs → same key (pure content addressing).
    assert content_key(jobs, pred, pipeline.signature()) == key
