"""Scaling transforms: round trips, invariants, error paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.features.transforms import (
    BoxCoxScaler,
    IdentityTransform,
    Log1pTransform,
    MinMaxScaler,
    StandardScaler,
    TransformChain,
)

finite_matrix = arrays(
    np.float64,
    st.tuples(st.integers(2, 30), st.integers(1, 6)),
    elements=st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
)


@given(X=finite_matrix)
@settings(max_examples=40, deadline=None)
def test_log1p_roundtrip(X):
    t = Log1pTransform()
    Xt = t.fit_transform(X)
    np.testing.assert_allclose(t.inverse_transform(Xt), X, rtol=1e-9, atol=1e-6)
    assert np.all(Xt >= 0)


def test_log1p_rejects_negative():
    with pytest.raises(ValueError):
        Log1pTransform().fit_transform(np.array([[-1.0]]))


@given(X=finite_matrix)
@settings(max_examples=40, deadline=None)
def test_minmax_range_and_roundtrip(X):
    t = MinMaxScaler()
    Xt = t.fit_transform(X)
    assert Xt.min() >= -1e-12 and Xt.max() <= 1 + 1e-12
    np.testing.assert_allclose(t.inverse_transform(Xt), X, rtol=1e-9, atol=1e-6)


def test_minmax_constant_column():
    X = np.full((5, 2), 3.0)
    Xt = MinMaxScaler().fit_transform(X)
    assert np.all(Xt == 0.0)


@given(X=finite_matrix)
@settings(max_examples=40, deadline=None)
def test_standard_scaler_moments(X):
    t = StandardScaler()
    Xt = t.fit_transform(X)
    # Moment guarantees only hold for columns whose spread is well above
    # float-rounding scale; near-constant columns divide cancellation noise
    # by a noise-level std.
    scale = max(1.0, float(np.abs(X).max()))
    stds = X.std(axis=0)
    varying = stds > 1e-7 * scale
    np.testing.assert_allclose(Xt.mean(axis=0)[varying], 0.0, atol=1e-7)
    np.testing.assert_allclose(Xt.std(axis=0)[varying], 1.0, atol=1e-7)
    np.testing.assert_allclose(t.inverse_transform(Xt), X, rtol=1e-8, atol=1e-5)


def test_boxcox_roundtrip_skewed():
    rng = np.random.default_rng(0)
    X = rng.lognormal(0, 1.5, size=(200, 3))
    t = BoxCoxScaler()
    Xt = t.fit_transform(X)
    np.testing.assert_allclose(t.inverse_transform(Xt), X, rtol=1e-6)
    # Transform reduces skew.
    from scipy.stats import skew

    assert abs(skew(Xt[:, 0])) < abs(skew(X[:, 0]))


def test_boxcox_handles_zeros_and_constants():
    X = np.column_stack([np.arange(10.0), np.full(10, 5.0)])
    t = BoxCoxScaler()
    Xt = t.fit_transform(X)
    assert np.all(np.isfinite(Xt))
    np.testing.assert_allclose(t.inverse_transform(Xt), X, rtol=1e-6, atol=1e-8)


def test_boxcox_rejects_below_training_min():
    t = BoxCoxScaler().fit(np.array([[1.0], [2.0]]))
    with pytest.raises(ValueError, match="Box-Cox"):
        t.transform(np.array([[-5.0]]))


def test_unfitted_raises():
    for cls in (MinMaxScaler, StandardScaler, BoxCoxScaler):
        with pytest.raises(RuntimeError):
            cls().transform(np.ones((2, 2)))


def test_chain_composes_and_inverts():
    rng = np.random.default_rng(0)
    X = rng.lognormal(0, 1, size=(100, 4))
    chain = TransformChain([Log1pTransform(), StandardScaler()])
    Xt = chain.fit_transform(X)
    np.testing.assert_allclose(Xt.mean(axis=0), 0.0, atol=1e-8)
    np.testing.assert_allclose(chain.inverse_transform(Xt), X, rtol=1e-8)


def test_identity_transform():
    X = np.ones((3, 2))
    t = IdentityTransform()
    np.testing.assert_array_equal(t.fit_transform(X), X)
    np.testing.assert_array_equal(t.inverse_transform(X), X)
