"""Golden-matrix regression lock.

A fixed-seed simulated trace is featurised and the SHA-256 of the exact
bytes of the Table II matrix is compared against a checked-in digest.  Any
silent numeric drift in featurisation — a reordered reduction, a changed
default, an accidental dtype change — fails loudly here, whereas metric-
level tests could quietly absorb it.  The parallel path must reproduce the
same digest (the serial-equivalence guarantee, at full-pipeline level).

If a deliberate featurisation change lands, regenerate the digests with::

    PYTHONPATH=src python -c "
    import hashlib
    from repro.workload import WorkloadConfig, generate_trace
    from repro.features.pipeline import FeaturePipeline
    r, c = generate_trace(WorkloadConfig(n_jobs=2000, seed=42, load=0.4,
                                         cluster_scale=0.05))
    fm = FeaturePipeline(c, chunk_size=500, overlap=50, n_jobs=1).compute(r.jobs)
    print(hashlib.sha256(fm.X.tobytes()).hexdigest())
    print(hashlib.sha256(fm.queue_time_min.tobytes()).hexdigest())"

and bump :data:`repro.features.cache.CACHE_VERSION`.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.features.pipeline import FeaturePipeline
from repro.workload import WorkloadConfig, generate_trace

GOLDEN_X_SHA256 = "30f921c93f21b69ec418575b6a79fe1ca9206dde24ee3c02f36b2cd5cc6e6871"
GOLDEN_Q_SHA256 = "3c8eb759f1bcf22895fced0f1a5bb70d9857491bf2925d8a3790e43eedbe91d1"


@pytest.fixture(scope="module")
def golden_trace():
    return generate_trace(
        WorkloadConfig(n_jobs=2000, seed=42, load=0.4, cluster_scale=0.05)
    )


def _digests(fm) -> tuple[str, str]:
    return (
        hashlib.sha256(fm.X.tobytes()).hexdigest(),
        hashlib.sha256(fm.queue_time_min.tobytes()).hexdigest(),
    )


def test_golden_matrix_serial(golden_trace):
    result, cluster = golden_trace
    fm = FeaturePipeline(cluster, chunk_size=500, overlap=50, n_jobs=1).compute(
        result.jobs
    )
    assert fm.X.shape == (2000, 33)
    x_sha, q_sha = _digests(fm)
    assert x_sha == GOLDEN_X_SHA256, "feature matrix bytes drifted"
    assert q_sha == GOLDEN_Q_SHA256, "queue-time target bytes drifted"


def test_golden_matrix_parallel(golden_trace):
    result, cluster = golden_trace
    fm = FeaturePipeline(cluster, chunk_size=500, overlap=50, n_jobs=3).compute(
        result.jobs
    )
    x_sha, q_sha = _digests(fm)
    assert x_sha == GOLDEN_X_SHA256, "parallel featurisation diverged from golden"
    assert q_sha == GOLDEN_Q_SHA256
