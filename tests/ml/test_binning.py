"""Histogram binning: layout, accumulation, split parity with exact search.

The load-bearing guarantee is the ``hist`` ≡ ``exact`` split contract for
low-cardinality features (every distinct value gets its own bin, so the
candidate thresholds coincide) — checked here both on hand-built cases and
property-style over random integer-valued matrices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.binning import (
    DEFAULT_MAX_BINS,
    BinnedMatrix,
    evaluate_splits,
    grouped_histograms,
    resolve_tree_method,
    sampled_histograms,
)
from repro.ml.tree import DecisionTreeRegressor


# ---------------------------------------------------------------- knob


def test_resolve_tree_method_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_TREE_METHOD", raising=False)
    assert resolve_tree_method(None) == "hist"
    monkeypatch.setenv("REPRO_TREE_METHOD", "exact")
    assert resolve_tree_method(None) == "exact"
    # An explicit argument always wins over the environment.
    assert resolve_tree_method("hist") == "hist"
    with pytest.raises(ValueError, match="tree_method"):
        resolve_tree_method("sorted")
    monkeypatch.setenv("REPRO_TREE_METHOD", "bogus")
    with pytest.raises(ValueError, match="tree_method"):
        resolve_tree_method(None)


# ---------------------------------------------------------------- layout


def test_binned_matrix_ragged_layout():
    rng = np.random.default_rng(0)
    X = np.column_stack(
        [
            rng.integers(0, 3, size=200),  # 3 distinct values
            rng.integers(0, 50, size=200),  # up to 50
            np.ones(200),  # constant
        ]
    ).astype(np.float64)
    bm = BinnedMatrix.from_matrix(X)
    assert bm.n_rows == 200 and bm.n_features == 3
    assert bm.n_bins[0] == 3 and bm.n_bins[2] == 1
    assert bm.width == int(bm.n_bins.sum())
    np.testing.assert_array_equal(bm.offsets, np.concatenate([[0], np.cumsum(bm.n_bins)]))
    # Every row's global code lands inside its feature's slot range.
    for f in range(3):
        codes = bm.global_codes[:, f]
        assert codes.min() >= bm.offsets[f] and codes.max() < bm.offsets[f + 1]
    # A constant feature has no scorable boundary.
    assert not bm.col_cand[bm.offsets[2]]
    # Each feature's last slot is never a candidate.
    assert not bm.col_cand[bm.offsets[1:] - 1].any()


def test_binned_matrix_codes_order_preserving():
    """Bin codes must be monotone in the raw values (per feature)."""
    rng = np.random.default_rng(1)
    X = rng.normal(size=(3000, 2))
    bm = BinnedMatrix.from_matrix(X, max_bins=16)
    for f in range(2):
        order = np.argsort(X[:, f], kind="stable")
        codes = bm.global_codes[order, f]
        assert np.all(np.diff(codes) >= 0)
        assert bm.n_bins[f] <= 16


def test_thresholds_separate_bins_in_raw_space():
    """Routing raw values through col_thr reproduces the bin partition."""
    rng = np.random.default_rng(2)
    X = rng.normal(size=(500, 1)) ** 3
    bm = BinnedMatrix.from_matrix(X, max_bins=8)
    code = bm.global_codes[:, 0]
    for s in np.flatnonzero(bm.col_cand):
        left = X[:, 0] <= bm.col_thr[s]
        np.testing.assert_array_equal(left, code <= s)


def test_take_is_row_view_with_shared_edges():
    X = np.random.default_rng(3).normal(size=(100, 4))
    bm = BinnedMatrix.from_matrix(X)
    rows = np.array([5, 5, 17, 99])
    sub = bm.take(rows)
    np.testing.assert_array_equal(sub.global_codes, bm.global_codes[rows])
    assert sub.col_thr is bm.col_thr and sub.offsets is bm.offsets


def test_max_bins_validation():
    with pytest.raises(ValueError, match="max_bins"):
        BinnedMatrix.from_matrix(np.zeros((4, 1)), max_bins=1)
    with pytest.raises(ValueError, match="max_bins"):
        BinnedMatrix.from_matrix(np.zeros((4, 1)), max_bins=257)
    with pytest.raises(ValueError, match="2-D"):
        BinnedMatrix.from_matrix(np.zeros(4))


# ---------------------------------------------------------------- histograms


def _random_problem(seed, n=400, f=5, groups=3):
    rng = np.random.default_rng(seed)
    X = np.column_stack(
        [rng.integers(0, rng.integers(2, 40), size=n) for _ in range(f)]
    ).astype(np.float64)
    bm = BinnedMatrix.from_matrix(X)
    g = rng.normal(size=n)
    h = rng.uniform(0.5, 2.0, size=n)
    rows = rng.integers(0, n, size=n)  # bootstrap-style
    grp = rng.integers(0, groups, size=n)
    return bm, g, h, rows, grp, groups


def test_grouped_histograms_match_direct_sums():
    bm, g, h, rows, grp, k = _random_problem(0)
    grad, hess, count = grouped_histograms(bm, rows, grp, k, g, h)
    for gi in range(k):
        sel = rows[grp == gi]
        for f in range(bm.n_features):
            for s in range(int(bm.offsets[f]), int(bm.offsets[f + 1])):
                m = bm.global_codes[sel, f] == s
                assert count[gi, s] == m.sum()
                np.testing.assert_allclose(grad[gi, s], g[sel][m].sum())
                np.testing.assert_allclose(hess[gi, s], h[sel][m].sum())


def test_sampled_histograms_match_grouped_on_sampled_columns():
    bm, g, h, rows, grp, k = _random_problem(1)
    rng = np.random.default_rng(9)
    cols = np.stack([rng.choice(bm.n_features, size=2, replace=False) for _ in range(k)])
    cols = cols.astype(np.intp)
    sg, sh, sc = sampled_histograms(bm, rows, grp, k, g, h, cols)
    fg, fh, fc = grouped_histograms(bm, rows, grp, k, g, h)
    for gi in range(k):
        for f in range(bm.n_features):
            sl = slice(int(bm.offsets[f]), int(bm.offsets[f + 1]))
            if f in cols[gi]:
                np.testing.assert_array_equal(sc[gi, sl], fc[gi, sl])
                np.testing.assert_allclose(sg[gi, sl], fg[gi, sl])
                np.testing.assert_allclose(sh[gi, sl], fh[gi, sl])
            else:  # unsampled features' slots stay zero
                assert not sc[gi, sl].any()
                assert not sg[gi, sl].any()


def test_sampled_histograms_unit_hessian():
    bm, g, _h, rows, grp, k = _random_problem(2)
    cols = np.tile(np.arange(2, dtype=np.intp), (k, 1))
    grad, hess, count = sampled_histograms(bm, rows, grp, k, g, None, cols)
    assert hess is None
    assert count.dtype == np.int64


# ---------------------------------------------------------------- split scan


def test_masked_scan_agrees_with_full_scan():
    """The per-feature masked path must pick the same splits as the dense
    full-width scan (bit-exact for integer-valued gradients)."""
    bm, _g, _h, rows, grp, k = _random_problem(3)
    rng = np.random.default_rng(4)
    g = rng.integers(-5, 6, size=bm.n_rows).astype(np.float64)
    grad, _, count = grouped_histograms(bm, rows, grp, k, g, None)
    mask = np.ones((k, bm.n_features), dtype=bool)
    full = evaluate_splits(grad, count, count, bm, 1, 0.0)
    # totals force the masked path regardless of the size heuristic
    g_tot = np.bincount(grp, weights=g[rows], minlength=k)
    c_tot = np.bincount(grp, minlength=k)
    totals = (g_tot, c_tot, c_tot)
    masked = evaluate_splits(
        grad, count, count, bm, 1, 0.0, feat_mask=mask, totals=totals
    )
    for a, b in zip(full, masked):
        np.testing.assert_array_equal(a, b)


def test_evaluate_splits_respects_min_leaf():
    X = np.arange(10, dtype=np.float64).reshape(-1, 1)
    y = (X[:, 0] >= 9).astype(np.float64)  # only a 9-vs-1 split has gain
    bm = BinnedMatrix.from_matrix(X)
    grad, _, count = grouped_histograms(bm, None, None, 1, -y, None)
    gain, *_ = evaluate_splits(grad, count, count, bm, 2, 0.0)
    _, feat, thr, *_ = evaluate_splits(grad, count, count, bm, 1, 0.0)
    # min_leaf=2 forbids the best cut; min_leaf=1 finds it at 8|9.
    assert 8.0 <= thr[0] < 9.0 and feat[0] == 0
    g1, *_ = evaluate_splits(grad, count, count, bm, 1, 0.0)
    assert g1[0] > gain[0]


def test_evaluate_splits_all_constant_features():
    bm = BinnedMatrix.from_matrix(np.ones((20, 2)))
    grad, _, count = grouped_histograms(bm, None, None, 1, np.arange(20.0), None)
    gain, *_ = evaluate_splits(grad, count, count, bm, 1, 0.0)
    assert gain[0] == -np.inf


# ---------------------------------------------------------------- parity


def _fit_both(X, y, **kw):
    hist = DecisionTreeRegressor(tree_method="hist", **kw).fit(X, y)
    exact = DecisionTreeRegressor(tree_method="exact", **kw).fit(X, y)
    return hist, exact


def _assert_same_tree(hist, exact, X):
    """Same grown tree: node numbering differs (level-order vs recursive
    builder) and thresholds may sit at different points of the same value
    gap (exact uses the node-local midpoint, hist the global bin edge), so
    equality is checked on what the tree *is*: the split-feature multiset,
    the induced training-data partition, and the fitted function."""
    th, te = hist.tree_, exact.tree_
    assert th.n_leaves == te.n_leaves
    assert sorted(th.feature[th.feature >= 0]) == sorted(te.feature[te.feature >= 0])
    lh, le = hist.apply(X), exact.apply(X)
    # The leaf partitions coincide: each hist leaf maps to one exact leaf
    # and the pairing is one-to-one.
    pairs = {(a, b) for a, b in zip(lh.tolist(), le.tolist())}
    assert len(pairs) == len(set(lh)) == len(set(le))
    np.testing.assert_array_equal(hist.predict(X), exact.predict(X))


def test_hist_equals_exact_simple():
    rng = np.random.default_rng(5)
    X = rng.integers(0, 30, size=(300, 4)).astype(np.float64)
    y = X[:, 0] + 3.0 * (X[:, 1] > 15) + rng.integers(0, 3, size=300)
    hist, exact = _fit_both(X, y, max_depth=6)
    _assert_same_tree(hist, exact, X)


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_hist_equals_exact_property(data):
    """With ≤255 distinct values per feature, every distinct value gets its
    own bin, so hist and exact consider identical candidate thresholds and
    must grow identical trees (integer targets keep sums bit-exact)."""
    n = data.draw(st.integers(20, 120), label="n_rows")
    f = data.draw(st.integers(1, 4), label="n_features")
    card = data.draw(st.integers(2, 25), label="cardinality")
    depth = data.draw(st.integers(1, 5), label="max_depth")
    min_leaf = data.draw(st.integers(1, 4), label="min_leaf")
    seed = data.draw(st.integers(0, 2**31 - 1), label="seed")
    rng = np.random.default_rng(seed)
    X = rng.integers(0, card, size=(n, f)).astype(np.float64)
    y = rng.integers(-8, 9, size=n).astype(np.float64)
    hist, exact = _fit_both(
        X, y, max_depth=depth, min_samples_leaf=min_leaf
    )
    _assert_same_tree(hist, exact, X)


def test_hist_close_to_exact_beyond_bin_limit():
    """Past max_bins distinct values the trees may differ, but the fitted
    function should stay close on a smooth target."""
    rng = np.random.default_rng(6)
    X = rng.normal(size=(4000, 3))
    y = X[:, 0] ** 2 + np.sin(3 * X[:, 1]) + 0.1 * rng.normal(size=4000)
    hist, exact = _fit_both(X, y, max_depth=6, min_samples_leaf=5)
    mse_h = float(np.mean((hist.predict(X) - y) ** 2))
    mse_e = float(np.mean((exact.predict(X) - y) ** 2))
    # Exact always wins on *training* MSE (it may cut anywhere, hist only
    # at 255 quantile edges); the gap just has to stay small.
    assert mse_h <= mse_e * 1.3


def test_default_max_bins_is_uint8_ceiling():
    assert DEFAULT_MAX_BINS == 256
