"""CART tree behaviour."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeRegressor, _best_split_feature


def test_perfect_split_found():
    # y depends on a single threshold in x0.
    X = np.linspace(0, 1, 100).reshape(-1, 1)
    y = (X[:, 0] > 0.5).astype(float) * 10.0
    t = DecisionTreeRegressor(max_depth=1).fit(X, y)
    pred = t.predict(X)
    np.testing.assert_allclose(pred, y)
    assert t.tree_.n_leaves == 2


def test_stump_threshold_midpoint():
    gain, thr = _best_split_feature(
        np.array([0.0, 1.0, 2.0, 3.0]),
        -np.array([0.0, 0.0, 10.0, 10.0]),
        np.ones(4),
        min_leaf=1,
        lam=0.0,
    )
    assert gain > 0
    assert 1.0 <= thr < 2.0


def test_no_valid_split_constant_feature():
    gain, _ = _best_split_feature(
        np.ones(10), -np.arange(10.0), np.ones(10), min_leaf=1, lam=0.0
    )
    assert gain == -np.inf


def test_min_samples_leaf_respected():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 3))
    y = rng.normal(size=200)
    t = DecisionTreeRegressor(max_depth=20, min_samples_leaf=17).fit(X, y)
    tree = t.tree_
    leaf_sizes = tree.n_samples[tree.feature == -1]
    assert leaf_sizes.min() >= 17


def test_max_depth_respected():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(500, 3))
    y = rng.normal(size=500)
    t = DecisionTreeRegressor(max_depth=3).fit(X, y)
    assert t.tree_.decision_depth() <= 3


def test_leaf_value_is_mean():
    X = np.ones((10, 1))  # unsplittable
    y = np.arange(10.0)
    t = DecisionTreeRegressor().fit(X, y)
    np.testing.assert_allclose(t.predict(X), y.mean())
    assert t.tree_.n_nodes == 1


def test_apply_assigns_consistent_leaves():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 4))
    y = X[:, 0] ** 2
    t = DecisionTreeRegressor(max_depth=4).fit(X, y)
    leaves = t.apply(X)
    preds = t.predict(X)
    for leaf in np.unique(leaves):
        assert len(np.unique(preds[leaves == leaf])) == 1


def test_fits_training_data_deeply():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 5))
    y = rng.normal(size=200)
    t = DecisionTreeRegressor(max_depth=30, min_samples_leaf=1, min_samples_split=2)
    # distinct rows -> a deep tree memorises the data
    assert t.fit(X, y).score(X, y) > 0.99


def test_duplicate_feature_values_never_split_between():
    # Threshold must not separate identical feature values.
    X = np.array([[1.0], [1.0], [2.0], [2.0]])
    y = np.array([0.0, 10.0, 0.0, 10.0])
    t = DecisionTreeRegressor(max_depth=5).fit(X, y)
    # Identical inputs get identical predictions.
    p = t.predict(X)
    assert p[0] == p[1] and p[2] == p[3]


def test_max_features_resolution():
    t = DecisionTreeRegressor(max_features="sqrt")
    assert t._resolve_max_features(9) == 3
    assert DecisionTreeRegressor(max_features=0.5)._resolve_max_features(10) == 5
    assert DecisionTreeRegressor(max_features=100)._resolve_max_features(10) == 10
    assert DecisionTreeRegressor(max_features=None)._resolve_max_features(10) is None
    with pytest.raises(ValueError):
        DecisionTreeRegressor(max_features=0.0)._resolve_max_features(10)
    with pytest.raises(ValueError):
        DecisionTreeRegressor(max_features=-3)._resolve_max_features(10)


def test_param_validation():
    with pytest.raises(ValueError):
        DecisionTreeRegressor(max_depth=0)
    with pytest.raises(ValueError):
        DecisionTreeRegressor(min_samples_split=1)
    with pytest.raises(ValueError):
        DecisionTreeRegressor(min_samples_leaf=0)


def test_unfitted_predict_raises():
    with pytest.raises(RuntimeError):
        DecisionTreeRegressor().predict(np.zeros((2, 2)))
