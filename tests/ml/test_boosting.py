"""Gradient boosting behaviour."""

import numpy as np
import pytest

from repro.ml import GradientBoostingRegressor


def _data(n=600, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = X[:, 0] ** 2 + np.where(X[:, 1] > 0, 3.0, -1.0) + 0.1 * rng.normal(size=n)
    return X, y


def test_training_error_decreases_with_rounds():
    X, y = _data()
    g = GradientBoostingRegressor(n_estimators=60, learning_rate=0.2, seed=0).fit(X, y)
    stages = g.staged_predict(X)
    errs = ((stages - y) ** 2).mean(axis=1)
    assert errs[-1] < errs[0] * 0.3
    assert errs[10] > errs[50]


def test_base_score_is_mean():
    X, y = _data(n=50)
    g = GradientBoostingRegressor(n_estimators=1, seed=0).fit(X, y)
    np.testing.assert_allclose(g.base_score_, y.mean())


def test_shrinkage_applied():
    X, y = _data(n=100)
    g = GradientBoostingRegressor(n_estimators=1, learning_rate=0.1, max_depth=2, seed=0)
    g.fit(X, y)
    # After one round, pred = mean + 0.1 * tree(X).
    manual = g.base_score_ + 0.1 * g.trees_[0].predict(X)
    np.testing.assert_allclose(g.predict(X), manual)


def test_regularisation_shrinks_leaf_values():
    X, y = _data(n=200)
    plain = GradientBoostingRegressor(n_estimators=1, reg_lambda=0.0, seed=0).fit(X, y)
    reg = GradientBoostingRegressor(n_estimators=1, reg_lambda=100.0, seed=0).fit(X, y)
    assert np.abs(reg.trees_[0].value).max() < np.abs(plain.trees_[0].value).max()


def test_subsample_and_colsample_run():
    X, y = _data(n=300)
    g = GradientBoostingRegressor(
        n_estimators=20, subsample=0.5, colsample=0.5, seed=0
    ).fit(X, y)
    assert g.score(X, y) > 0.5


def test_out_of_sample_accuracy():
    X, y = _data()
    Xte, yte = _data(seed=1)
    g = GradientBoostingRegressor(n_estimators=120, learning_rate=0.1, seed=0).fit(X, y)
    assert g.score(Xte, yte) > 0.85


def test_seeded_reproducibility():
    X, y = _data(n=200)
    kw = dict(n_estimators=10, subsample=0.7, colsample=0.7, seed=9)
    a = GradientBoostingRegressor(**kw).fit(X, y).predict(X)
    b = GradientBoostingRegressor(**kw).fit(X, y).predict(X)
    np.testing.assert_array_equal(a, b)


def test_validation():
    with pytest.raises(ValueError):
        GradientBoostingRegressor(n_estimators=0)
    with pytest.raises(ValueError):
        GradientBoostingRegressor(learning_rate=0)
    with pytest.raises(ValueError):
        GradientBoostingRegressor(subsample=0.0)
    with pytest.raises(ValueError):
        GradientBoostingRegressor(reg_lambda=-1)
    with pytest.raises(RuntimeError):
        GradientBoostingRegressor().predict(np.zeros((2, 2)))
