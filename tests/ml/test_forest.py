"""Random forest behaviour."""

import numpy as np
import pytest

from repro.ml import DecisionTreeRegressor, RandomForestRegressor


def _data(n=800, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = np.sin(2 * X[:, 0]) + 0.5 * X[:, 1] + 0.1 * rng.normal(size=n)
    return X, y


def test_beats_single_deep_tree_out_of_sample():
    X, y = _data()
    Xte, yte = _data(seed=1)
    tree = DecisionTreeRegressor(max_depth=30, min_samples_leaf=1).fit(X, y)
    # Bagging-only comparison (all features per split) isolates the
    # variance-reduction claim from feature-subsampling bias.
    forest = RandomForestRegressor(n_estimators=30, seed=0, max_features=None).fit(X, y)
    assert forest.score(Xte, yte) > tree.score(Xte, yte)


def test_prediction_is_tree_average():
    X, y = _data(n=200)
    f = RandomForestRegressor(n_estimators=5, seed=0).fit(X, y)
    manual = np.mean([t.predict(X) for t in f.trees_], axis=0)
    np.testing.assert_allclose(f.predict(X), manual)


def test_parallel_matches_serial():
    X, y = _data(n=300)
    serial = RandomForestRegressor(n_estimators=8, seed=3, n_jobs=1).fit(X, y)
    parallel = RandomForestRegressor(n_estimators=8, seed=3, n_jobs=2).fit(X, y)
    np.testing.assert_allclose(serial.predict(X), parallel.predict(X))


def test_seeded_reproducibility():
    X, y = _data(n=300)
    a = RandomForestRegressor(n_estimators=6, seed=5).fit(X, y).predict(X)
    b = RandomForestRegressor(n_estimators=6, seed=5).fit(X, y).predict(X)
    np.testing.assert_array_equal(a, b)
    c = RandomForestRegressor(n_estimators=6, seed=6).fit(X, y).predict(X)
    assert not np.allclose(a, c)


def test_predict_std_uncertainty():
    X, y = _data()
    f = RandomForestRegressor(n_estimators=20, seed=0).fit(X, y)
    std_in = f.predict_std(X).mean()
    # Far outside the training distribution trees disagree more... at least
    # std is finite and non-negative everywhere.
    assert np.all(f.predict_std(X) >= 0)
    assert np.isfinite(std_in)


def test_feature_importances_find_signal():
    X, y = _data(n=1500)
    f = RandomForestRegressor(n_estimators=20, seed=0).fit(X, y)
    imp = f.feature_importances(6)
    np.testing.assert_allclose(imp.sum(), 1.0)
    # x0 and x1 carry all the signal.
    assert imp[0] + imp[1] > 0.5


def test_no_bootstrap_mode():
    X, y = _data(n=200)
    f = RandomForestRegressor(n_estimators=3, bootstrap=False, max_features=None, seed=0)
    f.fit(X, y)
    # Without bootstrap or feature sampling all trees are identical.
    p0 = f.trees_[0].predict(X)
    for t in f.trees_[1:]:
        np.testing.assert_allclose(t.predict(X), p0)


def test_validation():
    with pytest.raises(ValueError):
        RandomForestRegressor(n_estimators=0)
    with pytest.raises(RuntimeError):
        RandomForestRegressor().predict(np.zeros((2, 2)))
