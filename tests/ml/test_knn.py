"""kNN regression behaviour."""

import numpy as np
import pytest

from repro.ml import KNeighborsRegressor


def test_k1_memorises():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(50, 3))
    y = rng.normal(size=50)
    m = KNeighborsRegressor(n_neighbors=1).fit(X, y)
    np.testing.assert_allclose(m.predict(X), y)


def test_uniform_average_of_neighbours():
    X = np.array([[0.0], [1.0], [10.0]])
    y = np.array([0.0, 2.0, 100.0])
    m = KNeighborsRegressor(n_neighbors=2).fit(X, y)
    # Query at 0.4: neighbours are x=0 and x=1.
    np.testing.assert_allclose(m.predict(np.array([[0.4]])), [1.0])


def test_distance_weighting_prefers_closer():
    X = np.array([[0.0], [1.0]])
    y = np.array([0.0, 10.0])
    m = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
    pred = m.predict(np.array([[0.1]]))[0]
    assert pred < 5.0  # closer to y=0


def test_exact_match_dominates_distance_mode():
    X = np.array([[0.0], [1.0]])
    y = np.array([5.0, 10.0])
    m = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
    np.testing.assert_allclose(m.predict(np.array([[0.0]])), [5.0])


def test_k_clipped_to_training_size():
    X = np.array([[0.0], [1.0]])
    y = np.array([1.0, 3.0])
    m = KNeighborsRegressor(n_neighbors=50).fit(X, y)
    np.testing.assert_allclose(m.predict(np.array([[0.5]])), [2.0])


def test_smooth_function_interpolation():
    rng = np.random.default_rng(0)
    X = rng.uniform(-3, 3, size=(2000, 1))
    y = np.sin(X[:, 0])
    m = KNeighborsRegressor(n_neighbors=10).fit(X, y)
    Xq = rng.uniform(-2.5, 2.5, size=(200, 1))
    np.testing.assert_allclose(m.predict(Xq), np.sin(Xq[:, 0]), atol=0.1)


def test_validation():
    with pytest.raises(ValueError):
        KNeighborsRegressor(n_neighbors=0)
    with pytest.raises(ValueError):
        KNeighborsRegressor(weights="nope")
    with pytest.raises(RuntimeError):
        KNeighborsRegressor().predict(np.zeros((2, 2)))
