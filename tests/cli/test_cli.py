"""The trout CLI, exercised through main() in-process."""

import numpy as np
import pytest

from repro.cli.main import build_parser, main
from repro.data.swf import read_swf


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """Simulate once, train once; individual tests reuse the artefacts."""
    ws = tmp_path_factory.mktemp("cli")
    trace = ws / "trace.swf"
    model = ws / "model"
    rc = main(
        ["simulate", "--n-jobs", "4000", "--seed", "11", "--load", "0.5", "--out", str(trace)]
    )
    assert rc == 0
    rc = main(["train", "--trace", str(trace), "--out", str(model), "--seed", "0"])
    assert rc == 0
    return trace, model


def test_parser_subcommands():
    p = build_parser()
    args = p.parse_args(["simulate", "--out", "x.swf"])
    assert args.command == "simulate"
    with pytest.raises(SystemExit):
        p.parse_args([])  # subcommand required


def test_simulate_writes_valid_trace(workspace):
    trace, _ = workspace
    jobs = read_swf(trace)
    assert len(jobs) == 4000
    jobs.validate()


def test_stats_prints_table(workspace, capsys):
    trace, _ = workspace
    assert main(["stats", "--trace", str(trace), "--head", "3"]) == 0
    out = capsys.readouterr().out
    assert "Requested Time (hr)" in out
    assert "JobID|User|Partition" in out


def test_train_creates_model_bundle(workspace):
    _, model = workspace
    assert (model / "classifier.npz").exists()
    assert (model / "regressor.npz").exists()
    assert (model / "meta.json").exists()
    assert (model / "runtime_model.pkl").exists()


def test_predict_existing_job(workspace, capsys):
    trace, model = workspace
    # Warm-up discard means ids don't start at 1; pick one from the trace.
    job_id = int(read_swf(trace).column("job_id")[100])
    rc = main(
        ["predict", "--model", str(model), "--trace", str(trace), "--job-id", str(job_id)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Predicted to" in out
    assert "actual queue time" in out


def test_predict_with_interval_flag(workspace, capsys):
    trace, model = workspace
    jobs = read_swf(trace)
    # Prefer a long-wait job so the interval branch can fire; fall back to
    # any job (the flag must not crash either way).
    q = jobs.queue_time_min
    candidates = np.flatnonzero(q > 10)
    idx = int(candidates[0]) if len(candidates) else 0
    job_id = int(jobs.column("job_id")[idx])
    rc = main(
        [
            "predict",
            "--model", str(model),
            "--trace", str(trace),
            "--job-id", str(job_id),
            "--interval",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Predicted to" in out


def test_predict_missing_job(workspace, capsys):
    trace, model = workspace
    rc = main(
        ["predict", "--model", str(model), "--trace", str(trace), "--job-id", "999999"]
    )
    assert rc == 1
    assert "not found" in capsys.readouterr().err


def test_hypothetical_job(workspace, capsys):
    trace, model = workspace
    rc = main(
        [
            "hypothetical",
            "--model", str(model),
            "--trace", str(trace),
            "--partition", "shared",
            "--cpus", "64",
            "--timelimit-min", "480",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "hypothetical job" in out
    assert "Predicted to" in out


def test_queue_view(workspace, capsys):
    trace, model = workspace
    jobs = read_swf(trace)
    # Pick an instant where something is pending.
    q = jobs.queue_time_min
    waiting = np.flatnonzero(q > 2.0)
    rec = jobs.records
    t = float(
        0.5 * (rec["eligible_time"][waiting[0]] + rec["start_time"][waiting[0]])
    ) if len(waiting) else float(rec["eligible_time"].max())
    rc = main(["queue", "--trace", str(trace), "--at", str(t)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "queue state at" in out
    assert "JOBID" in out


def test_queue_view_with_predictions(workspace, capsys):
    trace, model = workspace
    jobs = read_swf(trace)
    q = jobs.queue_time_min
    waiting = np.flatnonzero(q > 2.0)
    if not len(waiting):
        return
    rec = jobs.records
    t = float(0.5 * (rec["eligible_time"][waiting[0]] + rec["start_time"][waiting[0]]))
    rc = main(
        ["queue", "--trace", str(trace), "--at", str(t), "--model", str(model)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Predicted to" in out


def test_hypothetical_unknown_partition(workspace, capsys):
    trace, model = workspace
    rc = main(
        [
            "hypothetical",
            "--model", str(model),
            "--trace", str(trace),
            "--partition", "nope",
        ]
    )
    assert rc == 1
    assert "unknown partition" in capsys.readouterr().err


def test_train_telemetry_report_prints_span_tree(workspace, tmp_path, capsys):
    trace, _ = workspace
    from repro.obs import metrics, tracing

    metrics.get_registry().reset()
    tracing.reset()
    rc = main(
        [
            "train",
            "--trace", str(trace),
            "--out", str(tmp_path / "model"),
            "--seed", "0",
            "--telemetry=report",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    # The span tree must cover featurization, training epochs, evaluation.
    assert "featurize" in out
    assert "epoch" in out
    assert "evaluate.holdout" in out
    assert "nn_epochs_total" in out
    metrics.get_registry().reset()
    tracing.reset()


def test_telemetry_json_snapshot_round_trip(workspace, tmp_path, capsys):
    trace, model = workspace
    from repro.data.swf import read_swf as _read
    from repro.obs import metrics, tracing

    metrics.get_registry().reset()
    tracing.reset()
    job_id = int(_read(trace).column("job_id")[100])
    snap_path = tmp_path / "snap.json"
    rc = main(
        [
            "predict",
            "--model", str(model),
            "--trace", str(trace),
            "--job-id", str(job_id),
            "--telemetry=json",
            "--telemetry-out", str(snap_path),
        ]
    )
    assert rc == 0
    assert snap_path.exists()
    capsys.readouterr()
    # Saved snapshot renders through the telemetry subcommand.
    rc = main(["telemetry", str(snap_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "featurize" in out
    metrics.get_registry().reset()
    tracing.reset()


def test_telemetry_prom_format(workspace, tmp_path, capsys):
    trace, _ = workspace
    from repro.obs import metrics, tracing

    metrics.get_registry().reset()
    tracing.reset()
    rc = main(
        [
            "simulate",
            "--n-jobs", "300",
            "--seed", "5",
            "--out", str(tmp_path / "t.swf"),
            "--telemetry=prom",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "# TYPE sim_scheduler_passes_total counter" in out
    assert "sim_jobs_started_total" in out
    metrics.get_registry().reset()
    tracing.reset()


def test_telemetry_subcommand_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    assert main(["telemetry", str(bad)]) == 1
    assert "cannot read snapshot" in capsys.readouterr().err
    versioned = tmp_path / "old.json"
    versioned.write_text('{"version": 99, "metrics": {}, "spans": []}')
    assert main(["telemetry", str(versioned)]) == 1
    assert "version" in capsys.readouterr().err
