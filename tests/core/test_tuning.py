"""Regressor HPO tuning."""

import numpy as np
import pytest

from repro.core.tuning import TuningConfig, _config_from_params, tune_regressor


def _queueish(n=1500, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    minutes = np.exp(1.0 + 1.2 * X[:, 0] + 0.5 * X[:, 1])
    return X, minutes


def test_config_materialisation():
    t = TuningConfig()
    cfg = _config_from_params({"h1": 128, "depth": 3, "lr": 1e-3, "dropout": 0.1}, t)
    assert cfg.hidden == (128, 64, 32)
    assert cfg.lr == 1e-3
    cfg = _config_from_params({"h1": 16, "depth": 4, "lr": 1e-3, "dropout": 0.0}, t)
    assert cfg.hidden == (16, 8, 8, 8)  # floor at 8


def test_tune_returns_fitted_model():
    X, m = _queueish()
    tuning = TuningConfig(n_trials=4, n_seeds=2, epochs=20, patience=4, seed=0)
    model, study = tune_regressor(X, m, tuning)
    pred = model.predict_minutes(X[-100:])
    assert pred.shape == (100,)
    assert np.all(pred >= 0)
    assert len(study.completed_trials) == 4
    assert set(study.best_params) == {"h1", "depth", "lr", "dropout"}


def test_tuned_model_learns():
    X, m = _queueish(2000)
    tuning = TuningConfig(n_trials=5, n_seeds=1, epochs=40, patience=6, seed=1)
    model, _ = tune_regressor(X, m, tuning)
    Xte, mte = _queueish(300, seed=9)
    r = np.corrcoef(np.log1p(model.predict_minutes(Xte)), np.log1p(mte))[0, 1]
    assert r > 0.8


def test_validation():
    with pytest.raises(ValueError):
        TuningConfig(n_trials=0)
    with pytest.raises(ValueError):
        TuningConfig(val_fraction=0.9)
    X, m = _queueish(30)
    with pytest.raises(ValueError):
        tune_regressor(X, m[:-5], TuningConfig(n_trials=1))


def test_search_respects_bounds():
    X, m = _queueish(800)
    tuning = TuningConfig(
        n_trials=6,
        n_seeds=1,
        epochs=10,
        patience=3,
        width_low=16,
        width_high=32,
        depth_low=2,
        depth_high=2,
        seed=0,
    )
    _, study = tune_regressor(X, m, tuning)
    for t in study.completed_trials:
        assert 16 <= t.params["h1"] <= 32
        assert t.params["depth"] == 2
