"""TroutModel hierarchy: Algorithm 1 semantics and persistence."""

import numpy as np
import pytest

from repro.core.classifier import QuickStartClassifier
from repro.core.config import ClassifierConfig, RegressorConfig
from repro.core.hierarchical import TroutModel, TroutPrediction
from repro.core.regressor import QueueTimeRegressor


@pytest.fixture(scope="module")
def fitted_model():
    """A small hierarchy trained on synthetic queue-like data."""
    rng = np.random.default_rng(0)
    n = 3000
    X = rng.normal(size=(n, 4))
    minutes = np.where(
        X[:, 0] > 0.5,
        np.exp(3.0 + X[:, 1]),  # long waits
        rng.uniform(0, 5, n),  # quick starts
    )
    y_long = (minutes > 10).astype(float)
    clf = QuickStartClassifier(
        4, ClassifierConfig(hidden=(32, 16), epochs=60, patience=10, lr=3e-3), seed=0
    ).fit(X, y_long)
    long_rows = minutes > 10
    reg = QueueTimeRegressor(
        4, RegressorConfig(hidden=(32, 16), epochs=60, patience=10, lr=3e-3), seed=0
    ).fit(X[long_rows], minutes[long_rows])
    model = TroutModel(clf, reg, cutoff_min=10.0, feature_names=("a", "b", "c", "d"))
    return model, X, minutes


def test_algorithm1_messages(fitted_model):
    model, X, minutes = fitted_model
    msgs = model.predict_messages(X[:200])
    assert all(
        m.startswith("Predicted to start in") or m == "Predicted to take less than 10 minutes"
        for m in msgs
    )
    # Both branches exercised.
    assert any("less than" in m for m in msgs)
    assert any("start in" in m for m in msgs)


def test_prediction_objects(fitted_model):
    model, X, _ = fitted_model
    preds = model.predict(X[:50])
    for p in preds:
        assert isinstance(p, TroutPrediction)
        assert 0 <= p.p_long <= 1
        if p.long_wait:
            assert p.minutes is not None and p.minutes >= 0
        else:
            assert p.minutes is None


def test_predict_minutes_floors(fitted_model):
    model, X, _ = fitted_model
    m = model.predict_minutes(X[:500])
    preds = model.predict(X[:500])
    for val, p in zip(m, preds):
        if p.long_wait:
            assert val >= model.cutoff_min
        else:
            assert val == model.cutoff_min / 2


def test_hierarchy_correlates_with_truth(fitted_model):
    model, X, minutes = fitted_model
    pred = model.predict_minutes(X)
    r = np.corrcoef(np.log1p(pred), np.log1p(minutes))[0, 1]
    assert r > 0.7


def test_save_load_roundtrip(fitted_model, tmp_path):
    model, X, _ = fitted_model
    model.save(tmp_path / "m")
    loaded = TroutModel.load(tmp_path / "m")
    assert loaded.cutoff_min == model.cutoff_min
    assert loaded.feature_names == model.feature_names
    np.testing.assert_allclose(
        loaded.predict_minutes(X[:100]), model.predict_minutes(X[:100]), atol=1e-10
    )
    assert loaded.predict_messages(X[:5]) == model.predict_messages(X[:5])


def test_cutoff_validation(fitted_model):
    model, _, _ = fitted_model
    with pytest.raises(ValueError):
        TroutModel(model.classifier, model.regressor, cutoff_min=0.0, feature_names=())


def test_message_formatting():
    p = TroutPrediction(long_wait=True, minutes=42.4, p_long=0.9)
    assert p.message(10.0) == "Predicted to start in 42 minutes"
    q = TroutPrediction(long_wait=False, minutes=None, p_long=0.1)
    assert q.message(10.0) == "Predicted to take less than 10 minutes"
