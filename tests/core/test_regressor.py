"""Queue-time regressor."""

import numpy as np
import pytest

from repro.core.config import RegressorConfig
from repro.core.regressor import QueueTimeRegressor


def _queueish(n=2000, seed=0):
    """Log-scale-learnable positive target resembling queue minutes."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    minutes = np.exp(1.0 + 1.2 * X[:, 0] + 0.5 * X[:, 1] + 0.2 * rng.normal(size=n))
    return X, minutes


def _fast_cfg(**kw):
    base = dict(hidden=(32, 16), epochs=30, patience=5)
    base.update(kw)
    return RegressorConfig(**base)


def test_learns_multiplicative_target():
    X, m = _queueish()
    reg = QueueTimeRegressor(5, _fast_cfg(), seed=0).fit(X, m)
    Xte, mte = _queueish(seed=1)
    pred = reg.predict_minutes(Xte)
    r = np.corrcoef(np.log1p(pred), np.log1p(mte))[0, 1]
    assert r > 0.9
    assert np.all(pred >= 0)


def test_log_target_helps_on_skewed_data():
    X, m = _queueish()
    Xte, mte = _queueish(seed=2)
    log_reg = QueueTimeRegressor(5, _fast_cfg(log_target=True), seed=0).fit(X, m)
    raw_reg = QueueTimeRegressor(5, _fast_cfg(log_target=False), seed=0).fit(X, m)
    from repro.eval.metrics import mean_absolute_percentage_error as mape

    assert mape(mte, log_reg.predict_minutes(Xte)) < mape(
        mte, raw_reg.predict_minutes(Xte)
    )


def test_batch_norm_flag_builds():
    X, m = _queueish(400)
    reg = QueueTimeRegressor(5, _fast_cfg(batch_norm=True, epochs=3), seed=0).fit(X, m)
    assert np.all(np.isfinite(reg.predict_minutes(X)))


def test_negative_minutes_rejected():
    with pytest.raises(ValueError):
        QueueTimeRegressor(2, _fast_cfg()).fit(np.zeros((10, 2)), -np.ones(10))


def test_feature_count_checked():
    X, m = _queueish(100)
    with pytest.raises(ValueError):
        QueueTimeRegressor(3, _fast_cfg()).fit(X, m)


def test_decode_caps_blowups():
    reg = QueueTimeRegressor(2, RegressorConfig())
    out = reg._decode_target(np.array([100.0]))  # would be exp(100) uncapped
    assert np.isfinite(out[0])


def test_config_validation():
    with pytest.raises(ValueError):
        RegressorConfig(hidden=())


def test_predict_interval_brackets_point_estimate():
    X, m = _queueish(1200)
    reg = QueueTimeRegressor(5, _fast_cfg(dropout=0.2), seed=0).fit(X, m)
    iv = reg.predict_interval(X[:200], n_samples=20, alpha=0.2)
    assert set(iv) == {"median", "lower", "upper"}
    assert np.all(iv["lower"] <= iv["median"] + 1e-9)
    assert np.all(iv["median"] <= iv["upper"] + 1e-9)
    # Dropout gives genuinely nonzero spread somewhere.
    assert np.any(iv["upper"] - iv["lower"] > 0)


def test_predict_interval_no_dropout_degenerates():
    X, m = _queueish(400)
    reg = QueueTimeRegressor(5, _fast_cfg(dropout=0.0, epochs=5), seed=0).fit(X, m)
    iv = reg.predict_interval(X[:50], n_samples=5)
    np.testing.assert_allclose(iv["lower"], iv["upper"])


def test_predict_interval_validation():
    X, m = _queueish(200)
    reg = QueueTimeRegressor(5, _fast_cfg(epochs=2), seed=0).fit(X, m)
    with pytest.raises(ValueError):
        reg.predict_interval(X[:5], n_samples=1)
    with pytest.raises(ValueError):
        reg.predict_interval(X[:5], alpha=0.0)
