"""Random-forest runtime predictor."""

import numpy as np
import pytest

from repro.core.config import RuntimeModelConfig
from repro.core.runtime_model import RuntimePredictor


def test_predictions_within_limits(trace_jobs):
    rt = RuntimePredictor(RuntimeModelConfig(n_estimators=10), seed=0)
    rt.fit(trace_jobs[:2000])
    pred = rt.predict_minutes(trace_jobs)
    assert pred.shape == (len(trace_jobs),)
    assert np.all(pred >= 0)
    assert np.all(pred <= trace_jobs.column("timelimit_min") + 1e-9)


def test_beats_timelimit_baseline(trace_jobs):
    """The whole point: requests overestimate (~15 % used), so even a basic
    RF beats assuming jobs run to their limit."""
    rt = RuntimePredictor(RuntimeModelConfig(n_estimators=20), seed=0)
    n = len(trace_jobs) // 2
    rt.fit(trace_jobs[:n])
    test = trace_jobs[n:]
    pred = rt.predict_minutes(test)
    actual = test.runtime_min
    limit = test.column("timelimit_min")
    mae_model = np.mean(np.abs(pred - actual))
    mae_limit = np.mean(np.abs(limit - actual))
    assert mae_model < 0.6 * mae_limit


def test_needs_minimum_data(trace_jobs):
    with pytest.raises(ValueError):
        RuntimePredictor().fit(trace_jobs[:5])


def test_unfitted_raises(trace_jobs):
    with pytest.raises(RuntimeError):
        RuntimePredictor().predict_minutes(trace_jobs)


def test_design_matrix_logged(trace_jobs):
    X = RuntimePredictor().design_matrix(trace_jobs[:100])
    assert X.shape == (100, 7)
    np.testing.assert_allclose(
        X[:, 0], np.log1p(trace_jobs[:100].column("req_cpus").astype(float))
    )


def test_user_history_mode_shapes_and_gain(trace_jobs):
    """§V extension: user history helps in the model's own (log) metric."""
    n = len(trace_jobs) // 2
    train, test = trace_jobs[:n], trace_jobs[n:]
    base = RuntimePredictor(RuntimeModelConfig(n_estimators=20), seed=0).fit(train)
    ext = RuntimePredictor(
        RuntimeModelConfig(n_estimators=20), seed=0, features="request+user"
    ).fit(train)
    X = ext.design_matrix(test)
    assert X.shape == (len(test), 9)  # 7 request + 2 user columns
    actual_log = np.log1p(test.runtime_min)
    err_base = float(np.mean(np.abs(np.log1p(base.predict_minutes(test)) - actual_log)))
    err_ext = float(np.mean(np.abs(np.log1p(ext.predict_minutes(test)) - actual_log)))
    assert err_ext < err_base * 1.02  # at worst break-even, usually better


def test_user_expanding_stats_causal(trace_jobs):
    """History features must use strictly earlier jobs only."""
    from repro.core.runtime_model import user_expanding_stats

    sub = trace_jobs[:500]
    stats = user_expanding_stats(sub)
    rec = sub.records
    util = sub.walltime_utilization
    # For each user's first job (by submit), the feature is the prior.
    for user in np.unique(rec["user_id"])[:5]:
        g = np.flatnonzero(rec["user_id"] == user)
        first = g[np.argmin(rec["submit_time"][g])]
        assert stats["user_mean_utilization"][first] == 0.15
        # Second job sees exactly the first job's utilisation.
        if len(g) >= 2:
            order = g[np.argsort(rec["submit_time"][g], kind="stable")]
            np.testing.assert_allclose(
                stats["user_mean_utilization"][order[1]], util[order[0]]
            )


def test_feature_mode_validation():
    with pytest.raises(ValueError, match="features"):
        RuntimePredictor(features="nope")


def test_hist_mape_within_2pct_of_exact(trace_jobs):
    """Quality gate for the histogram split search: on the synthetic Anvil
    workload, the runtime model's holdout MAPE under ``hist`` must stay
    within 2 % *relative* of the ``exact`` reference."""
    from repro.eval.metrics import mean_absolute_percentage_error

    n = len(trace_jobs) // 2
    train, test = trace_jobs[:n], trace_jobs[n:]
    # Evaluate where the paper's metric is meaningful (non-trivial runtime).
    keep = test.runtime_min >= 1.0
    actual = test.runtime_min[keep]
    mape = {}
    for method in ("hist", "exact"):
        rt = RuntimePredictor(
            RuntimeModelConfig(n_estimators=20, tree_method=method), seed=0
        ).fit(train)
        mape[method] = mean_absolute_percentage_error(
            actual, rt.predict_minutes(test)[keep]
        )
    assert mape["hist"] <= mape["exact"] * 1.02
