"""TroutModel error paths and metadata integrity."""

import json

import numpy as np
import pytest

from repro.core.hierarchical import TroutModel


def test_load_missing_directory(tmp_path):
    with pytest.raises(FileNotFoundError):
        TroutModel.load(tmp_path / "nope")


def test_load_corrupt_meta(tmp_path):
    d = tmp_path / "m"
    d.mkdir()
    (d / "meta.json").write_text("{not json")
    with pytest.raises(json.JSONDecodeError):
        TroutModel.load(d)


def test_saved_meta_contents(tmp_path, feature_matrix):
    from repro.core import TroutConfig, train_trout
    from repro.core.config import ClassifierConfig, RegressorConfig

    fm, _ = feature_matrix
    cfg = TroutConfig(
        classifier=ClassifierConfig(hidden=(16, 8), epochs=3, patience=2),
        regressor=RegressorConfig(hidden=(16, 8), epochs=3, patience=2),
        seed=0,
    )
    out = train_trout(fm, cfg)
    out.model.save(tmp_path / "m")
    meta = json.loads((tmp_path / "m" / "meta.json").read_text())
    assert meta["cutoff_min"] == 10.0
    assert meta["n_features"] == 33
    assert len(meta["feature_names"]) == 33
    assert (tmp_path / "m" / "scalers.npz").exists()
    # And reload round-trips predictions.
    loaded = TroutModel.load(tmp_path / "m")
    np.testing.assert_allclose(
        loaded.predict_minutes(fm.X[:50]), out.model.predict_minutes(fm.X[:50])
    )
