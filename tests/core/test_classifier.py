"""Quick-start classifier."""

import numpy as np
import pytest

from repro.core.classifier import QuickStartClassifier
from repro.core.config import ClassifierConfig


def _separable(n=3000, skew=0.85, seed=0):
    """Skewed binary problem with a learnable boundary."""
    rng = np.random.default_rng(seed)
    y = (rng.random(n) > skew).astype(float)
    X = rng.normal(size=(n, 6))
    X[:, 0] += 3.0 * y
    X[:, 1] -= 2.0 * y
    return X, y


def _fast_cfg(**kw):
    base = dict(hidden=(32, 16), epochs=40, patience=8, lr=3e-3)
    base.update(kw)
    return ClassifierConfig(**base)


def test_learns_skewed_classes_both_ways():
    X, y = _separable()
    clf = QuickStartClassifier(6, _fast_cfg(), seed=0).fit(X, y)
    Xte, yte = _separable(seed=1)
    pred = clf.predict(Xte)
    acc = np.mean(pred == yte)
    assert acc > 0.9
    # Balanced training: decent accuracy on the MINORITY class too.
    assert np.mean(pred[yte == 1] == 1) > 0.8


def test_predict_proba_range_and_threshold():
    X, y = _separable(1000)
    clf = QuickStartClassifier(6, _fast_cfg(), seed=0).fit(X, y)
    p = clf.predict_proba(X)
    assert np.all((p >= 0) & (p <= 1))
    np.testing.assert_array_equal(clf.predict(X), (p >= 0.5).astype(np.int64))


def test_threshold_configurable():
    X, y = _separable(1000)
    strict = QuickStartClassifier(6, _fast_cfg(threshold=0.9), seed=0).fit(X, y)
    lax = QuickStartClassifier(6, _fast_cfg(threshold=0.1), seed=0).fit(X, y)
    assert strict.predict(X).sum() <= lax.predict(X).sum()


def test_single_class_rejected():
    X = np.random.default_rng(0).normal(size=(100, 3))
    with pytest.raises(ValueError, match="both classes"):
        QuickStartClassifier(3, _fast_cfg()).fit(X, np.zeros(100))


def test_feature_count_checked():
    X, y = _separable(200)
    with pytest.raises(ValueError, match="features"):
        QuickStartClassifier(4, _fast_cfg()).fit(X, y)


def test_unfitted_raises():
    with pytest.raises(RuntimeError):
        QuickStartClassifier(3).predict(np.zeros((2, 3)))


def test_config_validation():
    with pytest.raises(ValueError):
        ClassifierConfig(hidden=())
    with pytest.raises(ValueError):
        ClassifierConfig(threshold=0.0)
