"""Online-learning extension."""

import numpy as np
import pytest

from repro.core.classifier import QuickStartClassifier
from repro.core.config import ClassifierConfig, RegressorConfig
from repro.core.hierarchical import TroutModel
from repro.core.online import OnlineConfig, OnlineTrout
from repro.core.regressor import QueueTimeRegressor


def _make_data(n, seed, shift=0.0):
    """Queue-like data whose regime can be shifted to simulate drift."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    minutes = np.where(
        X[:, 0] > 0.5 - shift,
        np.exp(3.0 + X[:, 1] + shift),
        rng.uniform(0, 5, n),
    )
    return X, minutes


@pytest.fixture()
def base_model():
    X, minutes = _make_data(2500, seed=0)
    y = (minutes > 10).astype(float)
    clf = QuickStartClassifier(
        4, ClassifierConfig(hidden=(24, 12), epochs=30, patience=6, lr=3e-3), seed=0
    ).fit(X, y)
    long_rows = minutes > 10
    reg = QueueTimeRegressor(
        4, RegressorConfig(hidden=(24, 12), epochs=30, patience=6, lr=3e-3), seed=0
    ).fit(X[long_rows], minutes[long_rows])
    return TroutModel(clf, reg, 10.0, ("a", "b", "c", "d"))


def test_observe_scores_prequentially(base_model):
    online = OnlineTrout(base_model, OnlineConfig(window=5000, refresh_every=10_000))
    X, m = _make_data(600, seed=1)
    online.observe(X, m)
    assert online.drift.n_seen == 600
    assert 0.5 < online.drift.classifier_accuracy <= 1.0
    assert online.n_refreshes == 0  # below refresh threshold


def test_refresh_triggers_and_counts(base_model):
    online = OnlineTrout(
        base_model, OnlineConfig(window=2000, refresh_every=300, epochs=1)
    )
    X, m = _make_data(900, seed=2)
    for lo in range(0, 900, 150):
        online.observe(X[lo : lo + 150], m[lo : lo + 150])
    assert online.n_refreshes >= 2


def test_window_is_bounded(base_model):
    online = OnlineTrout(
        base_model, OnlineConfig(window=400, refresh_every=10_000)
    )
    for seed in range(6):
        X, m = _make_data(200, seed=seed)
        online.observe(X, m)
    assert online._buffered <= 400 + 200  # at most one chunk over


def test_refresh_adapts_to_drift(base_model):
    """After a regime shift, a refreshed model should beat the frozen one
    on the new regime."""
    frozen = OnlineTrout(base_model, OnlineConfig(refresh_every=10**9))
    # Clone-by-reference is fine for frozen (never refreshes).
    online = OnlineTrout(
        base_model, OnlineConfig(window=3000, refresh_every=500, epochs=4, lr=1e-3)
    )
    X_new, m_new = _make_data(2500, seed=3, shift=1.0)
    for lo in range(0, 2000, 500):
        online.observe(X_new[lo : lo + 500], m_new[lo : lo + 500])
    # Evaluate both on the tail of the shifted stream.
    X_eval, m_eval = X_new[2000:], m_new[2000:]
    truth = (m_eval > 10).astype(float)
    acc_after = np.mean(
        online.model.classifier.predict(X_eval).astype(float) == truth
    )
    assert acc_after > 0.6
    assert online.n_refreshes >= 3


def test_prediction_api_passthrough(base_model):
    online = OnlineTrout(base_model)
    X, _ = _make_data(20, seed=4)
    msgs = online.predict_messages(X)
    assert len(msgs) == 20
    assert len(online.predict_minutes(X)) == 20


def test_refresh_survives_single_class_stream(base_model):
    """An all-quick-start stream must not crash the classifier refresh
    (balance requires both classes; the refresh skips gracefully)."""
    online = OnlineTrout(
        base_model, OnlineConfig(window=1000, refresh_every=200, epochs=1)
    )
    rng = np.random.default_rng(0)
    X = rng.normal(size=(400, 4))
    X[:, 0] = -3.0  # forces the quick branch of the data generator
    minutes = rng.uniform(0, 5, 400)  # all quick
    online.observe(X[:200], minutes[:200])
    online.observe(X[200:], minutes[200:])
    assert online.n_refreshes >= 1
    assert online.drift.n_long == 0
    assert np.isnan(online.drift.regressor_mape)


def test_config_validation():
    with pytest.raises(ValueError):
        OnlineConfig(window=5)
    with pytest.raises(ValueError):
        OnlineConfig(epochs=0)
    with pytest.raises(ValueError):
        OnlineConfig(lr=0.0)
    with pytest.raises(ValueError):
        OnlineConfig(drift_mape_threshold=0.0)
    with pytest.raises(ValueError):
        OnlineConfig(drift_window=0)
    with pytest.raises(ValueError):
        OnlineConfig(drift_min_samples=0)
    assert OnlineConfig(drift_mape_threshold=None).drift_mape_threshold is None


class _ConstModel:
    """Stub hierarchy: always predicts long-wait at a fixed duration, so
    the stream's true minutes alone dictate the rolling MAPE."""

    cutoff_min = 10.0

    class _Clf:
        def predict(self, X):
            return np.ones(len(X))

    class _Reg:
        def predict_minutes(self, X):
            return np.full(len(X), 100.0)

    classifier = _Clf()
    regressor = _Reg()


def _drift_online(**kwargs):
    cfg = OnlineConfig(
        window=10_000,
        refresh_every=10**9,
        drift_window=20,
        drift_min_samples=5,
        drift_mape_threshold=50.0,
        **kwargs,
    )
    return OnlineTrout(_ConstModel(), cfg)


def test_rolling_mape_needs_min_samples():
    online = _drift_online()
    rng = np.random.default_rng(0)
    online.observe(rng.normal(size=(3, 4)), np.full(3, 100.0))
    assert np.isnan(online.rolling_mape)
    online.observe(rng.normal(size=(10, 4)), np.full(10, 100.0))
    assert online.rolling_mape == pytest.approx(0.0)


def test_drift_alarm_rising_edge_only():
    online = _drift_online()
    rng = np.random.default_rng(1)
    # Accurate regime: truth == prediction (100 min), MAPE 0.
    online.observe(rng.normal(size=(10, 4)), np.full(10, 100.0))
    assert online.n_drift_alarms == 0
    # Drifted regime: truth 20 min, prediction 100 -> APE 400 %.
    for _ in range(4):
        online.observe(rng.normal(size=(10, 4)), np.full(10, 20.0))
    assert online.n_drift_alarms == 1  # one rising edge, not one per batch
    assert online.rolling_mape > 50.0
    # Recovery clears the latch...
    for _ in range(5):
        online.observe(rng.normal(size=(10, 4)), np.full(10, 100.0))
    assert online.n_drift_alarms == 1
    assert online.rolling_mape < 50.0
    # ...so a second excursion raises a second alarm.
    for _ in range(5):
        online.observe(rng.normal(size=(10, 4)), np.full(10, 20.0))
    assert online.n_drift_alarms == 2


def test_drift_alarm_disabled_with_none_threshold():
    online = _drift_online()
    online.config.drift_mape_threshold = None
    rng = np.random.default_rng(2)
    for _ in range(5):
        online.observe(rng.normal(size=(10, 4)), np.full(10, 20.0))
    assert online.n_drift_alarms == 0


def test_rolling_window_trims_old_batches():
    online = _drift_online()
    rng = np.random.default_rng(3)
    # Fill the 20-sample window with bad batches, then flood with good
    # ones: the bad history must age out entirely.
    for _ in range(2):
        online.observe(rng.normal(size=(10, 4)), np.full(10, 20.0))
    for _ in range(4):
        online.observe(rng.normal(size=(10, 4)), np.full(10, 100.0))
    assert online.rolling_mape == pytest.approx(0.0)
    assert online.monitor._roll_n <= online.config.drift_window + 10
