"""End-to-end training orchestration on the session trace."""

import numpy as np
import pytest

from repro.core import TroutConfig, run_regression_cv, train_trout
from repro.core.config import ClassifierConfig, RegressorConfig
from repro.core.training import build_feature_matrix


@pytest.fixture(scope="module")
def fast_config():
    return TroutConfig(
        classifier=ClassifierConfig(hidden=(48, 24), epochs=30, patience=6, lr=2e-3),
        regressor=RegressorConfig(hidden=(64, 32), epochs=40, patience=6),
        seed=0,
    )


def test_build_feature_matrix(feature_matrix, trace_jobs):
    fm, runtime = feature_matrix
    assert fm.X.shape == (len(trace_jobs), 33)
    assert np.all(np.isfinite(fm.X))
    # Runtime model was fitted (predictions differ from the timelimit
    # fallback for most jobs).
    pred = runtime.predict_minutes(trace_jobs)
    assert np.mean(np.isclose(pred, trace_jobs.column("timelimit_min"))) < 0.5


def test_train_trout_metrics(feature_matrix, fast_config):
    fm, _ = feature_matrix
    out = train_trout(fm, fast_config)
    # §IV regime: strong overall accuracy with "similar accuracy on both
    # classes" — at test scale (15k jobs, fast config) we assert both are
    # clearly above chance; the R1 benchmark reproduces the ~90 % figure
    # at full scale.
    assert out.classifier_accuracy > 0.72
    assert out.classifier_accuracy_quick > 0.55
    assert out.classifier_accuracy_long > 0.55
    assert out.n_holdout == max(1, round(0.2 * len(fm.X)))
    assert np.isfinite(out.regression_mape_holdout)


def test_trained_model_inference_shapes(feature_matrix, fast_config):
    fm, _ = feature_matrix
    out = train_trout(fm, fast_config)
    msgs = out.model.predict_messages(fm.X[-20:])
    assert len(msgs) == 20


def test_run_regression_cv_folds(feature_matrix, fast_config):
    fm, _ = feature_matrix
    cv = run_regression_cv(fm, fast_config)
    assert len(cv.folds) == 5
    for f in cv.folds:
        assert f.mape > 0
        assert -1 <= f.pearson <= 1
        assert 0 <= f.within_100 <= 1
        assert len(f.y_true) == f.n_test
    # Expanding window: training sets grow.
    sizes = [f.n_train for f in cv.folds]
    assert sizes == sorted(sizes)
    # Learnable signal shows up in the later (data-rich) folds; individual
    # folds are noisy at test scale, so assert on the best of the last 3.
    assert max(f.pearson for f in cv.folds[-3:]) > 0.15
    assert np.isfinite(cv.mape_last3)
    assert cv.final_pearson == cv.folds[-1].pearson


def test_config_validation():
    with pytest.raises(ValueError):
        TroutConfig(cutoff_min=0)
    with pytest.raises(ValueError):
        TroutConfig(val_fraction=0.9)
