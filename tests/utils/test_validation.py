"""Input validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_1d,
    check_2d,
    check_consistent_length,
    check_finite,
    check_fitted,
    ensure_float64,
)


def test_ensure_float64_contiguous():
    a = np.arange(6, dtype=np.int32).reshape(2, 3)[:, ::-1]
    out = ensure_float64(a)
    assert out.dtype == np.float64 and out.flags["C_CONTIGUOUS"]


def test_check_2d_promotes_1d():
    out = check_2d(np.arange(4))
    assert out.shape == (4, 1)


def test_check_2d_rejects_3d_and_empty():
    with pytest.raises(ValueError):
        check_2d(np.zeros((2, 2, 2)))
    with pytest.raises(ValueError):
        check_2d(np.zeros((0, 3)))


def test_check_1d_squeezes_column():
    out = check_1d(np.arange(4).reshape(-1, 1))
    assert out.shape == (4,)
    with pytest.raises(ValueError):
        check_1d(np.zeros((3, 2)))


def test_check_consistent_length():
    check_consistent_length(np.zeros(3), np.zeros(3), None)
    with pytest.raises(ValueError):
        check_consistent_length(np.zeros(3), np.zeros(4))


def test_check_finite():
    check_finite(np.ones(3))
    with pytest.raises(ValueError, match="non-finite"):
        check_finite(np.array([1.0, np.nan]))


def test_check_fitted():
    class M:
        tree_ = None

    with pytest.raises(RuntimeError, match="not fitted"):
        check_fitted(M(), "tree_")
    m = M()
    m.tree_ = object()
    check_fitted(m, "tree_")
