"""Parallel helpers: ordering, chunking, overlap windows, error labelling."""

import numpy as np
import pytest

from repro.utils.parallel import (
    ParallelWorkerError,
    chunk_indices,
    effective_n_jobs,
    overlapping_chunks,
    parallel_map,
)


def _square(x):
    return x * x


def _explode_on_bounds(bounds):
    lo, hi = bounds
    if lo == 30:
        raise ValueError("bad chunk data")
    return hi - lo


def test_parallel_map_serial_order():
    assert parallel_map(_square, [1, 2, 3], n_jobs=1) == [1, 4, 9]


def test_parallel_map_processes_match_serial():
    items = list(range(20))
    serial = parallel_map(_square, items, n_jobs=1)
    parallel = parallel_map(_square, items, n_jobs=2, min_items_per_job=1)
    assert serial == parallel


def test_parallel_map_shrinks_pool_for_small_work():
    # 3 items with min 10 per job must run serially without error.
    assert parallel_map(_square, [1, 2, 3], n_jobs=8, min_items_per_job=10) == [1, 4, 9]


def test_effective_n_jobs():
    assert effective_n_jobs(None) == 1
    assert effective_n_jobs(0) == 1
    assert effective_n_jobs(1) == 1
    assert effective_n_jobs(-1) >= 1
    # Positive requests are honoured verbatim so single-core runners can
    # still exercise real worker processes.
    assert effective_n_jobs(4) == 4


@pytest.mark.parametrize("n_jobs", [1, 3])
def test_worker_exception_carries_chunk_bounds(n_jobs):
    """A failing chunk names its [lo, hi) bounds, serial or parallel."""
    bounds = [(0, 10), (10, 20), (30, 45), (45, 60)]
    with pytest.raises(ParallelWorkerError, match=r"chunk \[30, 45\)") as exc:
        parallel_map(
            _explode_on_bounds,
            bounds,
            n_jobs=n_jobs,
            label=lambda b: f"chunk [{b[0]}, {b[1]})",
        )
    # The original error text rides along (the cause chain itself does not
    # survive pickling back from a worker process).
    assert "bad chunk data" in str(exc.value)
    if n_jobs == 1:
        assert isinstance(exc.value.__cause__, ValueError)


def test_parallel_map_without_label_raises_original():
    with pytest.raises(ValueError, match="bad chunk data"):
        parallel_map(_explode_on_bounds, [(30, 45)], n_jobs=1)


def test_chunk_indices_cover_range():
    chunks = chunk_indices(10, 3)
    joined = np.concatenate(chunks)
    np.testing.assert_array_equal(joined, np.arange(10))
    assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1


def test_chunk_indices_invalid():
    with pytest.raises(ValueError):
        chunk_indices(10, 0)


def test_overlapping_chunks_paper_scheme():
    wins = overlapping_chunks(250_000, 100_000, 10_000)
    assert wins[0] == (0, 100_000)
    assert wins[1] == (90_000, 190_000)
    assert wins[-1][1] == 250_000
    # Consecutive windows overlap by exactly 10k until the clipped last one.
    assert wins[0][1] - wins[1][0] == 10_000


def test_overlapping_chunks_edges():
    assert overlapping_chunks(0, 10, 2) == []
    assert overlapping_chunks(5, 10, 2) == [(0, 5)]
    with pytest.raises(ValueError):
        overlapping_chunks(10, 10, 10)
    with pytest.raises(ValueError):
        overlapping_chunks(10, 0, 0)


def test_overlapping_chunks_cover_everything():
    wins = overlapping_chunks(1234, 100, 30)
    covered = np.zeros(1234, dtype=bool)
    for lo, hi in wins:
        covered[lo:hi] = True
    assert covered.all()
