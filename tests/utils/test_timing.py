"""Timer accumulation semantics."""

import time

import pytest

from repro.utils.timing import Timer, timed


def test_timer_accumulates_laps():
    t = Timer()
    for _ in range(3):
        with t:
            time.sleep(0.002)
    assert t.laps == 3
    assert t.elapsed >= 0.005
    assert t.mean > 0


def test_timer_reset():
    t = Timer()
    with t:
        pass
    t.reset()
    assert t.laps == 0 and t.elapsed == 0.0 and t.mean == 0.0


def test_timer_reentrant_nested_blocks():
    """Nested ``with`` on one instance must time each region independently.

    Before the start-stack fix the inner block clobbered the single
    ``_t0``, so the outer block's lap measured only the post-inner tail.
    """
    t = Timer()
    with t:
        time.sleep(0.004)
        with t:
            time.sleep(0.002)
    assert t.laps == 2
    # inner (~2 ms) + outer (~6 ms, containing the inner) >= 8 ms; the
    # clobbered version records only inner + ~0 instead.
    assert t.elapsed >= 0.007


def test_timed_decorator_records_elapsed_and_warns():
    with pytest.warns(DeprecationWarning, match="tracing.span"):

        @timed
        def work(n):
            time.sleep(0.002)
            return n * 2

    assert work(21) == 42
    assert work.last_elapsed >= 0.001
