"""Timer accumulation semantics."""

import time

from repro.utils.timing import Timer, timed


def test_timer_accumulates_laps():
    t = Timer()
    for _ in range(3):
        with t:
            time.sleep(0.002)
    assert t.laps == 3
    assert t.elapsed >= 0.005
    assert t.mean > 0


def test_timer_reset():
    t = Timer()
    with t:
        pass
    t.reset()
    assert t.laps == 0 and t.elapsed == 0.0 and t.mean == 0.0


def test_timed_decorator_records_elapsed():
    @timed
    def work(n):
        time.sleep(0.002)
        return n * 2

    assert work(21) == 42
    assert work.last_elapsed >= 0.001
