"""Library logging namespace."""

import logging

from repro.utils.logging import enable_console_logging, get_logger


def test_loggers_live_under_repro_namespace():
    log = get_logger("workload.generator")
    assert log.name == "repro.workload.generator"
    # Already-qualified names pass through.
    assert get_logger("repro.slurm").name == "repro.slurm"


def test_enable_console_logging_idempotent():
    root = logging.getLogger("repro")
    before = len(root.handlers)
    enable_console_logging()
    enable_console_logging()
    stream_handlers = [
        h for h in root.handlers if isinstance(h, logging.StreamHandler)
    ]
    assert len(stream_handlers) >= 1
    # Second call added nothing new beyond the first.
    assert len(root.handlers) <= before + 1


def test_console_handler_added_despite_foreign_file_handler(tmp_path):
    """A FileHandler is a StreamHandler subclass; it must not satisfy the
    idempotency check and suppress the console handler."""
    root = logging.getLogger("repro")
    saved = list(root.handlers)
    root.handlers = []
    fh = logging.FileHandler(tmp_path / "app.log")
    try:
        root.addHandler(fh)
        enable_console_logging()
        console = [
            h
            for h in root.handlers
            if getattr(h, "_repro_console_handler", False)
        ]
        assert len(console) == 1
    finally:
        fh.close()
        root.handlers = saved


def test_repeat_call_updates_level_without_stacking():
    root = logging.getLogger("repro")
    saved = list(root.handlers)
    root.handlers = []
    try:
        enable_console_logging(logging.INFO)
        enable_console_logging(logging.DEBUG)
        console = [
            h
            for h in root.handlers
            if getattr(h, "_repro_console_handler", False)
        ]
        assert len(console) == 1
        assert console[0].level == logging.DEBUG
        assert root.level == logging.DEBUG
    finally:
        root.handlers = saved


def test_child_logger_propagates(caplog):
    log = get_logger("test_child")
    with caplog.at_level(logging.INFO, logger="repro"):
        log.info("hello %d", 42)
    assert any("hello 42" in r.message for r in caplog.records)
