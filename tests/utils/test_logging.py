"""Library logging namespace."""

import logging

from repro.utils.logging import enable_console_logging, get_logger


def test_loggers_live_under_repro_namespace():
    log = get_logger("workload.generator")
    assert log.name == "repro.workload.generator"
    # Already-qualified names pass through.
    assert get_logger("repro.slurm").name == "repro.slurm"


def test_enable_console_logging_idempotent():
    root = logging.getLogger("repro")
    before = len(root.handlers)
    enable_console_logging()
    enable_console_logging()
    stream_handlers = [
        h for h in root.handlers if isinstance(h, logging.StreamHandler)
    ]
    assert len(stream_handlers) >= 1
    # Second call added nothing new beyond the first.
    assert len(root.handlers) <= before + 1


def test_child_logger_propagates(caplog):
    log = get_logger("test_child")
    with caplog.at_level(logging.INFO, logger="repro"):
        log.info("hello %d", 42)
    assert any("hello 42" in r.message for r in caplog.records)
