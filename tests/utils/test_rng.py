"""Seeding and stream-spawning behaviour."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceFactory, default_rng, spawn_rngs


def test_default_rng_reproducible():
    a = default_rng(42).random(5)
    b = default_rng(42).random(5)
    np.testing.assert_array_equal(a, b)


def test_default_rng_passthrough():
    g = np.random.default_rng(0)
    assert default_rng(g) is g


def test_spawn_rngs_independent_and_reproducible():
    streams1 = spawn_rngs(7, 3)
    streams2 = spawn_rngs(7, 3)
    for s1, s2 in zip(streams1, streams2):
        np.testing.assert_array_equal(s1.random(4), s2.random(4))
    # Distinct children produce distinct streams.
    assert not np.allclose(streams1[0].random(8), streams1[1].random(8))


def test_spawn_rngs_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_seed_factory_counts_and_differs():
    f = SeedSequenceFactory(3)
    r1 = f.next_rng()
    r2 = f.next_rng()
    s = f.next_seed()
    assert f.n_spawned == 3
    assert isinstance(s, int) and s >= 0
    assert not np.allclose(r1.random(8), r2.random(8))


def test_seed_factory_spawn_batch():
    f = SeedSequenceFactory(3)
    batch = f.spawn(4)
    assert len(batch) == 4 and f.n_spawned == 4


def test_permutation_chunks_partition_range():
    from repro.utils.rng import permutation_chunks

    rng = np.random.default_rng(0)
    chunks = list(permutation_chunks(rng, 100, 7))
    assert len(chunks) == 7
    joined = np.sort(np.concatenate(chunks))
    np.testing.assert_array_equal(joined, np.arange(100))
    # Chunks are near-equal in size.
    sizes = [len(c) for c in chunks]
    assert max(sizes) - min(sizes) <= 1
