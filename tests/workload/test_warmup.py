"""Warm-up discarding in generate_trace."""

import numpy as np
import pytest

from repro.workload import WorkloadConfig, generate_trace
from repro.slurm.anvil import anvil_cluster


def test_warmup_returns_exact_n_jobs():
    cfg = WorkloadConfig(n_jobs=2000, seed=3, load=0.5, warmup_fraction=0.2)
    res, _ = generate_trace(cfg)
    assert len(res.jobs) == 2000


def test_warmup_zero_keeps_everything():
    cfg = WorkloadConfig(n_jobs=1500, seed=3, load=0.5, warmup_fraction=0.0)
    res, _ = generate_trace(cfg)
    assert len(res.jobs) == 1500


def test_warmup_drops_cold_start_prefix():
    """With warm-up, the kept jobs are the most recent of a longer run:
    the cold-start prefix (earliest job ids) is gone and the kept window
    starts mid-operation (some capacity already committed)."""
    warm = generate_trace(
        WorkloadConfig(n_jobs=3000, seed=5, load=0.6, warmup_fraction=0.25)
    )[0]
    ids = warm.jobs.column("job_id")
    # 3000 kept of 4000 simulated: the first ~1000 ids were discarded.
    assert ids.min() > 1
    assert len(ids) == 3000
    # Jobs running at the window's first eligibility instant exist — the
    # cluster is already busy when the trace begins.
    t0 = float(warm.jobs.column("eligible_time")[0])
    rec = warm.jobs.records
    running = (rec["start_time"] <= t0) & (rec["end_time"] > t0)
    assert running.sum() >= 0  # structural smoke (non-crash); busyness is
    # asserted properly on the session-scale trace in test_training.


def test_warmup_validation():
    with pytest.raises(ValueError, match="warmup_fraction"):
        generate_trace(WorkloadConfig(n_jobs=100, warmup_fraction=0.95))


def test_custom_cluster_passthrough():
    cluster = anvil_cluster(scale=0.03)
    res, returned = generate_trace(
        WorkloadConfig(n_jobs=800, seed=1, load=0.5), cluster=cluster
    )
    assert returned is cluster
    assert res.jobs.partition_names == cluster.partition_names
