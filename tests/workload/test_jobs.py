"""Per-job request/runtime sampling."""

import numpy as np

from repro.slurm.anvil import anvil_cluster
from repro.workload.jobs import TIMELIMIT_MENU_MIN, sample_requests, sample_runtimes


def _requests(n=4000, seed=0):
    cluster = anvil_cluster(0.05)
    rng = np.random.default_rng(seed)
    parts = rng.integers(0, len(cluster.partitions), n)
    scale = np.ones(n)
    return cluster, parts, sample_requests(parts, scale, cluster, rng)


def test_requests_within_partition_caps():
    cluster, parts, req = _requests()
    pool_ids = cluster.partition_pool_ids()
    for pid, part in enumerate(cluster.partitions):
        mask = parts == pid
        if not mask.any():
            continue
        pool = cluster.pools[pool_ids[pid]]
        assert req["req_cpus"][mask].max() <= pool.total_cpus
        assert req["req_mem_gb"][mask].max() <= pool.total_mem_gb + 1e-9
        assert req["timelimit_min"][mask].max() <= part.max_timelimit_min
        if part.max_nodes is not None:
            assert req["req_nodes"][mask].max() <= min(part.max_nodes, pool.n_nodes)


def test_requests_positive():
    _, _, req = _requests()
    assert req["req_cpus"].min() >= 1
    assert req["req_nodes"].min() >= 1
    assert req["req_mem_gb"].min() > 0
    assert req["timelimit_min"].min() > 0


def test_gpu_partition_requests_gpus():
    cluster, parts, req = _requests()
    gpu = cluster.partition_id("gpu")
    assert req["req_gpus"][parts == gpu].min() >= 1
    assert req["req_gpus"][parts != gpu].max() == 0


def test_exclusive_partitions_whole_nodes():
    cluster, parts, req = _requests()
    pool = cluster.pools[0]
    for name in ("wholenode", "wide"):
        pid = cluster.partition_id(name)
        mask = parts == pid
        if mask.any():
            np.testing.assert_array_equal(
                req["req_cpus"][mask], req["req_nodes"][mask] * pool.cpus_per_node
            )


def test_timelimits_come_from_menu():
    _, _, req = _requests()
    assert np.all(np.isin(req["timelimit_min"], TIMELIMIT_MENU_MIN))


def test_timelimit_distribution_regime():
    # Median ~4h, mean ~12h (Table I).
    _, _, req = _requests(20_000, seed=1)
    tl_hr = req["timelimit_min"] / 60.0
    assert 2.0 <= np.median(tl_hr) <= 8.0
    assert 8.0 <= tl_hr.mean() <= 18.0


def test_runtimes_regime():
    rng = np.random.default_rng(0)
    n = 20_000
    tl = np.full(n, 240.0)
    util = np.full(n, 0.15)
    runtime, fail = sample_runtimes(tl, util, rng)
    assert np.all(runtime > 0)
    assert np.all(runtime <= tl + 1e-9)
    # Crash mixture gives a tiny median, Beta body keeps the mean moderate.
    assert np.median(runtime) < 40.0
    assert 0.05 < (runtime / tl).mean() < 0.3
    # Failures only among quick exits.
    assert fail.sum() > 0
    assert runtime[fail == 1].max() < 30.0


def test_runtime_timeout_fraction():
    rng = np.random.default_rng(1)
    tl = np.full(50_000, 60.0)
    runtime, _ = sample_runtimes(tl, np.full(50_000, 0.15), rng)
    hit = np.mean(runtime >= tl)
    assert 0.01 < hit < 0.1
