"""User population sampling."""

import numpy as np
import pytest

from repro.workload.users import UserPopulation


def _pop(n=300, seed=0):
    shares = np.array([0.7, 0.2, 0.1])
    return UserPopulation.sample(n, shares, seed=seed)


def test_shapes_and_ranges():
    pop = _pop()
    assert pop.partition_pref.shape == (300, 3)
    np.testing.assert_allclose(pop.partition_pref.sum(axis=1), 1.0)
    assert np.all(pop.activity > 0)
    assert np.all((pop.utilization_mean > 0) & (pop.utilization_mean < 1))
    assert np.all((pop.burstiness >= 0) & (pop.burstiness <= 1))
    assert np.all(pop.mean_burst >= 2)


def test_activity_heavy_tailed():
    pop = _pop(1000)
    a = pop.activity
    # Mean far above median — the Table I regime.
    assert a.mean() > 3 * np.median(a)


def test_activity_weighted_partition_mix():
    pop = _pop(500, seed=1)
    shares = np.array([0.7, 0.2, 0.1])
    w = pop.activity_probs()
    # Expected mix under activity weighting tracks the target within a few
    # points (the greedy assignment guarantees this even for power users).
    mix = w @ pop.partition_pref
    np.testing.assert_allclose(mix, shares, atol=0.08)


def test_utilization_population_mean_near_15pct():
    pop = _pop(4000, seed=2)
    assert 0.10 < pop.utilization_mean.mean() < 0.22


def test_reproducible():
    a = _pop(seed=9)
    b = _pop(seed=9)
    np.testing.assert_array_equal(a.activity, b.activity)
    np.testing.assert_array_equal(a.partition_pref, b.partition_pref)


def test_bad_shares_rejected():
    with pytest.raises(ValueError):
        UserPopulation.sample(10, np.array([0.0, 0.0]), seed=0)
    with pytest.raises(ValueError):
        UserPopulation.sample(10, np.array([-1.0, 2.0]), seed=0)
