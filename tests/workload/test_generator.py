"""End-to-end workload generation properties."""

import numpy as np
import pytest

from repro.slurm.anvil import anvil_cluster
from repro.slurm.simulator import SUBMISSION_DTYPE
from repro.workload.generator import (
    DEFAULT_PARTITION_SHARES,
    WorkloadConfig,
    generate_submissions,
)


@pytest.fixture(scope="module")
def generated():
    cfg = WorkloadConfig(n_jobs=8000, seed=5, cluster_scale=0.05)
    cluster = anvil_cluster(cfg.cluster_scale)
    table, pop = generate_submissions(cfg, cluster)
    return cfg, cluster, table, pop


def test_exact_job_count(generated):
    cfg, _, table, _ = generated
    assert len(table) == cfg.n_jobs
    assert table.dtype == SUBMISSION_DTYPE


def test_sorted_by_submit_with_sequential_ids(generated):
    _, _, table, _ = generated
    assert np.all(np.diff(table["submit_time"]) >= 0)
    np.testing.assert_array_equal(table["job_id"], np.arange(1, len(table) + 1))


def test_partition_mix_matches_target(generated):
    _, cluster, table, _ = generated
    counts = np.bincount(table["partition"], minlength=len(cluster.partitions))
    mix = counts / counts.sum()
    target = np.array(
        [DEFAULT_PARTITION_SHARES[n] for n in cluster.partition_names]
    )
    # shared dominates and overall mix is within a few points.
    assert mix[cluster.partition_id("shared")] > 0.5
    np.testing.assert_allclose(mix, target, atol=0.1)


def test_eligibility_follows_submit(generated):
    _, _, table, _ = generated
    assert np.all(table["eligible_time"] >= table["submit_time"])
    delayed = table["eligible_time"] > table["submit_time"]
    assert 0.0 < delayed.mean() < 0.1


def test_bursts_create_identical_neighbours(generated):
    # The leakage hazard: many consecutive jobs share user+request exactly.
    _, _, table, _ = generated
    same = (
        (table["user_id"][1:] == table["user_id"][:-1])
        & (table["req_cpus"][1:] == table["req_cpus"][:-1])
        & (table["timelimit_min"][1:] == table["timelimit_min"][:-1])
    )
    assert same.mean() > 0.3


def test_requests_satisfiable(generated):
    _, cluster, table, _ = generated
    pool_ids = cluster.partition_pool_ids()
    caps = np.array([cluster.pools[i].total_cpus for i in pool_ids])
    assert np.all(table["req_cpus"] <= caps[table["partition"]])


def test_reproducibility():
    cfg = WorkloadConfig(n_jobs=500, seed=42)
    cluster = anvil_cluster(cfg.cluster_scale)
    a, _ = generate_submissions(cfg, cluster)
    b, _ = generate_submissions(cfg, cluster)
    for name in a.dtype.names:
        np.testing.assert_array_equal(a[name], b[name])


def test_n_jobs_validation():
    with pytest.raises(ValueError):
        generate_submissions(WorkloadConfig(n_jobs=0), anvil_cluster(0.05))


def test_resolved_n_users():
    assert WorkloadConfig(n_jobs=1000).resolved_n_users() == 50
    assert WorkloadConfig(n_jobs=120_000).resolved_n_users() == 200
    assert WorkloadConfig(n_jobs=1000, n_users=7).resolved_n_users() == 7


def test_queue_time_distribution_shape(small_trace):
    """Fig. 2's regime: most jobs near zero, heavy right tail."""
    result, _ = small_trace
    q = result.queue_time_min
    assert np.mean(q < 10) > 0.5  # bulk is quick (congested test trace)
    assert q.max() > 60  # tail reaches hours
    assert np.median(q) < np.mean(q)  # right skew
