"""Arrival process: diurnal modulation and burst sizes."""

import numpy as np
import pytest

from repro.workload.arrivals import DAY_S, burst_sizes, diurnal_rate, sample_event_times


def test_diurnal_rate_shape():
    t = np.linspace(0, DAY_S, 1000)
    r = diurnal_rate(t)
    assert r.max() <= 1.0 + 1e-9
    assert r.min() > 0.0
    # Midday busier than 3am (Monday).
    assert diurnal_rate(np.array([12 * 3600.0])) > diurnal_rate(np.array([3 * 3600.0]))


def test_weekend_suppression():
    monday_noon = 12 * 3600.0
    saturday_noon = 5 * DAY_S + 12 * 3600.0
    assert diurnal_rate(np.array([saturday_noon])) < diurnal_rate(np.array([monday_noon]))


def test_sample_event_times_sorted_in_range():
    rng = np.random.default_rng(0)
    t = sample_event_times(500, 7 * DAY_S, rng)
    assert len(t) == 500
    assert np.all(np.diff(t) >= 0)
    assert t.min() >= 0 and t.max() <= 7 * DAY_S


def test_sample_event_times_respects_modulation():
    rng = np.random.default_rng(0)
    t = sample_event_times(20_000, 14 * DAY_S, rng)
    tod = (t % DAY_S) / 3600.0
    day_mass = np.mean((tod > 9) & (tod < 17))
    night_mass = np.mean((tod < 5))
    assert day_mass > 2 * night_mass


def test_sample_event_times_edges():
    rng = np.random.default_rng(0)
    assert len(sample_event_times(0, 100.0, rng)) == 0
    with pytest.raises(ValueError):
        sample_event_times(5, 0.0, rng)


def test_burst_sizes_bounds_and_mix():
    rng = np.random.default_rng(0)
    n = 5000
    sizes = burst_sizes(
        n,
        burst_prob=np.full(n, 0.5),
        mean_burst=np.full(n, 20.0),
        rng=rng,
        max_burst=100,
    )
    assert sizes.min() >= 1
    assert sizes.max() <= 100
    # Roughly half the events are singletons.
    assert 0.35 < np.mean(sizes == 1) < 0.65
    # Bursty events average near the requested mean.
    assert 10 < sizes[sizes > 1].mean() < 35


def test_burst_sizes_zero_prob():
    rng = np.random.default_rng(0)
    sizes = burst_sizes(100, np.zeros(100), np.full(100, 50.0), rng)
    assert np.all(sizes == 1)
