"""Registry fault injection: every bad publish leaves the current model
serving and bumps ``serve_reload_failures_total``; good publishes hot-swap
without dropping in-flight requests."""

from __future__ import annotations

import json
import shutil
import threading

import numpy as np
import pytest

from repro.core.classifier import QuickStartClassifier
from repro.core.config import ClassifierConfig, RegressorConfig
from repro.core.hierarchical import TroutModel
from repro.core.regressor import QueueTimeRegressor
from repro.nn import Sequential
from repro.serve import (
    ModelRegistry,
    PredictionService,
    RegistryError,
    ServeConfig,
    publish_model,
)
from repro.serve.registry import MANIFEST_NAME, artifact_fingerprint

from tests.serve.conftest import (
    N_FEATURES,
    feature_row,
    golden_model,
    metric_value,
)


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


def _service(registry: ModelRegistry) -> PredictionService:
    return PredictionService(
        registry.load_latest(),
        ServeConfig(max_batch=4, max_wait_ms=1.0, reload_interval_s=600.0),
        registry=registry,
    )


# --------------------------------------------------------------------- #
# publish / load round trip
# --------------------------------------------------------------------- #
def test_publish_assigns_sequential_versions(registry):
    assert publish_model(registry.root, golden_model()) == 1
    assert publish_model(registry.root, golden_model(7.0)) == 2
    assert registry.versions() == [1, 2]
    assert registry.latest_version() == 2


def test_load_roundtrip_preserves_model_and_manifest(registry):
    publish_model(registry.root, golden_model(), partitions=("shared", "gpu"))
    loaded = registry.load_latest()
    assert loaded.version == 1
    assert loaded.partitions == ("shared", "gpu")
    assert loaded.fingerprint == artifact_fingerprint(registry.version_dir(1))
    X = np.array([feature_row(0)])
    pred = loaded.model.predict(X)[0]
    assert pred.minutes == 42.0 and pred.p_long == 0.5


def test_empty_registry_refuses_to_load(registry):
    with pytest.raises(RegistryError, match="no published versions"):
        registry.load_latest()


def test_staging_dirs_are_invisible(registry):
    publish_model(registry.root, golden_model())
    (registry.root / ".staging-v0002").mkdir()
    (registry.root / "not-a-version").mkdir()
    assert registry.versions() == [1]


# --------------------------------------------------------------------- #
# fault injection: each corruption keeps the old model serving
# --------------------------------------------------------------------- #
def _corrupt_truncate(version_dir):
    target = version_dir / "regressor.npz"
    target.write_bytes(target.read_bytes()[: 100])


def _corrupt_half_written(version_dir):
    # Simulate a non-atomic publisher dying before the manifest write.
    (version_dir / MANIFEST_NAME).unlink()


def _corrupt_downgrade(version_dir):
    # A v0001 artifact copied over the new version dir wholesale: its
    # manifest still declares version 1.
    manifest = json.loads((version_dir / MANIFEST_NAME).read_text())
    manifest["version"] = 1
    (version_dir / MANIFEST_NAME).write_text(json.dumps(manifest))


@pytest.mark.parametrize(
    "corrupt, match",
    [
        (_corrupt_truncate, "fingerprint mismatch"),
        (_corrupt_half_written, "half-written publish"),
        (_corrupt_downgrade, "downgrade/mismatch"),
    ],
    ids=["truncated-artifact", "missing-manifest", "version-downgrade"],
)
def test_bad_publish_keeps_current_model(registry, corrupt, match):
    publish_model(registry.root, golden_model())
    service = _service(registry)
    try:
        v2 = publish_model(registry.root, golden_model(7.0))
        corrupt(registry.version_dir(v2))
        with pytest.raises(RegistryError, match=match):
            registry.load(v2)

        assert service.poll_registry() is False
        assert service.current.version == 1
        assert metric_value("serve_reload_failures_total", reason="load") == 1.0
        # Still serving version 1's constant answer.
        _version, _fp, pred = service.batcher.submit(
            np.array(feature_row(3))
        ).wait(10.0)
        assert pred.minutes == 42.0
    finally:
        service.close()


def _wide_model(n_features: int) -> TroutModel:
    from tests.serve.conftest import _identity_scaler, _zero_dense

    clf = QuickStartClassifier(n_features, ClassifierConfig(threshold=0.5))
    clf.net_ = Sequential([_zero_dense(n_features, 1)])
    _identity_scaler(clf, n_features)
    reg = QueueTimeRegressor(n_features, RegressorConfig(log_target=False))
    reg.net_ = Sequential([_zero_dense(n_features, 1, bias=9.0)])
    _identity_scaler(reg, n_features)
    names = tuple(f"f{i}" for i in range(n_features))
    return TroutModel(clf, reg, cutoff_min=10.0, feature_names=names)


def test_feature_width_change_is_rejected(registry):
    publish_model(registry.root, golden_model())
    service = _service(registry)
    try:
        publish_model(registry.root, _wide_model(N_FEATURES + 1))
        assert service.poll_registry() is False
        assert service.current.version == 1
        assert (
            metric_value("serve_reload_failures_total", reason="shape") == 1.0
        )
    finally:
        service.close()


def test_failed_candidate_retried_after_repair(registry):
    publish_model(registry.root, golden_model())
    service = _service(registry)
    try:
        v2 = publish_model(registry.root, golden_model(7.0))
        broken = registry.version_dir(v2)
        backup = registry.root / "backup"
        shutil.copytree(broken, backup)
        _corrupt_truncate(broken)
        assert service.poll_registry() is False
        # Repair (re-copy the good artifact); the next poll succeeds.
        shutil.rmtree(broken)
        shutil.copytree(backup, broken)
        shutil.rmtree(backup)
        assert service.poll_registry() is True
        assert service.current.version == v2
    finally:
        service.close()


# --------------------------------------------------------------------- #
# hot reload under load
# --------------------------------------------------------------------- #
def test_hot_reload_does_not_drop_in_flight_requests(registry):
    publish_model(registry.root, golden_model(42.0))
    service = _service(registry)
    stop = threading.Event()
    minutes_seen: set[float] = set()
    errors: list[BaseException] = []

    def client() -> None:
        i = 0
        while not stop.is_set():
            try:
                _v, _fp, pred = service.batcher.submit(
                    np.array(feature_row(i % 7))
                ).wait(10.0)
                minutes_seen.add(pred.minutes)
            except BaseException as exc:
                errors.append(exc)
                return
            i += 1

    threads = [threading.Thread(target=client, daemon=True) for _ in range(4)]
    try:
        for t in threads:
            t.start()
        # Guarantee at least one pre-reload answer is on record.
        _v, _fp, pred = service.batcher.submit(np.array(feature_row(0))).wait(10.0)
        minutes_seen.add(pred.minutes)
        assert pred.minutes == 42.0
        # Publish + reload while traffic is flowing.
        publish_model(registry.root, golden_model(77.0))
        assert service.poll_registry() is True
        # Let post-reload traffic through, then stop.
        deadline_pred = service.batcher.submit(np.array(feature_row(1)))
        _v, _fp, pred = deadline_pred.wait(10.0)
        assert pred.minutes == 77.0
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10)
        service.close()
    assert not errors  # nothing dropped or failed across the swap
    assert 42.0 in minutes_seen and 77.0 in minutes_seen
    assert metric_value("serve_reloads_total") == 1.0
    assert service.current.version == 2


def test_watcher_thread_polls_on_interval(registry):
    publish_model(registry.root, golden_model())
    service = PredictionService(
        registry.load_latest(),
        ServeConfig(max_batch=4, max_wait_ms=1.0, reload_interval_s=0.05),
        registry=registry,
    )
    try:
        publish_model(registry.root, golden_model(5.0))
        deadline = threading.Event()
        for _ in range(100):  # up to ~5 s for the watcher to pick it up
            if service.current.version == 2:
                break
            deadline.wait(0.05)
        assert service.current.version == 2
    finally:
        service.close()
