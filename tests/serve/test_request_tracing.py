"""End-to-end request observability: one id across response, spans,
event log, and audit trail.

The acceptance path of the observability PR: a ``/predict`` request must
be traceable by its ``request_id`` through (1) the HTTP response (body +
``X-Request-Id`` header), (2) the span forest, where the handler's
``serve.request`` span and the worker's ``serve.batch`` span share a
``trace_id`` across the thread boundary, (3) the structured event log,
and (4) the prediction audit trail.
"""

import json
import re
import time

import pytest

from repro.obs import tracing
from repro.obs.events import get_event_log
from repro.serve import ServeConfig
from repro.serve.audit import AuditTrail, iter_audit_records

from tests.serve.conftest import as_loaded, feature_row, golden_model, hammer

_MINTED_RE = re.compile(r"^r[0-9a-f]+-[0-9a-f]{8}$")


@pytest.fixture
def observed():
    """Force retention/emission on the process-wide tracer and event log
    (restored afterwards), so assertions hold under REPRO_TELEMETRY=0."""
    tracer = tracing.get_tracer()
    glog = get_event_log()
    prev_retain, prev_enabled = tracer.retain, glog._enabled
    tracer.retain = True
    tracer.drain()
    glog._enabled = True
    glog.clear()
    yield tracer, glog
    tracer.retain = prev_retain
    tracer.drain()
    glog._enabled = prev_enabled
    glog.clear()


def _spans_named(roots, name):
    return [s for s in roots if s.name == name]


def _wait_for_event(glog, event, **fields):
    """The access event is emitted after the response bytes go out, so a
    fast client can assert before the handler thread gets there."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        for rec in glog.tail():
            if rec["event"] == event and all(
                rec.get(k) == v for k, v in fields.items()
            ):
                return rec
        time.sleep(0.01)
    raise AssertionError(f"no {event} event with {fields}: {glog.tail()}")


def test_request_id_threads_through_everything(
    observed, serve_harness, tmp_path
):
    tracer, glog = observed
    audit = AuditTrail(tmp_path / "audit.jsonl", enabled=True)
    harness = serve_harness(
        as_loaded(golden_model()),
        ServeConfig(max_batch=4, max_wait_ms=1.0),
        audit=audit,
    )

    status, headers, data = harness.request(
        "POST",
        "/predict",
        {"features": feature_row(0)},
        headers={"X-Request-Id": "client-42"},
    )
    payload = json.loads(data)

    # (1) the response echoes the client id in body and header
    assert status == 200
    assert payload["request_id"] == "client-42"
    assert headers["x-request-id"] == "client-42"

    # (2) the span forest connects handler and worker across threads
    roots = tracer.drain()
    (req_span,) = [
        s
        for s in _spans_named(roots, "serve.request")
        if s.meta.get("request_id") == "client-42"
    ]
    batches = [
        s
        for s in _spans_named(roots, "serve.batch")
        if "client-42" in s.meta.get("request_ids", ())
    ]
    (batch_span,) = batches
    assert batch_span.trace_id == req_span.trace_id  # one trace
    assert batch_span.parent_id == req_span.span_id  # causally linked
    assert batch_span.tid != req_span.tid  # across threads
    assert req_span.meta["batch_size"] >= 1
    assert req_span.meta["queue_wait_s"] >= 0.0
    assert req_span.meta["compute_s"] >= 0.0
    assert req_span.meta["model_version"] == 1

    # (3) the structured event log saw the request
    access = _wait_for_event(
        glog, "serve.access", request_id="client-42", route="/predict"
    )
    assert access["status"] == 200
    assert access["method"] == "POST"
    assert access["duration_s"] >= 0.0

    # (4) the audit trail recorded the prediction
    audit.flush()
    (rec,) = iter_audit_records(tmp_path / "audit.jsonl")
    assert rec["request_id"] == "client-42"
    assert rec["trace_id"] == req_span.trace_id
    assert rec["model_version"] == 1
    assert rec["p_long"] == pytest.approx(0.5)
    assert rec["minutes"] == pytest.approx(42.0)
    assert rec["long_wait"] is True
    assert rec["batch_size"] >= 1
    audit.close()


def test_garbage_client_id_is_replaced(serve_harness):
    harness = serve_harness(as_loaded(golden_model()))
    status, headers, _data = harness.request(
        "POST",
        "/predict",
        {"features": feature_row(0)},
        headers={"X-Request-Id": "bad id with spaces!"},
    )
    assert status == 200
    assert _MINTED_RE.match(headers["x-request-id"])


def test_request_id_is_minted_when_absent(serve_harness):
    harness = serve_harness(as_loaded(golden_model()))
    status, payload = harness.predict({"features": feature_row(0)})
    assert status == 200
    assert _MINTED_RE.match(payload["request_id"])


def test_every_route_answers_with_a_request_id(serve_harness):
    harness = serve_harness(as_loaded(golden_model()))
    for method, path in [
        ("GET", "/healthz"),
        ("GET", "/metrics"),
        ("GET", "/nowhere"),
    ]:
        _status, headers, _data = harness.request(method, path)
        assert "x-request-id" in headers, (method, path)


def test_error_responses_echo_the_request_id(serve_harness):
    harness = serve_harness(as_loaded(golden_model()))
    status, payload = harness.predict({"features": [1.0]})  # wrong width
    assert status == 400
    assert _MINTED_RE.match(payload["request_id"])


def test_batched_requests_keep_distinct_traces(
    observed, serve_harness
):
    """Requests sharing one batch keep their own serve.request spans;
    each batch span lists every member request id."""
    tracer, _glog = observed
    harness = serve_harness(
        as_loaded(golden_model()), ServeConfig(max_batch=8, max_wait_ms=20.0)
    )
    ids = hammer(
        lambda t, c: harness.predict({"features": feature_row(t)})[1][
            "request_id"
        ],
        n_threads=4,
        per_thread=2,
    )
    assert len(set(ids)) == 8
    roots = tracer.drain()
    req_spans = _spans_named(roots, "serve.request")
    assert {s.meta["request_id"] for s in req_spans} >= set(ids)
    batch_members = [
        rid
        for s in _spans_named(roots, "serve.batch")
        for rid in s.meta.get("request_ids", ())
    ]
    assert set(batch_members) >= set(ids)
    # A multi-request batch continues ONE member's trace; every member
    # still resolves (the ticket), and ids never collide across batches.
    assert len(batch_members) == len(set(batch_members))
