"""Micro-batcher properties: exactly-once delivery, bounded batches, and
bitwise batched≡unbatched outputs for any arrival pattern and knobs.

The property tests drive the batcher with a deterministic row-wise stub
model, so "bitwise equal" is a routing statement — the batcher must hand
every caller exactly the prediction of its own row, never a neighbour's
and never one recomputed from a corrupted workspace slot.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import MicroBatcher, QueueFullError

N_FEATURES = 5


class RowWiseStub:
    """Deterministic per-row 'model' that records every batch it saw."""

    def __init__(self) -> None:
        self.batch_sizes: list[int] = []
        self.rows_seen: list[float] = []
        self.lock = threading.Lock()
        self.weights = np.linspace(0.5, 2.5, N_FEATURES)

    def row_result(self, row: np.ndarray) -> tuple[float, float]:
        return (float(row[0]), float(row @ self.weights))

    def __call__(self, rows: np.ndarray) -> list[tuple[float, float]]:
        out = [self.row_result(row) for row in rows]
        with self.lock:
            self.batch_sizes.append(len(rows))
            self.rows_seen.extend(r[0] for r in out)
        return out


def _rows(n: int, rng: np.random.Generator) -> np.ndarray:
    rows = rng.normal(size=(n, N_FEATURES))
    rows[:, 0] = np.arange(n, dtype=np.float64)  # unique request tag
    return rows


@settings(deadline=None, max_examples=30)
@given(
    n_requests=st.integers(1, 30),
    max_batch=st.integers(1, 8),
    max_wait_ms=st.floats(0.0, 3.0),
    n_submitters=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
def test_exactly_once_bounded_and_bitwise_equal(
    n_requests, max_batch, max_wait_ms, n_submitters, seed
):
    stub = RowWiseStub()
    batcher = MicroBatcher(
        stub,
        n_features=N_FEATURES,
        max_batch=max_batch,
        max_wait_s=max_wait_ms / 1000.0,
        queue_depth=n_requests,
    )
    try:
        rows = _rows(n_requests, np.random.default_rng(seed))
        tickets: dict[int, object] = {}
        lock = threading.Lock()

        def submit(indices) -> None:
            for i in indices:
                t = batcher.submit(rows[i])
                with lock:
                    tickets[i] = t

        chunks = np.array_split(np.arange(n_requests), n_submitters)
        threads = [
            threading.Thread(target=submit, args=(chunk,), daemon=True)
            for chunk in chunks
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=30)
        assert len(tickets) == n_requests

        results = {i: t.wait(30.0) for i, t in tickets.items()}
    finally:
        batcher.close()

    # Every request answered exactly once: the stub saw each tag once...
    assert sorted(stub.rows_seen) == list(range(n_requests))
    # ...batch sizes never exceeded the cap...
    assert stub.batch_sizes and max(stub.batch_sizes) <= max_batch
    assert sum(stub.batch_sizes) == n_requests
    # ...and every caller got the bitwise result of its own row.
    for i, (tag, value) in results.items():
        assert tag == float(i)
        assert value == stub.row_result(rows[i])[1]  # bitwise, not approx


@settings(deadline=None, max_examples=15)
@given(n_requests=st.integers(1, 12), seed=st.integers(0, 2**16))
def test_single_request_batches_match_unbatched_reference(n_requests, seed):
    """max_batch=1 degenerates to pure single predictions — same answers."""
    stub = RowWiseStub()
    batcher = MicroBatcher(
        stub, n_features=N_FEATURES, max_batch=1, max_wait_s=0.0,
        queue_depth=n_requests,
    )
    try:
        rows = _rows(n_requests, np.random.default_rng(seed))
        tickets = [batcher.submit(row) for row in rows]
        for i, t in enumerate(tickets):
            assert t.wait(30.0) == stub.row_result(rows[i])
    finally:
        batcher.close()
    assert stub.batch_sizes == [1] * n_requests


# --------------------------------------------------------------------- #
# directed edge cases
# --------------------------------------------------------------------- #
def _stalled_batcher(queue_depth: int = 1):
    release = threading.Event()
    entered = threading.Event()

    def stalled(rows):
        entered.set()
        assert release.wait(30.0)
        return [(float(r[0]), 0.0) for r in rows]

    batcher = MicroBatcher(
        stalled,
        n_features=N_FEATURES,
        max_batch=1,
        max_wait_s=0.0,
        queue_depth=queue_depth,
    )
    return batcher, release, entered


def test_full_queue_sheds_immediately():
    batcher, release, entered = _stalled_batcher(queue_depth=1)
    try:
        first = batcher.submit(np.zeros(N_FEATURES))  # worker picks this up
        assert entered.wait(10.0)
        second = batcher.submit(np.ones(N_FEATURES))  # sits in the queue
        with pytest.raises(QueueFullError, match="queue depth 1"):
            batcher.submit(np.full(N_FEATURES, 2.0))
        release.set()
        assert first.wait(10.0)[0] == 0.0
        assert second.wait(10.0)[0] == 1.0
    finally:
        release.set()
        batcher.close()


def test_model_error_propagates_and_batcher_survives():
    calls = {"n": 0}

    def flaky(rows):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient model failure")
        return [(float(r[0]), 1.0) for r in rows]

    batcher = MicroBatcher(
        flaky, n_features=N_FEATURES, max_batch=4, max_wait_s=0.0,
        queue_depth=8,
    )
    try:
        bad = batcher.submit(np.zeros(N_FEATURES))
        with pytest.raises(RuntimeError, match="transient model failure"):
            bad.wait(10.0)
        good = batcher.submit(np.full(N_FEATURES, 3.0))
        assert good.wait(10.0) == (3.0, 1.0)
    finally:
        batcher.close()


def test_wrong_result_count_fails_the_batch():
    batcher = MicroBatcher(
        lambda rows: [1.0] * (len(rows) + 1),
        n_features=N_FEATURES,
        max_batch=2,
        max_wait_s=0.0,
        queue_depth=4,
    )
    try:
        ticket = batcher.submit(np.zeros(N_FEATURES))
        with pytest.raises(RuntimeError, match="results"):
            ticket.wait(10.0)
    finally:
        batcher.close()


def test_close_fails_unserved_tickets():
    batcher, release, entered = _stalled_batcher(queue_depth=4)
    in_flight = batcher.submit(np.zeros(N_FEATURES))
    assert entered.wait(10.0)
    queued = batcher.submit(np.ones(N_FEATURES))
    release.set()
    batcher.close()
    assert in_flight.wait(10.0)[0] == 0.0  # the running batch finished
    # The queued-but-never-batched ticket fails instead of hanging.
    try:
        queued.wait(0.0)
    except (QueueFullError, TimeoutError):
        pass
    else:  # it may legally have been served if the worker got to it first
        assert queued.result is not None


def test_submit_rejects_bad_shapes_and_closed_batcher():
    batcher = MicroBatcher(
        lambda rows: [0.0] * len(rows),
        n_features=N_FEATURES,
        max_batch=2,
        max_wait_s=0.0,
        queue_depth=4,
    )
    with pytest.raises(ValueError, match="feature row"):
        batcher.submit(np.zeros(N_FEATURES + 1))
    batcher.close()
    with pytest.raises(QueueFullError, match="shut down"):
        batcher.submit(np.zeros(N_FEATURES))
