"""Concurrency suite: many threads hammering ``/predict`` over real HTTP.

The served model has seeded random weights, so every distinct feature row
maps to a distinct prediction; each response must match the
single-threaded in-process reference for *its own* row.  Any interleaving
corruption in the shared micro-batch workspace (a row overwritten while
another thread's batch is in flight, results handed to the wrong ticket)
shows up as a response matching some other row's reference.

Rows whose classifier probability sits within 1e-4 of the decision
threshold are excluded up front: batched and single-row float32 BLAS
passes may round differently at the last ulp, and a threshold flip there
would change ``long_wait`` legitimately — that tolerance question is
PR-4's, not the server's.
"""

from __future__ import annotations

import numpy as np

from repro.serve import ServeConfig
from repro.utils.rng import default_rng

from tests.serve.conftest import (
    N_FEATURES,
    as_loaded,
    hammer,
    make_random_model,
    metric_value,
)

N_THREADS = 8
PER_THREAD = 25


def _distinct_rows(model, n: int) -> tuple[np.ndarray, list]:
    """n feature rows, none near the classifier threshold, plus their
    single-threaded reference predictions."""
    rng = default_rng(1234)
    rows: list[np.ndarray] = []
    while len(rows) < n:
        batch = rng.normal(size=(4 * n, N_FEATURES))
        p = model.classifier.predict_proba(batch)
        keep = np.abs(p - model.classifier.config.threshold) > 1e-4
        rows.extend(batch[keep])
    X = np.stack(rows[:n])
    reference = [model.predict(X[i : i + 1])[0] for i in range(n)]
    return X, reference


def test_hammered_predictions_match_single_threaded_reference(serve_harness):
    model = make_random_model(seed=5)
    X, reference = _distinct_rows(model, N_THREADS * PER_THREAD)
    harness = serve_harness(
        as_loaded(model),
        ServeConfig(max_batch=16, max_wait_ms=2.0, queue_depth=512),
    )

    def one(thread_idx: int, call_idx: int):
        i = thread_idx * PER_THREAD + call_idx
        status, payload = harness.predict({"features": [float(v) for v in X[i]]})
        return i, status, payload

    results = hammer(one, N_THREADS, PER_THREAD)
    assert len(results) == N_THREADS * PER_THREAD
    long_waits = 0
    for i, status, payload in results:
        ref = reference[i]
        assert status == 200
        assert payload["model_version"] == 1
        assert payload["long_wait"] == ref.long_wait, f"row {i}"
        assert np.isclose(payload["p_long"], ref.p_long, rtol=1e-4, atol=1e-6), (
            f"row {i}: {payload['p_long']} vs {ref.p_long}"
        )
        if ref.long_wait:
            long_waits += 1
            assert payload["minutes"] is not None
            assert np.isclose(
                payload["minutes"], ref.minutes, rtol=1e-4, atol=1e-4
            ), f"row {i}: {payload['minutes']} vs {ref.minutes}"
        else:
            assert payload["minutes"] is None
    # The model must actually exercise both branches of the hierarchy.
    assert 0 < long_waits < len(results)


def test_hammering_actually_batches(serve_harness):
    """Under concurrent load the server must coalesce, not serialise."""
    model = make_random_model(seed=6)
    X, _ = _distinct_rows(model, N_THREADS * PER_THREAD)
    harness = serve_harness(
        as_loaded(model),
        ServeConfig(max_batch=32, max_wait_ms=10.0, queue_depth=512),
    )

    def one(thread_idx: int, call_idx: int):
        i = thread_idx * PER_THREAD + call_idx
        return harness.predict({"features": [float(v) for v in X[i]]})[0]

    statuses = hammer(one, N_THREADS, PER_THREAD)
    assert statuses == [200] * (N_THREADS * PER_THREAD)
    n_requests = metric_value("serve_batched_requests_total")
    n_batches = metric_value("serve_batches_total")
    assert n_requests == float(N_THREADS * PER_THREAD)
    # Mean batch size comfortably above 1 proves coalescing happened.
    assert n_requests / n_batches > 1.5, (
        f"{n_batches} batches for {n_requests} requests"
    )


def test_mixed_route_traffic_stays_consistent(serve_harness):
    """Interleaved /predict, /healthz and /metrics requests never break
    each other (the metrics route walks the registry the predict path is
    concurrently writing to)."""
    model = make_random_model(seed=7)
    X, reference = _distinct_rows(model, 6 * 10)
    harness = serve_harness(
        as_loaded(model), ServeConfig(max_batch=8, max_wait_ms=1.0)
    )

    def one(thread_idx: int, call_idx: int):
        i = thread_idx * 10 + call_idx
        if thread_idx % 3 == 2:
            route = "/healthz" if call_idx % 2 else "/metrics"
            status, _headers, _data = harness.request("GET", route)
            return ("meta", status)
        status, payload = harness.predict(
            {"features": [float(v) for v in X[i]]}
        )
        return ("predict", status, payload.get("p_long"), i)

    for result in hammer(one, 6, 10):
        if result[0] == "meta":
            assert result[1] == 200
        else:
            _kind, status, p_long, i = result
            assert status == 200
            assert np.isclose(
                p_long, reference[i].p_long, rtol=1e-4, atol=1e-6
            )
