"""Golden-response suite: the wire format cannot drift silently.

Every ``tests/serve/golden/*.json`` file is one request/response pair
replayed against a live server on an ephemeral port.  Responses are
compared **exactly** (a ``{"$regex": ...}`` value opts one field into
pattern matching, used only where Python error strings vary by version).
The served model is the all-zero-weight golden model, whose arithmetic is
exact in float32, so even the numeric fields are platform-stable.

Also here: ``/metrics`` output must obey the OBS001 name grammar —
snake_case, counters ``_total``, histograms with a unit suffix — checked
against the exposition text itself, not just the source AST.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path

import pytest

from repro.analysis.config import DEFAULT_HISTOGRAM_SUFFIXES
from repro.serve import LoadedModel, ServeConfig

from tests.serve.conftest import feature_row, golden_model

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_CASES = sorted(GOLDEN_DIR.glob("*.json"))


def _loaded() -> LoadedModel:
    return LoadedModel(
        model=golden_model(),
        version=1,
        fingerprint="golden",
        partitions=("shared", "gpu"),
    )


def _match(expected, actual, path="$"):
    if isinstance(expected, dict) and set(expected) == {"$regex"}:
        assert isinstance(actual, str) and re.search(expected["$regex"], actual), (
            f"{path}: {actual!r} !~ {expected['$regex']!r}"
        )
        return
    if isinstance(expected, dict):
        assert isinstance(actual, dict) and set(expected) == set(actual), (
            f"{path}: keys {sorted(actual)} != {sorted(expected)}"
        )
        for key in expected:
            _match(expected[key], actual[key], f"{path}.{key}")
        return
    assert expected == actual, f"{path}: {actual!r} != {expected!r}"


@pytest.fixture
def golden_server(serve_harness):
    return serve_harness(
        _loaded(), ServeConfig(max_batch=8, max_wait_ms=2.0)
    )


@pytest.mark.parametrize(
    "case_path", GOLDEN_CASES, ids=[p.stem for p in GOLDEN_CASES]
)
def test_golden_pair(case_path, serve_harness):
    case = json.loads(case_path.read_text())
    if case.get("setup") == "shed":
        harness, cleanup = _shedding_server(serve_harness)
    else:
        harness, cleanup = (
            serve_harness(_loaded(), ServeConfig(max_batch=8, max_wait_ms=2.0)),
            lambda: None,
        )
    try:
        body = case.get("raw_body", case.get("request"))
        status, headers, data = harness.request(
            case["method"], case["path"], body
        )
        assert status == case["status"], data
        _match(case["response"], json.loads(data))
        for key, value in case.get("headers", {}).items():
            assert headers.get(key) == value, f"header {key}: {headers}"
    finally:
        cleanup()


def _shedding_server(serve_harness):
    """A server whose single batch slot is stalled and whose queue is full,
    so the next request deterministically sheds with 503."""
    harness = serve_harness(
        _loaded(),
        ServeConfig(max_batch=1, max_wait_ms=0.0, queue_depth=1),
    )
    batcher = harness.service.batcher
    inner = batcher.predict_fn
    release = threading.Event()
    entered = threading.Event()

    def stalled(rows):
        entered.set()
        assert release.wait(30.0)
        return inner(rows)

    batcher.predict_fn = stalled
    background = []

    def fire() -> None:
        harness.predict({"features": feature_row(0)})

    # First request occupies the worker.  Only once it is provably inside
    # the stalled model call does the second go out — were both in flight
    # at once, the second could reach the depth-1 queue before the worker
    # drained the first and shed *itself*, leaving the queue empty.
    first = threading.Thread(target=fire, daemon=True)
    first.start()
    background.append(first)
    assert entered.wait(10.0)
    second = threading.Thread(target=fire, daemon=True)
    second.start()
    background.append(second)
    deadline = threading.Event()
    # Generous: under a loaded parallel run the second handler thread can
    # take whole seconds to get scheduled.
    for _ in range(3000):
        if len(batcher._queue) >= 1:
            break
        deadline.wait(0.01)
    assert len(batcher._queue) >= 1

    def cleanup() -> None:
        release.set()
        for t in background:
            t.join(timeout=10)

    return harness, cleanup


# --------------------------------------------------------------------- #
# /metrics obeys the OBS001 name grammar on the wire
# --------------------------------------------------------------------- #
_SNAKE = re.compile(r"^[a-z][a-z0-9_]*$")
_TYPE_LINE = re.compile(r"^# TYPE (\S+) (counter|gauge|histogram)$")


def test_metrics_output_passes_obs001_grammar(golden_server):
    # Generate traffic across every route first.
    assert golden_server.predict({"features": feature_row(0)})[0] == 200
    assert golden_server.predict({"features": [1.0]})[0] == 400
    assert golden_server.request("GET", "/healthz")[0] == 200
    status, _headers, text = golden_server.request("GET", "/metrics")
    assert status == 200
    families = dict(
        m.groups()
        for m in map(_TYPE_LINE.match, text.decode().splitlines())
        if m
    )
    assert "serve_requests_total" in families
    assert "serve_batch_wait_seconds" in families
    for name, kind in families.items():
        assert _SNAKE.match(name), f"{name} is not snake_case"
        if kind == "counter":
            assert name.endswith("_total"), f"counter {name} lacks _total"
        elif kind == "histogram":
            assert name.endswith(DEFAULT_HISTOGRAM_SUFFIXES), (
                f"histogram {name} lacks a unit suffix"
            )


def test_metrics_counts_requests_by_route_and_code(golden_server):
    golden_server.predict({"features": feature_row(0)})
    golden_server.predict({"features": [2.0]})
    _status, _headers, text = golden_server.request("GET", "/metrics")
    body = text.decode()
    assert 'serve_requests_total{code="200",route="/predict"} 1' in body
    assert 'serve_requests_total{code="400",route="/predict"} 1' in body
