"""Prediction audit trail: append/read round-trip, stats, replay."""

import json
import math

import numpy as np
import pytest

from repro.obs.metrics import get_registry
from repro.serve.audit import (
    AuditTrail,
    audit_stats,
    features_hash,
    iter_audit_records,
    replay_audit,
)

from tests.serve.conftest import metric_value


def _append(trail: AuditTrail, i: int, **overrides) -> None:
    kwargs = dict(
        request_id=f"r-{i}",
        trace_id=f"t-{i}",
        row=np.full(4, float(i)),
        model_version=1,
        model_fingerprint="abcdef0123456789beef",
        p_long=0.75,
        long_wait=True,
        minutes=42.5,
        cutoff_min=10.0,
        partition=None,
        queue_wait_s=0.001,
        compute_s=0.002,
        total_s=0.004,
        batch_size=3,
    )
    kwargs.update(overrides)
    trail.append(**kwargs)


# ---------------------------------------------------------------------- #
# write side
# ---------------------------------------------------------------------- #
def test_append_read_round_trip(tmp_path):
    path = tmp_path / "audit.jsonl"
    trail = AuditTrail(path, enabled=True)
    _append(trail, 0)
    _append(trail, 1, minutes=None, long_wait=False, partition='g"pu')
    trail.close()

    first, second = iter_audit_records(path)
    assert first["request_id"] == "r-0"
    assert first["trace_id"] == "t-0"
    assert first["features_hash"] == features_hash(np.full(4, 0.0))
    assert first["model_version"] == 1
    assert first["model_fingerprint"] == "abcdef0123456789"  # 16-char prefix
    assert first["p_long"] == pytest.approx(0.75)
    assert first["long_wait"] is True
    assert first["minutes"] == pytest.approx(42.5)
    assert first["cutoff_min"] == pytest.approx(10.0)
    assert first["partition"] is None
    assert first["queue_wait_s"] == pytest.approx(0.001)
    assert first["batch_size"] == 3
    assert isinstance(first["ts"], float)
    # Short-wait record: minutes null, partition JSON-escaped correctly.
    assert second["minutes"] is None
    assert second["long_wait"] is False
    assert second["partition"] == 'g"pu'
    assert trail.n_appended == 2


def test_append_counts_in_the_registry(tmp_path):
    reg = get_registry()
    prev = reg.enabled
    reg.enabled = True  # hold the registry live even under REPRO_TELEMETRY=0
    reg.reset()
    try:
        trail = AuditTrail(tmp_path / "a.jsonl", enabled=True)
        _append(trail, 0)
        _append(trail, 1)
        trail.close()
        assert metric_value("serve_audit_records_total") == 2
    finally:
        reg.enabled = prev


def test_disabled_trail_is_null(tmp_path):
    path = tmp_path / "a.jsonl"
    trail = AuditTrail(path, enabled=False)
    _append(trail, 0)
    trail.close()
    assert trail.n_appended == 0
    assert list(iter_audit_records(path)) == []


def test_lines_are_plain_flat_json(tmp_path):
    """The hand-assembled f-string must be byte-for-byte valid JSON."""
    path = tmp_path / "a.jsonl"
    trail = AuditTrail(path, enabled=True)
    _append(trail, 0, partition="shared\\weird")
    trail.close()
    (line,) = path.read_text().strip().splitlines()
    rec = json.loads(line)  # would raise on a malformed line
    assert rec["partition"] == "shared\\weird"


def test_rotation_is_readable_as_one_stream(tmp_path):
    path = tmp_path / "a.jsonl"
    trail = AuditTrail(path, max_bytes=2048, backups=20, enabled=True)
    for i in range(40):
        _append(trail, i)
    trail.close()
    ids = [r["request_id"] for r in iter_audit_records(path)]
    assert ids == [f"r-{i}" for i in range(40)]


def test_features_hash_is_stable_and_discriminating():
    row = np.array([1.0, 2.0, 3.0])
    assert features_hash(row) == features_hash(row.copy())
    assert features_hash(row) != features_hash(np.array([1.0, 2.0, 3.5]))
    assert len(features_hash(row)) == 16
    # Non-contiguous views hash by value, not by memory layout.
    wide = np.arange(6.0).reshape(2, 3)
    assert features_hash(wide[:, 1]) == features_hash(np.array([1.0, 4.0]))


# ---------------------------------------------------------------------- #
# read side: stats
# ---------------------------------------------------------------------- #
def test_audit_stats_aggregates(tmp_path):
    trail = AuditTrail(tmp_path / "a.jsonl", enabled=True)
    _append(trail, 0, long_wait=True, model_version=1, total_s=0.01)
    _append(trail, 1, long_wait=False, minutes=None, model_version=1, total_s=0.03)
    _append(trail, 2, long_wait=True, model_version=2, total_s=0.02)
    trail.close()
    stats = audit_stats(iter_audit_records(tmp_path / "a.jsonl"))
    assert stats["n_records"] == 3
    assert stats["n_long_wait"] == 2
    assert stats["long_wait_share"] == pytest.approx(2 / 3)
    assert stats["mean_total_s"] == pytest.approx(0.02)
    assert stats["max_total_s"] == pytest.approx(0.03)
    assert stats["versions"] == {"1": 2, "2": 1}
    assert stats["mean_batch_size"] == pytest.approx(3.0)
    assert stats["span_seconds"] >= 0.0


def test_audit_stats_empty():
    stats = audit_stats([])
    assert stats["n_records"] == 0
    assert stats["long_wait_share"] == 0.0
    assert stats["versions"] == {}


# ---------------------------------------------------------------------- #
# read side: replay
# ---------------------------------------------------------------------- #
def _record(i, minutes, cutoff=10.0, long_wait=True):
    return {
        "request_id": f"r-{i}",
        "long_wait": long_wait,
        "minutes": minutes,
        "cutoff_min": cutoff,
    }


def test_replay_scores_classifier_and_regressor():
    # Predictions say 100 min; actuals agree for the first half.
    records = [_record(i, 100.0) for i in range(8)]
    actuals = {f"r-{i}": (100.0 if i < 4 else 20.0) for i in range(8)}
    report = replay_audit(
        records, actuals, threshold=None, window=100, min_samples=1
    )
    assert report["n_records"] == 8
    assert report["n_joined"] == 8
    assert report["n_scored_long"] == 8  # all actuals above the cutoff
    assert report["classifier_accuracy"] == pytest.approx(1.0)
    # APE: 0 for agreeing half, 400 % for the drifted half.
    assert report["mape"] == pytest.approx(200.0)
    assert report["n_drift_alarms"] == 0  # threshold=None disables alarms


def test_replay_alarms_match_online_semantics():
    """The replayed monitor raises on the rising edge only, like the
    live prequential monitor."""
    good = [_record(i, 100.0) for i in range(10)]
    bad = [_record(10 + i, 100.0) for i in range(10)]
    records = good + bad
    actuals = {r["request_id"]: 100.0 for r in good}
    actuals.update({r["request_id"]: 20.0 for r in bad})  # APE 400 %
    report = replay_audit(
        records, actuals, threshold=50.0, window=10, min_samples=5
    )
    assert report["n_drift_alarms"] == 1
    (alarm,) = report["alarms"]
    assert alarm["request_id"].startswith("r-1")
    assert alarm["rolling_mape"] > 50.0
    assert report["rolling_mape"] > 50.0


def test_replay_prefers_prejoined_actuals():
    records = [dict(_record(0, 100.0), actual_minutes=100.0)]
    report = replay_audit(records, actuals=None, min_samples=1)
    assert report["n_joined"] == 1
    assert report["mape"] == pytest.approx(0.0)


def test_replay_skips_unjoined_and_short_waits():
    records = [
        _record(0, 100.0),  # no actual -> skipped
        _record(1, None, long_wait=False),  # short-wait prediction
        _record(2, 100.0),
    ]
    actuals = {"r-1": 5.0, "r-2": 100.0}
    report = replay_audit(records, actuals, min_samples=1)
    assert report["n_records"] == 3
    assert report["n_joined"] == 2
    assert report["n_scored_long"] == 1  # r-1 is truly short: clf-only
    assert report["classifier_accuracy"] == pytest.approx(1.0)


def test_replay_empty_trail():
    report = replay_audit([])
    assert report["n_records"] == 0
    assert math.isnan(report["classifier_accuracy"])
    assert math.isnan(report["mape"])
