"""Serve-suite fixtures: handcrafted models (no training), HTTP helpers.

Two model builders:

- :func:`golden_model` — all-zero weights, constant outputs (p_long
  exactly 0.5, minutes exactly 42.0).  Every arithmetic step is exact in
  float32, so responses are bit-stable across platforms and safe to
  check against checked-in golden JSON.
- :func:`make_random_model` — seeded nontrivial weights, so distinct
  feature rows map to distinct predictions; the concurrency suite uses
  that to catch cross-request corruption.
"""

from __future__ import annotations

import http.client
import json
import threading

import numpy as np
import pytest

from repro.core.classifier import QuickStartClassifier
from repro.core.config import ClassifierConfig, RegressorConfig
from repro.core.hierarchical import TroutModel
from repro.core.regressor import QueueTimeRegressor
from repro.features.names import FEATURE_NAMES
from repro.nn import Activation, Dense, Sequential
from repro.obs.metrics import get_registry
from repro.serve import (
    LoadedModel,
    PredictionService,
    ServeConfig,
    start_server,
)
from repro.utils.rng import default_rng

N_FEATURES = len(FEATURE_NAMES)


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Each test reads its own counters, not a prior test's."""
    get_registry().reset()
    yield
    get_registry().reset()


def _identity_scaler(estimator, n_features: int) -> None:
    estimator._scaler.mean_ = np.zeros(n_features)
    estimator._scaler.scale_ = np.ones(n_features)


def _zero_dense(n_in: int, n_out: int, bias: float = 0.0) -> Dense:
    layer = Dense(n_in, n_out, seed=0)
    layer.params[0][:] = 0.0
    layer.params[1][:] = bias
    return layer


def golden_model(minutes_bias: float = 42.0) -> TroutModel:
    """Constant-output model: p_long = 0.5 (>= threshold → long wait),
    minutes = ``minutes_bias`` exactly (log_target off, zero weights)."""
    clf = QuickStartClassifier(N_FEATURES, ClassifierConfig(threshold=0.5))
    clf.net_ = Sequential([_zero_dense(N_FEATURES, 1)])
    _identity_scaler(clf, N_FEATURES)
    reg = QueueTimeRegressor(N_FEATURES, RegressorConfig(log_target=False))
    reg.net_ = Sequential([_zero_dense(N_FEATURES, 1, bias=minutes_bias)])
    _identity_scaler(reg, N_FEATURES)
    return TroutModel(
        classifier=clf,
        regressor=reg,
        cutoff_min=10.0,
        feature_names=FEATURE_NAMES,
    )


def make_random_model(seed: int = 0, hidden: int = 16) -> TroutModel:
    """Seeded random weights: row-dependent, deterministic predictions."""
    rng = default_rng(seed)
    clf = QuickStartClassifier(N_FEATURES, ClassifierConfig(threshold=0.5))
    clf.net_ = Sequential(
        [
            Dense(N_FEATURES, hidden, seed=rng),
            Activation("elu"),
            Dense(hidden, 1, seed=rng),
        ]
    )
    _identity_scaler(clf, N_FEATURES)
    reg = QueueTimeRegressor(N_FEATURES, RegressorConfig(log_target=False))
    reg.net_ = Sequential(
        [
            Dense(N_FEATURES, hidden, seed=rng),
            Activation("elu"),
            Dense(hidden, 1, seed=rng),
        ]
    )
    _identity_scaler(reg, N_FEATURES)
    return TroutModel(
        classifier=clf,
        regressor=reg,
        cutoff_min=10.0,
        feature_names=FEATURE_NAMES,
    )


def as_loaded(model: TroutModel, version: int = 1) -> LoadedModel:
    return LoadedModel(
        model=model, version=version, fingerprint="fixed", partitions=()
    )


class ServerHarness:
    """A live server on an ephemeral port plus a tiny JSON client."""

    def __init__(self, service: PredictionService, server) -> None:
        self.service = service
        self.server = server
        self.port = server.port

    def request(
        self,
        method: str,
        path: str,
        body: dict | str | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            payload = None
            if body is not None:
                payload = (
                    body.encode("utf-8")
                    if isinstance(body, str)
                    else json.dumps(body).encode("utf-8")
                )
            conn.request(method, path, body=payload, headers=headers or {})
            resp = conn.getresponse()
            data = resp.read()
            headers = {k.lower(): v for k, v in resp.getheaders()}
            return resp.status, headers, data
        finally:
            conn.close()

    def predict(self, body: dict | str) -> tuple[int, dict]:
        status, _headers, data = self.request("POST", "/predict", body)
        return status, json.loads(data)


@pytest.fixture
def serve_harness():
    """Factory fixture: boot (and tear down) servers inside a test."""
    started: list[ServerHarness] = []

    def boot(
        loaded: LoadedModel,
        config: ServeConfig | None = None,
        registry=None,
        audit=None,
    ) -> ServerHarness:
        config = config or ServeConfig(max_batch=8, max_wait_ms=2.0)
        service = PredictionService(loaded, config, registry=registry, audit=audit)
        server = start_server(service, "127.0.0.1", 0)
        harness = ServerHarness(service, server)
        started.append(harness)
        return harness

    yield boot
    for harness in started:
        harness.server.shutdown_service()


def feature_row(rng: np.random.Generator | int = 0) -> list[float]:
    rng = default_rng(rng) if isinstance(rng, int) else rng
    return [float(v) for v in rng.normal(size=N_FEATURES)]


def hammer(fn, n_threads: int, per_thread: int):
    """Run ``fn(thread_idx, call_idx)`` from many threads; returns results
    in a stable (thread, call) order, re-raising the first error."""
    results: dict[tuple[int, int], object] = {}
    errors: list[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_threads)

    def run(t: int) -> None:
        try:
            barrier.wait(timeout=30)
            for c in range(per_thread):
                out = fn(t, c)
                with lock:
                    results[(t, c)] = out
        except BaseException as exc:  # re-raised in the main thread below
            with lock:
                errors.append(exc)
            raise

    threads = [
        threading.Thread(target=run, args=(t,), daemon=True)
        for t in range(n_threads)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout=120)
    if errors:
        raise errors[0]
    return [
        results[(t, c)]
        for t in range(n_threads)
        for c in range(per_thread)
    ]


def metric_value(name: str, **labels: str) -> float:
    """Current value of a counter/gauge in the global registry (0 if unset)."""
    for metric_name, metric_labels, instrument in get_registry().items():
        if metric_name == name and dict(metric_labels) == labels:
            return instrument.value
    return 0.0
