"""Binary balancing recipe."""

import numpy as np
import pytest

from repro.sampling.balance import balance_binary, random_undersample


def _skewed(n=2000, minority_frac=0.1, seed=0):
    rng = np.random.default_rng(seed)
    y = (rng.random(n) < minority_frac).astype(float)
    X = rng.normal(size=(n, 4)) + y[:, None] * 2.0
    return X, y


def test_undersample_counts():
    idx = np.arange(100)
    kept = random_undersample(idx, 30, seed=0)
    assert len(kept) == 30
    assert len(np.unique(kept)) == 30
    np.testing.assert_array_equal(random_undersample(idx, 200, seed=0), idx)
    with pytest.raises(ValueError):
        random_undersample(idx, -1)


def test_balance_produces_balanced_classes():
    X, y = _skewed()
    Xb, yb = balance_binary(X, y, seed=0)
    n1, n0 = int(yb.sum()), int((1 - yb).sum())
    # target_ratio=1: classes equal within rounding.
    assert abs(n1 - n0) <= 1
    assert len(Xb) == len(yb)


def test_balance_majority_cap():
    X, y = _skewed(minority_frac=0.05)
    n_min = int(y.sum())
    Xb, yb = balance_binary(X, y, undersample_majority_to=2.0, seed=0)
    n_major = int((yb == 0).sum())
    assert n_major == 2 * n_min


def test_balance_adds_synthetic_minority():
    X, y = _skewed(minority_frac=0.05)
    Xb, yb = balance_binary(X, y, seed=0)
    assert int((yb == 1).sum()) > int(y.sum())  # synthetic rows added


def test_balance_noop_single_class():
    X = np.random.default_rng(0).normal(size=(10, 2))
    y = np.zeros(10)
    Xb, yb = balance_binary(X, y, seed=0)
    assert len(Xb) == 10 and yb.sum() == 0


def test_balance_validation():
    X, y = _skewed(n=100)
    with pytest.raises(ValueError):
        balance_binary(X, y + 5)
    with pytest.raises(ValueError):
        balance_binary(X, y, target_ratio=0.0)
    with pytest.raises(ValueError):
        balance_binary(X, y, undersample_majority_to=0.5)


def test_balance_shuffled_output():
    X, y = _skewed()
    _, yb = balance_binary(X, y, seed=0)
    # Labels are interleaved, not blocked.
    changes = np.sum(yb[1:] != yb[:-1])
    assert changes > len(yb) * 0.2
