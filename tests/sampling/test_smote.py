"""SMOTE invariants, hypothesis-checked."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.smote import smote_oversample


def test_counts_and_shape():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(30, 4))
    syn = smote_oversample(X, 100, seed=0)
    assert syn.shape == (100, 4)


def test_zero_requested():
    X = np.random.default_rng(0).normal(size=(5, 2))
    assert smote_oversample(X, 0, seed=0).shape == (0, 2)


def test_needs_two_samples():
    with pytest.raises(ValueError):
        smote_oversample(np.ones((1, 2)), 5, seed=0)
    with pytest.raises(ValueError):
        smote_oversample(np.ones((3, 2)), -1, seed=0)


@given(
    seed=st.integers(0, 1000),
    n_min=st.integers(2, 40),
    n_syn=st.integers(1, 60),
    k=st.integers(1, 8),
)
@settings(max_examples=40, deadline=None)
def test_synthetic_within_bounding_box(seed, n_min, n_syn, k):
    # Interpolation can never leave the minority bounding box.
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_min, 3)) * 10
    syn = smote_oversample(X, n_syn, k_neighbors=k, seed=seed)
    lo, hi = X.min(axis=0), X.max(axis=0)
    assert np.all(syn >= lo - 1e-9)
    assert np.all(syn <= hi + 1e-9)


def test_synthetic_on_segments_k1():
    # With k=1 every synthetic point lies on the segment between a point
    # and its single nearest neighbour.
    rng = np.random.default_rng(1)
    X = rng.normal(size=(10, 2))
    syn = smote_oversample(X, 200, k_neighbors=1, seed=2)
    # Verify each synthetic point is collinear with SOME pair of minority
    # points (necessary condition of the construction).
    ok = np.zeros(len(syn), dtype=bool)
    for a in range(len(X)):
        for b in range(len(X)):
            if a == b:
                continue
            d = X[b] - X[a]
            t = (syn - X[a]) @ d / (d @ d)
            proj = X[a] + np.clip(t, 0, 1)[:, None] * d
            ok |= np.linalg.norm(syn - proj, axis=1) < 1e-9
    assert ok.all()


def test_reproducible():
    X = np.random.default_rng(0).normal(size=(20, 3))
    a = smote_oversample(X, 50, seed=7)
    b = smote_oversample(X, 50, seed=7)
    np.testing.assert_array_equal(a, b)


def test_preserves_minority_distribution_roughly():
    rng = np.random.default_rng(0)
    X = rng.normal(5.0, 2.0, size=(500, 1))
    syn = smote_oversample(X, 5000, seed=1)
    assert abs(syn.mean() - X.mean()) < 0.5
    assert abs(syn.std() - X.std()) < 0.5
