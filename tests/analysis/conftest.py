"""Fixture snippets are written under a fake ``src/repro`` tree so module
names (and hence rule scoping: DT001 → repro.nn, RNG001's exemption for
repro.utils.rng …) resolve exactly as in the real repo."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.config import LintConfig
from repro.analysis.engine import LintResult, lint_file, registered_rules


class SnippetLinter:
    """Write one snippet file under a scratch project root and lint it."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.config = LintConfig(root=root)

    def lint(self, rel_path: str, source: str) -> LintResult:
        path = self.root / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        result = LintResult()
        lint_file(
            path, self.config, list(registered_rules().values()), result
        )
        return result

    def rules_fired(self, rel_path: str, source: str) -> list[str]:
        return [v.rule for v in self.lint(rel_path, source).violations]


@pytest.fixture
def linter(tmp_path):
    return SnippetLinter(tmp_path)
