"""Baseline semantics: round-trip, grandfathering, stale detection,
count budgets, and malformed-file errors."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry, apply
from repro.analysis.engine import Violation

REPO_ROOT = Path(__file__).resolve().parents[2]


def _v(rule="RNG001", path="src/repro/ml/x.py", line=3, snippet="x = 1"):
    return Violation(
        rule=rule, path=path, line=line, col=0, message="m", snippet=snippet
    )


def test_round_trip_preserves_entries(tmp_path):
    base = Baseline(
        [
            BaselineEntry(
                rule="IMP001",
                path="src/repro/eval/comparison.py",
                snippet="from repro.core.config import TroutConfig",
                reason="grandfathered",
            )
        ]
    )
    path = tmp_path / "baseline.json"
    base.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == base.entries


def test_missing_file_is_empty_baseline(tmp_path):
    assert Baseline.load(tmp_path / "nope.json").entries == []


def test_apply_splits_new_and_grandfathered():
    old = _v(snippet="legacy()")
    new = _v(snippet="fresh()")
    base = Baseline.from_violations([old])
    got_new, got_old, stale = apply([old, new], base)
    assert got_new == [new]
    assert got_old == [old]
    assert stale == []


def test_fixed_violation_makes_entry_stale():
    base = Baseline.from_violations([_v(snippet="legacy()")])
    got_new, got_old, stale = apply([], base)
    assert got_new == [] and got_old == []
    assert [e.snippet for e in stale] == ["legacy()"]


def test_line_drift_does_not_stale_an_entry():
    base = Baseline.from_violations([_v(line=3, snippet="legacy()")])
    moved = _v(line=97, snippet="legacy()")
    got_new, got_old, stale = apply([moved], base)
    assert got_new == [] and got_old == [moved] and stale == []


def test_count_budget_limits_duplicate_matches():
    dup = _v(snippet="dup()")
    base = Baseline.from_violations([dup, dup])
    assert base.entries[0].count == 2
    # three occurrences now: two grandfathered, the third is new
    got_new, got_old, stale = apply([dup, dup, dup], base)
    assert len(got_old) == 2 and len(got_new) == 1 and stale == []
    # one occurrence now: budget underused → stale
    _, _, stale = apply([dup], base)
    assert len(stale) == 1


def test_rewrite_keeps_existing_reasons():
    v = _v(snippet="legacy()")
    old = Baseline(
        [
            BaselineEntry(
                rule=v.rule, path=v.path, snippet=v.snippet, reason="why"
            )
        ]
    )
    rewritten = Baseline.from_violations([v, _v(snippet="fresh()")], old=old)
    reasons = {e.snippet: e.reason for e in rewritten.entries}
    assert reasons["legacy()"] == "why"
    assert reasons["fresh()"] == "TODO: justify"


def test_checked_in_baseline_is_empty():
    """The grandfathered debt is paid off (the eval→core import inversion
    moved to ``repro.core.zoo``); nothing may ever be re-baselined."""
    path = REPO_ROOT / "troutlint-baseline.json"
    assert path.is_file(), "troutlint-baseline.json must stay checked in"
    assert Baseline.load(path).entries == []


@pytest.mark.parametrize(
    "payload",
    [
        "not json at all",
        json.dumps([1, 2, 3]),
        json.dumps({"version": 99, "entries": []}),
        json.dumps({"version": 1, "entries": [{"rule": "X"}]}),
    ],
)
def test_malformed_baseline_raises_value_error(tmp_path, payload):
    path = tmp_path / "baseline.json"
    path.write_text(payload)
    with pytest.raises(ValueError):
        Baseline.load(path)
