"""CLI surface: ``trout lint`` / ``python -m repro.analysis`` exit codes,
output formats, the JSON schema, baseline rewriting, config overrides —
and the gate itself: the real repo lints clean."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.report import JSON_SCHEMA_VERSION
from repro.cli.main import main as trout_main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _project(tmp_path: Path, source: str, rel="src/repro/ml/snippet.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


CLEAN = """
    from repro.utils.rng import default_rng
    r = default_rng(0)
"""
DIRTY = """
    import numpy as np
    x = np.random.rand(3)
"""


def test_clean_project_exits_zero(tmp_path, capsys):
    root = _project(tmp_path, CLEAN)
    assert lint_main(["--root", str(root)]) == 0
    assert "clean." in capsys.readouterr().out


def test_violation_exits_one_and_names_the_rule(tmp_path, capsys):
    root = _project(tmp_path, DIRTY)
    assert lint_main(["--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "RNG001" in out and "src/repro/ml/snippet.py:3" in out


def test_trout_lint_subcommand_matches_module_entry(tmp_path, capsys):
    root = _project(tmp_path, DIRTY)
    assert trout_main(["lint", "--root", str(root)]) == 1
    assert "RNG001" in capsys.readouterr().out


def test_json_format_schema(tmp_path, capsys):
    root = _project(tmp_path, DIRTY)
    assert lint_main(["--root", str(root), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert set(payload) == {
        "version",
        "files_checked",
        "rules",
        "violations",
        "stale_baseline",
        "parse_errors",
        "summary",
    }
    assert set(payload["rules"]) == {
        "RNG001", "RNG002", "DT001", "IMP001", "OBS001", "EXC001",
    }
    (v,) = payload["violations"]
    assert set(v) == {
        "rule", "path", "line", "col", "message", "snippet", "baselined",
    }
    assert v["rule"] == "RNG001" and v["baselined"] is False
    assert payload["summary"] == {"new": 1, "baselined": 0, "stale": 0}


def test_baseline_flag_grandfathers_then_stale_fails(tmp_path, capsys):
    root = _project(tmp_path, DIRTY)
    # 1. rewrite the baseline → the violation is grandfathered
    assert lint_main(["--root", str(root), "--baseline"]) == 0
    assert (root / "troutlint-baseline.json").is_file()
    capsys.readouterr()
    assert lint_main(["--root", str(root)]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # 2. fix the violation → the baseline entry goes stale and fails CI
    _project(root, CLEAN)
    assert lint_main(["--root", str(root)]) == 1
    assert "stale baseline" in capsys.readouterr().out


def test_explicit_paths_override_config(tmp_path, capsys):
    root = _project(tmp_path, DIRTY)
    other = _project(tmp_path, CLEAN, rel="elsewhere/clean.py")
    assert (
        lint_main(["--root", str(root), str(other / "elsewhere")]) == 0
    )


def test_pyproject_overrides_are_honoured(tmp_path, capsys):
    root = _project(tmp_path, DIRTY)
    (root / "pyproject.toml").write_text(
        '[tool.troutlint]\ndisable = ["RNG001"]\n'
    )
    assert lint_main(["--root", str(root)]) == 0


def test_malformed_config_is_a_usage_error(tmp_path, capsys):
    root = _project(tmp_path, CLEAN)
    (root / "pyproject.toml").write_text(
        "[tool.troutlint]\npaths = 3\n"
    )
    assert lint_main(["--root", str(root)]) == 2
    assert "troutlint" in capsys.readouterr().err


def test_python_dash_m_entry_point(tmp_path):
    root = _project(tmp_path, DIRTY)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--root", str(root)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "RNG001" in proc.stdout


# ------------------------------------------------------------------ #
# the actual gate: this repository is lint-clean
# ------------------------------------------------------------------ #
def test_repo_sources_are_lint_clean(capsys):
    """`trout lint` over the real src/ tree: no new violations, no stale
    baseline entries.  This is the CI contract, enforced from tier-1 too
    so a violating PR fails fast locally."""
    rc = lint_main(["--root", str(REPO_ROOT)])
    out = capsys.readouterr().out
    assert rc == 0, f"repo is not lint-clean:\n{out}"
