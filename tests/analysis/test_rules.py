"""Per-rule fixture snippets: one firing case and one clean case each,
plus the scoping exemptions every rule promises."""

from __future__ import annotations


# --------------------------------------------------------------------- #
# RNG001
# --------------------------------------------------------------------- #
class TestRng001:
    def test_fires_on_raw_numpy_random_call(self, linter):
        fired = linter.rules_fired(
            "src/repro/ml/snippet.py",
            """
            import numpy as np
            x = np.random.rand(3)
            """,
        )
        assert fired == ["RNG001"]

    def test_fires_on_seedsequence_and_aliased_import(self, linter):
        fired = linter.rules_fired(
            "src/repro/ml/snippet.py",
            """
            import numpy
            from numpy import random
            a = numpy.random.SeedSequence(0)
            b = random.default_rng(3)
            """,
        )
        assert fired == ["RNG001", "RNG001"]

    def test_fires_on_unseeded_default_rng(self, linter):
        fired = linter.rules_fired(
            "src/repro/features/snippet.py",
            """
            from repro.utils.rng import default_rng
            r = default_rng()
            """,
        )
        assert fired == ["RNG001"]

    def test_clean_on_seeded_helper(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/features/snippet.py",
                """
                from repro.utils.rng import default_rng
                r = default_rng(0)
                vals = r.normal(size=8)
                """,
            )
            == []
        )

    def test_blessed_module_is_exempt(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/utils/rng.py",
                """
                import numpy as np
                r = np.random.default_rng(0)
                s = np.random.SeedSequence(1)
                """,
            )
            == []
        )

    def test_generator_annotations_do_not_fire(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/ml/snippet.py",
                """
                import numpy as np

                def f(rng: np.random.Generator) -> np.random.Generator:
                    return rng
                """,
            )
            == []
        )


# --------------------------------------------------------------------- #
# RNG002
# --------------------------------------------------------------------- #
class TestRng002:
    def test_fires_on_wall_clock(self, linter):
        fired = linter.rules_fired(
            "src/repro/features/snippet.py",
            """
            import time
            stamp = time.time()
            """,
        )
        assert fired == ["RNG002"]

    def test_fires_on_datetime_now(self, linter):
        fired = linter.rules_fired(
            "src/repro/core/snippet.py",
            """
            from datetime import datetime
            now = datetime.now()
            """,
        )
        assert fired == ["RNG002"]

    def test_monotonic_clocks_are_clean(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/utils/snippet.py",
                """
                import time
                t0 = time.perf_counter()
                t1 = time.monotonic()
                """,
            )
            == []
        )

    def test_obs_package_is_exempt(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/obs/snippet.py",
                """
                import time
                stamp = time.time()
                """,
            )
            == []
        )


# --------------------------------------------------------------------- #
# DT001
# --------------------------------------------------------------------- #
class TestDt001:
    def test_fires_without_dtype_in_nn(self, linter):
        fired = linter.rules_fired(
            "src/repro/nn/snippet.py",
            """
            import numpy as np
            buf = np.zeros((4, 4))
            idx = np.arange(10)
            """,
        )
        assert fired == ["DT001", "DT001"]

    def test_clean_with_dtype(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/nn/snippet.py",
                """
                import numpy as np
                a = np.zeros((4, 4), dtype=np.float32)
                b = np.zeros((4, 4), np.float32)
                c = np.full((2,), 0.5, np.float32)
                d = np.arange(10, dtype=np.intp)
                e = np.zeros_like(a)
                """,
            )
            == []
        )

    def test_only_scoped_to_nn(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/ml/snippet.py",
                """
                import numpy as np
                a = np.zeros(4)
                """,
            )
            == []
        )


# --------------------------------------------------------------------- #
# IMP001
# --------------------------------------------------------------------- #
class TestImp001:
    def test_fires_on_upward_import(self, linter):
        fired = linter.rules_fired(
            "src/repro/utils/snippet.py",
            """
            from repro.core.config import TroutConfig
            """,
        )
        assert fired == ["IMP001"]

    def test_fires_on_from_package_root_form(self, linter):
        fired = linter.rules_fired(
            "src/repro/data/snippet.py",
            """
            from repro import core
            """,
        )
        assert fired == ["IMP001"]

    def test_downward_import_is_clean(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/core/snippet.py",
                """
                from repro.utils.rng import default_rng
                from repro.nn.network import Sequential
                """,
            )
            == []
        )

    def test_function_scoped_import_is_exempt(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/utils/snippet.py",
                """
                def bump():
                    from repro.obs import metrics
                    return metrics
                """,
            )
            == []
        )

    def test_type_checking_guard_is_exempt(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/utils/snippet.py",
                """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.core.config import TroutConfig
                """,
            )
            == []
        )

    def test_relative_import_resolves_against_package(self, linter):
        fired = linter.rules_fired(
            "src/repro/obs/snippet.py",
            """
            from .metrics import get_registry
            """,
        )
        assert fired == []

    def test_unknown_package_is_reported(self, linter):
        fired = linter.lint(
            "src/repro/newpkg/snippet.py",
            """
            from repro.utils.rng import default_rng
            """,
        ).violations
        assert [v.rule for v in fired] == ["IMP001"]
        assert "not in the layering config" in fired[0].message


# --------------------------------------------------------------------- #
# OBS001
# --------------------------------------------------------------------- #
class TestObs001:
    def test_counter_must_end_total(self, linter):
        fired = linter.rules_fired(
            "src/repro/ml/snippet.py",
            """
            from repro.obs import metrics
            metrics.get_registry().counter("trees_fitted").inc()
            """,
        )
        assert fired == ["OBS001"]

    def test_histogram_needs_unit_suffix(self, linter):
        fired = linter.rules_fired(
            "src/repro/ml/snippet.py",
            """
            from repro.obs import metrics
            metrics.get_registry().histogram("fit_latency").observe(1.0)
            """,
        )
        assert fired == ["OBS001"]

    def test_names_must_be_snake_case(self, linter):
        fired = linter.rules_fired(
            "src/repro/ml/snippet.py",
            """
            from repro.obs import metrics
            metrics.get_registry().gauge("FitLoss").set(1.0)
            """,
        )
        assert fired == ["OBS001"]

    def test_conventional_names_are_clean(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/ml/snippet.py",
                """
                from repro.obs import metrics

                reg = metrics.get_registry()
                reg.counter("trees_fitted_total").inc()
                reg.histogram("fit_seconds").observe(0.5)
                reg.gauge("holdout_mape").set(97.0)
                """,
            )
            == []
        )

    def test_fstring_checked_on_constant_fragments(self, linter):
        clean = linter.rules_fired(
            "src/repro/features/snippet.py",
            """
            from repro.obs import metrics

            def bump(event):
                metrics.get_registry().counter(f"cache_{event}_total").inc()
            """,
        )
        assert clean == []
        fired = linter.rules_fired(
            "src/repro/features/snippet.py",
            """
            from repro.obs import metrics

            def bump(event):
                metrics.get_registry().counter(f"cache_{event}_count").inc()
            """,
        )
        assert fired == ["OBS001"]


# --------------------------------------------------------------------- #
# EXC001
# --------------------------------------------------------------------- #
class TestExc001:
    def test_fires_on_swallowed_broad_except(self, linter):
        fired = linter.rules_fired(
            "src/repro/features/snippet.py",
            """
            def f():
                try:
                    return 1
                except Exception:
                    pass
            """,
        )
        assert fired == ["EXC001"]

    def test_bare_except_must_reraise_even_if_logged(self, linter):
        fired = linter.rules_fired(
            "src/repro/features/snippet.py",
            """
            from repro.utils.logging import get_logger

            log = get_logger(__name__)

            def f():
                try:
                    return 1
                except:
                    log.warning("boom")
            """,
        )
        assert fired == ["EXC001"]

    def test_reraise_logging_and_telemetry_are_compliant(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/features/snippet.py",
                """
                from repro.obs import metrics
                from repro.utils.logging import get_logger

                log = get_logger(__name__)

                def narrow(x):
                    try:
                        return 1 / x
                    except Exception as exc:
                        raise ValueError("domain") from exc

                def logged(x):
                    try:
                        return 1 / x
                    except Exception:
                        log.warning("failed")
                        return None

                def counted(x):
                    try:
                        return 1 / x
                    except Exception:
                        metrics.get_registry().counter("f_total").inc()
                        return None
                """,
            )
            == []
        )

    def test_narrow_except_is_clean(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/features/snippet.py",
                """
                def f(d):
                    try:
                        return d["k"]
                    except KeyError:
                        return None
                """,
            )
            == []
        )


# --------------------------------------------------------------------- #
# pragma suppression
# --------------------------------------------------------------------- #
class TestPragma:
    def test_rule_scoped_pragma_suppresses(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/ml/snippet.py",
                """
                import numpy as np
                x = np.random.rand(3)  # repro: ignore[RNG001]
                """,
            )
            == []
        )

    def test_pragma_rule_ids_are_case_insensitive(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/ml/snippet.py",
                """
                import numpy as np
                x = np.random.rand(3)  # repro: ignore[rng001]
                """,
            )
            == []
        )

    def test_blanket_pragma_suppresses_everything(self, linter):
        assert (
            linter.rules_fired(
                "src/repro/nn/snippet.py",
                """
                import numpy as np
                x = np.zeros(np.random.randint(4))  # repro: ignore
                """,
            )
            == []
        )

    def test_pragma_for_other_rule_does_not_suppress(self, linter):
        fired = linter.rules_fired(
            "src/repro/ml/snippet.py",
            """
            import numpy as np
            x = np.random.rand(3)  # repro: ignore[DT001]
            """,
        )
        assert fired == ["RNG001"]

    def test_pragma_only_covers_its_line(self, linter):
        fired = linter.rules_fired(
            "src/repro/ml/snippet.py",
            """
            import numpy as np  # repro: ignore
            x = np.random.rand(3)
            """,
        )
        assert fired == ["RNG001"]


# --------------------------------------------------------------------- #
# engine behaviour
# --------------------------------------------------------------------- #
class TestEngine:
    def test_syntax_error_is_reported_not_raised(self, linter):
        result = linter.lint("src/repro/ml/snippet.py", "def broken(:\n")
        assert result.violations == []
        assert len(result.parse_errors) == 1

    def test_files_outside_src_roots_have_no_module_scope(self, linter):
        # A script outside src/ still gets package-agnostic rules (EXC001)
        # but not the repro-scoped ones (DT001 needs repro.nn).
        fired = linter.rules_fired(
            "scripts/tool.py",
            """
            import numpy as np

            def f():
                try:
                    return np.zeros(3)
                except Exception:
                    pass
            """,
        )
        assert fired == ["EXC001"]
