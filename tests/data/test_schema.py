"""JobSet container semantics and derived columns."""

import numpy as np
import pytest

from repro.data.schema import JOB_DTYPE, JobSet, JobState


def _mini(n=4):
    rec = np.zeros(n, dtype=JOB_DTYPE)
    rec["job_id"] = np.arange(1, n + 1)
    rec["user_id"] = [0, 1, 0, 1][:n]
    rec["partition"] = [0, 1, 0, 0][:n]
    rec["submit_time"] = [0.0, 10.0, 20.0, 30.0][:n]
    rec["eligible_time"] = rec["submit_time"]
    rec["start_time"] = rec["eligible_time"] + [0.0, 600.0, 60.0, 0.0][:n]
    rec["end_time"] = rec["start_time"] + [3600.0, 60.0, 600.0, 120.0][:n]
    rec["req_cpus"] = [4, 8, 1, 128][:n]
    rec["req_mem_gb"] = [8.0, 16.0, 2.0, 256.0][:n]
    rec["req_nodes"] = 1
    rec["timelimit_min"] = [120.0, 10.0, 30.0, 2.0][:n]
    return JobSet(rec, ("shared", "gpu"))


def test_from_columns_roundtrip():
    js = JobSet.from_columns(
        {"job_id": [1, 2], "req_cpus": [2, 4], "req_nodes": [1, 1]},
        ("shared",),
    )
    assert len(js) == 2
    np.testing.assert_array_equal(js.column("req_cpus"), [2, 4])
    # unspecified columns default to zero
    assert js.column("priority").sum() == 0.0


def test_from_columns_rejects_unknown_and_ragged():
    with pytest.raises(KeyError):
        JobSet.from_columns({"nope": [1]})
    with pytest.raises(ValueError):
        JobSet.from_columns({"job_id": [1, 2], "req_cpus": [1]})


def test_wrong_dtype_rejected():
    with pytest.raises(TypeError):
        JobSet(np.zeros(3))


def test_derived_columns():
    js = _mini()
    np.testing.assert_allclose(js.queue_time_min, [0.0, 10.0, 1.0, 0.0])
    np.testing.assert_allclose(js.runtime_min, [60.0, 1.0, 10.0, 2.0])
    np.testing.assert_allclose(js.wasted_time_min, [60.0, 9.0, 20.0, 0.0])
    util = js.walltime_utilization
    assert np.all((util >= 0) & (util <= 1))


def test_sort_where_partition():
    js = _mini().sort_by("req_cpus")
    assert list(js.column("req_cpus")) == [1, 4, 8, 128]
    sub = _mini().in_partition("gpu")
    assert len(sub) == 1 and sub.column("job_id")[0] == 2
    with pytest.raises(KeyError):
        _mini().in_partition("nope")


def test_where_mask_shape_checked():
    with pytest.raises(ValueError):
        _mini().where(np.array([True, False]))


def test_getitem_variants():
    js = _mini()
    assert isinstance(js["job_id"], np.ndarray)
    assert len(js[1:3]) == 2
    assert len(js[np.array([0, 3])]) == 2
    with pytest.raises(TypeError):
        js[1.5]


def test_validate_catches_time_travel():
    js = _mini()
    rec = js.records.copy()
    rec["start_time"][0] = rec["eligible_time"][0] - 1
    with pytest.raises(ValueError, match="start_time"):
        JobSet(rec, js.partition_names).validate()
    js.validate()  # original is fine


def test_concat_checks_vocab():
    a, b = _mini(2), _mini(2)
    assert len(a.concat(b)) == 4
    c = JobSet(_mini(2).records, ("other",))
    with pytest.raises(ValueError):
        a.concat(c)


def test_jobstate_enum_values():
    assert JobState.COMPLETED == 0
    assert {s.name for s in JobState} == {"COMPLETED", "FAILED", "TIMEOUT", "CANCELLED"}
