"""Table I statistics computation."""

import numpy as np

from repro.data.stats import format_statistics_table, job_statistics, summarize_variable


def test_summarize_known_values():
    s = summarize_variable(np.array([1.0, 2.0, 3.0, 10.0]))
    assert s["max"] == 10.0
    assert s["mean"] == 4.0
    assert s["median"] == 2.5
    assert s["count"] == 4
    assert np.isclose(s["std"], np.std([1, 2, 3, 10]))


def test_summarize_empty():
    s = summarize_variable(np.array([]))
    assert s["count"] == 0 and s["max"] == 0.0


def test_job_statistics_rows(trace_jobs):
    stats = job_statistics(trace_jobs)
    assert set(stats) == {
        "Requested Time (hr)",
        "Runtime (hr)",
        "Wasted Time (hr)",
        "Jobs Submitted By User",
    }
    # Requested >= runtime on average (overestimation is the norm).
    assert stats["Requested Time (hr)"]["mean"] >= stats["Runtime (hr)"]["mean"]
    # Per-user counts sum to the trace size.
    per_user = stats["Jobs Submitted By User"]
    assert per_user["mean"] * per_user["count"] == len(trace_jobs)


def test_format_statistics_table(trace_jobs):
    text = format_statistics_table(job_statistics(trace_jobs))
    assert "Requested Time (hr)" in text
    assert len(text.splitlines()) == 6
