"""SWF-style trace serialisation round trips."""

import numpy as np
import pytest

from repro.data.swf import read_swf, write_swf


def test_roundtrip_preserves_everything(tmp_path, trace_jobs):
    path = tmp_path / "trace.swf"
    sub = trace_jobs[:200]
    write_swf(sub, path)
    back = read_swf(path)
    assert back.partition_names == sub.partition_names
    assert len(back) == len(sub)
    for name in sub.records.dtype.names:
        np.testing.assert_array_equal(back.records[name], sub.records[name], err_msg=name)


def test_header_is_commented(tmp_path, trace_jobs):
    path = tmp_path / "trace.swf"
    write_swf(trace_jobs[:5], path)
    lines = path.read_text().splitlines()
    assert lines[0].startswith(";")
    assert any("partitions:" in l for l in lines[:3])
    assert len([l for l in lines if not l.startswith(";")]) == 5


def test_bad_record_rejected(tmp_path):
    path = tmp_path / "bad.swf"
    path.write_text("; repro job trace v1\n1 2 3\n")
    with pytest.raises(ValueError, match="expected"):
        read_swf(path)
