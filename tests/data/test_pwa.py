"""Parallel Workloads Archive standard-SWF import."""

import numpy as np
import pytest

from repro.data.pwa import read_standard_swf
from repro.data.schema import JobState


def _write_swf(path, records, header=True):
    lines = []
    if header:
        lines += ["; Computer: TestCluster", "; MaxJobs: 10"]
    for r in records:
        lines.append(" ".join(str(v) for v in r))
    path.write_text("\n".join(lines) + "\n")


def _rec(job=1, submit=0, wait=60, run=600, procs=4, req_time=3600,
         mem_kb=-1, status=1, user=7, queue=1):
    # 18 standard fields.
    return [
        job, submit, wait, run, procs, -1, -1, procs, req_time, mem_kb,
        status, user, 1, -1, queue, 1, -1, -1,
    ]


def test_basic_parse(tmp_path):
    p = tmp_path / "t.swf"
    _write_swf(p, [_rec(job=1), _rec(job=2, submit=100, wait=0, queue=2)])
    jobs = read_standard_swf(p)
    assert len(jobs) == 2
    assert jobs.partition_names == ("q1", "q2")
    np.testing.assert_allclose(jobs.queue_time_min, [1.0, 0.0])
    np.testing.assert_allclose(jobs.runtime_min, [10.0, 10.0])
    assert jobs.column("timelimit_min")[0] == 60.0
    jobs.validate()


def test_wait_time_preserved(tmp_path):
    """The decisive property: SWF wait time becomes our queue time."""
    p = tmp_path / "t.swf"
    _write_swf(p, [_rec(job=i, submit=i * 10, wait=i * 30) for i in range(1, 6)])
    jobs = read_standard_swf(p)
    np.testing.assert_allclose(
        jobs.queue_time_min, np.array([1, 2, 3, 4, 5]) * 0.5
    )


def test_memory_fallback_and_explicit(tmp_path):
    p = tmp_path / "t.swf"
    _write_swf(
        p,
        [
            _rec(job=1, procs=4, mem_kb=-1),
            _rec(job=2, procs=4, mem_kb=2 * 1024 * 1024),  # 2 GB/proc
        ],
    )
    jobs = read_standard_swf(p, mem_per_proc_gb=1.5)
    np.testing.assert_allclose(jobs.column("req_mem_gb")[0], 6.0)  # 4 × 1.5
    np.testing.assert_allclose(jobs.column("req_mem_gb")[1], 8.0)  # explicit


def test_node_derivation(tmp_path):
    p = tmp_path / "t.swf"
    _write_swf(p, [_rec(procs=300)])
    jobs = read_standard_swf(p, cpus_per_node=128)
    assert jobs.column("req_nodes")[0] == 3


def test_status_mapping(tmp_path):
    p = tmp_path / "t.swf"
    _write_swf(
        p,
        [
            _rec(job=1, status=1),
            _rec(job=2, status=0),
            _rec(job=3, status=5),
            _rec(job=4, status=1, run=3600, req_time=3600),  # ran to limit
        ],
    )
    jobs = read_standard_swf(p).sort_by("job_id")
    states = jobs.column("state")
    assert states[0] == int(JobState.COMPLETED)
    assert states[1] == int(JobState.FAILED)
    assert states[2] == int(JobState.CANCELLED)
    assert states[3] == int(JobState.TIMEOUT)


def test_anomalies_dropped_or_raised(tmp_path):
    p = tmp_path / "t.swf"
    _write_swf(p, [_rec(job=1), _rec(job=2, wait=-1), _rec(job=3, procs=0)])
    jobs = read_standard_swf(p)
    assert len(jobs) == 1
    with pytest.raises(ValueError, match="anomalous"):
        read_standard_swf(p, drop_anomalies=False)


def test_ordering_and_empty_errors(tmp_path):
    p = tmp_path / "t.swf"
    _write_swf(p, [_rec(job=2, submit=500), _rec(job=1, submit=0)])
    jobs = read_standard_swf(p)
    assert list(jobs.column("job_id")) == [1, 2]  # eligibility-ordered
    empty = tmp_path / "e.swf"
    empty.write_text("; nothing\n")
    with pytest.raises(ValueError, match="no job records"):
        read_standard_swf(empty)
    short = tmp_path / "s.swf"
    short.write_text("1 2 3\n")
    with pytest.raises(ValueError, match="18 fields"):
        read_standard_swf(short)


def test_write_read_roundtrip(tmp_path, trace_jobs):
    from repro.data.pwa import write_standard_swf

    sub = trace_jobs[:300]
    p = tmp_path / "rt.swf"
    write_standard_swf(sub, p)
    back = read_standard_swf(p)
    assert len(back) == len(sub)
    # Wait and run times survive to 1-second resolution.
    np.testing.assert_allclose(
        back.queue_time_min, sub.queue_time_min, atol=2 / 60
    )
    np.testing.assert_allclose(back.runtime_min, sub.runtime_min, atol=2 / 60)
    np.testing.assert_array_equal(back.column("req_cpus"), sub.column("req_cpus"))
    # Queue numbering is 1-based in the file.
    text = p.read_text()
    assert "; Computer:" in text


def test_feature_pipeline_accepts_pwa_trace(tmp_path):
    """A PWA trace must flow through the Table II pipeline unchanged."""
    rng = np.random.default_rng(0)
    recs = []
    t = 0
    for i in range(1, 120):
        t += int(rng.exponential(60))
        recs.append(
            _rec(
                job=i,
                submit=t,
                wait=int(rng.exponential(300)),
                run=int(rng.exponential(1200)) + 1,
                procs=int(rng.choice([1, 4, 16, 64])),
                req_time=int(rng.choice([1800, 3600, 14400])),
                user=int(rng.integers(0, 6)),
                queue=int(rng.choice([1, 2])),
            )
        )
    p = tmp_path / "t.swf"
    _write_swf(p, recs)
    jobs = read_standard_swf(p)

    from repro.features.pipeline import FeaturePipeline
    from repro.slurm.resources import Cluster, NodePool, Partition

    pool = NodePool("p", n_nodes=100, cpus_per_node=128, mem_gb_per_node=256.0)
    cluster = Cluster(
        "pwa", [pool], [Partition("q1", pool="p"), Partition("q2", pool="p")]
    )
    fm = FeaturePipeline(cluster).compute(jobs)
    assert fm.X.shape == (len(jobs), 33)
    assert np.all(np.isfinite(fm.X))