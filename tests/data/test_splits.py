"""Time-series CV, holdout and shuffled split semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.splits import TimeSeriesSplit, holdout_recent, shuffled_split


def test_paper_defaults_layout():
    ts = TimeSeriesSplit()  # 5 folds, test 1/6
    folds = list(ts.split(600))
    assert len(folds) == 5
    assert len(folds[0][1]) == 100
    # Final fold tests on the most recent sixth.
    assert folds[-1][1][-1] == 599
    assert folds[-1][0][-1] == 499


@given(n=st.integers(40, 5000), n_splits=st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_folds_are_time_ordered_and_disjoint(n, n_splits):
    ts = TimeSeriesSplit(n_splits=n_splits, test_fraction=0.1)
    try:
        folds = list(ts.split(n))
    except ValueError:
        return  # legitimately too small
    prev_end = 0
    for train, test in folds:
        # expanding window from 0
        assert train[0] == 0
        # test follows train immediately
        assert test[0] == train[-1] + 1
        # test windows advance monotonically
        assert test[0] >= prev_end
        prev_end = test[0]
        # never leaks: all training indices precede all test indices
        assert train[-1] < test[0]


def test_split_too_small_raises():
    with pytest.raises(ValueError):
        list(TimeSeriesSplit(5, 1 / 6).split(5))


def test_invalid_params():
    with pytest.raises(ValueError):
        TimeSeriesSplit(n_splits=0)
    with pytest.raises(ValueError):
        TimeSeriesSplit(test_fraction=1.5)


def test_fold_bounds_match_split():
    ts = TimeSeriesSplit(3, 0.2)
    bounds = ts.fold_bounds(100)
    folds = list(ts.split(100))
    for b, (train, test) in zip(bounds, folds):
        assert b["train_end"] == len(train)
        assert b["test_start"] == test[0]
        assert b["test_end"] == test[-1] + 1


def test_holdout_recent_paper_20pct():
    past, recent = holdout_recent(1000, 0.2)
    assert len(recent) == 200
    assert recent[0] == 800 and past[-1] == 799


def test_holdout_invalid():
    with pytest.raises(ValueError):
        holdout_recent(10, 0.0)
    with pytest.raises(ValueError):
        holdout_recent(1, 0.9)


def test_shuffled_split_partitions_everything():
    train, test = shuffled_split(100, 0.25, seed=0)
    assert len(train) + len(test) == 100
    assert len(np.intersect1d(train, test)) == 0
    # Seeded reproducibility
    train2, test2 = shuffled_split(100, 0.25, seed=0)
    np.testing.assert_array_equal(test, test2)


def test_shuffled_split_mixes_time():
    _, test = shuffled_split(1000, 0.2, seed=1)
    # A time-ordered split would have test indices all >= 800.
    assert test.min() < 800
