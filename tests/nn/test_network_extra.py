"""Additional Sequential semantics."""

import numpy as np
import pytest

from repro.nn import (
    Activation,
    Adam,
    Dense,
    LeakyReLU,
    Sequential,
    load_network,
    save_network,
)


def _net():
    return Sequential(
        [Dense(3, 8, seed=0), Activation(LeakyReLU(0.07)), Dense(8, 1, seed=1)]
    ).compile("mse", Adam(lr=1e-2))


def test_evaluate_batch_weighting_exact():
    """evaluate() must equal the loss over the whole set regardless of
    batch size (sample-weighted accumulation)."""
    rng = np.random.default_rng(0)
    net = _net()
    X = rng.normal(size=(103, 3))  # deliberately not divisible
    y = rng.normal(size=103)
    full = net.evaluate(X, y, batch_size=1000)
    chunked = net.evaluate(X, y, batch_size=10)
    # Batch-shape-dependent float32 BLAS accumulation order loosens the
    # bound under the default policy; float64 stays near-exact.
    rtol = 1e-12 if net.dtype == np.float64 else 1e-6
    np.testing.assert_allclose(full, chunked, rtol=rtol)


def test_leaky_relu_alpha_survives_serialisation(tmp_path):
    net = _net()
    save_network(net, tmp_path / "n.npz")
    loaded = load_network(tmp_path / "n.npz")
    act = [l for l in loaded.layers if isinstance(l, Activation)][0]
    assert act.fn.alpha == 0.07


def test_add_chaining_and_repr():
    net = Sequential().add(Dense(2, 4, seed=0)).add(Activation("relu"))
    assert len(net.layers) == 2
    assert "Sequential" in repr(net)


def test_forward_multi_output_predict_shape():
    net = Sequential([Dense(3, 5, seed=0)]).compile("mse")
    out = net.predict(np.zeros((7, 3)))
    assert out.shape == (7, 5)  # multi-column outputs stay 2-D


def test_fit_no_shuffle_deterministic_order():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(64, 3))
    y = rng.normal(size=64)

    def run():
        net = _net()
        net.fit(X, y, epochs=2, batch_size=16, shuffle=False)
        return net.predict(X)

    np.testing.assert_array_equal(run(), run())
