"""Loss values and gradients."""

import numpy as np
import pytest

from repro.nn.losses import (
    BCEWithLogitsLoss,
    MAELoss,
    MSELoss,
    SmoothL1Loss,
    get_loss,
)


def _num_grad(loss, pred, target, eps=1e-6):
    g = np.zeros_like(pred)
    for i in np.ndindex(pred.shape):
        p = pred.copy()
        p[i] += eps
        up = loss.forward(p, target)
        p[i] -= 2 * eps
        down = loss.forward(p, target)
        g[i] = (up - down) / (2 * eps)
    return g


@pytest.mark.parametrize(
    "loss",
    [MSELoss(), MAELoss(), SmoothL1Loss(beta=0.7), BCEWithLogitsLoss()],
    ids=lambda l: l.name,
)
def test_gradient_matches_numeric(loss):
    rng = np.random.default_rng(0)
    pred = rng.normal(size=(6, 1))
    if isinstance(loss, BCEWithLogitsLoss):
        target = (rng.random((6, 1)) > 0.5).astype(float)
    else:
        target = rng.normal(size=(6, 1))
    # Keep |pred-target| away from the non-smooth kinks.
    pred = pred + np.sign(pred - target) * 0.05
    loss.forward(pred, target)
    analytic = loss.backward()
    numeric = _num_grad(loss, pred, target)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)


def test_mse_known_value():
    assert MSELoss().forward(np.array([2.0]), np.array([0.0])) == 4.0


def test_smooth_l1_piecewise():
    l = SmoothL1Loss(beta=1.0)
    # Inside beta: quadratic.
    np.testing.assert_allclose(l.forward(np.array([0.5]), np.array([0.0])), 0.125)
    # Outside: linear (a − beta/2).
    np.testing.assert_allclose(l.forward(np.array([3.0]), np.array([0.0])), 2.5)


def test_smooth_l1_robust_to_outliers():
    # Gradient magnitude saturates at 1/N, unlike MSE.
    l = SmoothL1Loss(beta=1.0)
    l.forward(np.array([1000.0]), np.array([0.0]))
    assert abs(l.backward()[0]) <= 1.0


def test_bce_matches_reference():
    z = np.array([0.0, 2.0, -2.0])
    y = np.array([1.0, 1.0, 0.0])
    want = -np.mean(
        y * np.log(1 / (1 + np.exp(-z))) + (1 - y) * np.log(1 - 1 / (1 + np.exp(-z)))
    )
    got = BCEWithLogitsLoss().forward(z, y)
    np.testing.assert_allclose(got, want, rtol=1e-9)


def test_bce_stable_extreme_logits():
    val = BCEWithLogitsLoss().forward(np.array([1e4, -1e4]), np.array([1.0, 0.0]))
    assert np.isfinite(val) and val < 1e-6


def test_bce_rejects_bad_targets():
    with pytest.raises(ValueError):
        BCEWithLogitsLoss().forward(np.zeros(2), np.array([0.0, 2.0]))


def test_shape_mismatch():
    with pytest.raises(ValueError):
        MSELoss().forward(np.zeros(3), np.zeros(4))


def test_registry():
    assert isinstance(get_loss("smooth_l1", beta=2.0), SmoothL1Loss)
    with pytest.raises(KeyError):
        get_loss("nope")
    with pytest.raises(ValueError):
        SmoothL1Loss(beta=0)
