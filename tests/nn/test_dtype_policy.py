"""The network dtype policy and the allocation-free training contract.

Covers resolution precedence (arg > $REPRO_NN_DTYPE > float32 default),
float32-vs-float64 numeric parity (hypothesis property + a trained-model
holdout comparison), the astype() switch, and the steady-state allocation
bound that the buffer-reuse tentpole exists to deliver.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Activation,
    Adam,
    Dense,
    Dropout,
    Sequential,
    Workspace,
    resolve_nn_dtype,
)
from repro.nn.dtypes import ENV_VAR
from repro.obs import tracing


# --------------------------------------------------------------------- #
# policy resolution
# --------------------------------------------------------------------- #
def test_resolve_default_is_float32(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert resolve_nn_dtype() == np.float32


def test_resolve_env_overrides_default(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "float64")
    assert resolve_nn_dtype() == np.float64


def test_resolve_arg_overrides_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "float64")
    assert resolve_nn_dtype("float32") == np.float32
    assert resolve_nn_dtype(np.float64) == np.float64


def test_resolve_rejects_bad_values(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    with pytest.raises(ValueError):
        resolve_nn_dtype("float16")
    with pytest.raises(ValueError):
        resolve_nn_dtype("int64")
    monkeypatch.setenv(ENV_VAR, "bogus")
    with pytest.raises(ValueError):
        resolve_nn_dtype()


def test_sequential_dtype_flows_to_layers(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    net = Sequential([Dense(4, 8, seed=0), Activation("elu")], dtype="float64")
    assert net.dtype == np.float64
    assert all(p.dtype == np.float64 for p in net.parameters())
    # add() casts late-added layers too.
    net.add(Dense(8, 1, seed=1, dtype="float32"))
    assert net.layers[-1].W.dtype == np.float64


def test_env_policy_applies_to_new_nets(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "float64")
    net = Sequential([Dense(3, 2, seed=0)])
    assert net.dtype == np.float64
    assert net.layers[0].W.dtype == np.float64


def test_astype_switch_resets_state():
    net = Sequential([Dense(4, 8, seed=0), Activation("elu"), Dense(8, 1, seed=1)])
    net = net.astype("float64").compile("mse", Adam(lr=1e-2))
    rng = np.random.default_rng(0)
    X, y = rng.normal(size=(64, 4)), rng.normal(size=64)
    net.fit(X, y, epochs=2, batch_size=16, seed=0)
    assert net.optimizer._slots  # warm
    net.astype("float32")
    assert all(p.dtype == np.float32 for p in net.parameters())
    assert not net.optimizer._slots  # moments dropped with the old precision
    net.fit(X, y, epochs=2, batch_size=16, seed=0)  # still trainable
    assert net.predict(X).dtype == np.float32


# --------------------------------------------------------------------- #
# float32 vs float64 parity
# --------------------------------------------------------------------- #
def _twin_nets(widths, activation, seed):
    def build(dtype):
        layers = []
        w_in = widths[0]
        for i, w in enumerate(widths[1:-1]):
            layers += [Dense(w_in, w, seed=seed + i), Activation(activation)]
            w_in = w
        layers.append(Dense(w_in, widths[-1], seed=seed + len(widths)))
        return Sequential(layers, dtype=dtype)

    return build("float32"), build("float64")


@settings(max_examples=25, deadline=None)
@given(
    hidden=st.integers(min_value=2, max_value=24),
    activation=st.sampled_from(["relu", "elu", "tanh", "gelu", "leaky_relu"]),
    seed=st.integers(min_value=0, max_value=50),
)
def test_forward_parity_float32_vs_float64(hidden, activation, seed):
    """Same seed -> float32 forward pass tracks the float64 reference."""
    net32, net64 = _twin_nets((5, hidden, 1), activation, seed)
    X = np.random.default_rng(seed).normal(size=(32, 5))
    p32 = net32.compile("mse").predict(X)
    p64 = net64.compile("mse").predict(X)
    assert p32.dtype == np.float32 and p64.dtype == np.float64
    np.testing.assert_allclose(p32, p64, rtol=1e-3, atol=1e-4)


def test_training_parity_holdout_mape():
    """Both precisions converge to the same solution on a smooth task:
    holdout MAPE within 2 % relative (the a13 gate's contract, in-tree)."""
    rng = np.random.default_rng(3)
    n = 2000
    X = rng.normal(size=(n, 6))
    w = rng.normal(size=6)
    y = np.log1p(np.abs(X @ w) * 20.0 + rng.gamma(2.0, 2.0, size=n))
    tr, te = slice(0, 1600), slice(1600, None)

    def mape(dtype):
        net = Sequential(
            [
                Dense(6, 32, seed=1),
                Activation("elu"),
                Dense(32, 16, seed=2),
                Activation("elu"),
                Dense(16, 1, seed=3),
            ],
            dtype=dtype,
        ).compile("smooth_l1", Adam(lr=1e-2))
        net.fit(X[tr], y[tr], epochs=40, batch_size=128, seed=0)
        pred = np.expm1(np.asarray(net.predict(X[te]), dtype=np.float64))
        truth = np.expm1(y[te])
        return float(np.mean(np.abs(pred - truth) / np.maximum(truth, 1e-9)))

    m32, m64 = mape("float32"), mape("float64")
    assert abs(m32 - m64) / m64 < 0.02


# --------------------------------------------------------------------- #
# allocation-free steady state
# --------------------------------------------------------------------- #
def test_steady_state_epochs_do_not_grow_buffers():
    """After the first (buffer-warming) epoch, per-epoch net heap-block
    deltas stay small and flat — no per-batch allocation churn."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(4096, 16))
    y = rng.normal(size=4096)
    net = Sequential(
        [
            Dense(16, 32, seed=0),
            Activation("elu"),
            Dropout(0.1, seed=1),
            Dense(32, 1, seed=2),
        ]
    ).compile("smooth_l1", Adam(lr=1e-3, clip_norm=5.0))
    with tracing.span("alloc_probe") as root:
        net.fit(X, y, epochs=6, batch_size=256, seed=0)
    epochs = [c for c in root.children if c.name == "epoch"]
    assert len(epochs) == 6
    steady = [e.alloc_blocks for e in epochs[1:]]
    # ~64 batches/epoch: churn would show up as thousands of blocks.  The
    # bound is deliberately loose (History dicts, logs, GC timing jitter).
    assert max(steady) < 1500, f"steady-state allocations too high: {steady}"


def test_workspace_reuses_and_bounds_buffers():
    ws = Workspace(max_entries=4)
    a = ws.buf("x", (8, 8), np.float32)
    assert ws.buf("x", (8, 8), np.float32) is a  # same key -> same buffer
    assert ws.buf("x", (8, 8), np.float64) is not a  # dtype in the key
    for i in range(6):  # exceed max_entries -> wholesale clear, no error
        ws.buf("x", (i + 1, 2), np.float32)
    assert len(ws) <= 4
    assert ws.nbytes > 0
    ws.clear()
    assert len(ws) == 0


def test_alloc_gauge_published(monkeypatch):
    from repro.obs import metrics

    metrics.set_enabled(True)
    reg = metrics.get_registry()
    rng = np.random.default_rng(0)
    net = Sequential([Dense(4, 8, seed=0), Dense(8, 1, seed=1)]).compile(
        "mse", Adam()
    )
    net.fit(rng.normal(size=(128, 4)), rng.normal(size=128), epochs=2, seed=0)
    gauge = reg.gauge(
        "nn_alloc_blocks_per_epoch",
        help="net heap-block delta over the last training epoch",
        labels={"dtype": net.dtype.name},
    )
    assert np.isfinite(gauge.value)
