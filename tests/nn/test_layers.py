"""Layer mechanics: shapes, caching, dropout semantics, batchnorm state."""

import numpy as np
import pytest

from repro.nn.layers import Activation, BatchNorm1d, Dense, Dropout


def test_dense_forward_shape_and_linearity():
    d = Dense(3, 5, seed=0)
    x = np.random.default_rng(0).normal(size=(7, 3))
    # forward() returns a reused buffer — copy before the next forward.
    out = d.forward(x).copy()
    assert out.shape == (7, 5)
    atol = 1e-12 if d.dtype == np.float64 else 1e-6
    np.testing.assert_allclose(d.forward(2 * x) - d.b, 2 * (out - d.b), atol=atol)


def test_dense_input_validation():
    d = Dense(3, 5)
    with pytest.raises(ValueError):
        d.forward(np.zeros((2, 4)))
    with pytest.raises(ValueError):
        Dense(0, 5)


def test_dense_backward_requires_training_forward():
    d = Dense(3, 2)
    d.forward(np.zeros((2, 3)), training=False)
    with pytest.raises(RuntimeError):
        d.backward(np.zeros((2, 2)))


def test_dense_param_gradient_shapes():
    d = Dense(3, 2, seed=0)
    x = np.random.default_rng(1).normal(size=(4, 3))
    d.forward(x, training=True)
    gin = d.backward(np.ones((4, 2)))
    assert gin.shape == (4, 3)
    assert d.dW.shape == d.W.shape and d.db.shape == d.b.shape
    assert d.n_parameters == 3 * 2 + 2


def test_dropout_inference_identity():
    drop = Dropout(0.5, seed=0)
    x = np.ones((10, 4))
    np.testing.assert_array_equal(drop.forward(x, training=False), x)


def test_dropout_training_scales():
    drop = Dropout(0.5, seed=0)
    x = np.ones((2000, 10))
    out = drop.forward(x, training=True)
    kept = out[out > 0]
    np.testing.assert_allclose(kept, 2.0)  # inverted dropout
    assert abs(out.mean() - 1.0) < 0.05  # expectation preserved


def test_dropout_zero_rate_noop():
    drop = Dropout(0.0)
    x = np.ones((3, 3))
    np.testing.assert_array_equal(drop.forward(x, training=True), x)
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_batchnorm_normalises_batch():
    bn = BatchNorm1d(4)
    x = np.random.default_rng(0).normal(5.0, 3.0, size=(256, 4))
    out = bn.forward(x, training=True)
    atol = 1e-9 if bn.dtype == np.float64 else 1e-6
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=atol)
    np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)


def test_batchnorm_running_stats_converge():
    bn = BatchNorm1d(2, momentum=0.5)
    rng = np.random.default_rng(0)
    for _ in range(50):
        bn.forward(rng.normal(3.0, 2.0, size=(128, 2)), training=True)
    np.testing.assert_allclose(bn.running_mean, 3.0, atol=0.3)
    np.testing.assert_allclose(np.sqrt(bn.running_var), 2.0, atol=0.3)
    # Inference uses running stats.
    out = bn.forward(np.full((4, 2), 3.0), training=False)
    np.testing.assert_allclose(out, 0.0, atol=0.2)


def test_batchnorm_validation():
    with pytest.raises(ValueError):
        BatchNorm1d(0)
    with pytest.raises(ValueError):
        BatchNorm1d(2, momentum=0.0)


def test_activation_layer_caches_only_in_training():
    layer = Activation("relu")
    layer.forward(np.ones((2, 2)), training=False)
    with pytest.raises(RuntimeError):
        layer.backward(np.ones((2, 2)))
