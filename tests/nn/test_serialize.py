"""Network save/load round trips."""

import numpy as np
import pytest

from repro.nn import (
    Activation,
    Adam,
    BatchNorm1d,
    Dense,
    Dropout,
    Sequential,
    load_network,
    save_network,
)


def _trained_net(seed=0):
    rng = np.random.default_rng(seed)
    net = Sequential(
        [
            Dense(5, 16, seed=1),
            BatchNorm1d(16),
            Activation("elu"),
            Dropout(0.1, seed=2),
            Dense(16, 1, seed=3),
        ]
    ).compile("mse", Adam(lr=1e-2))
    X = rng.normal(size=(200, 5))
    y = X.sum(axis=1)
    net.fit(X, y, epochs=5, seed=0)
    return net, X


def test_roundtrip_preserves_predictions(tmp_path):
    net, X = _trained_net()
    path = tmp_path / "net.npz"
    save_network(net, path)
    loaded = load_network(path)
    np.testing.assert_allclose(loaded.predict(X), net.predict(X), atol=1e-12)


def test_roundtrip_preserves_batchnorm_state(tmp_path):
    net, _ = _trained_net()
    path = tmp_path / "net.npz"
    save_network(net, path)
    loaded = load_network(path)
    bn_orig = [l for l in net.layers if isinstance(l, BatchNorm1d)][0]
    bn_new = [l for l in loaded.layers if isinstance(l, BatchNorm1d)][0]
    np.testing.assert_array_equal(bn_new.running_mean, bn_orig.running_mean)
    np.testing.assert_array_equal(bn_new.running_var, bn_orig.running_var)


def test_architecture_preserved(tmp_path):
    net, _ = _trained_net()
    path = tmp_path / "net.npz"
    save_network(net, path)
    loaded = load_network(path)
    assert [type(l).__name__ for l in loaded.layers] == [
        type(l).__name__ for l in net.layers
    ]
    # ELU alpha and dropout p survive.
    assert loaded.layers[2].fn.alpha == net.layers[2].fn.alpha
    assert loaded.layers[3].p == net.layers[3].p


def test_loaded_net_can_continue_training(tmp_path):
    net, X = _trained_net()
    path = tmp_path / "net.npz"
    save_network(net, path)
    loaded = load_network(path).compile("mse", Adam(lr=1e-3))
    y = X.sum(axis=1)
    loaded.fit(X, y, epochs=1, seed=0)  # must not raise


def test_float32_roundtrip_preserves_dtype_and_bits(tmp_path):
    net, X = _trained_net()
    assert net.dtype == np.float32 or net.dtype == np.float64  # policy-driven
    net32 = net.astype("float32")
    path = tmp_path / "net32.npz"
    save_network(net32, path)
    loaded = load_network(path)
    assert loaded.dtype == np.float32
    assert all(p.dtype == np.float32 for p in loaded.parameters())
    # Weights survive bit-for-bit, so predictions are identical.
    np.testing.assert_array_equal(
        loaded.predict(X), net32.predict(X)
    )


def test_float64_checkpoint_downcast_warns(tmp_path):
    net, X = _trained_net()
    net = net.astype("float64")
    path = tmp_path / "net64.npz"
    save_network(net, path)
    with pytest.warns(UserWarning, match="down-casts"):
        loaded = load_network(path, dtype="float32")
    assert loaded.dtype == np.float32
    ref = net.predict(X)
    got = loaded.predict(X)
    np.testing.assert_allclose(got, ref, rtol=1e-3, atol=1e-4)


def test_float32_checkpoint_upcast_silent(tmp_path):
    net, _ = _trained_net()
    net = net.astype("float32")
    path = tmp_path / "net32.npz"
    save_network(net, path)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # widening must not warn
        loaded = load_network(path, dtype="float64")
    assert loaded.dtype == np.float64
    np.testing.assert_array_equal(
        np.asarray(loaded.layers[0].W, dtype=np.float32), net.layers[0].W
    )


def test_unsaveable_layer_rejected(tmp_path):
    from repro.nn.layers import Layer

    class Custom(Layer):
        def forward(self, x, training=False):
            return x

    net = Sequential([Custom()])
    with pytest.raises(ValueError, match="cannot be saved"):
        save_network(net, tmp_path / "x.npz")
