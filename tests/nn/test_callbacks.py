"""Callback behaviour in isolation."""

import numpy as np
import pytest

from repro.nn import Activation, Adam, Dense, Sequential
from repro.nn.callbacks import EarlyStopping, History, LRSchedule


def _net():
    return Sequential([Dense(2, 4, seed=0), Activation("tanh"), Dense(4, 1, seed=1)]).compile(
        "mse", Adam(lr=0.1)
    )


def test_history_series():
    h = History()
    net = _net()
    h.on_train_begin(net)
    h.on_epoch_end(net, 0, {"loss": 1.0})
    h.on_epoch_end(net, 1, {"loss": 0.5, "val_loss": 0.7})
    np.testing.assert_array_equal(h.series("loss"), [1.0, 0.5])
    assert np.isnan(h.series("val_loss")[0])


def test_early_stopping_patience_counting():
    es = EarlyStopping(monitor="loss", patience=2, restore_best=False)
    net = _net()
    es.on_train_begin(net)
    assert not es.on_epoch_end(net, 0, {"loss": 1.0})
    assert not es.on_epoch_end(net, 1, {"loss": 1.1})  # 1 bad epoch
    assert es.on_epoch_end(net, 2, {"loss": 1.2})  # 2 bad epochs -> stop
    assert es.best == 1.0 and es.best_epoch == 0


def test_early_stopping_min_delta():
    es = EarlyStopping(monitor="loss", patience=1, min_delta=0.5, restore_best=False)
    net = _net()
    es.on_train_begin(net)
    es.on_epoch_end(net, 0, {"loss": 1.0})
    # 0.9 improves by < min_delta -> counts as no improvement -> stop.
    assert es.on_epoch_end(net, 1, {"loss": 0.9})


def test_early_stopping_missing_key_raises():
    es = EarlyStopping(monitor="val_loss")
    net = _net()
    es.on_train_begin(net)
    with pytest.raises(KeyError):
        es.on_epoch_end(net, 0, {"loss": 1.0})


def test_lr_schedule_decays():
    net = _net()
    sched = LRSchedule(factor=0.5, step=2, min_lr=0.02)
    lr0 = net.optimizer.lr
    sched.on_epoch_end(net, 0, {})
    assert net.optimizer.lr == lr0
    sched.on_epoch_end(net, 1, {})
    assert net.optimizer.lr == lr0 * 0.5
    for e in range(2, 20, 1):
        sched.on_epoch_end(net, e, {})
    assert net.optimizer.lr == 0.02  # floored


def test_validation():
    with pytest.raises(ValueError):
        EarlyStopping(patience=0)
    with pytest.raises(ValueError):
        LRSchedule(factor=0.0)
    with pytest.raises(ValueError):
        LRSchedule(step=0)


def test_metrics_callback_publishes_epoch_signals():
    from repro.nn.callbacks import MetricsCallback
    from repro.obs import metrics

    reg = metrics.get_registry()
    reg.reset()
    try:
        net = _net()
        rng = np.random.default_rng(0)
        X = rng.normal(size=(64, 2))
        y = (X[:, 0] + X[:, 1]).reshape(-1, 1)
        net.fit(
            X,
            y,
            epochs=3,
            batch_size=16,
            validation_data=(X[:16], y[:16]),
            callbacks=[MetricsCallback(model="toy")],
            seed=0,
        )
        snap = reg.snapshot()
        names = {e["name"]: e for e in snap["counters"] + snap["gauges"]}
        assert names["nn_epochs_total"]["value"] == 3.0
        assert names["nn_epochs_total"]["labels"] == {"model": "toy"}
        assert names["nn_epoch_loss"]["value"] > 0.0
        assert "nn_epoch_val_loss" in names
        assert names["nn_learning_rate"]["value"] == pytest.approx(0.1)
        assert names["nn_grad_norm"]["value"] > 0.0
    finally:
        reg.reset()


def test_metrics_callback_no_val_loss_gauge_without_validation():
    from repro.nn.callbacks import MetricsCallback
    from repro.obs import metrics

    reg = metrics.get_registry()
    reg.reset()
    try:
        net = _net()
        rng = np.random.default_rng(1)
        X = rng.normal(size=(32, 2))
        y = X.sum(axis=1).reshape(-1, 1)
        net.fit(X, y, epochs=2, batch_size=16,
                callbacks=[MetricsCallback()], seed=0)
        gauges = {e["name"] for e in reg.snapshot()["gauges"]}
        assert "nn_epoch_val_loss" not in gauges
        assert "nn_epoch_loss" in gauges
    finally:
        reg.reset()
