"""Callback behaviour in isolation."""

import numpy as np
import pytest

from repro.nn import Activation, Adam, Dense, Sequential
from repro.nn.callbacks import EarlyStopping, History, LRSchedule


def _net():
    return Sequential([Dense(2, 4, seed=0), Activation("tanh"), Dense(4, 1, seed=1)]).compile(
        "mse", Adam(lr=0.1)
    )


def test_history_series():
    h = History()
    net = _net()
    h.on_train_begin(net)
    h.on_epoch_end(net, 0, {"loss": 1.0})
    h.on_epoch_end(net, 1, {"loss": 0.5, "val_loss": 0.7})
    np.testing.assert_array_equal(h.series("loss"), [1.0, 0.5])
    assert np.isnan(h.series("val_loss")[0])


def test_early_stopping_patience_counting():
    es = EarlyStopping(monitor="loss", patience=2, restore_best=False)
    net = _net()
    es.on_train_begin(net)
    assert not es.on_epoch_end(net, 0, {"loss": 1.0})
    assert not es.on_epoch_end(net, 1, {"loss": 1.1})  # 1 bad epoch
    assert es.on_epoch_end(net, 2, {"loss": 1.2})  # 2 bad epochs -> stop
    assert es.best == 1.0 and es.best_epoch == 0


def test_early_stopping_min_delta():
    es = EarlyStopping(monitor="loss", patience=1, min_delta=0.5, restore_best=False)
    net = _net()
    es.on_train_begin(net)
    es.on_epoch_end(net, 0, {"loss": 1.0})
    # 0.9 improves by < min_delta -> counts as no improvement -> stop.
    assert es.on_epoch_end(net, 1, {"loss": 0.9})


def test_early_stopping_missing_key_raises():
    es = EarlyStopping(monitor="val_loss")
    net = _net()
    es.on_train_begin(net)
    with pytest.raises(KeyError):
        es.on_epoch_end(net, 0, {"loss": 1.0})


def test_lr_schedule_decays():
    net = _net()
    sched = LRSchedule(factor=0.5, step=2, min_lr=0.02)
    lr0 = net.optimizer.lr
    sched.on_epoch_end(net, 0, {})
    assert net.optimizer.lr == lr0
    sched.on_epoch_end(net, 1, {})
    assert net.optimizer.lr == lr0 * 0.5
    for e in range(2, 20, 1):
        sched.on_epoch_end(net, e, {})
    assert net.optimizer.lr == 0.02  # floored


def test_validation():
    with pytest.raises(ValueError):
        EarlyStopping(patience=0)
    with pytest.raises(ValueError):
        LRSchedule(factor=0.0)
    with pytest.raises(ValueError):
        LRSchedule(step=0)
