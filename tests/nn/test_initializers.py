"""Weight initialisers: scale laws and registry."""

import numpy as np
import pytest

from repro.nn.initializers import (
    get_initializer,
    glorot_normal,
    glorot_uniform,
    he_normal,
    he_uniform,
)


@pytest.mark.parametrize(
    "fn,expected_var",
    [
        (he_normal, lambda fi, fo: 2.0 / fi),
        (he_uniform, lambda fi, fo: 2.0 / fi),
        (glorot_normal, lambda fi, fo: 2.0 / (fi + fo)),
        (glorot_uniform, lambda fi, fo: 2.0 / (fi + fo)),
    ],
    ids=["he_normal", "he_uniform", "glorot_normal", "glorot_uniform"],
)
def test_variance_scaling(fn, expected_var):
    rng = np.random.default_rng(0)
    fi, fo = 400, 300
    W = fn(fi, fo, rng)
    assert W.shape == (fi, fo)
    np.testing.assert_allclose(W.mean(), 0.0, atol=5e-3)
    np.testing.assert_allclose(W.var(), expected_var(fi, fo), rtol=0.05)


def test_uniform_initialisers_bounded():
    rng = np.random.default_rng(0)
    W = he_uniform(100, 50, rng)
    limit = np.sqrt(6.0 / 100)
    assert np.all(np.abs(W) <= limit)


def test_deterministic_given_generator():
    a = he_normal(10, 10, np.random.default_rng(5))
    b = he_normal(10, 10, np.random.default_rng(5))
    np.testing.assert_array_equal(a, b)


def test_registry():
    assert get_initializer("he_normal") is he_normal
    with pytest.raises(KeyError):
        get_initializer("nope")
